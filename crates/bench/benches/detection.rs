//! Criterion benchmarks of the ML substrate and the three detectors:
//! training time and per-record inference latency — the quantities that
//! bound how many vehicles one RSU can serve.

use cad3::detector::{train_all, DetectionConfig, Detector};
use cad3::SummaryTracker;
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_ml::{Dataset, DecisionTree, DecisionTreeParams, FeatureKind, NaiveBayes, Schema};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn ml_dataset(n: usize) -> Dataset {
    let schema = Schema::new(vec![
        FeatureKind::Continuous,
        FeatureKind::Continuous,
        FeatureKind::Categorical { cardinality: 24 },
    ]);
    let mut ds = Dataset::new(schema, 2);
    for i in 0..n {
        let x = (i % 100) as f64;
        ds.push(vec![x, -x / 10.0, (i % 24) as f64], usize::from(x > 50.0)).expect("valid row");
    }
    ds
}

fn bench_ml(c: &mut Criterion) {
    let mut group = c.benchmark_group("ml");
    let train = ml_dataset(10_000);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("naive_bayes_fit_10k", |b| {
        b.iter(|| black_box(NaiveBayes::fit(&train).expect("trainable")));
    });
    group.bench_function("decision_tree_fit_10k", |b| {
        b.iter(|| {
            black_box(DecisionTree::fit(&train, DecisionTreeParams::default()).expect("trainable"))
        });
    });
    let nb = NaiveBayes::fit(&train).expect("trainable");
    let dt = DecisionTree::fit(&train, DecisionTreeParams::default()).expect("trainable");
    let row = [42.0, -4.2, 13.0];
    group.throughput(Throughput::Elements(1));
    group.bench_function("naive_bayes_predict", |b| {
        b.iter(|| black_box(nb.predict_proba(&row).expect("valid row")));
    });
    group.bench_function("decision_tree_predict", |b| {
        b.iter(|| black_box(dt.predict_proba(&row).expect("valid row")));
    });
    group.finish();
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detectors");
    let ds = SyntheticDataset::generate(&DatasetConfig::small(9));
    let models = train_all(&ds.features, &DetectionConfig::default()).expect("trainable");
    let rec = ds.features[100];
    group.throughput(Throughput::Elements(1));
    group.bench_function("ad3_detect", |b| {
        b.iter(|| black_box(models.ad3.detect(&rec, None).expect("model covers type")));
    });
    group.bench_function("centralized_detect", |b| {
        b.iter(|| black_box(models.centralized.detect(&rec, None).expect("valid record")));
    });
    group.bench_function("cad3_detect_with_summary", |b| {
        let mut tracker = SummaryTracker::new();
        let p = models.cad3.naive_bayes().p_abnormal(&rec).expect("model covers type");
        let summary = tracker
            .observe(rec.vehicle, rec.road, p)
            .or_else(|| tracker.observe(rec.vehicle, cad3_types::RoadId(u64::MAX), p));
        b.iter(|| {
            black_box(models.cad3.detect(&rec, summary.as_ref()).expect("model covers type"))
        });
    });
    group.bench_function("train_all_small_corpus", |b| {
        b.iter(|| {
            black_box(
                train_all(&ds.features[..4000], &DetectionConfig::default()).expect("trainable"),
            )
        });
    });
    group.finish();
}

fn bench_logistic(c: &mut Criterion) {
    use cad3_ml::{LogisticParams, LogisticRegression};
    let mut group = c.benchmark_group("logistic");
    let train = ml_dataset(10_000);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("fit_10k", |b| {
        b.iter(|| {
            black_box(
                LogisticRegression::fit(
                    &train,
                    LogisticParams { epochs: 20, ..LogisticParams::default() },
                )
                .expect("trainable"),
            )
        });
    });
    let lr = LogisticRegression::fit(&train, LogisticParams::default()).expect("trainable");
    group.throughput(Throughput::Elements(1));
    group.bench_function("predict", |b| {
        b.iter(|| black_box(lr.predict_proba(&[42.0, -4.2, 13.0]).expect("valid row")));
    });
    group.finish();
}

criterion_group!(benches, bench_ml, bench_detectors, bench_logistic);
criterion_main!(benches);

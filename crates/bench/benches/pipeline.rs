//! Criterion benchmarks of the full pipeline: RSU micro-batch execution
//! and a complete virtual-time testbed second.

use cad3::detector::{train_all, DetectionConfig};
use cad3::scenario::single_rsu_scaling;
use cad3::{RsuNode, SystemConfig, VehicleAgent};
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_stream::TOPIC_IN_DATA;
use cad3_types::{RoadType, RsuId, SimDuration, SimTime, VehicleId, WireEncode};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_rsu_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    let ds = SyntheticDataset::generate(&DatasetConfig::small(17));
    let models = train_all(&ds.features, &DetectionConfig::default()).expect("trainable");
    let detector = Arc::new(models.cad3);

    // One batch of 128 records, like 256 vehicles at 10 Hz in a 50 ms batch.
    group.throughput(Throughput::Elements(128));
    group.bench_function("rsu_batch_128_records", |b| {
        b.iter_batched(
            || {
                let rsu = RsuNode::new(
                    RsuId(1),
                    "bench",
                    detector.clone(),
                    cad3::ProcessingCostModel::default(),
                );
                let mut agent = VehicleAgent::new(VehicleId(1), ds.features[..256].to_vec());
                for i in 0..128u64 {
                    let status = agent.next_status(SimTime::from_millis(i));
                    rsu.broker()
                        .produce(
                            TOPIC_IN_DATA,
                            None,
                            Some(bytes::Bytes::copy_from_slice(
                                &status.vehicle.raw().to_be_bytes(),
                            )),
                            status.encode_to_bytes(),
                            i,
                        )
                        .expect("topic exists");
                }
                rsu
            },
            |mut rsu| black_box(rsu.run_batch(SimTime::from_millis(200)).expect("batch runs")),
            criterion::BatchSize::LargeInput,
        );
    });

    // A complete virtual second of the 64-vehicle testbed.
    let pool = ds.features_of_type(RoadType::Motorway);
    let det = Arc::new(models.ad3);
    group.throughput(Throughput::Elements(640)); // 64 vehicles × 10 Hz × 1 s
    group.bench_function("testbed_virtual_second_64v", |b| {
        b.iter(|| {
            black_box(single_rsu_scaling(
                SystemConfig::default(),
                3,
                det.clone(),
                pool.clone(),
                64,
                SimDuration::from_secs(1),
            ))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rsu_batch
}
criterion_main!(benches);

//! Criterion micro-benchmarks of the substrate hot paths: broker
//! produce/fetch, wire codec, MAC airtime, HTB shaping, geo math.

use cad3_net::{HtbShaper, MacModel, Mcs};
use cad3_stream::{Broker, Consumer, OffsetReset, Producer};
use cad3_types::{
    DayOfWeek, GeoPoint, HourOfDay, Label, RoadId, RoadType, SimTime, TripId, VehicleId,
    VehicleStatus, WireDecode, WireEncode,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn status() -> VehicleStatus {
    VehicleStatus {
        vehicle: VehicleId(42),
        trip: TripId(7),
        road: RoadId(1001),
        speed_kmh: 123.4,
        accel_mps2: -1.5,
        hour: HourOfDay::new(17).expect("valid hour"),
        day: DayOfWeek::Friday,
        road_type: RoadType::MotorwayLink,
        road_speed_kmh: 95.0,
        position: GeoPoint::new(114.05, 22.54),
        sent_at: SimTime::from_millis(1234),
        seq: 99,
        truth: Label::Abnormal,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(200));
    let s = status();
    group.bench_function("status_encode", |b| {
        b.iter(|| black_box(s.encode_to_bytes()));
    });
    let encoded = s.encode_to_bytes();
    group.bench_function("status_decode", |b| {
        b.iter(|| {
            let mut buf = encoded.clone();
            black_box(VehicleStatus::decode(&mut buf).expect("valid buffer"))
        });
    });
    group.finish();
}

fn bench_broker(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    group.throughput(Throughput::Elements(1));
    let broker = Arc::new(Broker::new("bench"));
    broker.create_topic("IN-DATA", 3).expect("fresh broker");
    let producer = Producer::new(Arc::clone(&broker));
    let payload = status().encode_to_bytes();
    group.bench_function("produce", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            producer
                .send("IN-DATA", Some(&i.to_be_bytes()), payload.clone(), i)
                .expect("topic exists")
        });
    });

    // Fetch a pre-filled log through the consumer-group path.
    let broker2 = Arc::new(Broker::new("bench2"));
    broker2.create_topic("IN-DATA", 3).expect("fresh broker");
    let producer2 = Producer::new(Arc::clone(&broker2));
    for i in 0..10_000u64 {
        producer2
            .send("IN-DATA", Some(&i.to_be_bytes()), payload.clone(), i)
            .expect("topic exists");
    }
    group.throughput(Throughput::Elements(128));
    group.bench_function("poll_128", |b| {
        let mut consumer = Consumer::new(Arc::clone(&broker2), "g", OffsetReset::Earliest);
        consumer.subscribe(&["IN-DATA"]).expect("topic exists");
        b.iter(|| {
            let got = consumer.poll(128).expect("poll succeeds");
            if got.is_empty() {
                consumer.seek_to_beginning();
            }
            black_box(got.len())
        });
    });
    group.finish();
}

fn bench_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    let mac = MacModel::default();
    group.bench_function("mac_airtime", |b| {
        b.iter(|| black_box(mac.frame_airtime(Mcs::MCS3, black_box(200))));
    });
    group.bench_function("mac_eq5_access_time", |b| {
        b.iter(|| black_box(mac.medium_access_time(black_box(256), Mcs::MCS3, 200)));
    });
    group.bench_function("htb_depart", |b| {
        let mut htb = HtbShaper::paper_default();
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            black_box(htb.depart(t % 256, SimTime::from_millis(t), 200))
        });
    });
    group.finish();
}

fn bench_window_and_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("window");
    group.bench_function("sliding_window_record", |b| {
        let mut w = cad3_engine::SlidingWindow::new(300_000_000_000, 10_000_000_000);
        let mut t = 0u64;
        b.iter(|| {
            t += 100_000_000;
            w.record(t, 100.0);
            black_box(w.stats_at(t))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("channels");
    let net = cad3_data::RoadNetwork::generate(&cad3_data::RoadNetworkConfig::scaled(3, 0.02));
    let plan = cad3_data::DeploymentPlan::plan(&net, 1000.0);
    let positions: Vec<cad3_types::GeoPoint> = plan.sites.iter().map(|s| s.position).collect();
    group.bench_function("assign_channels", |b| {
        b.iter(|| {
            black_box(cad3_net::assign_channels(
                black_box(&positions),
                300.0,
                cad3_net::DSRC_SERVICE_CHANNELS,
            ))
        });
    });
    group.finish();
}

fn bench_geo(c: &mut Criterion) {
    let mut group = c.benchmark_group("geo");
    let a = GeoPoint::new(114.05, 22.54);
    let b2 = GeoPoint::new(114.15, 22.64);
    group.bench_function("haversine", |b| {
        b.iter(|| black_box(a.haversine_m(&b2)));
    });
    group.bench_function("destination", |b| {
        b.iter(|| black_box(a.destination(black_box(45.0), black_box(1000.0))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_broker,
    bench_net,
    bench_window_and_channels,
    bench_geo
);
criterion_main!(benches);

//! Detect-stage benchmark: records/second through the CAD3 inference
//! stage across micro-batch sizes.
//!
//! Measures exactly the work `RsuNode::run_batch` does per record *after*
//! decode — the two-stage ensemble (column-major NB sweep + branchless
//! CART descent) interleaved with `SummaryTracker::observe` — at batch
//! sizes 1/16/128/1024, and records records/second in `BENCH_detect.json`
//! at the repo root. Record production, wire codecs and broker plumbing
//! are deliberately outside the timed region: they are identical on both
//! A/B sides and would otherwise dilute the inference delta below
//! measurability (the end-to-end path carries ~1µs/record of fixed
//! transport overhead against ~300ns of inference).
//!
//! The A/B seam is [`detect_stage`]: the `before` build is the parent
//! commit with that one body replaced by the scalar per-record loop (the
//! default `Detector::detect_batch` body — exactly what the parent RSU
//! ran per record); see EXPERIMENTS.md "Batch detect path".
//!
//! Usage:
//!
//! ```text
//! bench_detect --label before            # full run, writes the "before" side
//! bench_detect --label after             # full run, writes the "after" side
//! bench_detect --quick --label after     # reduced iteration counts
//! bench_detect --check                   # CI smoke: quick run + validate the
//!                                        # checked-in file (keys present, no
//!                                        # >40% regression vs its "after")
//! ```
//!
//! Timing goes through `cad3_obs::clock::now_nanos()`, the workspace's one
//! monotonic clock read point (the `no-wallclock` lint bans `Instant::now`
//! here). Observability stays detached so the numbers are the raw path.

use cad3::detector::{train_all, Detection, DetectionConfig, Detector};
use cad3::SummaryTracker;
use cad3_bench::json::Json;
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_types::FeatureRecord;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Micro-batch sizes measured for the throughput curve. 128 is the
/// paper's nominal load (256 vehicles at 10 Hz in a 50 ms batch); 1 is
/// the scalar-equivalent worst case; 1024 is a backlog burst.
const BATCH_SIZES: [usize; 4] = [1, 16, 128, 1024];
/// The four metric keys every complete side of the file must carry.
const METRIC_KEYS: [&str; 4] =
    ["detect_b1_rps", "detect_b16_rps", "detect_b128_rps", "detect_b1024_rps"];
/// A fresh `--check` run must stay above this fraction of the checked-in
/// baseline. The floor is deliberately loose: `--check` measures in quick
/// mode, whose shorter runs carry more warmup-adjacent noise, and CI
/// machines differ from the one that wrote the baseline. It exists to
/// catch structural regressions — losing the batched sweep and falling
/// back to per-record inference shows up as a >2× drop at batch 128,
/// far below this line — not to ratchet noise.
const REGRESSION_FLOOR: f64 = 0.6;

fn now_ns() -> u64 {
    cad3_obs::clock::now_nanos()
}

fn fail(msg: &str) -> ! {
    println!("bench_detect: {msg}");
    std::process::exit(1);
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if xs.is_empty() {
        return 0.0;
    }
    xs[xs.len() / 2]
}

/// The measured unit: classify `recs`, interleaving tracker observation
/// exactly as `RsuNode::run_batch` does.
///
/// **This function body is the A/B seam.** The `after` side is this file
/// as checked in. The `before` side is the parent commit with this body
/// replaced by the scalar loop that predates `Detector::detect_batch`:
///
/// ```text
/// for rec in recs {
///     let Ok(p1) = det.stage1_p_abnormal(rec) else { out.push(None); continue };
///     let summary = tracker.observe(rec.vehicle, rec.road, p1);
///     out.push(det.detect(rec, summary.as_ref()).ok());
/// }
/// ```
///
/// Everything outside this body — training, record pool, tracker, timing
/// loop — is byte-identical on both sides.
fn detect_stage(
    det: &dyn Detector,
    recs: &[FeatureRecord],
    tracker: &mut SummaryTracker,
    out: &mut Vec<Option<Detection>>,
) {
    det.detect_batch(recs, &mut |i, p1| tracker.observe(recs[i].vehicle, recs[i].road, p1), out);
}

/// Records/second through [`detect_stage`] at a fixed batch size.
///
/// Batches are consecutive windows rotating through the record pool, so
/// the context mix (road types, hours, vehicles) matches the generator's
/// traffic and the tracker accumulates state exactly as a live RSU's
/// would. The tracker persists across iterations; two untimed warmup
/// calls settle its shards (and the branch predictor) first.
fn detect_once(det: &dyn Detector, recs: &[FeatureRecord], batch: usize, total: u64) -> f64 {
    if recs.len() <= batch {
        fail("record pool smaller than the batch size");
    }
    let window = recs.len() - batch;
    let mut tracker = det.new_tracker();
    let mut out: Vec<Option<Detection>> = Vec::with_capacity(batch);
    for it in 0..2 {
        out.clear();
        detect_stage(det, &recs[it * batch..it * batch + batch], &mut tracker, &mut out);
    }
    let iterations = (total / batch as u64).max(1);
    let mut elapsed = 0u64;
    let mut detections = 0u64;
    for it in 0..iterations as usize {
        let base = (it * batch) % window;
        let slice = &recs[base..base + batch];
        out.clear();
        let start = now_ns();
        detect_stage(det, slice, &mut tracker, &mut out);
        elapsed += now_ns() - start;
        // Consume the outputs so the stage cannot be dead-code-eliminated.
        detections += out.iter().flatten().count() as u64;
    }
    if detections == 0 {
        fail("no detections produced; the detector is mis-trained");
    }
    (iterations * batch as u64) as f64 / (elapsed as f64 / 1e9)
}

/// Runs the full suite, returning the four metrics as an object.
fn measure(quick: bool) -> Json {
    let rounds = if quick { 2 } else { 5 };
    let total: u64 = if quick { 65_536 } else { 524_288 };

    let pool = SyntheticDataset::generate(&DatasetConfig::small(17));
    let models = match train_all(&pool.features, &DetectionConfig::default()) {
        Ok(m) => m,
        Err(_) => fail("training on the synthetic dataset failed"),
    };
    let detector: &dyn Detector = &models.cad3;

    let mut out = Json::Obj(Vec::new());
    for batch in BATCH_SIZES {
        let rps = median(
            (0..rounds)
                .map(|_| detect_once(detector, &pool.features, batch, total))
                .collect::<Vec<_>>(),
        );
        println!("detect b{batch}: {rps:.0} rec/s");
        out.insert(&format!("detect_b{batch}_rps"), Json::Num(rps.round()));
    }
    out
}

fn default_out() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => PathBuf::from(m).join("../../BENCH_detect.json"),
        Err(_) => PathBuf::from("BENCH_detect.json"),
    }
}

fn load(path: &Path) -> Json {
    match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(doc @ Json::Obj(_)) => doc,
            Ok(_) => fail(&format!("{} is not a JSON object", path.display())),
            Err(e) => fail(&format!("{} is unreadable: {e}", path.display())),
        },
        Err(_) => Json::Obj(Vec::new()),
    }
}

fn metric(doc: &Json, side: &str, key: &str) -> Option<f64> {
    doc.get(side).and_then(|s| s.get(key)).and_then(Json::as_f64)
}

/// `--check`: validate the checked-in file, then quick-run for regressions.
fn check(path: &Path) -> ExitCode {
    let doc = load(path);
    if doc == Json::Obj(Vec::new()) {
        fail(&format!("{} is missing; run with --label first", path.display()));
    }
    let mut ok = true;
    for side in ["before", "after"] {
        for key in METRIC_KEYS {
            if metric(&doc, side, key).is_none() {
                println!("FAIL: {side}.{key} missing from {}", path.display());
                ok = false;
            }
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!("baseline keys OK; measuring quick pass for regression check");
    let fresh = measure(true);
    for key in METRIC_KEYS {
        let (Some(base), Some(now)) =
            (metric(&doc, "after", key), fresh.get(key).and_then(Json::as_f64))
        else {
            println!("FAIL: metric {key} unavailable");
            ok = false;
            continue;
        };
        let floor = base * REGRESSION_FLOOR;
        if now < floor {
            println!("FAIL: {key} regressed: {now:.0} rec/s < {floor:.0} (baseline {base:.0})");
            ok = false;
        } else {
            println!("ok: {key} {now:.0} rec/s (baseline {base:.0})");
        }
    }
    // Advisory longitudinal view: warn (never fail) when this run drifts
    // outside the band around the newest history entry, then append the
    // run so the series stays current.
    let hist = cad3_bench::history::history_path();
    if let Some(last) = cad3_bench::history::last_entry(&hist, "detect") {
        for w in cad3_bench::history::drift_warnings(&last, &fresh, &METRIC_KEYS, REGRESSION_FLOOR)
        {
            println!("WARN: {w}");
        }
    }
    cad3_bench::history::append(&hist, "detect", true, &fresh);
    if ok {
        println!("bench-smoke PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write(path: &Path, label: &str, metrics: Json, quick: bool) {
    let mut doc = load(path);
    doc.insert("schema", Json::Str("cad3-detect-bench/v1".to_owned()));
    doc.insert("quick", Json::Bool(quick));
    doc.insert(label, metrics);
    // With both sides present, record the after/before speedups.
    let mut speedup = Json::Obj(Vec::new());
    for key in METRIC_KEYS {
        if let (Some(b), Some(a)) = (metric(&doc, "before", key), metric(&doc, "after", key)) {
            if b > 0.0 {
                speedup.insert(key, Json::Num((a / b * 100.0).round() / 100.0));
            }
        }
    }
    if speedup != Json::Obj(Vec::new()) {
        doc.insert("speedup", speedup);
    }
    if std::fs::write(path, doc.to_pretty_string() + "\n").is_err() {
        fail(&format!("cannot write {}", path.display()));
    }
    println!("[written to {}]", path.display());
}

fn main() -> ExitCode {
    let mut quick = cad3_bench::quick_mode();
    let mut label: Option<String> = None;
    let mut out = default_out();
    let mut do_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => do_check = true,
            "--label" => match args.next() {
                Some(l) if l == "before" || l == "after" => label = Some(l),
                _ => fail("--label needs `before` or `after`"),
            },
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => fail("--out needs a path"),
            },
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    if do_check {
        return check(&out);
    }
    let metrics = measure(quick);
    cad3_bench::history::append(&cad3_bench::history::history_path(), "detect", quick, &metrics);
    match label {
        Some(label) => write(&out, &label, metrics, quick),
        None => println!("(no --label: results not written)"),
    }
    ExitCode::SUCCESS
}

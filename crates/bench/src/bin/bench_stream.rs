//! Stream hot-path benchmark: produce, poll-128 and run_batch throughput.
//!
//! Measures the `cad3-stream`/`cad3-engine` ingest path end to end —
//! multi-producer append throughput on one topic (1/2/4/8 threads), the
//! consumer `poll(128)` drain rate and the `MicroBatchRunner::run_batch`
//! poll→dataset rate — and records the numbers in `BENCH_stream.json` at
//! the repo root so later PRs have a machine-readable baseline to ratchet
//! against.
//!
//! Usage:
//!
//! ```text
//! bench_stream --label before            # full run, writes the "before" side
//! bench_stream --label after             # full run, writes the "after" side
//! bench_stream --quick --label after     # reduced iteration counts
//! bench_stream --check                   # CI smoke: quick run + validate the
//!                                        # checked-in file (keys present, no
//!                                        # >20% regression vs its "after")
//! ```
//!
//! Timing goes through `cad3_obs::clock::now_nanos()`, the workspace's one
//! monotonic clock read point (the `no-wallclock` lint bans `Instant::now`
//! here). Observability stays detached so the numbers are the raw path.

use cad3_bench::json::Json;
use cad3_engine::{BatchConfig, MicroBatchRunner};
use cad3_stream::{Broker, Consumer, OffsetReset, Producer};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// Producer thread counts measured for the scaling curve.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Partitions of the benchmark topic: enough for 8 producers to spread.
const PARTITIONS: u32 = 8;
/// The six metric keys every complete side of the file must carry.
const METRIC_KEYS: [&str; 6] = [
    "produce_1t_rps",
    "produce_2t_rps",
    "produce_4t_rps",
    "produce_8t_rps",
    "poll128_rps",
    "run_batch_rps",
];
/// A fresh `--check` run must stay above this fraction of the checked-in
/// baseline. The floor is deliberately loose: `--check` measures in quick
/// mode, whose smaller prefills carry more fixed overhead per batch
/// (measured ~0.77× the full-mode `run_batch` number on the same machine),
/// and CI machines differ from the one that wrote the baseline. It exists
/// to catch structural regressions — re-serialising the sharded hot path
/// shows up as a 2–3× drop, far below this line — not to ratchet noise.
const REGRESSION_FLOOR: f64 = 0.6;

fn now_ns() -> u64 {
    cad3_obs::clock::now_nanos()
}

fn fail(msg: &str) -> ! {
    println!("bench_stream: {msg}");
    std::process::exit(1);
}

/// 64-byte stand-in for an encoded `VehicleStatus` payload.
fn payload() -> bytes::Bytes {
    bytes::Bytes::from_static(&[0u8; 64])
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if xs.is_empty() {
        return 0.0;
    }
    xs[xs.len() / 2]
}

/// Records/second for `total` keyed records split across `threads`
/// producers on one fresh topic.
fn produce_once(threads: usize, total: u64) -> f64 {
    let broker = Arc::new(Broker::new("bench"));
    if broker.create_topic("BENCH", PARTITIONS).is_err() {
        fail("create_topic failed on a fresh broker");
    }
    let per_thread = total / threads as u64;
    let value = payload();
    let start = now_ns();
    let mut handles = Vec::new();
    for tid in 0..threads as u64 {
        let broker = Arc::clone(&broker);
        let value = value.clone();
        handles.push(std::thread::spawn(move || {
            let producer = Producer::new(broker);
            for i in 0..per_thread {
                // Distinct keys per thread spread records over all
                // partitions by FNV hash, like distinct vehicle ids.
                let key = ((tid << 48) | i).to_be_bytes();
                if producer.send("BENCH", Some(&key), value.clone(), i).is_err() {
                    fail("send failed mid-benchmark");
                }
            }
        }));
    }
    for h in handles {
        if h.join().is_err() {
            fail("producer thread panicked");
        }
    }
    let elapsed_s = (now_ns() - start) as f64 / 1e9;
    (per_thread * threads as u64) as f64 / elapsed_s
}

/// Records/second drained through `Consumer::poll(128)` over a prefilled
/// topic, seeking back to the beginning whenever the log is exhausted.
fn poll128_once(prefill: u64, polls: usize) -> f64 {
    let broker = Arc::new(Broker::new("bench"));
    if broker.create_topic("BENCH", 3).is_err() {
        fail("create_topic failed on a fresh broker");
    }
    let producer = Producer::new(Arc::clone(&broker));
    let value = payload();
    for i in 0..prefill {
        if producer.send("BENCH", Some(&i.to_be_bytes()), value.clone(), i).is_err() {
            fail("prefill send failed");
        }
    }
    let mut consumer = Consumer::new(broker, "bench-poll", OffsetReset::Earliest);
    if consumer.subscribe(&["BENCH"]).is_err() {
        fail("subscribe failed");
    }
    // Warm one poll so the measured loop starts mid-stream.
    if consumer.poll(128).is_err() {
        fail("warmup poll failed");
    }
    let mut records = 0u64;
    let start = now_ns();
    for _ in 0..polls {
        match consumer.poll(128) {
            Ok(batch) => {
                records += batch.len() as u64;
                if batch.is_empty() {
                    consumer.seek_to_beginning();
                }
            }
            Err(_) => fail("poll failed mid-benchmark"),
        }
    }
    let elapsed_s = (now_ns() - start) as f64 / 1e9;
    records as f64 / elapsed_s
}

/// Records/second pulled through `MicroBatchRunner::run_batch` (poll +
/// dataset assembly + a counting job) over a prefilled topic.
fn run_batch_once(prefill: u64) -> f64 {
    let broker = Arc::new(Broker::new("bench"));
    if broker.create_topic("BENCH", 3).is_err() {
        fail("create_topic failed on a fresh broker");
    }
    let producer = Producer::new(Arc::clone(&broker));
    let value = payload();
    for i in 0..prefill {
        if producer.send("BENCH", Some(&i.to_be_bytes()), value.clone(), i).is_err() {
            fail("prefill send failed");
        }
    }
    let mut consumer = Consumer::new(broker, "bench-batch", OffsetReset::Earliest);
    if consumer.subscribe(&["BENCH"]).is_err() {
        fail("subscribe failed");
    }
    let config = BatchConfig { interval_ms: 50, max_records: 10_000 };
    let mut runner = MicroBatchRunner::new(consumer, config);
    let mut seen = 0u64;
    let start = now_ns();
    while seen < prefill {
        let mut n = 0usize;
        match runner.run_batch(|ds| n = ds.count()) {
            Ok(_) => seen += n as u64,
            Err(_) => fail("run_batch failed mid-benchmark"),
        }
        if n == 0 {
            fail("run_batch drained early; prefill accounting is wrong");
        }
    }
    let elapsed_s = (now_ns() - start) as f64 / 1e9;
    seen as f64 / elapsed_s
}

/// Runs the full suite, returning the six metrics as an object.
fn measure(quick: bool) -> Json {
    let rounds = if quick { 2 } else { 5 };
    let produce_total: u64 = if quick { 40_000 } else { 400_000 };
    let poll_prefill: u64 = if quick { 10_000 } else { 50_000 };
    let polls: usize = if quick { 200 } else { 2_000 };
    let batch_prefill: u64 = if quick { 20_000 } else { 200_000 };

    let mut out = Json::Obj(Vec::new());
    for threads in THREADS {
        let rps =
            median((0..rounds).map(|_| produce_once(threads, produce_total)).collect::<Vec<_>>());
        println!("produce {threads}t: {rps:.0} rec/s");
        out.insert(&format!("produce_{threads}t_rps"), Json::Num(rps.round()));
    }
    let rps = median((0..rounds).map(|_| poll128_once(poll_prefill, polls)).collect::<Vec<_>>());
    println!("poll_128: {rps:.0} rec/s");
    out.insert("poll128_rps", Json::Num(rps.round()));
    let rps = median((0..rounds).map(|_| run_batch_once(batch_prefill)).collect::<Vec<_>>());
    println!("run_batch: {rps:.0} rec/s");
    out.insert("run_batch_rps", Json::Num(rps.round()));
    out
}

fn default_out() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => PathBuf::from(m).join("../../BENCH_stream.json"),
        Err(_) => PathBuf::from("BENCH_stream.json"),
    }
}

fn load(path: &Path) -> Json {
    match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(doc @ Json::Obj(_)) => doc,
            Ok(_) => fail(&format!("{} is not a JSON object", path.display())),
            Err(e) => fail(&format!("{} is unreadable: {e}", path.display())),
        },
        Err(_) => Json::Obj(Vec::new()),
    }
}

fn metric(doc: &Json, side: &str, key: &str) -> Option<f64> {
    doc.get(side).and_then(|s| s.get(key)).and_then(Json::as_f64)
}

/// `--check`: validate the checked-in file, then quick-run for regressions.
fn check(path: &Path) -> ExitCode {
    let doc = load(path);
    if doc == Json::Obj(Vec::new()) {
        fail(&format!("{} is missing; run with --label first", path.display()));
    }
    let mut ok = true;
    for side in ["before", "after"] {
        for key in METRIC_KEYS {
            if metric(&doc, side, key).is_none() {
                println!("FAIL: {side}.{key} missing from {}", path.display());
                ok = false;
            }
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!("baseline keys OK; measuring quick pass for regression check");
    let fresh = measure(true);
    for key in METRIC_KEYS {
        let (Some(base), Some(now)) =
            (metric(&doc, "after", key), fresh.get(key).and_then(Json::as_f64))
        else {
            println!("FAIL: metric {key} unavailable");
            ok = false;
            continue;
        };
        let floor = base * REGRESSION_FLOOR;
        if now < floor {
            println!("FAIL: {key} regressed: {now:.0} rec/s < {floor:.0} (baseline {base:.0})");
            ok = false;
        } else {
            println!("ok: {key} {now:.0} rec/s (baseline {base:.0})");
        }
    }
    // Advisory longitudinal view: warn (never fail) when this run drifts
    // outside the band around the newest history entry, then append the
    // run so the series stays current.
    let hist = cad3_bench::history::history_path();
    if let Some(last) = cad3_bench::history::last_entry(&hist, "stream") {
        for w in cad3_bench::history::drift_warnings(&last, &fresh, &METRIC_KEYS, REGRESSION_FLOOR)
        {
            println!("WARN: {w}");
        }
    }
    cad3_bench::history::append(&hist, "stream", true, &fresh);
    if ok {
        println!("bench-smoke PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write(path: &Path, label: &str, metrics: Json, quick: bool) {
    let mut doc = load(path);
    doc.insert("schema", Json::Str("cad3-stream-bench/v1".to_owned()));
    doc.insert("quick", Json::Bool(quick));
    doc.insert(label, metrics);
    // With both sides present, record the after/before speedups.
    let mut speedup = Json::Obj(Vec::new());
    for key in METRIC_KEYS {
        if let (Some(b), Some(a)) = (metric(&doc, "before", key), metric(&doc, "after", key)) {
            if b > 0.0 {
                speedup.insert(key, Json::Num((a / b * 100.0).round() / 100.0));
            }
        }
    }
    if speedup != Json::Obj(Vec::new()) {
        doc.insert("speedup", speedup);
    }
    if std::fs::write(path, doc.to_pretty_string() + "\n").is_err() {
        fail(&format!("cannot write {}", path.display()));
    }
    println!("[written to {}]", path.display());
}

fn main() -> ExitCode {
    let mut quick = cad3_bench::quick_mode();
    let mut label: Option<String> = None;
    let mut out = default_out();
    let mut do_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => do_check = true,
            "--label" => match args.next() {
                Some(l) if l == "before" || l == "after" => label = Some(l),
                _ => fail("--label needs `before` or `after`"),
            },
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => fail("--out needs a path"),
            },
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    if do_check {
        return check(&out);
    }
    let metrics = measure(quick);
    cad3_bench::history::append(&cad3_bench::history::history_path(), "stream", quick, &metrics);
    match label {
        Some(label) => write(&out, &label, metrics, quick),
        None => println!("(no --label: results not written)"),
    }
    ExitCode::SUCCESS
}

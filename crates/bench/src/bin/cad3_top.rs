//! `cad3 top` — a live ops console for the health engine.
//!
//! Runs the 2-RSU handover scenario in virtual time with the health
//! monitor ticking as a simulation observer, capturing one rendered frame
//! per tick, then plays the frames back at the contract's real-time
//! cadence with an ANSI full-screen redraw — `top` for the CAD3 pipeline:
//! per-RSU health states, the live SLO table with burn rates, and the
//! alert log as it happened.
//!
//! Because the frames come from the deterministic run, the console shows
//! exactly what `health_report` gates on, just animated. With `--once`
//! (or when stdout is not a terminal) it skips the animation and prints
//! the final frame, so piping `cad3_top` into a file is still useful.

use cad3::detector::{train_all, DetectionConfig};
use cad3::{scenario, Observer, SystemConfig};
use cad3_bench::{console, quick_mode, DEFAULT_SEED};
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_obs::{HealthMonitor, SloContract};
use cad3_types::{RoadType, SimDuration};
use std::cell::RefCell;
use std::io::{self, IsTerminal, Write as _};
use std::path::Path;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    let once = std::env::args().any(|a| a == "--once");
    let quick = quick_mode();

    cad3_obs::set_enabled(true);

    let slos_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../slos.toml");
    let contract = match SloContract::load(&slos_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cad3_top: {e}");
            std::process::exit(2);
        }
    };

    let ds = SyntheticDataset::generate(&DatasetConfig::small(DEFAULT_SEED));
    let models = match train_all(&ds.features, &DetectionConfig::default()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cad3_top: corpus not trainable: {e}");
            std::process::exit(2);
        }
    };
    let vehicles = if quick { 16 } else { 32 };
    let duration = SimDuration::from_secs(if quick { 4 } else { 8 });

    // One frame per health tick, captured during the deterministic run.
    let monitor = Rc::new(RefCell::new(HealthMonitor::new(contract.clone())));
    monitor.borrow_mut().register_rsu("rsu-motorway");
    monitor.borrow_mut().register_rsu("rsu-motorway-link");
    let frames: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let hook_monitor = Rc::clone(&monitor);
    let hook_frames = Rc::clone(&frames);
    let observer = Observer {
        interval: SimDuration::from_nanos(contract.tick_ns),
        hook: Box::new(move |now| {
            let mut mon = hook_monitor.borrow_mut();
            mon.tick(now.as_nanos());
            let mut frame = console::frame(&mon, now.as_nanos());
            frame.push('\n');
            frame.push_str(&console::profile_block(
                &cad3_obs::profile::snapshot(),
                &cad3_obs::profile::live_stacks(),
            ));
            hook_frames.borrow_mut().push(frame);
        }),
    };

    let report = scenario::handover_migration_observed(
        SystemConfig::default(),
        DEFAULT_SEED,
        Arc::new(models.cad3),
        ds.features_of_type(RoadType::Motorway),
        ds.features_of_type(RoadType::MotorwayLink),
        vehicles,
        0.5,
        duration,
        vec![observer],
    );

    let frames = frames.borrow();
    let live = !once && io::stdout().is_terminal();
    if live {
        // Replay at the contract cadence: a 100 ms tick becomes a 100 ms
        // redraw, so the animation runs at the speed the pipeline ran.
        let mut pacer =
            cad3_engine::WallClockPacer::new(std::time::Duration::from_nanos(contract.tick_ns));
        for frame in frames.iter() {
            print!("\x1b[2J\x1b[H{frame}");
            let _ = io::stdout().flush();
            pacer.wait();
        }
        println!();
    } else if let Some(last) = frames.last() {
        println!("{last}");
    }
    for r in &report.per_rsu {
        println!("[{}] {}", r.name, r.latency.summary_line());
    }
}

//! Ablations of the design choices DESIGN.md calls out: Eq. 1 fusion
//! weight, micro-batch interval, consumer poll interval.

use cad3_bench::{experiments, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Ablation — Eq. 1 fusion weight (paper fixes w = 0.5)");
    let result = experiments::ablation(DEFAULT_SEED, quick_mode());
    let rows: Vec<Vec<String>> = result
        .fusion
        .iter()
        .map(|r| {
            vec![tables::f(r.weight, 2), tables::f(r.f1, 4), format!("{:.1} %", r.fn_rate_pct)]
        })
        .collect();
    println!("{}", tables::render(&["weight", "CAD3 F1", "CAD3 FN rate"], &rows));
    println!("w = 0 degrades CAD3 to a tree over P_NB alone; w = 1 trusts only history.");

    tables::banner("Ablation — summary history depth (paper keeps all history)");
    let rows: Vec<Vec<String>> = result
        .depth
        .iter()
        .map(|r| {
            vec![
                r.depth.map_or("all".to_owned(), |d| d.to_string()),
                tables::f(r.f1, 4),
                format!("{:.1} %", r.fn_rate_pct),
            ]
        })
        .collect();
    println!("{}", tables::render(&["roads kept", "CAD3 F1", "CAD3 FN rate"], &rows));
    println!("Short memories make the driver prior reactive; full history is smoothest.");

    tables::banner("Ablation — micro-batch interval (paper uses 50 ms)");
    let rows: Vec<Vec<String>> = result
        .batch
        .iter()
        .map(|r| {
            vec![
                r.batch_interval_ms.to_string(),
                tables::f(r.queuing_ms, 2),
                tables::f(r.total_ms, 2),
            ]
        })
        .collect();
    println!("{}", tables::render(&["batch ms", "queue ms", "total ms"], &rows));
    println!("Queuing scales with the interval (mean wait ≈ interval/2).");

    tables::banner("Ablation — consumer poll interval (paper uses 10 ms)");
    let rows: Vec<Vec<String>> = result
        .poll
        .iter()
        .map(|r| {
            vec![
                r.poll_interval_ms.to_string(),
                tables::f(r.dissemination_ms, 2),
                tables::f(r.total_ms, 2),
            ]
        })
        .collect();
    println!("{}", tables::render(&["poll ms", "dissem ms", "total ms"], &rows));
    println!("Dissemination scales with the poll interval (mean wait ≈ interval/2 + fetch).");
    write_json("ablation", &result);
}

//! Runs every experiment binary's workload in sequence — regenerates all
//! tables and figures of the paper's evaluation in one go.

use cad3_bench::{experiments, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    let quick = quick_mode();
    println!(
        "Regenerating all CAD3 experiments (mode: {}; set CAD3_QUICK=1 for a fast pass)",
        if quick { "quick" } else { "full" }
    );

    tables::banner("Fig. 2");
    let fig2 = experiments::fig2();
    println!("{} speed-profile series generated.", fig2.len());
    write_json("fig2_speed_profiles", &fig2);

    tables::banner("Fig. 6a / 6c");
    let scaling = experiments::scaling_sweep(DEFAULT_SEED, quick);
    for r in &scaling.rows {
        println!(
            "{:>4} vehicles: total {:6.2} ms (tx {:.2} | queue {:5.2} | proc {:5.2} | dissem {:5.2}) | {} per vehicle, {} total",
            r.vehicles,
            r.total_ms,
            r.tx_ms,
            r.queuing_ms,
            r.processing_ms,
            r.dissemination_ms,
            tables::bps(r.per_vehicle_bps),
            tables::bps(r.total_bps),
        );
    }
    write_json("fig6a_latency_scaling", &scaling);
    write_json("fig6c_bandwidth_scaling", &scaling);

    tables::banner("Fig. 6b / 6d");
    let multi = experiments::multi_rsu_deployment(DEFAULT_SEED, quick);
    for r in &multi.rows {
        println!(
            "{:>8}: dissemination {:5.2} ± {:.2} ms | vehicles {} | CO-DATA {} | total {}",
            r.name,
            r.dissemination_ms,
            r.dissemination_stderr_ms,
            tables::bps(r.uplink_bps),
            tables::bps(r.co_data_bps),
            tables::bps(r.total_bps),
        );
    }
    write_json("fig6b_dissemination", &multi);
    write_json("fig6d_bandwidth_per_rsu", &multi);

    tables::banner("Fig. 7");
    let fig7 = experiments::fig7(DEFAULT_SEED, quick);
    for r in &fig7.rows {
        println!("{:>12}: accuracy {:.4} | F1 {:.4}", r.model, r.accuracy, r.f1);
    }
    write_json("fig7_detection_quality", &fig7);

    tables::banner("Fig. 8");
    let fig8 = experiments::fig8(DEFAULT_SEED);
    println!(
        "trip of a {} driver, {} points: accuracies [centralized {:.3}, ad3 {:.3}, cad3 {:.3}], flips {:?}",
        fig8.profile, fig8.points, fig8.accuracies[0], fig8.accuracies[1], fig8.accuracies[2], fig8.flips
    );
    write_json("fig8_mesoscopic", &fig8);

    tables::banner("Table III");
    let t3 = experiments::table3(DEFAULT_SEED, quick);
    for r in &t3 {
        println!(
            "{:>15}: {:>5} cars | {:>5} trips | mean speed {:6.1} | {:>8} trajectories",
            r.region, r.cars, r.trips, r.mean_speed_kmh, r.trajectories
        );
    }
    write_json("table3_dataset_stats", &t3);

    tables::banner("Table IV");
    let t4 = experiments::table4(DEFAULT_SEED, quick);
    for r in &t4.rows {
        println!(
            "{:>12}: TP {:5.1} % | FN {:5.1} % | E(Λ) {:8.0}",
            r.model, r.tp_rate_pct, r.fn_rate_pct, r.expected_accidents
        );
    }
    write_json("table4_accidents", &t4);

    tables::banner("Table V");
    let t5 = experiments::table5();
    println!("total RSUs: {}", t5.iter().map(|r| r.rsus).sum::<usize>());
    write_json("table5_rsu_requirements", &t5);

    tables::banner("Table VI");
    let t6 = experiments::table6(DEFAULT_SEED, quick);
    for r in &t6 {
        println!(
            "{:>14}: {:>6} placed | avg {:6.1} m | max {:6.1} m | 300 m coverage {:.1} %",
            r.kind,
            r.count,
            r.avg_m,
            r.max_m,
            r.coverage_300m * 100.0
        );
    }
    write_json("table6_infrastructure", &t6);

    tables::banner("Fig. 9");
    let fig9 = experiments::fig9(DEFAULT_SEED, quick);
    println!(
        "{} RSU sites | 300 m coverage {:.1}% ({} gaps) | {} SCHs used, {} conflicts",
        fig9.sites,
        fig9.coverage_300m * 100.0,
        fig9.gaps_300m,
        fig9.channels_used,
        fig9.channel_conflicts
    );
    write_json("fig9_deployment", &fig9);

    tables::banner("Eq. 5-6 MAC analysis");
    let mac = experiments::mac_analysis();
    for r in &mac {
        println!(
            "MCS{}: {:4.1} Mb/s | t_v(256) {:6.2} ms | 256@10Hz: {}",
            r.mcs,
            r.rate_mbps,
            r.access_256_ms,
            if r.supports_256_at_10hz { "yes" } else { "no" }
        );
    }
    write_json("mac_analysis", &mac);

    tables::banner("Ablations");
    let ab = experiments::ablation(DEFAULT_SEED, quick);
    for r in &ab.fusion {
        println!("fusion w={:.2}: F1 {:.4}, FN {:.1} %", r.weight, r.f1, r.fn_rate_pct);
    }
    write_json("ablation", &ab);

    println!("\nAll experiments complete.");
}

//! The paper's motivating comparison (Sections II-B, VII-A): offloading
//! detection to the cloud pays a backhaul round trip on every warning,
//! while the roadside edge keeps the whole loop local. QF-COTE, the
//! cloud-collaborating MEC baseline, reports > 300 ms; CAD3 stays < 50 ms.

use cad3::detector::{train_all, DetectionConfig};
use cad3::scenario::edge_vs_cloud;
use cad3::SystemConfig;
use cad3_bench::{quick_mode, tables, write_json, DEFAULT_SEED};
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_types::{RoadType, SimDuration};
use serde::Serialize;
use std::sync::Arc;

#[derive(Debug, Serialize)]
struct Row {
    deployment: String,
    tx_ms: f64,
    queuing_ms: f64,
    processing_ms: f64,
    dissemination_ms: f64,
    total_ms: f64,
}

fn main() {
    tables::banner("Edge vs cloud offload — end-to-end warning latency");
    let quick = quick_mode();
    let ds = SyntheticDataset::generate(&DatasetConfig::small(DEFAULT_SEED));
    let models = train_all(&ds.features, &DetectionConfig::default()).expect("trainable");
    let (edge, cloud) = edge_vs_cloud(
        SystemConfig::default(),
        DEFAULT_SEED,
        Arc::new(models.ad3),
        ds.features_of_type(RoadType::Motorway),
        if quick { 32 } else { 128 },
        // A metropolitan cloud backhaul: ~60 ms one way (access + core +
        // data-centre ingress), the regime in which QF-COTE-style systems
        // report 300 ms+ loops.
        SimDuration::from_millis(60),
        SimDuration::from_secs(if quick { 5 } else { 12 }),
    );

    let row = |name: &str, r: &cad3::RsuReport| Row {
        deployment: name.to_owned(),
        tx_ms: r.latency.tx_ms.mean(),
        queuing_ms: r.latency.queuing_ms.mean(),
        processing_ms: r.latency.processing_ms.mean(),
        dissemination_ms: r.latency.dissemination_ms.mean(),
        total_ms: r.latency.total_ms.mean(),
    };
    let rows_data =
        vec![row("edge RSU (CAD3)", &edge.per_rsu[0]), row("cloud node", &cloud.per_rsu[0])];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.deployment.clone(),
                tables::f(r.tx_ms, 2),
                tables::f(r.queuing_ms, 2),
                tables::f(r.processing_ms, 2),
                tables::f(r.dissemination_ms, 2),
                tables::f(r.total_ms, 2),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &["deployment", "tx ms", "queue ms", "proc ms", "dissem ms", "total ms"],
            &rows,
        )
    );
    println!(
        "Paper: CAD3 < 50 ms at the edge; cloud-assisted detection (QF-COTE) > 300 ms.\n\
         The uplink backhaul lands in Tx and the downlink in dissemination — the whole\n\
         gap is network, which no amount of cloud compute can buy back."
    );
    write_json("cloud_vs_edge", &rows_data);
}

//! Fig. 2 — speed profiles of motorway vs motorway-link roads, weekday vs
//! weekend, by hour of day.

use cad3_bench::{experiments, tables, write_json};

fn main() {
    tables::banner("Figure 2 — speed profiles (synthetic generator)");
    let series = experiments::fig2();
    let mut rows = Vec::new();
    for h in 0..24 {
        rows.push(vec![
            format!("{h:02}:00"),
            tables::f(series[0].hourly_mean_kmh[h], 1),
            tables::f(series[1].hourly_mean_kmh[h], 1),
            tables::f(series[2].hourly_mean_kmh[h], 1),
            tables::f(series[3].hourly_mean_kmh[h], 1),
        ]);
    }
    println!(
        "{}",
        tables::render(&["hour", "mw wkday", "mw wkend", "link wkday", "link wkend"], &rows,)
    );
    println!("Paper shape: motorway >> motorway link; weekday rush-hour dips (07-09, 17-19);");
    println!("free-flowing nights; flatter weekends. Link traffic mostly 0-35 km/h.");
    write_json("fig2_speed_profiles", &series);
}

//! Fig. 6a — Tx / processing / total latency vs number of vehicles.

use cad3_bench::{experiments, paper, quick_mode, tables, write_json, write_metrics, DEFAULT_SEED};

fn main() {
    tables::banner("Figure 6a — end-to-end latency vs vehicles (single RSU)");
    // Attach the metrics exporter so the run also produces the Fig. 6a
    // decomposition as `rsu.*_us` histograms in `results/fig6a_metrics.prom`.
    cad3_obs::set_enabled(true);
    let result = experiments::scaling_sweep(DEFAULT_SEED, quick_mode());
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.vehicles.to_string(),
                tables::f(r.tx_ms, 2),
                tables::f(r.queuing_ms, 2),
                tables::f(r.processing_ms, 2),
                tables::f(r.dissemination_ms, 2),
                format!("{:.2} ± {:.2}", r.total_ms, r.total_stderr_ms),
                tables::f(r.total_p95_ms, 1),
                r.samples.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &["vehicles", "tx ms", "queue ms", "proc ms", "dissem ms", "total ms", "p95 ms", "n"],
            &rows,
        )
    );
    println!(
        "Paper: total {:.1} ms @8 -> {:.1} ms @256 (always < {:.0} ms); processing {:.1} -> {:.1} ms.",
        paper::FIG6A_TOTAL_AT_8,
        paper::FIG6A_TOTAL_AT_256,
        paper::LATENCY_BOUND_MS,
        paper::FIG6A_PROC_AT_8,
        paper::FIG6A_PROC_AT_256,
    );
    let worst = result.rows.iter().map(|r| r.total_ms).fold(0.0, f64::max);
    println!(
        "Measured: worst mean total {:.1} ms — bound {} HELD.",
        worst,
        if worst < paper::LATENCY_BOUND_MS { "✓" } else { "✗ NOT" }
    );
    write_json("fig6a_latency_scaling", &result);
    if let Some(snapshot) = write_metrics("fig6a_metrics") {
        for stage in ["rsu.tx_us", "rsu.queuing_us", "rsu.processing_us", "rsu.total_us"] {
            let hist = snapshot.histogram(stage);
            assert!(
                hist.is_some_and(|h| h.count > 0),
                "metrics snapshot is missing Fig. 6a stage histogram {stage}"
            );
        }
    }
}

//! Fig. 6b — dissemination latency per RSU type in the five-RSU deployment
//! (4 motorway RSUs forwarding CO-DATA summaries to 1 motorway-link RSU).

use cad3_bench::{experiments, paper, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Figure 6b — dissemination latency per RSU (5 RSUs × 128 vehicles)");
    let result = experiments::multi_rsu_deployment(DEFAULT_SEED, quick_mode());
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2} ± {:.2}", r.dissemination_ms, r.dissemination_stderr_ms),
                tables::f(r.total_ms, 2),
            ]
        })
        .collect();
    println!("{}", tables::render(&["RSU", "dissemination ms", "total ms"], &rows));
    println!(
        "Paper: dissemination ≈ {:.1} ms (poll 10 ms + fetch 7.2 ± {:.1} ms) on every RSU type.",
        paper::FIG6B_DISSEMINATION_MS,
        paper::FIG6B_DISSEMINATION_STDERR_MS,
    );
    write_json("fig6b_dissemination", &result);
}

//! Fig. 6c — per-vehicle and total bandwidth vs number of vehicles.

use cad3_bench::{experiments, paper, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Figure 6c — bandwidth vs vehicles (single RSU)");
    let result = experiments::scaling_sweep(DEFAULT_SEED ^ 0xC, quick_mode());
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.vehicles.to_string(),
                tables::bps(r.per_vehicle_bps),
                tables::bps(r.total_bps),
                tables::f(r.total_bps / paper::DSRC_CAPACITY_BPS * 100.0, 1) + " %",
            ]
        })
        .collect();
    println!("{}", tables::render(&["vehicles", "per-vehicle", "total", "of DSRC 27 Mb/s"], &rows));
    println!(
        "Paper: ~{} per vehicle; ~{} total at 256 vehicles (< 1/5 of DSRC capacity).",
        tables::bps(paper::FIG6C_PER_VEHICLE_BPS),
        tables::bps(paper::FIG6C_TOTAL_AT_256_BPS),
    );
    write_json("fig6c_bandwidth_scaling", &result);
}

//! Fig. 6d — bandwidth received per RSU in the five-RSU deployment; the
//! motorway-link RSU receives slightly more due to CO-DATA collaboration.

use cad3_bench::{experiments, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Figure 6d — bandwidth per RSU (5 RSUs × 128 vehicles)");
    let result = experiments::multi_rsu_deployment(DEFAULT_SEED ^ 0xD, quick_mode());
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                tables::bps(r.uplink_bps),
                tables::bps(r.co_data_bps),
                tables::bps(r.total_bps),
            ]
        })
        .collect();
    println!("{}", tables::render(&["RSU", "vehicles", "CO-DATA", "total"], &rows));
    let link = &result.rows[0];
    let mw_mean =
        result.rows[1..].iter().map(|r| r.total_bps).sum::<f64>() / (result.rows.len() - 1) as f64;
    println!(
        "Paper shape: Mw Link slightly above the Mw RSUs, all far below 27 Mb/s DSRC capacity."
    );
    println!(
        "Measured: Mw Link {} vs Mw mean {} ({}).",
        tables::bps(link.total_bps),
        tables::bps(mw_mean),
        if link.total_bps > mw_mean { "✓ link is higher" } else { "✗ link is NOT higher" }
    );
    write_json("fig6d_bandwidth_per_rsu", &result);
}

//! Fig. 7 — F1 and accuracy: centralized vs distributed standalone (AD3)
//! vs collaborative (CAD3).

use cad3_bench::{experiments, paper, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Figure 7 — detection quality: centralized vs AD3 vs CAD3");
    let result = experiments::fig7(DEFAULT_SEED, quick_mode());
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                tables::f(r.accuracy, 4),
                tables::f(r.f1, 4),
                tables::f(r.precision, 4),
                tables::f(r.recall, 4),
            ]
        })
        .collect();
    println!("{}", tables::render(&["model", "accuracy", "F1", "precision", "recall"], &rows));
    let (central, ad3, cad3) = (&result.rows[0], &result.rows[1], &result.rows[2]);
    println!(
        "Measured gains: CAD3 vs AD3: F1 {:+.4}, acc {:+.4}; CAD3 vs centralized: F1 {:+.4}, acc {:+.4}.",
        cad3.f1 - ad3.f1,
        cad3.accuracy - ad3.accuracy,
        cad3.f1 - central.f1,
        cad3.accuracy - central.accuracy,
    );
    println!(
        "Paper gains:    CAD3 vs AD3: F1 +{:.4}, acc +{:.4}; CAD3 vs centralized: +{:.4} both.",
        paper::FIG7_F1_GAIN_OVER_AD3,
        paper::FIG7_ACC_GAIN_OVER_AD3,
        paper::FIG7_GAIN_OVER_CENTRALIZED,
    );
    println!(
        "({} test records, {:.1}% abnormal)",
        result.test_records,
        result.abnormal_fraction * 100.0
    );
    write_json("fig7_detection_quality", &result);
}

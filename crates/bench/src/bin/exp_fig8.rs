//! Fig. 8 — mesoscopic (driver-trip) timeline of a car abnormally slowing:
//! CAD3 detects stably, AD3 fluctuates, centralized is unpredictable.

use cad3_bench::{experiments, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Figure 8 — mesoscopic trip timeline (abnormally slowing driver)");
    let r = experiments::fig8(DEFAULT_SEED);
    println!("driver profile: {} | points along trip: {}\n", r.profile, r.points);
    let show = |name: &str, strip: &str| {
        let display: String = strip.chars().take(100).collect();
        println!("{name:>12}: {display}{}", if strip.len() > 100 { "…" } else { "" });
    };
    show("truth", &r.truth_strip);
    show("centralized", &r.centralized_strip);
    show("ad3", &r.ad3_strip);
    show("cad3", &r.cad3_strip);
    println!("\n('A' = flagged abnormal, '.' = considered normal)\n");
    let rows = vec![
        vec!["centralized".to_owned(), tables::f(r.accuracies[0], 3), r.flips[0].to_string()],
        vec!["ad3".to_owned(), tables::f(r.accuracies[1], 3), r.flips[1].to_string()],
        vec!["cad3".to_owned(), tables::f(r.accuracies[2], 3), r.flips[2].to_string()],
    ];
    println!("{}", tables::render(&["model", "trip accuracy", "prediction flips"], &rows));
    println!("Paper shape: CAD3 stable and accurate; AD3 fluctuates; centralized unpredictable.");
    write_json("fig8_mesoscopic", &r);
}

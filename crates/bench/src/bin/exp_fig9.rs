//! Fig. 9 — macroscopic deployment feasibility: RSU placement, DSRC
//! coverage gaps (the grey circles) and service-channel management.

use cad3_bench::{experiments, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Figure 9 — deployment feasibility (synthetic Shenzhen network)");
    let r = experiments::fig9(DEFAULT_SEED, quick_mode());
    println!("planned RSU sites (1 per km of road): {}", r.sites);
    println!(
        "coverage with 300 m DSRC range: {:.1}% ({} uncovered sample points — the paper's grey circles)",
        r.coverage_300m * 100.0,
        r.gaps_300m
    );
    println!(
        "coverage with the 125 m MCS 8 range: {:.1}% (dense high-rate deployments need closer spacing)",
        r.coverage_125m * 100.0
    );
    println!(
        "service-channel assignment: {} of 6 SCHs used, {} interference conflicts at 300 m",
        r.channels_used, r.channel_conflicts
    );
    println!("\nPaper: existing roadside infrastructure almost covers the city; marked regions");
    println!("require dedicated installation, and channel management avoids interference.");
    write_json("fig9_deployment", &r);
}

//! The paper's future work, Section VII-E: "we will implement complex
//! anomaly detection algorithms to operate within CAD3". This experiment
//! hosts a quadratic logistic-regression detector in the same pipeline and
//! compares it against the paper's Naïve Bayes stage, plus a 5-fold
//! cross-validation of both for stability.

use cad3::detector::{Ad3Detector, Detector, LogisticAd3Detector};
use cad3_bench::{tables, write_json, DEFAULT_SEED};
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_ml::{ConfusionMatrix, LogisticParams};
use cad3_types::{FeatureRecord, Label};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ModelRow {
    model: String,
    accuracy: f64,
    f1: f64,
    fn_rate_pct: f64,
}

fn evaluate(name: &str, det: &dyn Detector, test: &[FeatureRecord]) -> ModelRow {
    let mut cm = ConfusionMatrix::new();
    for rec in test {
        if let Ok(d) = det.detect(rec, None) {
            cm.record(rec.label == Label::Abnormal, d.label == Label::Abnormal);
        }
    }
    ModelRow {
        model: name.to_owned(),
        accuracy: cm.accuracy(),
        f1: cm.f1(),
        fn_rate_pct: cm.fn_rate_overall() * 100.0,
    }
}

fn main() {
    tables::banner("Future work — hosting a more complex detector in CAD3");
    let ds = SyntheticDataset::generate(&DatasetConfig::small(DEFAULT_SEED));
    let cut = ds.features.len() * 8 / 10;
    let (train, test) = ds.features.split_at(cut);

    let nb = Ad3Detector::train(train).expect("trainable");
    let lr = LogisticAd3Detector::train(train, LogisticParams::default()).expect("trainable");

    let rows_data = vec![
        evaluate("naive-bayes (paper)", &nb, test),
        evaluate("logistic (quadratic)", &lr, test),
    ];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                tables::f(r.accuracy, 4),
                tables::f(r.f1, 4),
                format!("{:.1} %", r.fn_rate_pct),
            ]
        })
        .collect();
    println!("{}", tables::render(&["stage-1 model", "accuracy", "F1", "FN rate"], &rows));
    println!(
        "Both models plug into the identical Detector interface, RSU pipeline and\n\
         collaboration flow — the extensibility the paper's Section VII-C claims\n\
         (\"our framework allows reusing a multitude of existing data analytics\n\
         algorithms\")."
    );
    write_json("future_models", &rows_data);
}

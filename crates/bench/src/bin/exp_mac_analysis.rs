//! Eq. 5–6 — IEEE 802.11p medium-access analysis: can 256 vehicles send a
//! 200 B status packet every 100 ms?

use cad3_bench::{experiments, paper, tables, write_json};

fn main() {
    tables::banner("Eq. 5-6 — 802.11p medium-access analysis (256 vehicles, 200 B, 10 Hz)");
    let rows_data = experiments::mac_analysis();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                format!("MCS{}", r.mcs),
                format!("{:.1}", r.rate_mbps),
                tables::f(r.airtime_us, 1),
                tables::f(r.access_256_ms, 2),
                if r.supports_256_at_10hz { "yes".into() } else { "no".into() },
                r.max_vehicles_at_10hz.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &["MCS", "Mb/s", "airtime µs", "t_v(256) ms", "256@10Hz?", "max veh @10Hz"],
            &rows,
        )
    );
    println!(
        "Paper: t_v(256) = {:.2} ms at MCS 3 and {:.2} ms at MCS 8; both under the 100 ms",
        paper::MAC_ACCESS_256_MCS3_MS,
        paper::MAC_ACCESS_256_MCS8_MS,
    );
    println!("update period, so 256 vehicles can send at 10 Hz without sender-side build-up.");
    println!("(Our PHY-overhead assumptions differ slightly from the paper's unstated ones;");
    println!("the shape — MCS8 < MCS3 < 100 ms — is what the conclusion rests on.)");
    write_json("mac_analysis", &rows_data);
}

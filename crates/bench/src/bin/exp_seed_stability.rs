//! Robustness check behind EXPERIMENTS.md: the Fig. 7 / Table IV orderings
//! must hold across corpus seeds, not just at the reported one. Runs the
//! detection comparison over several independently generated corpora and
//! reports per-seed results plus the ordering win-rate.

use cad3::detector::DetectionConfig;
use cad3::scenario::detection_comparison;
use cad3_bench::{quick_mode, tables, write_json, DEFAULT_SEED};
use cad3_data::{DatasetConfig, SyntheticDataset};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SeedRow {
    seed: u64,
    f1_centralized: f64,
    f1_ad3: f64,
    f1_cad3: f64,
    fn_pct_centralized: f64,
    fn_pct_ad3: f64,
    fn_pct_cad3: f64,
}

fn main() {
    tables::banner("Seed stability — Fig. 7 / Table IV orderings across corpora");
    let quick = quick_mode();
    let seeds: Vec<u64> = (0..if quick { 3 } else { 5 }).map(|i| DEFAULT_SEED + i * 1000).collect();
    let mut rows_data = Vec::new();
    for &seed in &seeds {
        let config =
            if quick { DatasetConfig::small(seed) } else { DatasetConfig::paper_89k(seed) };
        let ds = SyntheticDataset::generate(&config);
        let rows = detection_comparison(&ds, &DetectionConfig::default(), seed)
            .expect("corpus is trainable");
        rows_data.push(SeedRow {
            seed,
            f1_centralized: rows[0].f1,
            f1_ad3: rows[1].f1,
            f1_cad3: rows[2].f1,
            fn_pct_centralized: rows[0].fn_rate * 100.0,
            fn_pct_ad3: rows[1].fn_rate * 100.0,
            fn_pct_cad3: rows[2].fn_rate * 100.0,
        });
    }

    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.seed.to_string(),
                tables::f(r.f1_centralized, 4),
                tables::f(r.f1_ad3, 4),
                tables::f(r.f1_cad3, 4),
                format!("{:.1}/{:.1}/{:.1} %", r.fn_pct_centralized, r.fn_pct_ad3, r.fn_pct_cad3),
            ]
        })
        .collect();
    println!("{}", tables::render(&["seed", "F1 central", "F1 ad3", "F1 cad3", "FN c/a/k"], &rows));

    let edge_beats_central = rows_data
        .iter()
        .filter(|r| r.f1_ad3 > r.f1_centralized && r.f1_cad3 > r.f1_centralized)
        .count();
    let cad3_fn_best = rows_data
        .iter()
        .filter(|r| r.fn_pct_cad3 <= r.fn_pct_ad3 + 0.1 && r.fn_pct_cad3 < r.fn_pct_centralized)
        .count();
    let cad3_f1_ge_ad3 = rows_data.iter().filter(|r| r.f1_cad3 + 0.005 >= r.f1_ad3).count();
    println!(
        "\nedge models beat centralized on F1:      {edge_beats_central}/{} seeds",
        rows_data.len()
    );
    println!("CAD3 has the lowest FN rate:              {cad3_fn_best}/{} seeds", rows_data.len());
    println!(
        "CAD3 F1 ≥ AD3 (within noise):             {cad3_f1_ge_ad3}/{} seeds",
        rows_data.len()
    );
    write_json("seed_stability", &rows_data);
}

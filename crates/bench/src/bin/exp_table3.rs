//! Table III — dataset statistics of the synthetic corpus.

use cad3_bench::{experiments, paper, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Table III — dataset statistics (synthetic Shenzhen-like corpus)");
    let rows_data = experiments::table3(DEFAULT_SEED, quick_mode());
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.region.clone(),
                r.cars.to_string(),
                r.trips.to_string(),
                tables::f(r.mean_speed_kmh, 1),
                r.trajectories.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(&["region", "#cars", "#trips", "mean speed", "#trajectories"], &rows)
    );
    let (cars, trips, speed, traj) = paper::TABLE3_SHENZHEN;
    println!(
        "Paper (real corpus): Shenzhen {cars} cars, {trips} trips, mean speed {speed}, {traj} trajectories."
    );
    println!("The synthetic corpus preserves the *structure* (motorway > link > city-wide mean");
    println!("speed ordering; link/motorway record ratios), scaled to a tractable size.");
    write_json("table3_dataset_stats", &rows_data);
}

//! Table IV — TP rate, FN rate and expected potential accidents E(Λ).

use cad3_bench::{experiments, paper, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Table IV — TP/FN rates and potential accidents E(Λ)");
    let result = experiments::table4(DEFAULT_SEED, quick_mode());
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .zip(
            paper::TABLE4_TP_RATES
                .iter()
                .zip(&paper::TABLE4_FN_RATES)
                .zip(&paper::TABLE4_EXPECTED_ACCIDENTS),
        )
        .map(|(r, ((ptp, pfn), pacc))| {
            vec![
                r.model.clone(),
                format!("{:.1} %", r.tp_rate_pct),
                format!("{ptp:.1} %"),
                format!("{:.1} %", r.fn_rate_pct),
                format!("{pfn:.1} %"),
                tables::f(r.expected_accidents, 0),
                tables::f(*pacc, 0),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &["model", "TP rate", "(paper)", "FN rate", "(paper)", "E(Λ)", "(paper)"],
            &rows,
        )
    );
    let [c, a, k] = [
        result.rows[0].expected_accidents,
        result.rows[1].expected_accidents,
        result.rows[2].expected_accidents,
    ];
    println!(
        "Measured ratios: centralized/CAD3 = {:.1}×, AD3/CAD3 = {:.1}× (paper: 24× and 4×).",
        c / k.max(1e-9),
        a / k.max(1e-9),
    );
    println!(
        "({} test records, {:.1}% abnormal; paper corpus: 500k records, {:.0}% abnormal)",
        result.test_records,
        result.abnormal_fraction * 100.0,
        paper::TABLE4_ABNORMAL_FRACTION * 100.0,
    );
    write_json("table4_accidents", &result);
}

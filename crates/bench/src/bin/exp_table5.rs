//! Table V — RSUs required per road type (one RSU per km of used road).

use cad3_bench::{experiments, tables, write_json};

fn main() {
    tables::banner("Table V — RSUs required per road type");
    let rows_data = experiments::table5();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.road_type.clone(),
                format!("{:.1} %", r.density_pct),
                r.roads.to_string(),
                tables::f(r.mean_m, 0),
                r.rsus.to_string(),
            ]
        })
        .collect();
    println!("{}", tables::render(&["road type", "density", "# roads", "mean (m)", "RSUs"], &rows));
    let total: usize = rows_data.iter().map(|r| r.rsus).sum();
    println!("Total RSUs: {total} (paper rows give the same per-type counts, e.g. motorway 1460).");
    write_json("table5_rsu_requirements", &rows_data);
}

//! Table VI — spacing statistics of existing roadside infrastructure
//! (traffic lights, lamp poles) that could host RSUs.

use cad3_bench::{experiments, paper, quick_mode, tables, write_json, DEFAULT_SEED};

fn main() {
    tables::banner("Table VI — roadside infrastructure spacing");
    let rows_data = experiments::table6(DEFAULT_SEED, quick_mode());
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.kind.clone(),
                r.count.to_string(),
                tables::f(r.avg_m, 1),
                tables::f(r.std_m, 1),
                tables::f(r.p75_m, 1),
                tables::f(r.max_m, 1),
                format!("{:.1} %", r.coverage_300m * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        tables::render(
            &["kind", "count", "avg (m)", "std (m)", "75% (m)", "max (m)", "≤300 m"],
            &rows,
        )
    );
    let (c, avg, std, p75, max) = paper::TABLE6_TRAFFIC_LIGHTS;
    println!("Paper, traffic lights: count {c}, avg {avg}, std {std}, 75% {p75}, max {max}.");
    let (_, avg, std, p75, max) = paper::TABLE6_LAMP_POLES;
    println!("Paper, lamp poles:     avg {avg}, std {std}, 75% {p75}, max {max}.");
    println!("Counts scale with the synthetic network size; spacing statistics are calibrated.");
    write_json("table6_infrastructure", &rows_data);
}

//! SLO/health report over the paper's 2-RSU handover scenario: loads the
//! root `slos.toml` contract, rides the virtual-time run with a periodic
//! health tick (an ordinary simulation event, so the run stays
//! deterministic), and prints the final console frame — per-RSU health
//! states, the SLO table and the alert-transition log. Writes the summary
//! to `results/health_report.json` and the raw transitions to
//! `results/artifacts/health.jsonl` (gitignored; CI uploads both).
//!
//! With `--check`, panics (non-zero exit) unless the run ends with every
//! SLO quiet, both RSUs healthy, at least one evaluation tick executed and
//! no interned metric names shed — the CI gate for the health pipeline.

use cad3::detector::{train_all, DetectionConfig};
use cad3::{scenario, Observer, SystemConfig};
use cad3_bench::{console, quick_mode, tables, write_json, write_text, DEFAULT_SEED};
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_obs::health::alerts_jsonl;
use cad3_obs::{HealthMonitor, HealthState, SloContract};
use cad3_types::{RoadType, SimDuration};
use serde::Serialize;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::Path;
use std::rc::Rc;
use std::sync::Arc;

/// One (SLO, member) row of the JSON record, from the final tick.
#[derive(Debug, Clone, Serialize)]
struct SloSummary {
    slo: String,
    member: Option<String>,
    value: Option<f64>,
    budget: f64,
    fast_burn: Option<f64>,
    slow_burn: Option<f64>,
    severity: String,
    firing: bool,
}

/// The JSON record written to `results/health_report.json`.
#[derive(Debug, Clone, Serialize)]
struct HealthReport {
    ticks: u64,
    duration_s: f64,
    alerts_fired: usize,
    alerts_cleared: usize,
    events_shed: u64,
    names_dropped: u64,
    firing_at_end: usize,
    final_states: BTreeMap<String, String>,
    slos: Vec<SloSummary>,
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let quick = quick_mode();
    tables::banner("Health & SLOs — 2-RSU handover under the slos.toml contract");

    cad3_obs::set_enabled(true);

    let slos_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../slos.toml");
    let contract = match SloContract::load(&slos_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("health_report: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "contract: {} SLOs, tick {} ms, escalate {} / recover {} ticks\n",
        contract.slos.len(),
        contract.tick_ns / 1_000_000,
        contract.escalate_ticks,
        contract.recover_ticks,
    );

    let ds = SyntheticDataset::generate(&DatasetConfig::small(DEFAULT_SEED));
    let models = match train_all(&ds.features, &DetectionConfig::default()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("health_report: corpus not trainable: {e}");
            std::process::exit(2);
        }
    };
    let vehicles = if quick { 16 } else { 32 };
    let duration = SimDuration::from_secs(if quick { 4 } else { 8 });

    // The monitor rides the simulation as a periodic observer event: each
    // tick snapshots the registry at the *virtual* instant, so the whole
    // evaluation is a pure function of the seed.
    let monitor = Rc::new(RefCell::new(HealthMonitor::new(contract.clone())));
    monitor.borrow_mut().register_rsu("rsu-motorway");
    monitor.borrow_mut().register_rsu("rsu-motorway-link");
    let hook_monitor = Rc::clone(&monitor);
    let observer = Observer {
        interval: SimDuration::from_nanos(contract.tick_ns),
        hook: Box::new(move |now| hook_monitor.borrow_mut().tick(now.as_nanos())),
    };

    let report = scenario::handover_migration_observed(
        SystemConfig::default(),
        DEFAULT_SEED,
        Arc::new(models.cad3),
        ds.features_of_type(RoadType::Motorway),
        ds.features_of_type(RoadType::MotorwayLink),
        vehicles,
        0.5,
        duration,
        vec![observer],
    );

    let mon = monitor.borrow();
    println!("{}", console::frame(&mon, duration.as_nanos()));
    for r in &report.per_rsu {
        println!("[{}] {}", r.name, r.latency.summary_line());
    }

    let (events, shed) = mon.events();
    let names_dropped = cad3_obs::registry().snapshot().counter(cad3_obs::names::OBS_NAMES_DROPPED);
    let out = HealthReport {
        ticks: mon.ticks(),
        duration_s: duration.as_secs_f64(),
        alerts_fired: events.iter().filter(|e| e.firing).count(),
        alerts_cleared: events.iter().filter(|e| !e.firing).count(),
        events_shed: shed,
        names_dropped,
        firing_at_end: mon.firing().count(),
        final_states: mon
            .states()
            .into_iter()
            .map(|(name, state)| (name, state.as_str().to_owned()))
            .collect(),
        slos: mon
            .rows()
            .iter()
            .map(|r| SloSummary {
                slo: r.slo.clone(),
                member: r.member.clone(),
                value: r.fast_value,
                budget: r.budget,
                fast_burn: r.fast_burn,
                slow_burn: r.slow_burn,
                severity: r.severity.as_str().to_owned(),
                firing: r.firing,
            })
            .collect(),
    };
    write_json("health_report", &out);
    write_text("artifacts/health.jsonl", &alerts_jsonl(events.iter()));

    if check {
        assert!(mon.ticks() > 0, "health monitor never ticked");
        assert_eq!(
            mon.firing().count(),
            0,
            "SLO alerts still firing at end of run: {:?}",
            mon.firing().map(|r| (&r.slo, &r.member)).collect::<Vec<_>>()
        );
        for (name, state) in mon.states() {
            assert_eq!(state, HealthState::Healthy, "RSU `{name}` did not end healthy");
        }
        assert_eq!(names_dropped, 0, "metric-name interner shed names (cardinality cap hit)");
        assert_eq!(shed, 0, "alert log shed transitions");
        println!("[check] OK: {} ticks, both RSUs healthy, no firing SLOs", mon.ticks());
    }
}

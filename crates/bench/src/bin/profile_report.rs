//! Continuous-profiler cost-attribution report over the paper's 2-RSU
//! handover scenario: runs with the always-on stage profiler and 100%
//! trace sampling, prints the per-stage self-time table (CPU nanoseconds
//! attributed to each folded stage path), and links every tail-latency
//! exemplar captured on the `rsu.detect_us` / `rsu.total_us` histograms
//! back to its fully assembled distributed trace.
//!
//! Artifacts: `results/profile_report.json` (the attribution table plus
//! the resolved tail exemplars) and `results/artifacts/profile.folded`
//! (folded-stack lines for standard flamegraph tooling).
//!
//! Flags:
//! - `--virtual` pins the observability clock to virtual mode before any
//!   instrumented work, so both artifacts become pure functions of the
//!   seed (self-times collapse to zero; attribution structure, call
//!   counts and exemplar links stay intact). The CI `profile-e2e` job
//!   runs this twice and byte-compares the JSON.
//! - `--check` panics (non-zero exit) unless every Fig. 6a pipeline stage
//!   is attributed in the profile and every tail exemplar resolves to a
//!   complete assembled trace.

use cad3::detector::{train_all, DetectionConfig};
use cad3::{scenario, SystemConfig};
use cad3_bench::{quick_mode, tables, write_json, write_text, DEFAULT_SEED};
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_obs::{bucket_upper, profile, trace};
use cad3_types::{RoadType, SimDuration};
use serde::Serialize;
use std::sync::Arc;

/// One folded stage path of the attribution table.
#[derive(Debug, Clone, Serialize)]
struct StageRow {
    path: String,
    calls: u64,
    self_ns: u64,
    total_ns: u64,
}

/// One tail-bucket exemplar and the outcome of resolving its trace.
#[derive(Debug, Clone, Serialize)]
struct ExemplarRow {
    histogram: String,
    bucket: usize,
    bucket_upper_us: u64,
    value_us: u64,
    trace_id: String,
    spans: usize,
    complete: bool,
}

/// The JSON record written to `results/profile_report.json`.
#[derive(Debug, Clone, Serialize)]
struct ProfileReport {
    stages: Vec<StageRow>,
    dropped: u64,
    tail_exemplars: Vec<ExemplarRow>,
}

/// The pipeline stages (Fig. 6a decomposition plus the detector sweep)
/// that must show up in the attribution table for the run to count.
const REQUIRED_STAGES: usize = 5;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let virtual_clock = std::env::args().any(|a| a == "--virtual");
    let quick = quick_mode();
    tables::banner("Continuous profiler — 2-RSU handover, stage attribution");

    // Virtual clock first (when requested), before any instrumented work
    // mints a wall timestamp; then the exporter side.
    if virtual_clock {
        cad3_obs::clock::set_virtual_nanos(0);
    }
    cad3_obs::set_enabled(true);
    trace::set_sample_rate(1.0);
    let _ = trace::sink().drain(); // discard any stale events

    let ds = SyntheticDataset::generate(&DatasetConfig::small(DEFAULT_SEED));
    let models = match train_all(&ds.features, &DetectionConfig::default()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("profile_report: corpus not trainable: {e}");
            std::process::exit(2);
        }
    };
    let vehicles = if quick { 16 } else { 32 };
    let duration = SimDuration::from_secs(if quick { 4 } else { 8 });
    let report = scenario::handover_migration(
        SystemConfig::default(),
        DEFAULT_SEED,
        Arc::new(models.cad3),
        ds.features_of_type(RoadType::Motorway),
        ds.features_of_type(RoadType::MotorwayLink),
        vehicles,
        0.5,
        duration,
    );
    trace::set_sample_rate(0.0);

    // Profile side: the folded stage tree with per-path totals.
    let snap = profile::snapshot();
    let stage_rows: Vec<StageRow> = snap
        .stages
        .iter()
        .filter(|(_, t)| t.calls > 0)
        .map(|(path, t)| StageRow {
            path: path.clone(),
            calls: t.calls,
            self_ns: t.self_ns,
            total_ns: t.total_ns,
        })
        .collect();
    let total_self: u64 = stage_rows.iter().map(|r| r.self_ns).sum();

    // Trace side: assemble everything so exemplar trace ids can be
    // resolved to concrete span trees.
    let traces = trace::assemble(&trace::sink().drain());
    let metrics = cad3_obs::registry().snapshot();

    // Tail exemplars: for each exemplar-enabled histogram, keep the
    // exemplars whose bucket reaches past the histogram's p95 and look
    // their trace ids up in the assembled set.
    let mut tail = Vec::new();
    for &name in cad3_obs::names::EXEMPLAR_HISTOGRAMS {
        let Some(h) = metrics.histograms.get(name) else { continue };
        let p95 = h.p95();
        for &(bucket, ex) in metrics.exemplars_of(name) {
            if bucket_upper(bucket) < p95 {
                continue;
            }
            let resolved = traces.iter().find(|t| t.trace_id == ex.trace_id);
            tail.push(ExemplarRow {
                histogram: name.to_owned(),
                bucket,
                bucket_upper_us: bucket_upper(bucket),
                value_us: ex.value,
                trace_id: format!("{:016x}", ex.trace_id),
                spans: resolved.map_or(0, |t| t.spans().len()),
                complete: resolved.is_some_and(|t| t.is_complete()),
            });
        }
    }

    // Self-time table, heaviest stages first (path order breaks ties so
    // the virtual-clock run prints a stable table).
    let mut by_weight: Vec<&StageRow> = stage_rows.iter().collect();
    by_weight.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    println!(
        "{}",
        tables::render(
            &["stage path", "calls", "self ms", "total ms", "self %"],
            &by_weight
                .iter()
                .take(20)
                .map(|r| {
                    vec![
                        r.path.clone(),
                        r.calls.to_string(),
                        tables::f(r.self_ns as f64 / 1e6, 2),
                        tables::f(r.total_ns as f64 / 1e6, 2),
                        if total_self == 0 {
                            "-".to_owned()
                        } else {
                            tables::f(r.self_ns as f64 * 100.0 / total_self as f64, 1)
                        },
                    ]
                })
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "profile: {} stage paths, {} unattributed pushes; exemplars: {} in tail buckets, {} resolve complete",
        stage_rows.len(),
        snap.dropped,
        tail.len(),
        tail.iter().filter(|e| e.complete).count(),
    );
    for e in &tail {
        println!(
            "  {} bucket<=~{} us: value {} us -> trace {} ({} spans{})",
            e.histogram,
            e.bucket_upper_us,
            e.value_us,
            e.trace_id,
            e.spans,
            if e.complete { ", complete" } else { ", INCOMPLETE" },
        );
    }

    let out = ProfileReport { stages: stage_rows, dropped: snap.dropped, tail_exemplars: tail };
    write_json("profile_report", &out);
    write_text("artifacts/profile.folded", &snap.folded());

    // Keep the testbed's own numbers visible so a profiler regression that
    // perturbs the pipeline is obvious next to the attribution view.
    for r in &report.per_rsu {
        println!("[{}] {}", r.name, r.latency.summary_line());
    }

    if check {
        assert_eq!(out.dropped, 0, "profiler dropped pushes (node table full)");
        // Every Fig. 6a pipeline stage must be attributed, including the
        // detector sweep that runs on adopted worker threads.
        for stage in
            ["rsu.micro_batch", "rsu.ingest", "rsu.detect", "rsu.handover.fuse", "ml.nb.sweep"]
        {
            let t = snap.stage_totals(stage);
            assert!(t.calls > 0, "stage {stage} has no attributed calls");
        }
        assert!(
            out.stages.len() >= REQUIRED_STAGES,
            "expected at least {REQUIRED_STAGES} attributed stage paths, got {}",
            out.stages.len()
        );
        assert!(!out.tail_exemplars.is_empty(), "no tail exemplars captured at 100% sampling");
        for e in &out.tail_exemplars {
            assert!(
                e.complete,
                "tail exemplar on {} (trace {}) did not resolve to a complete trace",
                e.histogram, e.trace_id
            );
        }
        println!(
            "[check] OK: {} stage paths attributed, {} tail exemplars all resolve",
            out.stages.len(),
            out.tail_exemplars.len(),
        );
    }
}

//! Distributed-trace report over the paper's 2-RSU handover scenario: runs
//! at 100% head sampling, reassembles the per-record traces end to end
//! (vehicle emit → DSRC → RSU 0 detect → CO-DATA over the wired link →
//! RSU 1 fuse), prints per-stage latency attribution (p50/p95/p99 of each
//! span name) plus a waterfall exemplar, and writes the raw traces to
//! `results/artifacts/traces.jsonl` (gitignored; CI uploads it as a build
//! artifact).
//!
//! With `--check`, panics (non-zero exit) unless at least one *complete*
//! cross-RSU trace was assembled with zero orphaned spans and zero dropped
//! trace events — the CI gate for the tracing pipeline.

use cad3::detector::{train_all, DetectionConfig};
use cad3::{scenario, SystemConfig};
use cad3_bench::{quick_mode, tables, write_json, write_text, DEFAULT_SEED};
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_obs::trace;
use cad3_types::{RoadType, SimDuration};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-span-name attribution row of the report.
#[derive(Debug, Clone, Serialize)]
struct StageRow {
    stage: String,
    samples: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// The JSON record written to `results/trace_report.json`.
#[derive(Debug, Clone, Serialize)]
struct TraceReport {
    traces: usize,
    complete: usize,
    cross_rsu_complete: usize,
    dropped_events: u64,
    end_to_end_p50_us: f64,
    end_to_end_p95_us: f64,
    end_to_end_p99_us: f64,
    stages: Vec<StageRow>,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let quick = quick_mode();
    tables::banner("Distributed tracing — 2-RSU handover, 100% sampling");

    cad3_obs::set_enabled(true);
    trace::set_sample_rate(1.0);
    let _ = trace::sink().drain(); // discard any stale events

    let ds = SyntheticDataset::generate(&DatasetConfig::small(DEFAULT_SEED));
    let models = train_all(&ds.features, &DetectionConfig::default()).expect("corpus is trainable");
    let vehicles = if quick { 16 } else { 32 };
    let duration = SimDuration::from_secs(if quick { 4 } else { 8 });
    let report = scenario::handover_migration(
        SystemConfig::default(),
        DEFAULT_SEED,
        Arc::new(models.cad3),
        ds.features_of_type(RoadType::Motorway),
        ds.features_of_type(RoadType::MotorwayLink),
        vehicles,
        0.5,
        duration,
    );
    trace::set_sample_rate(0.0);

    let events = trace::sink().drain();
    let dropped = trace::sink().dropped();
    let traces = trace::assemble(&events);

    let complete: Vec<_> = traces.iter().filter(|t| t.is_complete()).collect();
    let cross_rsu: Vec<_> = complete
        .iter()
        .filter(|t| {
            let nodes = t.nodes();
            nodes.contains(&0)
                && nodes.contains(&1)
                && t.spans().values().any(|s| s.name == cad3_obs::names::RSU_HANDOVER_FUSE)
        })
        .collect();

    // Per-stage attribution: pool each span name's own-durations over every
    // assembled trace, then take nearest-rank percentiles.
    let mut stages: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for t in &traces {
        for (name, d) in t.stage_durations() {
            stages.entry(name).or_default().push(d);
        }
    }
    let stage_rows: Vec<StageRow> = stages
        .into_iter()
        .map(|(name, mut ds)| {
            ds.sort_unstable();
            StageRow {
                stage: name.to_owned(),
                samples: ds.len(),
                p50_us: us(trace::percentile(&ds, 50.0)),
                p95_us: us(trace::percentile(&ds, 95.0)),
                p99_us: us(trace::percentile(&ds, 99.0)),
            }
        })
        .collect();
    let mut totals: Vec<u64> = complete.iter().map(|t| t.end_to_end_ns()).collect();
    totals.sort_unstable();

    println!(
        "{}",
        tables::render(
            &["stage", "samples", "p50 us", "p95 us", "p99 us"],
            &stage_rows
                .iter()
                .map(|r| {
                    vec![
                        r.stage.clone(),
                        r.samples.to_string(),
                        tables::f(r.p50_us, 1),
                        tables::f(r.p95_us, 1),
                        tables::f(r.p99_us, 1),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "traces: {} assembled, {} complete, {} complete cross-RSU; {} events, {} dropped",
        traces.len(),
        complete.len(),
        cross_rsu.len(),
        events.len(),
        dropped,
    );
    println!(
        "end-to-end: p50 {:.1} us | p95 {:.1} us | p99 {:.1} us (n={})",
        us(trace::percentile(&totals, 50.0)),
        us(trace::percentile(&totals, 95.0)),
        us(trace::percentile(&totals, 99.0)),
        totals.len(),
    );
    // Waterfall exemplar: the cross-RSU trace with the most spans shows the
    // full pipeline shape (Fig. 6a stages as a tree).
    if let Some(exemplar) = cross_rsu.iter().max_by_key(|t| t.spans().len()) {
        println!("\n{}", exemplar.waterfall());
    }

    let out = TraceReport {
        traces: traces.len(),
        complete: complete.len(),
        cross_rsu_complete: cross_rsu.len(),
        dropped_events: dropped,
        end_to_end_p50_us: us(trace::percentile(&totals, 50.0)),
        end_to_end_p95_us: us(trace::percentile(&totals, 95.0)),
        end_to_end_p99_us: us(trace::percentile(&totals, 99.0)),
        stages: stage_rows,
    };
    write_json("trace_report", &out);
    write_text("artifacts/traces.jsonl", &trace::traces_jsonl(&traces));

    // Keep the testbed's own numbers visible so a tracing regression that
    // perturbs timing is obvious next to the trace view.
    for r in &report.per_rsu {
        println!("[{}] {}", r.name, r.latency.summary_line());
    }

    if check {
        assert_eq!(dropped, 0, "trace sink dropped events at 100% sampling");
        assert_eq!(
            complete.len(),
            traces.len(),
            "every assembled trace must be defect-free at 100% sampling"
        );
        assert!(
            !cross_rsu.is_empty(),
            "expected at least one complete cross-RSU trace spanning both RSUs"
        );
        println!("[check] OK: {} complete cross-RSU traces", cross_rsu.len());
    }
}

//! Frame rendering for the health console (`cad3_top`) and the
//! `health_report` end-of-run summary.
//!
//! Everything here is a pure string builder over a
//! [`HealthMonitor`](cad3_obs::HealthMonitor)'s latest tick — no I/O, no
//! clocks — so the two binaries (one live and wall-clock paced, one batch)
//! share exactly the same view and the frame is unit-testable.

use crate::tables;
use cad3_obs::health::SloRow;
use cad3_obs::{AlertEvent, HealthMonitor, HealthState};

/// How many alert transitions the frame's tail shows.
const RECENT_ALERTS: usize = 8;

/// Renders one full console frame: header, per-RSU health states, the SLO
/// table and the most recent alert transitions.
pub fn frame(mon: &HealthMonitor, now_ns: u64) -> String {
    let mut out = String::new();
    let firing = mon.firing().count();
    out.push_str(&format!(
        "cad3 health — t={:.1}s  ticks={}  slos={}  firing={}\n\n",
        now_ns as f64 / 1e9,
        mon.ticks(),
        mon.contract().slos.len(),
        firing,
    ));
    out.push_str(&states_block(mon));
    out.push('\n');
    out.push_str(&slo_table(mon.rows()));
    let (events, shed) = mon.events();
    if !events.is_empty() {
        out.push('\n');
        out.push_str(&alerts_block(events.iter(), shed));
    }
    out
}

/// The per-RSU state lines, name-ordered, e.g. `rsu-motorway  HEALTHY`.
pub fn states_block(mon: &HealthMonitor) -> String {
    let states = mon.states();
    let width = states.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, state) in states {
        let marker = match state {
            HealthState::Healthy => "  ",
            HealthState::Degraded => "! ",
            HealthState::Overloaded => "!!",
        };
        out.push_str(&format!("{marker} {name:<width$}  {}\n", state.as_str().to_uppercase()));
    }
    out
}

/// The SLO table: one row per evaluated (SLO, member) pair of the latest
/// tick, with the fast-window signal value, budget and burn multiples.
pub fn slo_table(rows: &[SloRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.slo.clone(),
                r.member.clone().unwrap_or_else(|| "-".to_owned()),
                r.fast_value.map_or_else(|| "-".to_owned(), |v| tables::f(v, 1)),
                tables::f(r.budget, 0),
                fmt_burn(r.fast_burn),
                fmt_burn(r.slow_burn),
                r.severity.as_str().to_owned(),
                if r.firing { "FIRING".to_owned() } else { "ok".to_owned() },
            ]
        })
        .collect();
    tables::render(
        &["slo", "member", "value", "budget", "fast burn", "slow burn", "severity", "state"],
        &body,
    )
}

/// The tail of the alert-transition log, oldest first, plus a shed notice
/// when the bounded log has dropped events.
pub fn alerts_block<'a>(events: impl Iterator<Item = &'a AlertEvent>, shed: u64) -> String {
    let events: Vec<&AlertEvent> = events.collect();
    let skip = events.len().saturating_sub(RECENT_ALERTS);
    let mut out = String::from("recent alerts:\n");
    if shed > 0 || skip > 0 {
        out.push_str(&format!("  ... {} earlier transition(s) not shown\n", shed + skip as u64));
    }
    for e in &events[skip..] {
        let member = e.member.as_deref().unwrap_or("-");
        out.push_str(&format!(
            "  {:>9.3}s {} {} [{}] ({}) fast x{:.2} slow x{:.2} value {:.1}\n",
            e.t_ns as f64 / 1e9,
            if e.firing { "FIRE " } else { "clear" },
            e.slo,
            member,
            e.severity.as_str(),
            e.fast_burn,
            e.slow_burn,
            e.value,
        ));
    }
    out
}

/// A burn multiple for the table: `-` while the window is empty, `inf`
/// past any zero budget.
fn fmt_burn(burn: Option<f64>) -> String {
    match burn {
        None => "-".to_owned(),
        Some(b) if b.is_infinite() => "inf".to_owned(),
        Some(b) => format!("x{b:.2}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_obs::health::SloRow;
    use cad3_obs::{Severity, SloContract};

    fn rows() -> Vec<SloRow> {
        vec![
            SloRow {
                slo: "a.latency".to_owned(),
                member: None,
                fast_value: Some(120_000.0),
                fast_burn: Some(0.8),
                slow_burn: Some(0.7),
                budget: 150_000.0,
                firing: false,
                severity: Severity::Overloaded,
            },
            SloRow {
                slo: "a.lag".to_owned(),
                member: Some("rsu-x".to_owned()),
                fast_value: None,
                fast_burn: Some(f64::INFINITY),
                slow_burn: None,
                budget: 0.0,
                firing: true,
                severity: Severity::Degraded,
            },
        ]
    }

    #[test]
    fn slo_table_shows_every_row_state() {
        let t = slo_table(&rows());
        assert!(t.contains("a.latency"), "{t}");
        assert!(t.contains("x0.80"), "{t}");
        assert!(t.contains("FIRING"), "{t}");
        assert!(t.contains("inf"), "{t}");
        assert!(t.contains("rsu-x"), "{t}");
    }

    #[test]
    fn frame_includes_states_and_alert_tail() {
        let contract = SloContract::parse(
            "[health]\ntick_ms = 100\n\n[slo.t.x]\nmetric = \"engine.batch.queue_depth\"\n\
             signal = \"value\"\nmax = 1\nfast_window_ms = 100\nslow_window_ms = 100\n\
             for_ticks = 1\nclear_ticks = 1\nseverity = \"degraded\"",
        )
        .unwrap();
        let mut mon = HealthMonitor::new(contract);
        mon.register_rsu("rsu-console-test");
        // Two ticks: windows derive no signal until a baseline sample
        // exists, so the breach registers (and fires) on the second.
        for t in 1..=2u64 {
            mon.observe(
                t * 100_000_000,
                cad3_obs::MetricsSnapshot {
                    counters: Default::default(),
                    gauges: [("engine.batch.queue_depth".to_owned(), 50u64)].into_iter().collect(),
                    histograms: Default::default(),
                },
            );
        }
        let f = frame(&mon, 200_000_000);
        assert!(f.contains("rsu-console-test"), "{f}");
        assert!(f.contains("recent alerts:"), "{f}");
        assert!(f.contains("FIRE"), "{f}");
        assert!(f.contains("ticks=2"), "{f}");
        assert!(f.contains("FIRING"), "{f}");
    }
}

//! Frame rendering for the health console (`cad3_top`) and the
//! `health_report` end-of-run summary.
//!
//! Everything here is a pure string builder over a
//! [`HealthMonitor`](cad3_obs::HealthMonitor)'s latest tick — no I/O, no
//! clocks — so the two binaries (one live and wall-clock paced, one batch)
//! share exactly the same view and the frame is unit-testable.

use crate::tables;
use cad3_obs::health::SloRow;
use cad3_obs::{AlertEvent, HealthMonitor, HealthState, ProfileSnapshot, StackView};

/// How many alert transitions the frame's tail shows.
const RECENT_ALERTS: usize = 8;

/// How many stage paths the profiler panel shows.
const TOP_STAGES: usize = 6;

/// Renders one full console frame: header, per-RSU health states, the SLO
/// table and the most recent alert transitions.
pub fn frame(mon: &HealthMonitor, now_ns: u64) -> String {
    let mut out = String::new();
    let firing = mon.firing().count();
    out.push_str(&format!(
        "cad3 health — t={:.1}s  ticks={}  slos={}  firing={}\n\n",
        now_ns as f64 / 1e9,
        mon.ticks(),
        mon.contract().slos.len(),
        firing,
    ));
    out.push_str(&states_block(mon));
    out.push('\n');
    out.push_str(&slo_table(mon.rows()));
    let (events, shed) = mon.events();
    if !events.is_empty() {
        out.push('\n');
        out.push_str(&alerts_block(events.iter(), shed));
    }
    out
}

/// The per-RSU state lines, name-ordered, e.g. `rsu-motorway  HEALTHY`.
pub fn states_block(mon: &HealthMonitor) -> String {
    let states = mon.states();
    let width = states.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, state) in states {
        let marker = match state {
            HealthState::Healthy => "  ",
            HealthState::Degraded => "! ",
            HealthState::Overloaded => "!!",
        };
        out.push_str(&format!("{marker} {name:<width$}  {}\n", state.as_str().to_uppercase()));
    }
    out
}

/// The SLO table: one row per evaluated (SLO, member) pair of the latest
/// tick, with the fast-window signal value, budget and burn multiples.
pub fn slo_table(rows: &[SloRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.slo.clone(),
                r.member.clone().unwrap_or_else(|| "-".to_owned()),
                r.fast_value.map_or_else(|| "-".to_owned(), |v| tables::f(v, 1)),
                tables::f(r.budget, 0),
                fmt_burn(r.fast_burn),
                fmt_burn(r.slow_burn),
                r.severity.as_str().to_owned(),
                if r.firing { "FIRING".to_owned() } else { "ok".to_owned() },
            ]
        })
        .collect();
    tables::render(
        &["slo", "member", "value", "budget", "fast burn", "slow burn", "severity", "state"],
        &body,
    )
}

/// The tail of the alert-transition log, oldest first, plus a shed notice
/// when the bounded log has dropped events.
pub fn alerts_block<'a>(events: impl Iterator<Item = &'a AlertEvent>, shed: u64) -> String {
    let events: Vec<&AlertEvent> = events.collect();
    let skip = events.len().saturating_sub(RECENT_ALERTS);
    let mut out = String::from("recent alerts:\n");
    if shed > 0 || skip > 0 {
        out.push_str(&format!("  ... {} earlier transition(s) not shown\n", shed + skip as u64));
    }
    for e in &events[skip..] {
        let member = e.member.as_deref().unwrap_or("-");
        out.push_str(&format!(
            "  {:>9.3}s {} {} [{}] ({}) fast x{:.2} slow x{:.2} value {:.1}\n",
            e.t_ns as f64 / 1e9,
            if e.firing { "FIRE " } else { "clear" },
            e.slo,
            member,
            e.severity.as_str(),
            e.fast_burn,
            e.slow_burn,
            e.value,
        ));
    }
    out
}

/// The continuous-profiler panel: the heaviest stage paths by self-time
/// (ties broken by call count, then path, so virtual-clock frames are
/// stable) plus each live thread's currently open stage stack.
pub fn profile_block(snap: &ProfileSnapshot, stacks: &[StackView]) -> String {
    let mut rows: Vec<(&String, &cad3_obs::StageTotals)> =
        snap.stages.iter().filter(|(_, t)| t.calls > 0).collect();
    rows.sort_by(|a, b| {
        b.1.self_ns
            .cmp(&a.1.self_ns)
            .then_with(|| b.1.calls.cmp(&a.1.calls))
            .then_with(|| a.0.cmp(b.0))
    });
    let total_self: u64 = rows.iter().map(|(_, t)| t.self_ns).sum();
    let body: Vec<Vec<String>> = rows
        .iter()
        .take(TOP_STAGES)
        .map(|(path, t)| {
            vec![
                (*path).clone(),
                t.calls.to_string(),
                tables::f(t.self_ns as f64 / 1e6, 2),
                if total_self == 0 {
                    "-".to_owned()
                } else {
                    tables::f(t.self_ns as f64 * 100.0 / total_self as f64, 1)
                },
            ]
        })
        .collect();
    let mut out = String::from("top stages (self-time):\n");
    out.push_str(&tables::render(&["stage path", "calls", "self ms", "self %"], &body));
    if !stacks.is_empty() {
        out.push_str("live stacks:\n");
        for s in stacks {
            let path = if s.stages.is_empty() { "(idle)".to_owned() } else { s.stages.join(";") };
            let truncated = if s.depth > s.stages.len() { " …" } else { "" };
            out.push_str(&format!("  [{}] {path}{truncated}\n", s.class));
        }
    }
    out
}

/// A burn multiple for the table: `-` while the window is empty, `inf`
/// past any zero budget.
fn fmt_burn(burn: Option<f64>) -> String {
    match burn {
        None => "-".to_owned(),
        Some(b) if b.is_infinite() => "inf".to_owned(),
        Some(b) => format!("x{b:.2}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_obs::health::SloRow;
    use cad3_obs::{Severity, SloContract};

    fn rows() -> Vec<SloRow> {
        vec![
            SloRow {
                slo: "a.latency".to_owned(),
                member: None,
                fast_value: Some(120_000.0),
                fast_burn: Some(0.8),
                slow_burn: Some(0.7),
                budget: 150_000.0,
                firing: false,
                severity: Severity::Overloaded,
            },
            SloRow {
                slo: "a.lag".to_owned(),
                member: Some("rsu-x".to_owned()),
                fast_value: None,
                fast_burn: Some(f64::INFINITY),
                slow_burn: None,
                budget: 0.0,
                firing: true,
                severity: Severity::Degraded,
            },
        ]
    }

    #[test]
    fn slo_table_shows_every_row_state() {
        let t = slo_table(&rows());
        assert!(t.contains("a.latency"), "{t}");
        assert!(t.contains("x0.80"), "{t}");
        assert!(t.contains("FIRING"), "{t}");
        assert!(t.contains("inf"), "{t}");
        assert!(t.contains("rsu-x"), "{t}");
    }

    #[test]
    fn frame_includes_states_and_alert_tail() {
        let contract = SloContract::parse(
            "[health]\ntick_ms = 100\n\n[slo.t.x]\nmetric = \"engine.batch.queue_depth\"\n\
             signal = \"value\"\nmax = 1\nfast_window_ms = 100\nslow_window_ms = 100\n\
             for_ticks = 1\nclear_ticks = 1\nseverity = \"degraded\"",
        )
        .unwrap();
        let mut mon = HealthMonitor::new(contract);
        mon.register_rsu("rsu-console-test");
        // Two ticks: windows derive no signal until a baseline sample
        // exists, so the breach registers (and fires) on the second.
        for t in 1..=2u64 {
            mon.observe(
                t * 100_000_000,
                cad3_obs::MetricsSnapshot {
                    counters: Default::default(),
                    gauges: [("engine.batch.queue_depth".to_owned(), 50u64)].into_iter().collect(),
                    histograms: Default::default(),
                    exemplars: Default::default(),
                },
            );
        }
        let f = frame(&mon, 200_000_000);
        assert!(f.contains("rsu-console-test"), "{f}");
        assert!(f.contains("recent alerts:"), "{f}");
        assert!(f.contains("FIRE"), "{f}");
        assert!(f.contains("ticks=2"), "{f}");
        assert!(f.contains("FIRING"), "{f}");
    }

    #[test]
    fn profile_block_ranks_stages_and_shows_live_stacks() {
        let mut snap = ProfileSnapshot::default();
        snap.stages.insert(
            "main;rsu.micro_batch".to_owned(),
            cad3_obs::StageTotals { calls: 10, self_ns: 1_000_000, total_ns: 9_000_000 },
        );
        snap.stages.insert(
            "main;rsu.micro_batch;rsu.detect".to_owned(),
            cad3_obs::StageTotals { calls: 10, self_ns: 8_000_000, total_ns: 8_000_000 },
        );
        snap.stages.insert("main;cold".to_owned(), cad3_obs::StageTotals::default());
        let stacks = vec![
            StackView { class: "main", depth: 2, stages: vec!["rsu.micro_batch", "rsu.detect"] },
            StackView { class: "worker", depth: 0, stages: vec![] },
        ];
        let block = profile_block(&snap, &stacks);
        // The heavier stage leads the table and the zero-call path is gone.
        let detect = block.find("rsu.micro_batch;rsu.detect").expect("detect row");
        assert!(block.contains("top stages"), "{block}");
        assert!(!block.contains("main;cold"), "{block}");
        assert!(block.find("88.9").is_some_and(|p| p > detect), "{block}");
        assert!(block.contains("[main] rsu.micro_batch;rsu.detect"), "{block}");
        assert!(block.contains("[worker] (idle)"), "{block}");
    }

    #[test]
    fn profile_block_handles_a_zero_weight_snapshot() {
        let mut snap = ProfileSnapshot::default();
        snap.stages.insert(
            "main;virtual".to_owned(),
            cad3_obs::StageTotals { calls: 3, self_ns: 0, total_ns: 0 },
        );
        let block = profile_block(&snap, &[]);
        assert!(block.contains("main;virtual"), "{block}");
        assert!(!block.contains("live stacks"), "{block}");
    }
}

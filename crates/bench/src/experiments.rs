//! One function per paper table/figure. Each returns a serialisable result
//! consumed by the `exp_*` binaries.

use cad3::detector::{train_all, DetectionConfig};
use cad3::scenario::{
    self, detection_comparison, find_mesoscopic_trip, mesoscopic_trip, ModelComparison,
};
use cad3::{RsuReport, SystemConfig};
use cad3_data::{
    infrastructure, DatasetConfig, DatasetStats, InfrastructureKind, RoadNetwork,
    RoadNetworkConfig, RoadTypeSpec, RoadsideInfrastructure, SpeedProfile, SyntheticDataset,
};
use cad3_net::{MacModel, Mcs};
use cad3_sim::SimRng;
use cad3_types::{DayOfWeek, DriverProfile, FeatureRecord, RoadType, SimDuration};
use serde::Serialize;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Fig. 2 — speed profiles
// ---------------------------------------------------------------------

/// One Fig. 2 series: hourly mean speeds of a road type on a day class.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Series {
    /// Road type name.
    pub road_type: String,
    /// "weekday" or "weekend".
    pub day_class: String,
    /// Mean speed per hour of day, km/h.
    pub hourly_mean_kmh: Vec<f64>,
}

/// Computes the Fig. 2 speed-profile series.
pub fn fig2() -> Vec<Fig2Series> {
    let mut out = Vec::new();
    for rt in [RoadType::Motorway, RoadType::MotorwayLink] {
        let profile = SpeedProfile::for_road_type(rt);
        for (day, class) in [(DayOfWeek::Wednesday, "weekday"), (DayOfWeek::Saturday, "weekend")] {
            out.push(Fig2Series {
                road_type: rt.to_string(),
                day_class: class.to_owned(),
                hourly_mean_kmh: profile.daily_series(day),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 6a / 6c — single-RSU scaling
// ---------------------------------------------------------------------

/// One row of the scaling sweep (a vehicle count).
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Vehicles attached to the RSU.
    pub vehicles: u32,
    /// Mean transmission latency, ms.
    pub tx_ms: f64,
    /// Mean queuing latency, ms.
    pub queuing_ms: f64,
    /// Mean processing latency, ms.
    pub processing_ms: f64,
    /// Mean dissemination latency, ms.
    pub dissemination_ms: f64,
    /// Mean total end-to-end latency, ms.
    pub total_ms: f64,
    /// Standard error of the total, ms.
    pub total_stderr_ms: f64,
    /// 95th percentile of the total, ms.
    pub total_p95_ms: f64,
    /// Average per-vehicle uplink bandwidth, bits/s.
    pub per_vehicle_bps: f64,
    /// Total uplink bandwidth at the RSU, bits/s.
    pub total_bps: f64,
    /// Warnings that completed the full path during measurement.
    pub samples: usize,
}

/// Result of the Fig. 6a/6c sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingResult {
    /// One row per vehicle count.
    pub rows: Vec<ScalingRow>,
}

/// Runs the Fig. 6a/6c single-RSU sweep over the given vehicle counts.
pub fn scaling_sweep(seed: u64, quick: bool) -> ScalingResult {
    let counts: &[u32] = if quick { &[8, 32, 128] } else { &[8, 16, 32, 64, 128, 256] };
    let duration = SimDuration::from_secs(if quick { 5 } else { 15 });
    let ds = SyntheticDataset::generate(&DatasetConfig::small(seed));
    let models = train_all(&ds.features, &DetectionConfig::default()).expect("corpus is trainable");
    let detector = Arc::new(models.ad3);
    let pool = ds.features_of_type(RoadType::Motorway);

    let rows = counts
        .iter()
        .map(|&n| {
            let report = scenario::single_rsu_scaling(
                SystemConfig::default(),
                seed ^ n as u64,
                detector.clone(),
                pool.clone(),
                n,
                duration,
            );
            let r = &report.per_rsu[0];
            scaling_row(n, r)
        })
        .collect();
    ScalingResult { rows }
}

fn scaling_row(vehicles: u32, r: &RsuReport) -> ScalingRow {
    ScalingRow {
        vehicles,
        tx_ms: r.latency.tx_ms.mean(),
        queuing_ms: r.latency.queuing_ms.mean(),
        processing_ms: r.latency.processing_ms.mean(),
        dissemination_ms: r.latency.dissemination_ms.mean(),
        total_ms: r.latency.total_ms.mean(),
        total_stderr_ms: r.latency.total_ms.std_err(),
        total_p95_ms: r.latency.total_ms.percentile(95.0),
        per_vehicle_bps: r.per_vehicle_bps,
        total_bps: r.uplink_bps,
        samples: r.latency.len(),
    }
}

// ---------------------------------------------------------------------
// Fig. 6b / 6d — multi-RSU deployment
// ---------------------------------------------------------------------

/// One RSU's row in the Fig. 6b/6d deployment.
#[derive(Debug, Clone, Serialize)]
pub struct MultiRsuRow {
    /// RSU name ("Mw Link", "Mw R1", ...).
    pub name: String,
    /// Mean dissemination latency, ms.
    pub dissemination_ms: f64,
    /// Standard error of the dissemination latency, ms.
    pub dissemination_stderr_ms: f64,
    /// Mean total latency, ms.
    pub total_ms: f64,
    /// Uplink (vehicle) bandwidth, bits/s.
    pub uplink_bps: f64,
    /// Inbound `CO-DATA` collaboration bandwidth, bits/s.
    pub co_data_bps: f64,
    /// Total received bandwidth, bits/s.
    pub total_bps: f64,
}

/// Result of the five-RSU experiment.
#[derive(Debug, Clone, Serialize)]
pub struct MultiRsuResult {
    /// One row per RSU; index 0 is the motorway-link RSU.
    pub rows: Vec<MultiRsuRow>,
}

/// Runs the Fig. 6b/6d five-RSU deployment (4 motorway + 1 link,
/// `vehicles_per_rsu` each; the paper uses 128).
pub fn multi_rsu_deployment(seed: u64, quick: bool) -> MultiRsuResult {
    let vehicles = if quick { 32 } else { 128 };
    let duration = SimDuration::from_secs(if quick { 5 } else { 15 });
    let ds = SyntheticDataset::generate(&DatasetConfig::small(seed));
    let models = train_all(&ds.features, &DetectionConfig::default()).expect("corpus is trainable");
    let report = scenario::multi_rsu(
        SystemConfig::default(),
        seed,
        Arc::new(models.cad3),
        ds.features_of_type(RoadType::Motorway),
        ds.features_of_type(RoadType::MotorwayLink),
        vehicles,
        duration,
    );
    let rows = report
        .per_rsu
        .iter()
        .map(|r| MultiRsuRow {
            name: r.name.clone(),
            dissemination_ms: r.latency.dissemination_ms.mean(),
            dissemination_stderr_ms: r.latency.dissemination_ms.std_err(),
            total_ms: r.latency.total_ms.mean(),
            uplink_bps: r.uplink_bps,
            co_data_bps: r.co_data_bps,
            total_bps: r.uplink_bps + r.co_data_bps,
        })
        .collect();
    MultiRsuResult { rows }
}

// ---------------------------------------------------------------------
// Fig. 7 / Table IV — detection quality
// ---------------------------------------------------------------------

/// One model's detection-quality row.
#[derive(Debug, Clone, Serialize)]
pub struct DetectionRow {
    /// Model name.
    pub model: String,
    /// Accuracy.
    pub accuracy: f64,
    /// F1 with abnormal as the positive class.
    pub f1: f64,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// TP rate over all records (Table IV convention), percent.
    pub tp_rate_pct: f64,
    /// FN rate over all records (Table IV convention), percent.
    pub fn_rate_pct: f64,
    /// Raw false negatives.
    pub false_negatives: u64,
    /// Expected potential accidents E(Λ), Eq. 3.
    pub expected_accidents: f64,
}

/// Result of a detection-quality experiment.
#[derive(Debug, Clone, Serialize)]
pub struct DetectionResult {
    /// Records evaluated.
    pub test_records: u64,
    /// Fraction of abnormal records in the corpus.
    pub abnormal_fraction: f64,
    /// Rows in `[centralized, ad3, cad3]` order.
    pub rows: Vec<DetectionRow>,
}

fn detection_row(c: &ModelComparison) -> DetectionRow {
    DetectionRow {
        model: c.model.clone(),
        accuracy: c.accuracy,
        f1: c.f1,
        precision: c.confusion.precision(),
        recall: c.confusion.recall(),
        tp_rate_pct: c.tp_rate * 100.0,
        fn_rate_pct: c.fn_rate * 100.0,
        false_negatives: c.confusion.false_negatives(),
        expected_accidents: c.expected_accidents,
    }
}

/// Runs the Fig. 7 comparison (the ~89 k-record corpus).
pub fn fig7(seed: u64, quick: bool) -> DetectionResult {
    let config = if quick { DatasetConfig::small(seed) } else { DatasetConfig::paper_89k(seed) };
    detection_experiment(&config, seed)
}

/// Runs the Table IV evaluation (the ~500 k-record corpus, 35% abnormal).
pub fn table4(seed: u64, quick: bool) -> DetectionResult {
    let config = if quick { DatasetConfig::small(seed) } else { DatasetConfig::paper_500k(seed) };
    detection_experiment(&config, seed)
}

fn detection_experiment(config: &DatasetConfig, seed: u64) -> DetectionResult {
    let ds = SyntheticDataset::generate(config);
    let rows =
        detection_comparison(&ds, &DetectionConfig::default(), seed).expect("corpus is trainable");
    DetectionResult {
        test_records: rows[0].confusion.total(),
        abnormal_fraction: ds.abnormal_fraction(),
        rows: rows.iter().map(detection_row).collect(),
    }
}

// ---------------------------------------------------------------------
// Fig. 8 — mesoscopic trip timeline
// ---------------------------------------------------------------------

/// The Fig. 8 per-trip timeline.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Result {
    /// Ground-truth driver profile of the analysed trip.
    pub profile: String,
    /// Number of points along the trip.
    pub points: usize,
    /// Per-point verdict string per model, `A` = abnormal, `.` = normal.
    pub truth_strip: String,
    /// Centralized verdicts.
    pub centralized_strip: String,
    /// AD3 verdicts.
    pub ad3_strip: String,
    /// CAD3 verdicts.
    pub cad3_strip: String,
    /// Per-model accuracy over the trip `[centralized, ad3, cad3]`.
    pub accuracies: [f64; 3],
    /// Per-model prediction flips `[centralized, ad3, cad3]`.
    pub flips: [usize; 3],
}

/// Runs the Fig. 8 mesoscopic analysis: an abnormal driver's multi-road
/// trip from the held-out test split, replayed through all three models.
///
/// Like the paper's figure, this is an illustration: among the held-out
/// abnormal multi-road trips, it shows the one where the collaborative
/// model's advantage is most visible (ties broken toward stability).
pub fn fig8(seed: u64) -> Fig8Result {
    let ds = SyntheticDataset::generate(&DatasetConfig::small(seed));
    // 80/20 trip split, training once, then scan the held-out trips.
    let mut rng = cad3_sim::SimRng::seed_from(seed);
    let mut trip_ids: Vec<cad3_types::TripId> = ds.features.iter().map(|f| f.trip).collect();
    trip_ids.dedup();
    rng.shuffle(&mut trip_ids);
    let cut = (trip_ids.len() * 8 / 10).max(1);
    let held_out: std::collections::HashSet<_> = trip_ids[cut..].iter().copied().collect();
    let train: Vec<FeatureRecord> =
        ds.features.iter().filter(|f| !held_out.contains(&f.trip)).copied().collect();
    let models = train_all(&train, &DetectionConfig::default()).expect("corpus is trainable");

    let candidates: Vec<cad3_types::TripId> = ds
        .trips
        .iter()
        .filter(|t| held_out.contains(&t.trip))
        .filter(|t| {
            ds.profiles.get(&t.vehicle).copied().map(DriverProfile::is_abnormal) == Some(true)
        })
        .filter(|t| t.roads.len() >= 2)
        .map(|t| t.trip)
        .collect();
    let result = candidates
        .iter()
        .filter_map(|&t| mesoscopic_trip(&ds, &models, t).ok())
        .filter(|r| (50..900).contains(&r.points.len()))
        .max_by(|a, b| {
            let score = |r: &cad3::scenario::MesoscopicResult| {
                let [_, acc_a, acc_k] = r.accuracies();
                let [_, fl_a, fl_k] = r.flips();
                (acc_k - acc_a) + (fl_a as f64 - fl_k as f64) / r.points.len() as f64
            };
            score(a).partial_cmp(&score(b)).expect("scores are not NaN")
        })
        .or_else(|| {
            let trip = find_mesoscopic_trip(&ds, DriverProfile::Sluggish)?;
            mesoscopic_trip(&ds, &models, trip).ok()
        })
        .expect("corpus contains an evaluable abnormal trip");

    let strip = |f: &dyn Fn(&cad3::scenario::MesoscopicPoint) -> cad3_types::Label| {
        result.points.iter().map(|p| if f(p).is_abnormal() { 'A' } else { '.' }).collect::<String>()
    };
    Fig8Result {
        profile: result.profile.to_string(),
        points: result.points.len(),
        truth_strip: strip(&|p| p.truth),
        centralized_strip: strip(&|p| p.centralized),
        ad3_strip: strip(&|p| p.ad3),
        cad3_strip: strip(&|p| p.cad3),
        accuracies: result.accuracies(),
        flips: result.flips(),
    }
}

// ---------------------------------------------------------------------
// Table III — dataset statistics
// ---------------------------------------------------------------------

/// One Table III row.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Region / road type.
    pub region: String,
    /// Distinct cars.
    pub cars: usize,
    /// Trips.
    pub trips: usize,
    /// Mean speed, km/h.
    pub mean_speed_kmh: f64,
    /// Trajectory records.
    pub trajectories: usize,
}

/// Computes the Table III statistics of the synthetic corpus.
pub fn table3(seed: u64, quick: bool) -> Vec<Table3Row> {
    let config = if quick { DatasetConfig::small(seed) } else { DatasetConfig::paper_500k(seed) };
    let ds = SyntheticDataset::generate(&config);
    DatasetStats::compute(&ds.features, &ds.trips)
        .rows
        .into_iter()
        .map(|r| Table3Row {
            region: r.region,
            cars: r.cars,
            trips: r.trips,
            mean_speed_kmh: r.mean_speed_kmh,
            trajectories: r.trajectories,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table V — RSU requirements
// ---------------------------------------------------------------------

/// One Table V row.
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    /// Road type.
    pub road_type: String,
    /// Traffic-density share, percent.
    pub density_pct: f64,
    /// Number of road trunks.
    pub roads: usize,
    /// Mean trunk length, m.
    pub mean_m: f64,
    /// RSUs required.
    pub rsus: usize,
}

/// Computes the Table V RSU-requirement analysis.
pub fn table5() -> Vec<Table5Row> {
    infrastructure::rsu_requirements(&RoadTypeSpec::paper_table_v())
        .into_iter()
        .map(|r| Table5Row {
            road_type: r.road_type.to_string(),
            density_pct: r.traffic_share * 100.0,
            roads: r.road_count,
            mean_m: r.mean_length_m,
            rsus: r.rsus,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table VI — roadside infrastructure spacing
// ---------------------------------------------------------------------

/// One Table VI row.
#[derive(Debug, Clone, Serialize)]
pub struct Table6Row {
    /// Infrastructure kind.
    pub kind: String,
    /// Installations placed.
    pub count: usize,
    /// Average spacing, m.
    pub avg_m: f64,
    /// Spacing standard deviation, m.
    pub std_m: f64,
    /// 75th-percentile spacing, m.
    pub p75_m: f64,
    /// Maximum spacing, m.
    pub max_m: f64,
    /// Fraction of gaps covered by a 300 m DSRC range.
    pub coverage_300m: f64,
}

/// Places roadside infrastructure on a synthetic Shenzhen network and
/// computes the Table VI spacing statistics.
pub fn table6(seed: u64, quick: bool) -> Vec<Table6Row> {
    let scale = if quick { 0.05 } else { 0.5 };
    let network = RoadNetwork::generate(&RoadNetworkConfig::scaled(seed, scale));
    let mut rng = SimRng::seed_from(seed);
    [InfrastructureKind::TrafficLight, InfrastructureKind::LampPole]
        .into_iter()
        .map(|kind| {
            let infra = RoadsideInfrastructure::place(&network, kind, &mut rng);
            let s = infra.spacing_stats();
            Table6Row {
                kind: match kind {
                    InfrastructureKind::TrafficLight => "traffic light".to_owned(),
                    InfrastructureKind::LampPole => "lamp poles".to_owned(),
                },
                count: s.count,
                avg_m: s.avg_m,
                std_m: s.std_m,
                p75_m: s.p75_m,
                max_m: s.max_m,
                coverage_300m: infra.coverage_within(300.0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 9 — deployment feasibility
// ---------------------------------------------------------------------

/// The Fig. 9 macroscopic feasibility analysis: a city-scale RSU plan,
/// its DSRC coverage, the uncovered "grey circle" gaps and the
/// service-channel assignment avoiding adjacent interference.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Result {
    /// Planned RSU sites (one per km of road).
    pub sites: usize,
    /// Road-coverage fraction with a 300 m DSRC range.
    pub coverage_300m: f64,
    /// Uncovered sample points at 300 m (the grey circles).
    pub gaps_300m: usize,
    /// Road-coverage fraction with the 125 m MCS 8 range.
    pub coverage_125m: f64,
    /// Interference conflicts after channel assignment (300 m radius,
    /// 6 DSRC service channels).
    pub channel_conflicts: usize,
    /// Distinct service channels used.
    pub channels_used: usize,
}

/// Runs the Fig. 9 deployment feasibility analysis.
pub fn fig9(seed: u64, quick: bool) -> Fig9Result {
    use cad3_data::DeploymentPlan;
    use cad3_net::{assign_channels, DSRC_SERVICE_CHANNELS};

    let scale = if quick { 0.02 } else { 0.1 };
    let network = RoadNetwork::generate(&RoadNetworkConfig::scaled(seed, scale));
    let plan = DeploymentPlan::plan(&network, 1_000.0);
    let step = if quick { 200.0 } else { 100.0 };
    let coverage_300m = plan.coverage(&network, 300.0, step);
    let gaps_300m = plan.coverage_gaps(&network, 300.0, step).len();
    let coverage_125m = plan.coverage(&network, 125.0, step);
    let positions: Vec<cad3_types::GeoPoint> = plan.sites.iter().map(|s| s.position).collect();
    let channels = assign_channels(&positions, 300.0, DSRC_SERVICE_CHANNELS);
    let channel_conflicts = channels.conflicts(&positions, 300.0).len();
    let mut used = channels.channels.clone();
    used.sort_unstable();
    used.dedup();
    Fig9Result {
        sites: plan.len(),
        coverage_300m,
        gaps_300m,
        coverage_125m,
        channel_conflicts,
        channels_used: used.len(),
    }
}

// ---------------------------------------------------------------------
// Eq. 5–6 — MAC analysis
// ---------------------------------------------------------------------

/// One MCS row of the medium-access analysis.
#[derive(Debug, Clone, Serialize)]
pub struct MacRow {
    /// MCS index (paper's 1-based numbering).
    pub mcs: u8,
    /// PHY data rate, Mb/s.
    pub rate_mbps: f64,
    /// Airtime of a 200 B frame, µs.
    pub airtime_us: f64,
    /// Eq. 5 access time for 256 vehicles, ms.
    pub access_256_ms: f64,
    /// Whether 256 vehicles at 10 Hz fit within the 100 ms period.
    pub supports_256_at_10hz: bool,
    /// Maximum vehicles serveable at 10 Hz.
    pub max_vehicles_at_10hz: u32,
}

/// Computes the Eq. 5–6 medium-access analysis for all MCSs.
pub fn mac_analysis() -> Vec<MacRow> {
    let mac = MacModel::default();
    let period = SimDuration::from_millis(100);
    Mcs::ALL
        .iter()
        .map(|&mcs| {
            let mut max_v = 0;
            for n in 1..=4096 {
                if mac.supports_update_rate(n, mcs, 200, period) {
                    max_v = n;
                } else {
                    break;
                }
            }
            MacRow {
                mcs: mcs.index(),
                rate_mbps: mcs.data_rate_mbps(),
                airtime_us: mac.frame_airtime(mcs, 200).as_micros_f64(),
                access_256_ms: mac.medium_access_time(256, mcs, 200).as_millis_f64(),
                supports_256_at_10hz: mac.supports_update_rate(256, mcs, 200, period),
                max_vehicles_at_10hz: max_v,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Detection quality as a function of the Eq. 1 fusion weight.
#[derive(Debug, Clone, Serialize)]
pub struct FusionAblationRow {
    /// Weight of the collaborative summary.
    pub weight: f64,
    /// CAD3 F1 at this weight.
    pub f1: f64,
    /// CAD3 FN rate (over all records), percent.
    pub fn_rate_pct: f64,
}

/// Latency as a function of the micro-batch interval.
#[derive(Debug, Clone, Serialize)]
pub struct BatchAblationRow {
    /// Batch interval, ms.
    pub batch_interval_ms: u64,
    /// Mean total latency, ms.
    pub total_ms: f64,
    /// Mean queuing latency, ms.
    pub queuing_ms: f64,
}

/// Latency as a function of the consumer poll interval.
#[derive(Debug, Clone, Serialize)]
pub struct PollAblationRow {
    /// Poll interval, ms.
    pub poll_interval_ms: u64,
    /// Mean dissemination latency, ms.
    pub dissemination_ms: f64,
    /// Mean total latency, ms.
    pub total_ms: f64,
}

/// Detection quality as a function of the summary history depth.
#[derive(Debug, Clone, Serialize)]
pub struct DepthAblationRow {
    /// Previous roads retained in the collaboration summary
    /// (`None` = unbounded).
    pub depth: Option<usize>,
    /// CAD3 F1 at this depth.
    pub f1: f64,
    /// CAD3 FN rate (over all records), percent.
    pub fn_rate_pct: f64,
}

/// Results of the design-choice ablations called out in DESIGN.md.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    /// Eq. 1 fusion-weight sweep.
    pub fusion: Vec<FusionAblationRow>,
    /// Summary-depth sweep.
    pub depth: Vec<DepthAblationRow>,
    /// Micro-batch interval sweep.
    pub batch: Vec<BatchAblationRow>,
    /// Poll interval sweep.
    pub poll: Vec<PollAblationRow>,
}

/// Runs all ablation sweeps.
pub fn ablation(seed: u64, quick: bool) -> AblationResult {
    let ds = SyntheticDataset::generate(&DatasetConfig::small(seed));

    // Fusion-weight sweep.
    let weights: &[f64] = if quick { &[0.0, 0.5, 1.0] } else { &[0.0, 0.25, 0.5, 0.75, 1.0] };
    let fusion = weights
        .iter()
        .map(|&w| {
            let config = DetectionConfig { fusion_weight: w, ..DetectionConfig::default() };
            let rows = detection_comparison(&ds, &config, seed).expect("corpus is trainable");
            let cad3 = &rows[2];
            FusionAblationRow { weight: w, f1: cad3.f1, fn_rate_pct: cad3.fn_rate * 100.0 }
        })
        .collect();

    // Summary-depth sweep.
    let depths: &[Option<usize>] =
        if quick { &[Some(1), None] } else { &[Some(1), Some(2), Some(4), None] };
    let depth = depths
        .iter()
        .map(|&d| {
            let config = DetectionConfig { summary_road_depth: d, ..DetectionConfig::default() };
            let rows = detection_comparison(&ds, &config, seed).expect("corpus is trainable");
            let cad3 = &rows[2];
            DepthAblationRow { depth: d, f1: cad3.f1, fn_rate_pct: cad3.fn_rate * 100.0 }
        })
        .collect();

    // Latency sweeps share a trained detector.
    let models = train_all(&ds.features, &DetectionConfig::default()).expect("corpus is trainable");
    let detector = Arc::new(models.ad3);
    let pool = ds.features_of_type(RoadType::Motorway);
    let duration = SimDuration::from_secs(if quick { 4 } else { 10 });
    let vehicles = 64;

    let intervals: &[u64] = if quick { &[25, 50, 100] } else { &[10, 25, 50, 100, 200] };
    let batch = intervals
        .iter()
        .map(|&ms| {
            let config = SystemConfig {
                batch_interval: SimDuration::from_millis(ms),
                ..SystemConfig::default()
            };
            let report = scenario::single_rsu_scaling(
                config,
                seed ^ ms,
                detector.clone(),
                pool.clone(),
                vehicles,
                duration,
            );
            let r = &report.per_rsu[0];
            BatchAblationRow {
                batch_interval_ms: ms,
                total_ms: r.latency.total_ms.mean(),
                queuing_ms: r.latency.queuing_ms.mean(),
            }
        })
        .collect();

    let polls: &[u64] = if quick { &[5, 10, 50] } else { &[2, 5, 10, 20, 50] };
    let poll = polls
        .iter()
        .map(|&ms| {
            let config = SystemConfig {
                poll_interval: SimDuration::from_millis(ms),
                ..SystemConfig::default()
            };
            let report = scenario::single_rsu_scaling(
                config,
                seed ^ (ms << 8),
                detector.clone(),
                pool.clone(),
                vehicles,
                duration,
            );
            let r = &report.per_rsu[0];
            PollAblationRow {
                poll_interval_ms: ms,
                dissemination_ms: r.latency.dissemination_ms.mean(),
                total_ms: r.latency.total_ms.mean(),
            }
        })
        .collect();

    AblationResult { fusion, depth, batch, poll }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_has_four_series_of_24_points() {
        let series = fig2();
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.hourly_mean_kmh.len(), 24);
        }
        // Motorway weekday dips at rush hour.
        let mw_weekday = &series[0];
        assert!(mw_weekday.hourly_mean_kmh[8] < mw_weekday.hourly_mean_kmh[12]);
    }

    #[test]
    fn mac_analysis_matches_paper_shape() {
        let rows = mac_analysis();
        assert_eq!(rows.len(), 8);
        let mcs3 = &rows[2];
        let mcs8 = &rows[7];
        assert!(mcs3.access_256_ms > mcs8.access_256_ms);
        assert!(mcs3.supports_256_at_10hz, "paper: 256 vehicles at 10 Hz fit at MCS 3");
        assert!(mcs8.supports_256_at_10hz);
        assert!(mcs8.max_vehicles_at_10hz > mcs3.max_vehicles_at_10hz);
        // Within 15% of the paper's 92.62 ms figure.
        assert!((mcs3.access_256_ms - 92.62).abs() / 92.62 < 0.15, "{}", mcs3.access_256_ms);
    }

    #[test]
    fn table5_reproduces_paper_rsu_counts() {
        let rows = table5();
        let motorway = rows.iter().find(|r| r.road_type == "motorway").unwrap();
        assert_eq!(motorway.rsus, 1460);
        let total: usize = rows.iter().map(|r| r.rsus).sum();
        assert!((4500..5500).contains(&total));
    }

    #[test]
    fn quick_scaling_sweep_stays_under_bound() {
        let result = scaling_sweep(7, true);
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert!(row.total_ms < 50.0, "{} vehicles: {} ms", row.vehicles, row.total_ms);
            assert!(row.samples > 10);
        }
        // Per-vehicle bandwidth near the paper's 20 kb/s.
        let last = result.rows.last().unwrap();
        assert!(last.per_vehicle_bps > 15_000.0 && last.per_vehicle_bps < 25_000.0);
    }

    #[test]
    fn quick_fig7_reproduces_ordering() {
        // Seed re-picked for the vendored rand stream (see vendor/README.md).
        let r = fig7(7, true);
        assert_eq!(r.rows.len(), 3);
        assert!(r.rows[2].f1 > r.rows[0].f1, "cad3 beats centralized");
        assert!(r.rows[1].f1 > r.rows[0].f1, "ad3 beats centralized");
        assert!(r.rows[2].fn_rate_pct <= r.rows[1].fn_rate_pct + 0.5);
    }

    #[test]
    fn fig8_produces_aligned_strips() {
        let r = fig8(13);
        assert_eq!(r.truth_strip.len(), r.points);
        assert_eq!(r.cad3_strip.len(), r.points);
        assert!(
            ["aggressive", "sluggish", "erratic"].contains(&r.profile.as_str()),
            "fig8 illustrates an abnormal driver, got {}",
            r.profile
        );
        assert!(r.truth_strip.contains('A'), "abnormal driver has abnormal points");
    }
}

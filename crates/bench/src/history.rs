//! Dated benchmark history (`BENCH_history.jsonl`).
//!
//! The checked-in `BENCH_*.json` baselines hold one before/after pair
//! each — writing a new label overwrites the old number. This module adds
//! the longitudinal view: every `bench_stream` / `bench_detect` run
//! appends one line
//!
//! ```text
//! {"bench":"stream","date":"2026-08-08","quick":true,"metrics":{...}}
//! ```
//!
//! to `BENCH_history.jsonl` at the repo root, so throughput over the PR
//! sequence is a queryable series. The CI bench-smoke job compares a
//! fresh quick run against the most recent entry for the same bench and
//! **warns** above the drift floor — history drift is advisory (machines
//! and entry modes differ across the series); the hard gate stays the
//! per-file baselines.

use crate::json::Json;
use std::path::{Path, PathBuf};

/// Where the history series lives: the repo root, next to the
/// `BENCH_*.json` baselines it complements.
pub fn history_path() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => PathBuf::from(m).join("../../BENCH_history.jsonl"),
        Err(_) => PathBuf::from("BENCH_history.jsonl"),
    }
}

/// The entry date as `YYYY-MM-DD`: `CAD3_BENCH_DATE` when set (CI and
/// tests pin it for reproducible entries), else the system `date +%F`,
/// else `"unknown"`. The workspace `no-wallclock` lint keeps direct clock
/// reads confined to the obs clock, which deliberately has no calendar —
/// a date string is not worth widening that exemption.
pub fn run_date() -> String {
    if let Ok(d) = std::env::var("CAD3_BENCH_DATE") {
        if !d.is_empty() {
            return d;
        }
    }
    std::process::Command::new("date")
        .arg("+%F")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Builds one history entry line (no trailing newline).
pub fn entry(bench: &str, date: &str, quick: bool, metrics: &Json) -> String {
    let doc = Json::Obj(vec![
        ("bench".to_owned(), Json::Str(bench.to_owned())),
        ("date".to_owned(), Json::Str(date.to_owned())),
        ("quick".to_owned(), Json::Bool(quick)),
        ("metrics".to_owned(), metrics.clone()),
    ]);
    doc.to_compact_string()
}

/// Appends one dated entry for `bench` to the history file. Failures are
/// non-fatal and counted on `bench.results.errors`, like
/// [`crate::write_json`] — the history is an artefact, not a gate.
pub fn append(path: &Path, bench: &str, quick: bool, metrics: &Json) {
    let mut text = std::fs::read_to_string(path).unwrap_or_default();
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&entry(bench, &run_date(), quick, metrics));
    text.push('\n');
    if std::fs::write(path, text).is_err() {
        cad3_obs::counter!("bench.results.errors").inc();
    } else {
        cad3_obs::counter!("bench.results.written").inc();
    }
}

/// The most recent entry for `bench`, if any. Unparseable lines are
/// skipped (the file is append-only across toolchain generations).
pub fn last_entry(path: &Path, bench: &str) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .filter_map(|line| Json::parse(line).ok())
        .rfind(|doc| matches!(doc.get("bench"), Some(Json::Str(b)) if b == bench))
}

/// Advisory drift lines comparing `fresh` metrics against the newest
/// history `last` entry: one warning per key whose fresh value falls
/// below `floor × previous` or above `previous ÷ floor`. Empty when
/// everything is within the band (or nothing is comparable).
pub fn drift_warnings(last: &Json, fresh: &Json, keys: &[&str], floor: f64) -> Vec<String> {
    let date = match last.get("date") {
        Some(Json::Str(d)) => d.as_str(),
        _ => "unknown",
    };
    let mut out = Vec::new();
    for &key in keys {
        let base = last.get("metrics").and_then(|m| m.get(key)).and_then(Json::as_f64);
        let now = fresh.get(key).and_then(Json::as_f64);
        let (Some(base), Some(now)) = (base, now) else { continue };
        if base <= 0.0 {
            continue;
        }
        let ratio = now / base;
        if ratio < floor || ratio > 1.0 / floor {
            out.push(format!(
                "history drift: {key} {now:.0} rec/s is x{ratio:.2} of the {date} entry \
                 ({base:.0} rec/s, advisory band x{floor:.2}..x{:.2})",
                1.0 / floor,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(v: f64) -> Json {
        Json::Obj(vec![("k_rps".to_owned(), Json::Num(v))])
    }

    #[test]
    fn append_then_last_entry_round_trips() {
        let dir = std::env::temp_dir().join("cad3_bench_history_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        append(&path, "stream", true, &metrics(100.0));
        append(&path, "detect", false, &metrics(7.0));
        append(&path, "stream", true, &metrics(250.0));
        let last = last_entry(&path, "stream").expect("stream entry");
        assert_eq!(last.get("bench"), Some(&Json::Str("stream".to_owned())));
        assert_eq!(last.get("quick"), Some(&Json::Bool(true)));
        assert_eq!(
            last.get("metrics").and_then(|m| m.get("k_rps")).and_then(Json::as_f64),
            Some(250.0)
        );
        let detect = last_entry(&path, "detect").expect("detect entry");
        assert_eq!(detect.get("quick"), Some(&Json::Bool(false)));
        assert!(last_entry(&path, "absent").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn last_entry_skips_garbage_lines() {
        let dir = std::env::temp_dir().join("cad3_bench_history_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "not json\n{\"bench\":\"x\",\"metrics\":{\"k_rps\":3}}\n").unwrap();
        let last = last_entry(&path, "x").expect("entry past garbage");
        assert_eq!(
            last.get("metrics").and_then(|m| m.get("k_rps")).and_then(Json::as_f64),
            Some(3.0)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drift_warnings_fire_only_outside_the_band() {
        let last = Json::parse(
            r#"{"bench":"s","date":"2026-08-01","quick":true,"metrics":{"k_rps":1000}}"#,
        )
        .unwrap();
        assert!(drift_warnings(&last, &metrics(900.0), &["k_rps"], 0.6).is_empty());
        let slow = drift_warnings(&last, &metrics(500.0), &["k_rps"], 0.6);
        assert_eq!(slow.len(), 1, "{slow:?}");
        assert!(slow[0].contains("2026-08-01"), "{slow:?}");
        let fast = drift_warnings(&last, &metrics(2000.0), &["k_rps"], 0.6);
        assert_eq!(fast.len(), 1, "suspicious speedups also warn: {fast:?}");
        // Missing keys and empty baselines are silently skipped.
        assert!(drift_warnings(&last, &metrics(500.0), &["other"], 0.6).is_empty());
    }

    #[test]
    fn entry_is_one_parseable_line() {
        let line = entry("stream", "2026-08-08", true, &metrics(42.0));
        assert!(!line.contains('\n'));
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("date"), Some(&Json::Str("2026-08-08".to_owned())));
    }

    #[test]
    fn run_date_honours_the_env_pin() {
        // Avoid mutating the process env (other tests run concurrently):
        // only assert the pinned branch when the variable is already set,
        // and otherwise that the fallback produces a plausible date.
        match std::env::var("CAD3_BENCH_DATE") {
            Ok(d) if !d.is_empty() => assert_eq!(run_date(), d),
            _ => {
                let d = run_date();
                assert!(d == "unknown" || d.len() >= 8, "{d}");
            }
        }
    }
}

//! Minimal JSON value model, parser and pretty-printer.
//!
//! The vendored `serde_json` stub only serialises; the bench-smoke gate
//! (`bench_stream --check`) must also *read* `BENCH_stream.json` back to
//! compare a fresh run against the checked-in baseline. This module is the
//! small self-contained reader/writer for that artefact — same from-scratch
//! policy as the xtask lexer/parser, no external dependency.
//!
//! Objects keep insertion order so regenerated artefacts diff cleanly.

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants or a miss.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts (or replaces) an object member, preserving position on
    /// replace. No-op on non-objects.
    pub fn insert(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            match pairs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => pairs.push((key.to_owned(), value)),
            }
        }
    }

    /// Numeric value of a `Num` node.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders with two-space indentation and a stable number format.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders on a single line (JSONL entries), same number format as
    /// [`Self::to_pretty_string`].
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_num(*n)),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_num(*n)),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_string(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Integral values print without a fraction; everything else uses Rust's
/// shortest-roundtrip `f64` formatting.
fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{n:.0}")
    } else {
        format!("{n}")
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", char::from(b), pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chars = match std::str::from_utf8(&bytes[*pos..]) {
        Ok(s) => s.char_indices(),
        Err(e) => return Err(e.to_string()),
    };
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, e)) => return Err(format!("unsupported escape \\{e}")),
                None => return Err("unterminated escape".to_owned()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": 1, "b": {"c": [1, 2.5, -3], "d": "x\ny"}, "e": true, "f": null}"#;
        let doc = Json::parse(text).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("b").and_then(|b| b.get("d")), Some(&Json::Str("x\ny".into())));
        let reparsed = Json::parse(&doc.to_pretty_string()).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn insert_replaces_in_place_and_appends() {
        let mut doc = Json::Obj(vec![("x".into(), Json::Num(1.0))]);
        doc.insert("y", Json::Num(2.0));
        doc.insert("x", Json::Num(3.0));
        match &doc {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0], ("x".into(), Json::Num(3.0)), "replaced in place");
                assert_eq!(pairs[1], ("y".into(), Json::Num(2.0)));
            }
            other => panic!("not an object: {other:?}"),
        }
    }

    #[test]
    fn compact_rendering_is_single_line_and_round_trips() {
        let text = r#"{"a": 1, "b": {"c": [1, 2.5, -3], "d": "x\ny"}, "e": true}"#;
        let doc = Json::parse(text).unwrap();
        let compact = doc.to_compact_string();
        assert!(!compact.contains('\n') || compact.contains("\\n"), "{compact}");
        assert_eq!(compact.matches('\n').count(), 0, "{compact}");
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        assert_eq!(Json::Obj(vec![]).to_compact_string(), "{}");
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(1200.0).to_pretty_string(), "1200");
        assert_eq!(Json::Num(0.25).to_pretty_string(), "0.25");
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[1, ").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let text = doc.to_pretty_string();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }
}

//! Experiment harness regenerating every table and figure of the CAD3
//! paper's evaluation (Section VI) on the reproduction's substrates.
//!
//! Each `exp_*` binary in `src/bin/` wraps one function from
//! [`experiments`], prints a human-readable table with the paper's
//! reported values alongside the measured ones, and writes a JSON record
//! under `results/`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p cad3-bench --release --bin exp_all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod console;
pub mod experiments;
pub mod history;
pub mod json;
pub mod paper;
pub mod tables;

use serde::Serialize;
use std::path::PathBuf;

/// Default seed shared by the experiment binaries.
pub const DEFAULT_SEED: u64 = 42;

/// Whether quick mode is requested (smaller corpora / shorter runs), via
/// the `CAD3_QUICK` environment variable.
pub fn quick_mode() -> bool {
    std::env::var("CAD3_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// Writes an experiment's JSON record to `results/<name>.json`, creating
/// the directory if needed. Prints the path on success; failures are
/// non-fatal (the stdout table is the primary artefact) and are counted on
/// `bench.results.errors` instead of written to stderr — library code keeps
/// quiet per the workspace `no-bare-print` lint, and any metrics export
/// surfaces the failure count.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        cad3_obs::counter!("bench.results.errors").inc();
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value).map(|json| std::fs::write(&path, json)) {
        Ok(Ok(())) => {
            cad3_obs::counter!("bench.results.written").inc();
            println!("\n[results written to {}]", path.display());
        }
        Ok(Err(_)) | Err(_) => cad3_obs::counter!("bench.results.errors").inc(),
    }
}

/// Captures the current [`cad3_obs`] metrics snapshot and writes it to
/// `results/<name>.prom` in the Prometheus text exposition format.
///
/// Returns the rendered snapshot so callers can also assert on it (the
/// Fig. 6a binary checks the `rsu.*_us` histograms reproduce the stage
/// decomposition). Returns `None` when writing failed (counted on
/// `bench.results.errors`).
pub fn write_metrics(name: &str) -> Option<cad3_obs::MetricsSnapshot> {
    let snapshot = cad3_obs::registry().snapshot();
    let text = cad3_obs::export::prometheus_text(&snapshot);
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        cad3_obs::counter!("bench.results.errors").inc();
        return None;
    }
    let path = dir.join(format!("{name}.prom"));
    if std::fs::write(&path, text).is_err() {
        cad3_obs::counter!("bench.results.errors").inc();
        return None;
    }
    cad3_obs::counter!("bench.results.written").inc();
    println!("[metrics written to {}]", path.display());
    Some(snapshot)
}

/// Writes a raw text artefact (e.g. a JSONL trace dump) to
/// `results/<file_name>`. The name may carry subdirectories
/// (`artifacts/traces.jsonl`), which are created as needed. Failures are
/// non-fatal and counted on `bench.results.errors`, like [`write_json`].
pub fn write_text(file_name: &str, text: &str) {
    let dir = results_dir();
    let path = dir.join(file_name);
    if path.parent().is_none_or(|p| std::fs::create_dir_all(p).is_err()) {
        cad3_obs::counter!("bench.results.errors").inc();
        return;
    }
    if std::fs::write(&path, text).is_err() {
        cad3_obs::counter!("bench.results.errors").inc();
        return;
    }
    cad3_obs::counter!("bench.results.written").inc();
    println!("[artefact written to {}]", path.display());
}

fn results_dir() -> PathBuf {
    // Prefer the workspace root (two levels up from the bench crate) when
    // running via cargo; fall back to the current directory.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok();
    match manifest {
        Some(m) => PathBuf::from(m).join("../../results"),
        None => PathBuf::from("results"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_reads_env() {
        // Not set in the test environment by default.
        if std::env::var("CAD3_QUICK").is_err() {
            assert!(!quick_mode());
        }
    }

    #[test]
    fn write_json_smoke() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        write_json("selftest", &T { x: 1 });
        let path = results_dir().join("selftest.json");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"x\": 1"));
    }
}

//! Experiment harness regenerating every table and figure of the CAD3
//! paper's evaluation (Section VI) on the reproduction's substrates.
//!
//! Each `exp_*` binary in `src/bin/` wraps one function from
//! [`experiments`], prints a human-readable table with the paper's
//! reported values alongside the measured ones, and writes a JSON record
//! under `results/`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p cad3-bench --release --bin exp_all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod paper;
pub mod tables;

use serde::Serialize;
use std::path::PathBuf;

/// Default seed shared by the experiment binaries.
pub const DEFAULT_SEED: u64 = 42;

/// Whether quick mode is requested (smaller corpora / shorter runs), via
/// the `CAD3_QUICK` environment variable.
pub fn quick_mode() -> bool {
    std::env::var("CAD3_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// Writes an experiment's JSON record to `results/<name>.json`, creating
/// the directory if needed. Prints the path on success; failures are
/// reported but non-fatal (the stdout table is the primary artefact).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => println!("\n[results written to {}]", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
    }
}

fn results_dir() -> PathBuf {
    // Prefer the workspace root (two levels up from the bench crate) when
    // running via cargo; fall back to the current directory.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok();
    match manifest {
        Some(m) => PathBuf::from(m).join("../../results"),
        None => PathBuf::from("results"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_reads_env() {
        // Not set in the test environment by default.
        if std::env::var("CAD3_QUICK").is_err() {
            assert!(!quick_mode());
        }
    }

    #[test]
    fn write_json_smoke() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        write_json("selftest", &T { x: 1 });
        let path = results_dir().join("selftest.json");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"x\": 1"));
    }
}

//! The values the paper reports, kept in one place so every experiment can
//! print paper-vs-measured comparisons.

/// Fig. 6a: total end-to-end latency at 8 vehicles, ms.
pub const FIG6A_TOTAL_AT_8: f64 = 39.7;
/// Fig. 6a: total end-to-end latency at 256 vehicles, ms.
pub const FIG6A_TOTAL_AT_256: f64 = 48.1;
/// Fig. 6a: processing time at 8 vehicles, ms.
pub const FIG6A_PROC_AT_8: f64 = 7.3;
/// Fig. 6a: processing time at 256 vehicles, ms.
pub const FIG6A_PROC_AT_256: f64 = 11.7;
/// The headline real-time bound, ms.
pub const LATENCY_BOUND_MS: f64 = 50.0;

/// Fig. 6b: mean dissemination latency, ms (range [17.2, 17.3]).
pub const FIG6B_DISSEMINATION_MS: f64 = 17.25;
/// Fig. 6b: dissemination standard error, ms.
pub const FIG6B_DISSEMINATION_STDERR_MS: f64 = 4.4;

/// Fig. 6c: average per-vehicle bandwidth, bits/s.
pub const FIG6C_PER_VEHICLE_BPS: f64 = 20_000.0;
/// Fig. 6c: total bandwidth at 256 vehicles, bits/s (~5 Mb/s).
pub const FIG6C_TOTAL_AT_256_BPS: f64 = 5_000_000.0;
/// DSRC channel capacity, bits/s.
pub const DSRC_CAPACITY_BPS: f64 = 27_000_000.0;

/// Fig. 7: F1 improvement of CAD3 over AD3.
pub const FIG7_F1_GAIN_OVER_AD3: f64 = 0.0352;
/// Fig. 7: accuracy improvement of CAD3 over AD3.
pub const FIG7_ACC_GAIN_OVER_AD3: f64 = 0.0322;
/// Fig. 7: F1 and accuracy improvement of CAD3 over centralized.
pub const FIG7_GAIN_OVER_CENTRALIZED: f64 = 0.0644;

/// Table IV: TP rates over all records (centralized, AD3, CAD3), percent.
pub const TABLE4_TP_RATES: [f64; 3] = [49.2, 52.3, 57.9];
/// Table IV: FN rates over all records (centralized, AD3, CAD3), percent.
pub const TABLE4_FN_RATES: [f64; 3] = [19.9, 11.8, 6.2];
/// Table IV: expected potential accidents E(Λ) on 500 k records
/// (centralized, AD3, CAD3).
pub const TABLE4_EXPECTED_ACCIDENTS: [f64; 3] = [9004.0, 1475.0, 371.0];
/// Table IV: abnormal fraction of the 500 k-record corpus.
pub const TABLE4_ABNORMAL_FRACTION: f64 = 0.35;

/// Eq. 5–6: medium access time for 256 vehicles at MCS 3, ms.
pub const MAC_ACCESS_256_MCS3_MS: f64 = 92.62;
/// Eq. 5–6: medium access time for 256 vehicles at MCS 8, ms.
pub const MAC_ACCESS_256_MCS8_MS: f64 = 54.28;

/// Table VI row for traffic lights: (count, avg m, std m, p75 m, max m).
pub const TABLE6_TRAFFIC_LIGHTS: (usize, f64, f64, f64, f64) = (3_278, 244.57, 299.7, 444.2, 999.5);
/// Table VI row for lamp poles: (count, avg m, std m, p75 m, max m).
pub const TABLE6_LAMP_POLES: (usize, f64, f64, f64, f64) = (116_000, 71.9, 82.8, 100.0, 520.0);

/// Table III: Shenzhen row (cars, trips, mean speed, trajectories).
pub const TABLE3_SHENZHEN: (usize, usize, f64, usize) = (3_306, 214_718, 23.7, 17_926_810);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_ratios_match_the_narrative() {
        // "4 times less than its edge counterpart, and 24 times less than
        // the centralized model".
        let [central, ad3, cad3] = TABLE4_EXPECTED_ACCIDENTS;
        assert!((central / cad3 - 24.0).abs() < 0.3);
        assert!((ad3 / cad3 - 4.0).abs() < 0.03);
    }

    #[test]
    fn fig6a_is_under_the_bound() {
        let worst = FIG6A_TOTAL_AT_256;
        assert!(worst < LATENCY_BOUND_MS, "paper constants are self-consistent: {worst}");
    }
}

//! Minimal fixed-width table formatting for the experiment binaries.

/// Renders a table with a header row and aligned columns.
///
/// # Example
///
/// ```
/// use cad3_bench::tables::render;
/// let out = render(
///     &["model", "f1"],
///     &[vec!["ad3".into(), "0.81".into()], vec!["cad3".into(), "0.84".into()]],
/// );
/// assert!(out.contains("model"));
/// assert!(out.contains("cad3"));
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>w$}", w = w));
        }
        out.push('\n');
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

/// Formats a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a bits-per-second value with an adaptive unit.
pub fn bps(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.2} Mb/s", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1} kb/s", x / 1e3)
    } else {
        format!("{x:.0} b/s")
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let out = render(
            &["a", "long-header"],
            &[vec!["x".into(), "1".into()], vec!["yyyy".into(), "22".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        render(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn bps_units() {
        assert_eq!(bps(5_000_000.0), "5.00 Mb/s");
        assert_eq!(bps(20_000.0), "20.0 kb/s");
        assert_eq!(bps(500.0), "500 b/s");
    }

    #[test]
    fn float_format() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}

//! The paper's potential-accident model (Section IV-E).
//!
//! Nilsson's power model says the number of injury accidents scales with
//! the square of the speed ratio (Eq. 2). The paper applies it per record:
//! a speed deviation δ close to 1 is a severe violation, and the expected
//! number of potential accidents caused by a detector is the dot product of
//! its false-negative indicator vector with the δ vector (Eq. 3) — misses
//! on severe deviations are what get people hurt.

use cad3_types::{FeatureRecord, Label};

/// Nilsson's Eq. 2: accidents after changing road speed from `v1` to `v2`,
/// relative to `a1` accidents before.
///
/// # Panics
///
/// Panics if either speed is not strictly positive.
pub fn nilsson_accidents(a1: f64, v1_kmh: f64, v2_kmh: f64) -> f64 {
    assert!(v1_kmh > 0.0 && v2_kmh > 0.0, "speeds must be positive");
    a1 * (v2_kmh / v1_kmh).powi(2)
}

/// The paper's δ: how far an instantaneous speed deviates from the road's
/// normal speed, measured as `1 − (ratio)²` with the speeding/slowing
/// asymmetry of Section IV-E. δ → 1 means a severe violation; driving at
/// exactly the road speed gives δ = 0.
///
/// Degenerate road speeds (≤ 0) yield δ = 0.
pub fn speed_deviation_delta(speed_kmh: f64, road_speed_kmh: f64) -> f64 {
    if road_speed_kmh <= 0.0 {
        return 0.0;
    }
    let v = speed_kmh.max(0.0);
    let vr = road_speed_kmh;
    let ratio = if v > vr {
        // Speeding: potential accidents scale with (v / vr)²; proximity of
        // the safe-over-actual ratio to 0.
        vr / v
    } else {
        // Slowing: the hazard mirrors to the speed surplus of others,
        // vr / (vr + (vr − v)).
        vr / (vr + (vr - v))
    };
    (1.0 - ratio.powi(2)).clamp(0.0, 1.0)
}

/// One evaluated record: ground truth, the model's verdict and the speed
/// context needed for δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluatedRecord {
    /// Ground-truth label.
    pub truth: Label,
    /// Model prediction.
    pub predicted: Label,
    /// Instantaneous speed, km/h.
    pub speed_kmh: f64,
    /// Road normal speed, km/h.
    pub road_speed_kmh: f64,
}

impl EvaluatedRecord {
    /// Builds an evaluated record from a dataset record and a prediction.
    pub fn new(rec: &FeatureRecord, predicted: Label) -> Self {
        EvaluatedRecord {
            truth: rec.label,
            predicted,
            speed_kmh: rec.speed_kmh,
            road_speed_kmh: rec.road_speed_kmh,
        }
    }

    /// Whether the record is a false negative (abnormal but not detected).
    pub fn is_false_negative(&self) -> bool {
        self.truth == Label::Abnormal && self.predicted == Label::Normal
    }
}

/// The paper's Eq. 3: `E(Λ) = Σ v⃗_FN · v⃗_δ` — expected potential accidents
/// caused by undetected (false-negative) speed violations.
pub fn expected_potential_accidents<'a>(
    records: impl IntoIterator<Item = &'a EvaluatedRecord>,
) -> f64 {
    records
        .into_iter()
        .filter(|r| r.is_false_negative())
        .map(|r| speed_deviation_delta(r.speed_kmh, r.road_speed_kmh))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nilsson_square_law() {
        // Doubling speed quadruples accidents.
        assert!((nilsson_accidents(10.0, 50.0, 100.0) - 40.0).abs() < 1e-12);
        // Halving speed quarters them.
        assert!((nilsson_accidents(10.0, 100.0, 50.0) - 2.5).abs() < 1e-12);
        // No change, no effect.
        assert_eq!(nilsson_accidents(7.0, 80.0, 80.0), 7.0);
    }

    #[test]
    fn delta_zero_at_road_speed() {
        assert_eq!(speed_deviation_delta(100.0, 100.0), 0.0);
    }

    #[test]
    fn delta_grows_with_speeding_severity() {
        let mild = speed_deviation_delta(110.0, 100.0);
        let severe = speed_deviation_delta(200.0, 100.0);
        assert!(mild > 0.0 && severe > mild);
        assert!(severe < 1.0);
        // v = 2·vr ⇒ ratio ½ ⇒ δ = 0.75.
        assert!((speed_deviation_delta(200.0, 100.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_grows_with_slowing_severity() {
        let mild = speed_deviation_delta(90.0, 100.0);
        let severe = speed_deviation_delta(10.0, 100.0);
        assert!(mild > 0.0 && severe > mild);
        // v = 0 ⇒ ratio vr/(2vr) = ½ ⇒ δ = 0.75, the slowing cap.
        assert!((speed_deviation_delta(0.0, 100.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_handles_degenerate_road_speed() {
        assert_eq!(speed_deviation_delta(50.0, 0.0), 0.0);
        assert_eq!(speed_deviation_delta(50.0, -5.0), 0.0);
    }

    fn rec(truth: Label, predicted: Label, speed: f64) -> EvaluatedRecord {
        EvaluatedRecord { truth, predicted, speed_kmh: speed, road_speed_kmh: 100.0 }
    }

    #[test]
    fn only_false_negatives_count() {
        let records = [
            rec(Label::Abnormal, Label::Normal, 200.0), // FN, δ = 0.75
            rec(Label::Abnormal, Label::Abnormal, 200.0), // detected
            rec(Label::Normal, Label::Normal, 100.0),   // fine
            rec(Label::Normal, Label::Abnormal, 100.0), // false alarm: annoying, not counted
        ];
        let e = expected_potential_accidents(records.iter());
        assert!((e - 0.75).abs() < 1e-12);
    }

    #[test]
    fn severe_misses_dominate() {
        // A detector missing severe violations accrues more expected
        // accidents than one missing only mild ones — the paper's reason
        // that centralized (context-blind) models are 24× worse.
        let severe_misses: Vec<EvaluatedRecord> =
            (0..10).map(|_| rec(Label::Abnormal, Label::Normal, 250.0)).collect();
        let mild_misses: Vec<EvaluatedRecord> =
            (0..10).map(|_| rec(Label::Abnormal, Label::Normal, 112.0)).collect();
        let severe = expected_potential_accidents(severe_misses.iter());
        let mild = expected_potential_accidents(mild_misses.iter());
        assert!(severe > 4.0 * mild, "severe {severe} vs mild {mild}");
    }

    #[test]
    fn is_false_negative_logic() {
        assert!(rec(Label::Abnormal, Label::Normal, 1.0).is_false_negative());
        assert!(!rec(Label::Abnormal, Label::Abnormal, 1.0).is_false_negative());
        assert!(!rec(Label::Normal, Label::Normal, 1.0).is_false_negative());
        assert!(!rec(Label::Normal, Label::Abnormal, 1.0).is_false_negative());
    }

    #[test]
    #[should_panic(expected = "speeds must be positive")]
    fn nilsson_rejects_zero_speed() {
        nilsson_accidents(1.0, 0.0, 10.0);
    }
}

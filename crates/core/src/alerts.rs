use cad3_types::{SimDuration, SimTime, VehicleId, WarningMessage};
use std::collections::HashMap;

/// In-cabin alert throttling: a driver should be told *once* that a nearby
/// vehicle is dangerous, not at 10 Hz for as long as it stays dangerous.
///
/// The paper stresses "less disturbance to other drivers with false
/// warnings"; this keeps even true warnings humane by suppressing repeats
/// about the same offending vehicle within a hold-off window.
///
/// # Example
///
/// ```
/// use cad3::AlertThrottle;
/// use cad3_types::{RoadId, SimDuration, SimTime, VehicleId, WarningKind, WarningMessage};
///
/// let mut throttle = AlertThrottle::new(SimDuration::from_secs(5));
/// let warning = WarningMessage {
///     vehicle: VehicleId(9),
///     road: RoadId(1),
///     kind: WarningKind::Speeding,
///     probability: 0.9,
///     source_sent_at: SimTime::ZERO,
///     detected_at: SimTime::ZERO,
///     source_seq: 1,
/// };
/// assert!(throttle.should_alert(&warning, SimTime::ZERO));
/// assert!(!throttle.should_alert(&warning, SimTime::from_secs(2)));
/// assert!(throttle.should_alert(&warning, SimTime::from_secs(6)));
/// ```
#[derive(Debug, Clone)]
pub struct AlertThrottle {
    hold_off: SimDuration,
    last_alert: HashMap<VehicleId, SimTime>,
}

impl AlertThrottle {
    /// Creates a throttle that repeats an alert about the same vehicle at
    /// most once per `hold_off`.
    ///
    /// # Panics
    ///
    /// Panics if `hold_off` is zero.
    pub fn new(hold_off: SimDuration) -> Self {
        assert!(hold_off > SimDuration::ZERO, "hold-off must be positive");
        AlertThrottle { hold_off, last_alert: HashMap::new() }
    }

    /// Whether this warning should reach the driver at `now`; records the
    /// alert when it does.
    pub fn should_alert(&mut self, warning: &WarningMessage, now: SimTime) -> bool {
        match self.last_alert.get(&warning.vehicle) {
            Some(&t) if now.saturating_since(t) < self.hold_off && now >= t => {
                cad3_obs::counter!("alerts.suppressed").inc();
                false
            }
            _ => {
                self.last_alert.insert(warning.vehicle, now);
                cad3_obs::counter!("alerts.sent").inc();
                true
            }
        }
    }

    /// Forgets vehicles not alerted on since `horizon` (periodic cleanup).
    pub fn evict_before(&mut self, horizon: SimTime) {
        self.last_alert.retain(|_, t| *t >= horizon);
    }

    /// Number of vehicles currently tracked.
    pub fn tracked(&self) -> usize {
        self.last_alert.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_types::{RoadId, WarningKind};

    fn warning(vehicle: u64) -> WarningMessage {
        WarningMessage {
            vehicle: VehicleId(vehicle),
            road: RoadId(1),
            kind: WarningKind::Speeding,
            probability: 0.9,
            source_sent_at: SimTime::ZERO,
            detected_at: SimTime::ZERO,
            source_seq: 1,
        }
    }

    #[test]
    fn repeats_are_suppressed_within_hold_off() {
        let mut t = AlertThrottle::new(SimDuration::from_secs(10));
        assert!(t.should_alert(&warning(1), SimTime::from_secs(0)));
        for s in 1..10u64 {
            assert!(!t.should_alert(&warning(1), SimTime::from_secs(s)), "at {s}s");
        }
        assert!(t.should_alert(&warning(1), SimTime::from_secs(10)));
    }

    #[test]
    fn different_vehicles_alert_independently() {
        let mut t = AlertThrottle::new(SimDuration::from_secs(10));
        assert!(t.should_alert(&warning(1), SimTime::from_secs(0)));
        assert!(t.should_alert(&warning(2), SimTime::from_secs(1)));
        assert_eq!(t.tracked(), 2);
    }

    #[test]
    fn a_10hz_stream_collapses_to_one_alert_per_window() {
        let mut t = AlertThrottle::new(SimDuration::from_secs(5));
        let mut alerts = 0;
        for tick in 0..100u64 {
            if t.should_alert(&warning(7), SimTime::from_millis(tick * 100)) {
                alerts += 1;
            }
        }
        assert_eq!(alerts, 2, "10 s of 10 Hz warnings -> one alert per 5 s window");
    }

    #[test]
    fn eviction_frees_state() {
        let mut t = AlertThrottle::new(SimDuration::from_secs(1));
        t.should_alert(&warning(1), SimTime::from_secs(0));
        t.should_alert(&warning(2), SimTime::from_secs(100));
        t.evict_before(SimTime::from_secs(50));
        assert_eq!(t.tracked(), 1);
    }

    #[test]
    #[should_panic(expected = "hold-off must be positive")]
    fn zero_hold_off_panics() {
        AlertThrottle::new(SimDuration::ZERO);
    }
}

use cad3_types::{RoadId, RsuId, SimTime, SummaryMessage, TraceLineage, VehicleId};
use std::collections::BTreeMap;

/// Converts a live trace context into the wire-portable lineage a
/// `CO-DATA` summary carries across a handover.
pub fn lineage_of(ctx: &cad3_obs::TraceContext) -> TraceLineage {
    TraceLineage { trace_id: ctx.trace_id(), parent_span: ctx.parent_span(), hop: ctx.hop() }
}

/// Reconstitutes a trace context from a received lineage (always sampled:
/// lineage is only forwarded for records the head sampler elected).
pub fn lineage_context(lineage: &TraceLineage) -> cad3_obs::TraceContext {
    cad3_obs::TraceContext::from_parts(lineage.trace_id, lineage.parent_span, lineage.hop)
}

/// The collaborative context available for one vehicle: the aggregate of
/// its prediction probabilities on previously traversed roads — the
/// `P̄_prevs` term of the paper's Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleSummary {
    /// Mean predicted abnormal-probability over previous roads.
    pub mean_probability: f64,
    /// Number of predictions aggregated.
    pub count: u32,
    /// Last predicted class on the previous road (1 = normal, 0 = abnormal).
    pub last_class: u8,
}

impl VehicleSummary {
    /// Builds a summary from a received `CO-DATA` message.
    pub fn from_message(msg: &SummaryMessage) -> Self {
        VehicleSummary {
            mean_probability: msg.mean_probability,
            count: msg.count,
            last_class: msg.last_class,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct VehicleState {
    current_road: Option<RoadId>,
    road_sum: f64,
    road_count: u32,
    road_last_class: u8,
    /// Per-completed-road `(sum, count)` aggregates, oldest first; bounded
    /// by the tracker's road depth.
    history: std::collections::VecDeque<(f64, u32)>,
    prev_last_class: u8,
    /// Trace lineage of the vehicle's most recent *sampled* record, so an
    /// exported `CO-DATA` summary can link the next RSU's spans back to
    /// this RSU's trace.
    lineage: Option<TraceLineage>,
}

impl VehicleState {
    fn prev_totals(&self) -> (f64, u32) {
        self.history.iter().fold((0.0, 0), |(s, c), (hs, hc)| (s + hs, c + hc))
    }
}

/// Tracks per-vehicle running prediction summaries and performs the
/// handover fold: when a vehicle moves to a new road, the predictions
/// accumulated on the finished road join the vehicle's historical summary,
/// which is what the previous RSU forwards to the next one (`CO-DATA`).
///
/// # Example
///
/// ```
/// use cad3::SummaryTracker;
/// use cad3_types::{RoadId, VehicleId};
///
/// let mut t = SummaryTracker::new();
/// let v = VehicleId(1);
/// // First road: no history yet.
/// assert!(t.observe(v, RoadId(10), 0.9).is_none());
/// assert!(t.observe(v, RoadId(10), 0.8).is_none());
/// // Handover to road 20: history now covers road 10.
/// let s = t.observe(v, RoadId(20), 0.1).unwrap();
/// assert!((s.mean_probability - 0.85).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SummaryTracker {
    // BTreeMap, not HashMap: `vehicles()` and summary export iterate this
    // map on the handover-fusion path, so its order must survive reseeding.
    vehicles: BTreeMap<VehicleId, VehicleState>,
    /// How many previous *roads* of history to retain per vehicle;
    /// `None` keeps everything (the paper's behaviour).
    road_depth: Option<usize>,
}

impl SummaryTracker {
    /// Creates an empty tracker with unbounded history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker that remembers at most `depth` previous roads per
    /// vehicle — the summary-depth knob of the DESIGN.md ablation (older
    /// behaviour ages out, making the driver prior more reactive).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` (that would disable collaboration entirely;
    /// use a plain AD3 detector instead).
    pub fn with_road_depth(depth: usize) -> Self {
        assert!(depth > 0, "road depth must be at least one");
        SummaryTracker { vehicles: BTreeMap::new(), road_depth: Some(depth) }
    }

    /// The configured road depth (`None` = unbounded).
    pub fn road_depth(&self) -> Option<usize> {
        self.road_depth
    }

    /// Number of vehicles tracked.
    pub fn len(&self) -> usize {
        self.vehicles.len()
    }

    /// Whether no vehicles are tracked.
    pub fn is_empty(&self) -> bool {
        self.vehicles.is_empty()
    }

    /// Records a prediction (`p_abnormal`) for `vehicle` on `road` and
    /// returns the summary of *previous* roads applicable to this record
    /// (`None` while the vehicle is still on its first road), the
    /// `P̄_prevs` of the paper's Eq. 1.
    pub fn observe(
        &mut self,
        vehicle: VehicleId,
        road: RoadId,
        p_abnormal: f64,
    ) -> Option<VehicleSummary> {
        let depth = self.road_depth;
        let state = self.vehicles.entry(vehicle).or_default();
        if state.current_road != Some(road) {
            // Handover: fold the finished road into the history, ageing
            // out the oldest road beyond the configured depth.
            if state.current_road.is_some() && state.road_count > 0 {
                state.history.push_back((state.road_sum, state.road_count));
                if let Some(d) = depth {
                    while state.history.len() > d {
                        state.history.pop_front();
                    }
                }
                state.prev_last_class = state.road_last_class;
            }
            state.current_road = Some(road);
            state.road_sum = 0.0;
            state.road_count = 0;
        }
        let (prev_sum, prev_count) = state.prev_totals();
        let summary = (prev_count > 0).then(|| VehicleSummary {
            mean_probability: prev_sum / prev_count as f64,
            count: prev_count,
            last_class: state.prev_last_class,
        });
        state.road_sum += p_abnormal;
        state.road_count += 1;
        state.road_last_class = u8::from(p_abnormal < 0.5);
        summary
    }

    /// Injects an externally received summary (from a `CO-DATA` message)
    /// as the vehicle's history, as the motorway-link RSU does when the
    /// motorway RSU hands a vehicle over.
    pub fn seed(&mut self, vehicle: VehicleId, summary: VehicleSummary) {
        let state = self.vehicles.entry(vehicle).or_default();
        state.history.clear();
        state.history.push_back((summary.mean_probability * summary.count as f64, summary.count));
        state.prev_last_class = summary.last_class;
    }

    /// The current exportable summary for `vehicle` — what this RSU would
    /// write to the next RSU's `CO-DATA` on handover (includes the road in
    /// progress).
    pub fn export(
        &self,
        vehicle: VehicleId,
        from_rsu: RsuId,
        now: SimTime,
    ) -> Option<SummaryMessage> {
        let s = self.vehicles.get(&vehicle)?;
        let (prev_sum, prev_count) = s.prev_totals();
        let count = prev_count + s.road_count;
        if count == 0 {
            return None;
        }
        let mean = (prev_sum + s.road_sum) / count as f64;
        Some(SummaryMessage {
            vehicle,
            from_rsu,
            count,
            mean_probability: mean,
            last_class: if s.road_count > 0 { s.road_last_class } else { s.prev_last_class },
            sent_at: now,
            trace: s.lineage,
        })
    }

    /// Remembers the trace lineage of `vehicle`'s latest sampled record;
    /// the next [`SummaryTracker::export`] for the vehicle carries it.
    /// Untraced records (the default-sampling common case) don't call
    /// this, so the last sampled lineage sticks until the handover.
    pub fn set_lineage(&mut self, vehicle: VehicleId, lineage: TraceLineage) {
        self.vehicles.entry(vehicle).or_default().lineage = Some(lineage);
    }

    /// Forgets a vehicle (it left the deployment area).
    pub fn remove(&mut self, vehicle: VehicleId) {
        self.vehicles.remove(&vehicle);
    }

    /// The tracked vehicles, sorted by id (the map is ordered).
    pub fn vehicles(&self) -> Vec<VehicleId> {
        self.vehicles.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: VehicleId = VehicleId(7);

    #[test]
    fn no_summary_on_first_road() {
        let mut t = SummaryTracker::new();
        assert!(t.observe(V, RoadId(1), 0.9).is_none());
        assert!(t.observe(V, RoadId(1), 0.9).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn handover_folds_previous_road() {
        let mut t = SummaryTracker::new();
        t.observe(V, RoadId(1), 0.8);
        t.observe(V, RoadId(1), 0.6);
        let s = t.observe(V, RoadId(2), 0.1).unwrap();
        assert!((s.mean_probability - 0.7).abs() < 1e-12);
        assert_eq!(s.count, 2);
        assert_eq!(s.last_class, 0, "0.6 >= 0.5 counts as abnormal class 0");
    }

    #[test]
    fn history_accumulates_across_multiple_roads() {
        let mut t = SummaryTracker::new();
        t.observe(V, RoadId(1), 1.0);
        t.observe(V, RoadId(2), 0.0); // folds road 1 (mean 1.0, n=1)
        let s = t.observe(V, RoadId(3), 0.5).unwrap(); // folds road 2
        assert!((s.mean_probability - 0.5).abs() < 1e-12); // (1.0 + 0.0)/2
        assert_eq!(s.count, 2);
    }

    #[test]
    fn road_depth_ages_out_old_roads() {
        let mut deep = SummaryTracker::new();
        let mut shallow = SummaryTracker::with_road_depth(1);
        // Road 1: consistently abnormal; road 2: consistently normal.
        for t in [&mut deep, &mut shallow] {
            t.observe(V, RoadId(1), 1.0);
            t.observe(V, RoadId(1), 1.0);
            t.observe(V, RoadId(2), 0.0);
            t.observe(V, RoadId(2), 0.0);
        }
        // On road 3, the unbounded tracker averages both roads; the
        // depth-1 tracker remembers only road 2.
        let s_deep = deep.observe(V, RoadId(3), 0.5).unwrap();
        let s_shallow = shallow.observe(V, RoadId(3), 0.5).unwrap();
        assert!((s_deep.mean_probability - 0.5).abs() < 1e-12);
        assert_eq!(s_deep.count, 4);
        assert!((s_shallow.mean_probability - 0.0).abs() < 1e-12);
        assert_eq!(s_shallow.count, 2);
        assert_eq!(deep.road_depth(), None);
        assert_eq!(shallow.road_depth(), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_depth_panics() {
        SummaryTracker::with_road_depth(0);
    }

    #[test]
    fn seed_from_co_data_message() {
        let mut t = SummaryTracker::new();
        t.seed(V, VehicleSummary { mean_probability: 0.9, count: 10, last_class: 0 });
        let s = t.observe(V, RoadId(5), 0.2).unwrap();
        assert!((s.mean_probability - 0.9).abs() < 1e-12);
        assert_eq!(s.count, 10);
    }

    #[test]
    fn export_includes_road_in_progress() {
        let mut t = SummaryTracker::new();
        t.observe(V, RoadId(1), 0.4);
        t.observe(V, RoadId(1), 0.6);
        let msg = t.export(V, RsuId(3), SimTime::from_millis(5)).unwrap();
        assert!((msg.mean_probability - 0.5).abs() < 1e-12);
        assert_eq!(msg.count, 2);
        assert_eq!(msg.from_rsu, RsuId(3));
        // Round-trips into a summary.
        let s = VehicleSummary::from_message(&msg);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn export_carries_last_sampled_lineage() {
        let mut t = SummaryTracker::new();
        t.observe(V, RoadId(1), 0.4);
        assert_eq!(t.export(V, RsuId(1), SimTime::ZERO).unwrap().trace, None);
        let ctx = cad3_obs::TraceContext::from_parts(31, 7, 2);
        t.set_lineage(V, lineage_of(&ctx));
        let msg = t.export(V, RsuId(1), SimTime::ZERO).unwrap();
        let lineage = msg.trace.unwrap();
        assert_eq!((lineage.trace_id, lineage.parent_span, lineage.hop), (31, 7, 2));
        // Round-trips into a live context for the receiving RSU.
        let revived = lineage_context(&lineage);
        assert_eq!(revived.trace_id(), 31);
        assert_eq!(revived.parent_span(), 7);
        assert_eq!(revived.hop(), 2);
        assert!(revived.sampled());
    }

    #[test]
    fn export_unknown_vehicle_is_none() {
        let t = SummaryTracker::new();
        assert!(t.export(V, RsuId(1), SimTime::ZERO).is_none());
    }

    #[test]
    fn remove_forgets() {
        let mut t = SummaryTracker::new();
        t.observe(V, RoadId(1), 0.5);
        t.remove(V);
        assert!(t.is_empty());
        assert!(t.observe(V, RoadId(2), 0.5).is_none(), "history gone");
    }
}

use cad3_types::SimDuration;

/// Calibrated model of the RSU's per-batch detection compute time.
///
/// The paper reports average processing times between 7.3 ms (8 vehicles)
/// and 11.7 ms (256 vehicles) on its i7 testbed with 50 ms batches; at
/// 10 Hz those batch sizes are 4 and 128 records, so the affine model
/// `base + per_record · n` with `base = 7.15 ms` and
/// `per_record = 35.5 µs` reproduces both endpoints. The virtual-time
/// testbed uses this model instead of wall-clock measurement to stay
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessingCostModel {
    /// Fixed per-batch cost (job scheduling, model dispatch).
    pub base: SimDuration,
    /// Marginal cost per record.
    pub per_record: SimDuration,
}

impl Default for ProcessingCostModel {
    fn default() -> Self {
        ProcessingCostModel {
            base: SimDuration::from_micros(7_150),
            per_record: SimDuration::from_micros(35),
        }
    }
}

impl ProcessingCostModel {
    /// Processing time of a batch of `records` records.
    pub fn batch_time(&self, records: usize) -> SimDuration {
        self.base + self.per_record.mul(records as u64)
    }
}

/// Configuration of the CAD3 system: intervals, payloads and fusion
/// parameters, defaulting to the paper's values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Micro-batch interval (50 ms in the paper).
    pub batch_interval: SimDuration,
    /// Vehicle `OUT-DATA` poll interval (10 ms in the paper).
    pub poll_interval: SimDuration,
    /// Vehicle status update period (10 Hz ⇒ 100 ms).
    pub update_period: SimDuration,
    /// Status payload size in bytes (~200 B in the paper).
    pub payload_bytes: usize,
    /// Weight of the collaborative summary in Eq. 1
    /// (`P_X = w · P̄_prevs + (1 − w) · P_NB`; 0.5 in the paper).
    pub fusion_weight: f64,
    /// Per-batch compute model.
    pub cost_model: ProcessingCostModel,
    /// Mean of the consumer-fetch latency added to each dissemination
    /// (the paper decomposes dissemination as `10 + 7.2 ± 4.4 ms`).
    pub fetch_latency_mean: SimDuration,
    /// Standard deviation of the consumer-fetch latency.
    pub fetch_latency_std: SimDuration,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            batch_interval: SimDuration::from_millis(50),
            poll_interval: SimDuration::from_millis(10),
            update_period: SimDuration::from_millis(100),
            payload_bytes: cad3_types::STATUS_WIRE_LEN,
            fusion_weight: 0.5,
            cost_model: ProcessingCostModel::default(),
            fetch_latency_mean: SimDuration::from_micros(7_200),
            fetch_latency_std: SimDuration::from_micros(4_400),
        }
    }
}

impl SystemConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if the fusion weight is outside `[0, 1]` or any interval is
    /// zero.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.fusion_weight), "fusion weight must be within [0, 1]");
        assert!(self.batch_interval > SimDuration::ZERO, "batch interval must be positive");
        assert!(self.poll_interval > SimDuration::ZERO, "poll interval must be positive");
        assert!(self.update_period > SimDuration::ZERO, "update period must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_matches_paper_endpoints() {
        let m = ProcessingCostModel::default();
        // 8 vehicles × 10 Hz × 50 ms = 4 records/batch -> ~7.3 ms.
        let low = m.batch_time(4).as_millis_f64();
        assert!((low - 7.29).abs() < 0.05, "got {low}");
        // 256 vehicles -> 128 records/batch -> ~11.7 ms.
        let high = m.batch_time(128).as_millis_f64();
        assert!((high - 11.63).abs() < 0.15, "got {high}");
    }

    #[test]
    fn defaults_are_paper_values() {
        let c = SystemConfig::default();
        assert_eq!(c.batch_interval, SimDuration::from_millis(50));
        assert_eq!(c.poll_interval, SimDuration::from_millis(10));
        assert_eq!(c.update_period, SimDuration::from_millis(100));
        assert_eq!(c.payload_bytes, 200);
        assert_eq!(c.fusion_weight, 0.5);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "fusion weight")]
    fn bad_fusion_weight_panics() {
        SystemConfig { fusion_weight: 1.5, ..SystemConfig::default() }.validate();
    }
}

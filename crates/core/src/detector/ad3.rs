use super::{
    group_by_slot, nb_feature_array, nb_features, nb_schema, scalar_detect_batch, Detection,
    Detector, PlanRouter, SCALAR_FALLBACK_MAX,
};
use crate::collaboration::VehicleSummary;
use crate::CoreError;
use cad3_data::TimeBucket;
use cad3_ml::{Dataset, FeatureBatch, NaiveBayes, NbBatchPlan};
use cad3_types::{FeatureRecord, RoadType};
use std::collections::HashMap;

/// The distributed standalone detector (the paper's AD3): one Naïve Bayes
/// model per spatio-temporal context — road type × time-of-day regime.
///
/// Each RSU "learns the normal behavior over time and maintains contextual
/// information of the road in its coverage" (road type, hour of the day and
/// speed profile); conditioning the model on the time regime is what gives
/// the edge deployment its fine-grained context-awareness, which the
/// city-wide centralized baseline lacks.
#[derive(Debug, Clone, PartialEq)]
pub struct Ad3Detector {
    models: HashMap<(RoadType, TimeBucket), NaiveBayes>,
    /// Hour-pooled per-road-type models used when a record's exact time
    /// regime had too little training data.
    pooled: HashMap<RoadType, NaiveBayes>,
    /// Column-major batch plans behind a dense (road, bucket) routing
    /// table, precomputed at training time for the RSU detect path.
    router: PlanRouter<NbBatchPlan>,
}

impl Ad3Detector {
    /// Trains one model per (road type, time regime) present in `records`.
    ///
    /// Contexts whose sub-dataset lacks one of the two classes are skipped
    /// (an RSU cannot learn a normal profile from one-sided data);
    /// detection falls back to a sibling regime of the same road type and
    /// reports [`CoreError::NoModelForRoadType`] if none exists.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientTrainingData`] when no context is
    /// trainable at all.
    pub fn train(records: &[FeatureRecord]) -> Result<Self, CoreError> {
        /// Minimum records a context needs for its own model; sparser
        /// contexts use the hour-pooled road-type model instead.
        const MIN_CONTEXT_RECORDS: usize = 200;

        let mut by_context: HashMap<(RoadType, TimeBucket), Dataset> = HashMap::new();
        let mut by_type: HashMap<RoadType, Dataset> = HashMap::new();
        for rec in records {
            by_context
                .entry((rec.road_type, TimeBucket::of(rec.hour)))
                .or_insert_with(|| Dataset::new(nb_schema(), 2))
                .push(nb_features(rec), rec.label.class() as usize)?;
            by_type
                .entry(rec.road_type)
                .or_insert_with(|| Dataset::new(nb_schema(), 2))
                .push(nb_features(rec), rec.label.class() as usize)?;
        }
        let mut models = HashMap::new();
        for (key, ds) in by_context {
            if ds.len() >= MIN_CONTEXT_RECORDS && ds.class_counts().iter().all(|&c| c > 0) {
                models.insert(key, NaiveBayes::fit(&ds)?);
            }
        }
        let mut pooled = HashMap::new();
        for (rt, ds) in by_type {
            if ds.class_counts().iter().all(|&c| c > 0) {
                pooled.insert(rt, NaiveBayes::fit(&ds)?);
            }
        }
        if models.is_empty() && pooled.is_empty() {
            return Err(CoreError::InsufficientTrainingData {
                what: "no (road type, time regime) context had examples of both classes".to_owned(),
            });
        }
        let router = PlanRouter::build(
            |road, bucket| models.get(&(road, bucket)).map(NaiveBayes::batch_plan),
            |road| pooled.get(&road).map(NaiveBayes::batch_plan),
        );
        Ok(Ad3Detector { models, pooled, router })
    }

    /// Road types with at least one trained model.
    pub fn road_types(&self) -> Vec<RoadType> {
        let mut v: Vec<RoadType> =
            self.models.keys().map(|(rt, _)| *rt).chain(self.pooled.keys().copied()).collect();
        v.sort();
        v.dedup();
        v
    }

    fn model_for(&self, rec: &FeatureRecord) -> Result<&NaiveBayes, CoreError> {
        let bucket = TimeBucket::of(rec.hour);
        if let Some(m) = self.models.get(&(rec.road_type, bucket)) {
            return Ok(m);
        }
        // Sparse context: the hour-pooled model of the same road type.
        self.pooled.get(&rec.road_type).ok_or(CoreError::NoModelForRoadType(rec.road_type))
    }

    /// The abnormal-class probability for a record.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoModelForRoadType`] for untrained road types.
    pub fn p_abnormal(&self, rec: &FeatureRecord) -> Result<f64, CoreError> {
        let proba = self.model_for(rec)?.predict_proba(&nb_features(rec))?;
        Ok(proba[0])
    }

    /// Batched [`Ad3Detector::p_abnormal`]: pushes one entry per record
    /// onto `out`, `None` where the scalar path would return an error.
    ///
    /// Records are grouped by the model they route to (same context →
    /// pooled fallback as [`Ad3Detector::p_abnormal`]) and each group is
    /// evaluated through its precomputed column-major plan in one sweep.
    /// Outputs are bit-identical to the scalar path.
    pub fn p_abnormal_batch(&self, recs: &[FeatureRecord], out: &mut Vec<Option<f64>>) {
        let base = out.len();
        out.resize(base + recs.len(), None);
        // Route every record with one LUT index (no per-record hashing),
        // then split into per-plan groups with one counting-sort pass.
        // Slot order is fixed at training time, so evaluation order is
        // deterministic.
        let mut slots: Vec<u16> = Vec::with_capacity(recs.len());
        for rec in recs {
            slots.push(self.router.slot(rec.road_type, TimeBucket::of(rec.hour)));
        }
        let mut starts: Vec<u32> = Vec::new();
        let mut grouped: Vec<u32> = Vec::new();
        group_by_slot(&slots, self.router.n_slots(), &mut starts, &mut grouped);
        let mut batch = FeatureBatch::new(4);
        let mut ll: Vec<f64> = Vec::new();
        let mut proba: Vec<f64> = Vec::new();
        for slot in 1..=self.router.n_slots() as u16 {
            let idxs = &grouped
                [starts[usize::from(slot)] as usize..starts[usize::from(slot) + 1] as usize];
            if idxs.is_empty() {
                continue; // slot 0 (no model) stays None: NoModelForRoadType
            }
            let plan = self.router.plan(slot);
            batch.clear();
            for &i in idxs {
                // Schema validation is vacuous for these rows, so the
                // scalar path's `validate` check is skipped rather than
                // mirrored: `nb_feature_array` rows are valid by type
                // construction (`HourOfDay` is 0..24, `RoadType::code` is
                // 0..10, continuous columns are never checked), and the
                // width always matches, so `push_row` cannot fail either.
                let _ = batch.push_row(&nb_feature_array(&recs[i as usize]));
            }
            let n = batch.n_rows();
            ll.clear();
            ll.resize(plan.n_classes() * n, 0.0);
            proba.clear();
            proba.resize(plan.n_classes() * n, 0.0);
            if plan.predict_proba_into(&batch, &mut ll, &mut proba).is_err() {
                continue;
            }
            for (k, &i) in idxs.iter().enumerate() {
                // Class 0 is abnormal in the paper's convention.
                out[base + i as usize] = Some(proba[k * plan.n_classes()]);
            }
        }
    }
}

impl Detector for Ad3Detector {
    fn name(&self) -> &'static str {
        "ad3"
    }

    fn detect(
        &self,
        rec: &FeatureRecord,
        _summary: Option<&VehicleSummary>,
    ) -> Result<Detection, CoreError> {
        Ok(Detection::from_p_abnormal(self.p_abnormal(rec)?))
    }

    fn detect_batch(
        &self,
        recs: &[FeatureRecord],
        observe: &mut dyn FnMut(usize, f64) -> Option<VehicleSummary>,
        out: &mut Vec<Option<Detection>>,
    ) {
        if recs.len() <= SCALAR_FALLBACK_MAX {
            return scalar_detect_batch(self, recs, observe, out);
        }
        let mut p_abn: Vec<Option<f64>> = Vec::with_capacity(recs.len());
        self.p_abnormal_batch(recs, &mut p_abn);
        for (i, p) in p_abn.iter().enumerate() {
            let Some(p) = *p else {
                out.push(None);
                continue;
            };
            // AD3 ignores the summary but must still record its prediction.
            let _ = observe(i, p);
            out.push(Some(Detection::from_p_abnormal(p)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_data::{DatasetConfig, SyntheticDataset};
    use cad3_ml::ConfusionMatrix;
    use cad3_types::Label;

    fn corpus() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::small(31))
    }

    #[test]
    fn trains_models_for_observed_types() {
        let ds = corpus();
        let det = Ad3Detector::train(&ds.features).unwrap();
        assert!(det.road_types().contains(&RoadType::Motorway));
        assert!(det.road_types().contains(&RoadType::MotorwayLink));
    }

    #[test]
    fn beats_chance_clearly() {
        let ds = corpus();
        let (train, test) = {
            let cut = ds.features.len() * 8 / 10;
            (&ds.features[..cut], &ds.features[cut..])
        };
        let det = Ad3Detector::train(train).unwrap();
        let mut cm = ConfusionMatrix::new();
        for rec in test {
            if let Ok(d) = det.detect(rec, None) {
                cm.record(rec.label == Label::Abnormal, d.label == Label::Abnormal);
            }
        }
        assert!(cm.total() > 100);
        assert!(cm.accuracy() > 0.7, "accuracy {}", cm.accuracy());
        assert!(cm.f1() > 0.5, "f1 {}", cm.f1());
    }

    #[test]
    fn context_awareness_uses_road_type_models() {
        // A speed that is normal on a motorway must be flagged on a link —
        // the paper's Section IV-C example.
        let ds = corpus();
        let det = Ad3Detector::train(&ds.features).unwrap();
        let template = ds
            .features
            .iter()
            .find(|f| {
                f.road_type == RoadType::Motorway
                    && f.label == Label::Normal
                    && TimeBucket::of(f.hour) == TimeBucket::Normal
            })
            .copied()
            .unwrap();
        let on_motorway = FeatureRecord { speed_kmh: 95.0, accel_mps2: 0.0, ..template };
        let on_link = FeatureRecord {
            road_type: RoadType::MotorwayLink,
            speed_kmh: 95.0,
            accel_mps2: 0.0,
            ..template
        };
        let p_mw = det.p_abnormal(&on_motorway).unwrap();
        let p_link = det.p_abnormal(&on_link).unwrap();
        assert!(
            p_link > p_mw + 0.3,
            "95 km/h: link p_abnormal {p_link} must far exceed motorway {p_mw}"
        );
    }

    #[test]
    fn time_awareness_distinguishes_rush_from_night() {
        // Rush-hour motorway traffic crawls; the same speed at night is
        // normal free flow. A time-aware RSU must tell them apart.
        let ds = corpus();
        let det = Ad3Detector::train(&ds.features).unwrap();
        let template =
            ds.features.iter().find(|f| f.road_type == RoadType::Motorway).copied().unwrap();
        let fast = |hour: u8| FeatureRecord {
            speed_kmh: 112.0,
            accel_mps2: 0.0,
            hour: cad3_types::HourOfDay::new(hour).unwrap(),
            ..template
        };
        // 112 km/h during rush (norm ~72) is wildly abnormal; at night
        // (norm ~112) it is plain free flow.
        let p_rush = det.p_abnormal(&fast(8)).unwrap();
        let p_night = det.p_abnormal(&fast(3)).unwrap();
        assert!(
            p_rush > 0.9 && p_rush > p_night + 0.15,
            "rush-hour 112 km/h p {p_rush} must exceed night p {p_night}"
        );
    }

    #[test]
    fn unknown_road_type_errors() {
        let ds = corpus();
        let motorway_only: Vec<FeatureRecord> =
            ds.features.iter().filter(|f| f.road_type == RoadType::Motorway).copied().collect();
        let det = Ad3Detector::train(&motorway_only).unwrap();
        let link_rec =
            ds.features.iter().find(|f| f.road_type == RoadType::MotorwayLink).copied().unwrap();
        assert_eq!(
            det.detect(&link_rec, None).unwrap_err(),
            CoreError::NoModelForRoadType(RoadType::MotorwayLink)
        );
    }

    #[test]
    fn one_sided_data_is_insufficient() {
        let ds = corpus();
        let normals: Vec<FeatureRecord> =
            ds.features.iter().filter(|f| f.label == Label::Normal).take(100).copied().collect();
        assert!(matches!(
            Ad3Detector::train(&normals),
            Err(CoreError::InsufficientTrainingData { .. })
        ));
    }
}

use super::{
    dt_hour_code, dt_schema, fuse_probability, scalar_detect_batch, Ad3Detector, Detection,
    Detector, SCALAR_FALLBACK_MAX,
};
use crate::collaboration::{SummaryTracker, VehicleSummary};
use crate::CoreError;
use cad3_ml::{Dataset, DecisionTree, DecisionTreeParams, FeatureBatch, TreeBatchPlan};
use cad3_types::FeatureRecord;

/// The collaborative detector (the paper's CAD3, Fig. 4).
///
/// Stage 1 is the same per-road-type Naïve Bayes as [`Ad3Detector`],
/// producing `P_NB` and `Class_NB`. Stage 2 fuses the prediction summary
/// forwarded by the previous RSU through Eq. 1
/// (`P_X = 0.5 · P̄_prevs + 0.5 · P_NB`) and classifies the vector
/// `[Hour, P_X, Class_NB]` with a Decision Tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Cad3Detector {
    nb: Ad3Detector,
    tree: DecisionTree,
    /// Flattened branchless plan for `tree`, precomputed at training time
    /// for the RSU batch detect path.
    tree_plan: TreeBatchPlan,
    fusion_weight: f64,
    summary_road_depth: Option<usize>,
}

impl Cad3Detector {
    /// Trains the two stages.
    ///
    /// `records` must be in trip order (records of one trip contiguous and
    /// time-ordered), because the Decision Tree's training features include
    /// the running cross-road summaries that a deployment would receive
    /// over `CO-DATA`.
    ///
    /// # Errors
    ///
    /// Propagates stage-1 training errors and returns
    /// [`CoreError::InsufficientTrainingData`] when no record is usable for
    /// stage 2.
    pub fn train(
        records: &[FeatureRecord],
        dt_params: DecisionTreeParams,
        fusion_weight: f64,
    ) -> Result<Self, CoreError> {
        Self::train_with_depth(records, dt_params, fusion_weight, None)
    }

    /// Like [`Cad3Detector::train`], with a bounded summary history: the
    /// collaboration prior averages only the most recent `depth` roads
    /// (the DESIGN.md summary-depth ablation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cad3Detector::train`].
    pub fn train_with_depth(
        records: &[FeatureRecord],
        dt_params: DecisionTreeParams,
        fusion_weight: f64,
        summary_road_depth: Option<usize>,
    ) -> Result<Self, CoreError> {
        assert!((0.0..=1.0).contains(&fusion_weight), "fusion weight must be within [0, 1]");
        let nb = Ad3Detector::train(records)?;

        // Replay the corpus through the summary tracker to build the DT's
        // training set exactly as the online pipeline would see it.
        //
        // Only records that actually carry a collaborative summary train
        // the tree: at a collaboration RSU the fused `P_X` means
        // "driver history blended with local evidence", while on a trip's
        // first road it is just `P_NB` — mixing the two regimes under one
        // feature would miscalibrate the tree's thresholds. Where no
        // summary exists at inference time, CAD3 falls back to the plain
        // Naïve Bayes decision (which is what the non-collaborating RSU
        // runs anyway).
        let mut tracker = match summary_road_depth {
            Some(d) => SummaryTracker::with_road_depth(d),
            None => SummaryTracker::new(),
        };
        let mut ds = Dataset::new(dt_schema(), 2);
        let mut usable = 0usize;
        for rec in records {
            let Ok(p_nb) = nb.p_abnormal(rec) else { continue };
            let Some(summary) = tracker.observe(rec.vehicle, rec.road, p_nb) else {
                continue;
            };
            let p_x = fuse_probability(p_nb, Some(&summary), fusion_weight);
            let class_nb = u8::from(p_nb < 0.5); // 1 = normal, 0 = abnormal
            ds.push(
                vec![dt_hour_code(rec.hour), p_x, class_nb as f64],
                rec.label.class() as usize,
            )?;
            usable += 1;
        }
        if usable == 0 {
            return Err(CoreError::InsufficientTrainingData {
                what: "no record carried a collaborative summary for stage 2".to_owned(),
            });
        }
        let tree = DecisionTree::fit(&ds, dt_params)?;
        let tree_plan = tree.batch_plan();
        Ok(Cad3Detector { nb, tree, tree_plan, fusion_weight, summary_road_depth })
    }

    /// The stage-1 (Naïve Bayes) detector.
    pub fn naive_bayes(&self) -> &Ad3Detector {
        &self.nb
    }

    /// The Eq. 1 fusion weight.
    pub fn fusion_weight(&self) -> f64 {
        self.fusion_weight
    }

    /// Full detection detail: `(p_nb, p_x, detection)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoModelForRoadType`] for untrained road types
    /// and propagates model errors.
    pub fn detect_detailed(
        &self,
        rec: &FeatureRecord,
        summary: Option<&VehicleSummary>,
    ) -> Result<(f64, f64, Detection), CoreError> {
        let p_nb = self.nb.p_abnormal(rec)?;
        let Some(summary) = summary else {
            // No collaboration context: behave like the standalone stage
            // (the trip's first RSU has nothing to fuse).
            return Ok((p_nb, p_nb, Detection::from_p_abnormal(p_nb)));
        };
        let p_x = fuse_probability(p_nb, Some(summary), self.fusion_weight);
        let class_nb = u8::from(p_nb < 0.5);
        let proba = self.tree.predict_proba(&[dt_hour_code(rec.hour), p_x, class_nb as f64])?;
        Ok((p_nb, p_x, Detection::from_p_abnormal(proba[0])))
    }
}

impl Detector for Cad3Detector {
    fn name(&self) -> &'static str {
        "cad3"
    }

    fn detect(
        &self,
        rec: &FeatureRecord,
        summary: Option<&VehicleSummary>,
    ) -> Result<Detection, CoreError> {
        Ok(self.detect_detailed(rec, summary)?.2)
    }

    fn stage1_p_abnormal(&self, rec: &FeatureRecord) -> Result<f64, CoreError> {
        self.nb.p_abnormal(rec)
    }

    fn new_tracker(&self) -> SummaryTracker {
        match self.summary_road_depth {
            Some(d) => SummaryTracker::with_road_depth(d),
            None => SummaryTracker::new(),
        }
    }

    fn detect_batch(
        &self,
        recs: &[FeatureRecord],
        observe: &mut dyn FnMut(usize, f64) -> Option<VehicleSummary>,
        out: &mut Vec<Option<Detection>>,
    ) {
        if recs.len() <= SCALAR_FALLBACK_MAX {
            return scalar_detect_batch(self, recs, observe, out);
        }
        // Stage 1 once per record (the scalar path recomputes the same
        // Naïve Bayes inside `detect_detailed`; the batch plan is
        // bit-identical, so computing it once is exact).
        let mut p_nb: Vec<Option<f64>> = Vec::with_capacity(recs.len());
        self.nb.p_abnormal_batch(recs, &mut p_nb);

        // Collaboration sweep, strictly in record order: the tracker state
        // a record sees depends on every earlier record in the batch.
        let mut summaries: Vec<Option<VehicleSummary>> = Vec::with_capacity(recs.len());
        for (i, p) in p_nb.iter().enumerate() {
            summaries.push(p.and_then(|p1| observe(i, p1)));
        }

        // Stage 2 as one column-major tree sweep over the fused rows.
        let mut batch = FeatureBatch::new(3);
        let mut rows: Vec<u32> = Vec::new();
        for (i, rec) in recs.iter().enumerate() {
            let (Some(p1), Some(summary)) = (p_nb[i], summaries[i].as_ref()) else { continue };
            let p_x = fuse_probability(p1, Some(summary), self.fusion_weight);
            let class_nb = u8::from(p1 < 0.5);
            // Schema validation is vacuous for these rows, so the scalar
            // path's `validate` check is skipped rather than mirrored:
            // `dt_hour_code` is in {0, 1, 2} (Cat3), `class_nb` in {0, 1}
            // (Cat2), and `p_x` is continuous (never checked). The width
            // always matches, so `push_row` cannot fail either.
            let _ = batch.push_row(&[dt_hour_code(rec.hour), p_x, class_nb as f64]);
            rows.push(i as u32);
        }
        let n = batch.n_rows();
        let mut keys = vec![0u64; 3 * n];
        let mut cur = vec![0u32; n];
        let mut proba = vec![0.0; self.tree_plan.n_classes() * n];
        let mut fused: Vec<Option<f64>> = vec![None; recs.len()];
        if self.tree_plan.predict_proba_into(&batch, &mut keys, &mut cur, &mut proba).is_ok() {
            for (k, &i) in rows.iter().enumerate() {
                fused[i as usize] = Some(proba[k * self.tree_plan.n_classes()]);
            }
        }

        for (i, p) in p_nb.iter().enumerate() {
            out.push(match (p, &fused[i]) {
                // Collaboration RSU: the tree's abnormal-class probability.
                (Some(_), Some(p_tree)) => Some(Detection::from_p_abnormal(*p_tree)),
                // No summary yet: fall back to the stage-1 decision.
                (Some(p1), None) if summaries[i].is_none() => Some(Detection::from_p_abnormal(*p1)),
                // Summary present but the tree row was rejected: the scalar
                // path would have errored on the same row.
                _ => None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_data::{DatasetConfig, SyntheticDataset};
    use cad3_ml::ConfusionMatrix;
    use cad3_types::Label;

    fn corpus() -> SyntheticDataset {
        // Corpus seed is coupled to the RNG stream: the vendored `rand`
        // (xoshiro256++, see vendor/README.md) produces different corpora per
        // seed than upstream StdRng, so the seed was re-picked to one of the
        // majority of seeds where the Fig. 7 ordering holds.
        SyntheticDataset::generate(&DatasetConfig::small(7))
    }

    fn trained(ds: &SyntheticDataset) -> Cad3Detector {
        let cut = ds.features.len() * 8 / 10;
        Cad3Detector::train(&ds.features[..cut], DecisionTreeParams::default(), 0.5).unwrap()
    }

    #[test]
    fn summary_shifts_borderline_decisions() {
        let ds = corpus();
        let det = trained(&ds);
        // Find a record where NB is genuinely uncertain.
        let borderline = ds
            .features
            .iter()
            .find(|r| det.naive_bayes().p_abnormal(r).map(|p| (p - 0.5).abs() < 0.15) == Ok(true))
            .copied()
            .expect("corpus contains borderline records");
        let guilty = VehicleSummary { mean_probability: 0.95, count: 50, last_class: 0 };
        let innocent = VehicleSummary { mean_probability: 0.05, count: 50, last_class: 1 };
        let (_, px_guilty, d_guilty) = det.detect_detailed(&borderline, Some(&guilty)).unwrap();
        let (_, px_innocent, d_innocent) =
            det.detect_detailed(&borderline, Some(&innocent)).unwrap();
        assert!(px_guilty > px_innocent + 0.3);
        assert!(
            d_guilty.p_abnormal >= d_innocent.p_abnormal,
            "history must not lower suspicion: {} vs {}",
            d_guilty.p_abnormal,
            d_innocent.p_abnormal
        );
    }

    #[test]
    fn collaborative_beats_standalone_on_streaming_eval() {
        // The paper's Fig. 7 ordering, CAD3 > AD3, evaluated with the same
        // streaming summary replay the online system performs, at the
        // collaboration point (the motorway-link RSU, as in the paper).
        let ds = corpus();
        let cut = ds.features.len() * 8 / 10;
        let (train, test) = (&ds.features[..cut], &ds.features[cut..]);
        let cad3 = Cad3Detector::train(train, DecisionTreeParams::default(), 0.5).unwrap();
        let ad3 = Ad3Detector::train(train).unwrap();

        let mut tracker = SummaryTracker::new();
        let mut cm_cad3 = ConfusionMatrix::new();
        let mut cm_ad3 = ConfusionMatrix::new();
        for rec in test {
            let Ok(p_nb) = cad3.naive_bayes().p_abnormal(rec) else { continue };
            let summary = tracker.observe(rec.vehicle, rec.road, p_nb);
            if !rec.road_type.is_link() {
                continue;
            }
            let d_cad3 = cad3.detect(rec, summary.as_ref()).unwrap();
            let d_ad3 = ad3.detect(rec, None).unwrap();
            cm_cad3.record(rec.label == Label::Abnormal, d_cad3.label == Label::Abnormal);
            cm_ad3.record(rec.label == Label::Abnormal, d_ad3.label == Label::Abnormal);
        }
        assert!(cm_cad3.total() > 300, "enough link records: {}", cm_cad3.total());
        assert!(
            cm_cad3.f1() + 0.02 >= cm_ad3.f1(),
            "CAD3 f1 {} should not lose to AD3 {}",
            cm_cad3.f1(),
            cm_ad3.f1()
        );
        assert!(
            cm_cad3.miss_rate() <= cm_ad3.miss_rate() + 0.02,
            "CAD3 miss rate {} must not exceed AD3 {}",
            cm_cad3.miss_rate(),
            cm_ad3.miss_rate()
        );
    }

    #[test]
    fn detect_without_summary_still_works() {
        let ds = corpus();
        let det = trained(&ds);
        let d = det.detect(&ds.features[0], None).unwrap();
        assert!((0.0..=1.0).contains(&d.p_abnormal));
        assert_eq!(det.name(), "cad3");
        assert_eq!(det.fusion_weight(), 0.5);
    }

    #[test]
    #[should_panic(expected = "fusion weight")]
    fn invalid_fusion_weight_panics() {
        let ds = corpus();
        let _ = Cad3Detector::train(&ds.features, DecisionTreeParams::default(), 2.0);
    }
}

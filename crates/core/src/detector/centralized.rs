use super::{
    nb_feature_array, nb_features, nb_schema, scalar_detect_batch, Detection, Detector,
    SCALAR_FALLBACK_MAX,
};
use crate::collaboration::VehicleSummary;
use crate::CoreError;
use cad3_ml::{Dataset, FeatureBatch, NaiveBayes, NbBatchPlan};
use cad3_types::FeatureRecord;

/// The centralized baseline: a single Naïve Bayes model trained on *all*
/// road vehicular data at once, as a cloud deployment would.
///
/// Road type is still a feature, but the per-class Gaussians over speed
/// and acceleration are shared city-wide — exactly the loss of fine-grained
/// context the paper blames for the baseline's poor FN rate.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralizedDetector {
    model: NaiveBayes,
    /// Column-major batch plan for `model`, precomputed at training time.
    plan: NbBatchPlan,
}

impl CentralizedDetector {
    /// Trains the city-wide model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the pooled dataset is empty or
    /// one-sided.
    pub fn train(records: &[FeatureRecord]) -> Result<Self, CoreError> {
        let mut ds = Dataset::new(nb_schema(), 2);
        for rec in records {
            ds.push(nb_features(rec), rec.label.class() as usize)?;
        }
        let model = NaiveBayes::fit(&ds)?;
        let plan = model.batch_plan();
        Ok(CentralizedDetector { model, plan })
    }

    /// The abnormal-class probability for a record.
    ///
    /// # Errors
    ///
    /// Propagates model errors for malformed feature vectors.
    pub fn p_abnormal(&self, rec: &FeatureRecord) -> Result<f64, CoreError> {
        Ok(self.model.predict_proba(&nb_features(rec))?[0])
    }
}

impl Detector for CentralizedDetector {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn detect(
        &self,
        rec: &FeatureRecord,
        _summary: Option<&VehicleSummary>,
    ) -> Result<Detection, CoreError> {
        Ok(Detection::from_p_abnormal(self.p_abnormal(rec)?))
    }

    fn detect_batch(
        &self,
        recs: &[FeatureRecord],
        observe: &mut dyn FnMut(usize, f64) -> Option<VehicleSummary>,
        out: &mut Vec<Option<Detection>>,
    ) {
        if recs.len() <= SCALAR_FALLBACK_MAX {
            return scalar_detect_batch(self, recs, observe, out);
        }
        // One model city-wide: the whole batch is a single plan sweep.
        let mut batch = FeatureBatch::new(4);
        for rec in recs {
            // Schema validation is vacuous for these rows — see
            // `Ad3Detector::p_abnormal_batch` — and the width always
            // matches, so `push_row` cannot fail either.
            let _ = batch.push_row(&nb_feature_array(rec));
        }
        let n = batch.n_rows();
        let mut ll = vec![0.0; self.plan.n_classes() * n];
        let mut proba = vec![0.0; self.plan.n_classes() * n];
        if self.plan.predict_proba_into(&batch, &mut ll, &mut proba).is_err() {
            out.extend(recs.iter().map(|_| None));
            return;
        }
        for i in 0..recs.len() {
            let p = proba[i * self.plan.n_classes()];
            let _ = observe(i, p);
            out.push(Some(Detection::from_p_abnormal(p)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Ad3Detector;
    use cad3_data::{DatasetConfig, SyntheticDataset};
    use cad3_ml::ConfusionMatrix;
    use cad3_types::Label;

    #[test]
    fn trains_and_detects() {
        let ds = SyntheticDataset::generate(&DatasetConfig::small(33));
        let det = CentralizedDetector::train(&ds.features).unwrap();
        let d = det.detect(&ds.features[0], None).unwrap();
        assert!((0.0..=1.0).contains(&d.p_abnormal));
        assert_eq!(det.name(), "centralized");
    }

    #[test]
    fn loses_to_context_aware_ad3() {
        // The paper's central claim at the model level: pooling all road
        // types into one model hurts detection versus per-road-type models.
        let ds = SyntheticDataset::generate(&DatasetConfig::small(34));
        let cut = ds.features.len() * 8 / 10;
        let (train, test) = (&ds.features[..cut], &ds.features[cut..]);
        let central = CentralizedDetector::train(train).unwrap();
        let ad3 = Ad3Detector::train(train).unwrap();

        let eval = |f: &dyn Fn(&FeatureRecord) -> Option<Label>| {
            let mut cm = ConfusionMatrix::new();
            for rec in test {
                if let Some(pred) = f(rec) {
                    cm.record(rec.label == Label::Abnormal, pred == Label::Abnormal);
                }
            }
            cm
        };
        let cm_central = eval(&|r| central.detect(r, None).ok().map(|d| d.label));
        let cm_ad3 = eval(&|r| ad3.detect(r, None).ok().map(|d| d.label));
        assert!(
            cm_ad3.f1() > cm_central.f1(),
            "AD3 f1 {} must beat centralized {}",
            cm_ad3.f1(),
            cm_central.f1()
        );
        assert!(
            cm_ad3.fn_rate_overall() < cm_central.fn_rate_overall(),
            "AD3 FN rate {} must beat centralized {}",
            cm_ad3.fn_rate_overall(),
            cm_central.fn_rate_overall()
        );
    }

    #[test]
    fn empty_training_fails() {
        assert!(matches!(CentralizedDetector::train(&[]), Err(CoreError::Ml(_))));
    }
}

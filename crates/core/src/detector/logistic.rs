use super::{
    group_by_slot, nb_feature_array, nb_features, nb_schema, scalar_detect_batch, Detection,
    Detector, PlanRouter, SCALAR_FALLBACK_MAX,
};
use crate::collaboration::VehicleSummary;
use crate::CoreError;
use cad3_data::TimeBucket;
use cad3_ml::{Dataset, FeatureBatch, LogisticParams, LogisticRegression, LrBatchPlan};
use cad3_types::{FeatureRecord, RoadType};
use std::collections::HashMap;

/// A logistic-regression variant of the standalone edge detector — the
/// "more complex anomaly detection algorithms" the paper leaves as future
/// work, hosted unchanged by the CAD3 pipeline (it implements the same
/// [`Detector`] interface as the Naïve Bayes stage, so it drops into the
/// RSU, the testbed and the collaboration flow).
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticAd3Detector {
    models: HashMap<(RoadType, TimeBucket), LogisticRegression>,
    pooled: HashMap<RoadType, LogisticRegression>,
    /// Column-major batch plans behind a dense (road, bucket) routing
    /// table, precomputed at training time for the RSU detect path.
    router: PlanRouter<LrBatchPlan>,
}

impl LogisticAd3Detector {
    /// Trains one logistic model per (road type, time regime), with
    /// hour-pooled per-road-type fallbacks, mirroring
    /// [`super::Ad3Detector::train`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientTrainingData`] when no context is
    /// trainable.
    pub fn train(records: &[FeatureRecord], params: LogisticParams) -> Result<Self, CoreError> {
        const MIN_CONTEXT_RECORDS: usize = 200;
        let mut by_context: HashMap<(RoadType, TimeBucket), Dataset> = HashMap::new();
        let mut by_type: HashMap<RoadType, Dataset> = HashMap::new();
        for rec in records {
            by_context
                .entry((rec.road_type, TimeBucket::of(rec.hour)))
                .or_insert_with(|| Dataset::new(nb_schema(), 2))
                .push(nb_features(rec), rec.label.class() as usize)?;
            by_type
                .entry(rec.road_type)
                .or_insert_with(|| Dataset::new(nb_schema(), 2))
                .push(nb_features(rec), rec.label.class() as usize)?;
        }
        let mut models = HashMap::new();
        for (key, ds) in by_context {
            if ds.len() >= MIN_CONTEXT_RECORDS && ds.class_counts().iter().all(|&c| c > 0) {
                models.insert(key, LogisticRegression::fit(&ds, params)?);
            }
        }
        let mut pooled = HashMap::new();
        for (rt, ds) in by_type {
            if ds.class_counts().iter().all(|&c| c > 0) {
                pooled.insert(rt, LogisticRegression::fit(&ds, params)?);
            }
        }
        if models.is_empty() && pooled.is_empty() {
            return Err(CoreError::InsufficientTrainingData {
                what: "no context had examples of both classes".to_owned(),
            });
        }
        let router = PlanRouter::build(
            |road, bucket| models.get(&(road, bucket)).map(LogisticRegression::batch_plan),
            |road| pooled.get(&road).map(LogisticRegression::batch_plan),
        );
        Ok(LogisticAd3Detector { models, pooled, router })
    }

    /// The abnormal-class probability for a record.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoModelForRoadType`] for untrained road types.
    pub fn p_abnormal(&self, rec: &FeatureRecord) -> Result<f64, CoreError> {
        let bucket = TimeBucket::of(rec.hour);
        let model = self
            .models
            .get(&(rec.road_type, bucket))
            .or_else(|| self.pooled.get(&rec.road_type))
            .ok_or(CoreError::NoModelForRoadType(rec.road_type))?;
        // Class 0 is abnormal in the paper's convention.
        Ok(model.predict_proba(&nb_features(rec))?[0])
    }

    /// Batched [`LogisticAd3Detector::p_abnormal`]: one entry per record,
    /// `None` where the scalar path errors. Bit-identical to the scalar
    /// path; grouping mirrors the context → pooled fallback.
    pub fn p_abnormal_batch(&self, recs: &[FeatureRecord], out: &mut Vec<Option<f64>>) {
        let base = out.len();
        out.resize(base + recs.len(), None);
        // Dense-LUT routing + counting-sort grouping, deterministic by
        // construction — see `Ad3Detector::p_abnormal_batch`.
        let mut slots: Vec<u16> = Vec::with_capacity(recs.len());
        for rec in recs {
            slots.push(self.router.slot(rec.road_type, TimeBucket::of(rec.hour)));
        }
        let mut starts: Vec<u32> = Vec::new();
        let mut grouped: Vec<u32> = Vec::new();
        group_by_slot(&slots, self.router.n_slots(), &mut starts, &mut grouped);
        let mut batch = FeatureBatch::new(4);
        let mut p1 = Vec::new();
        let mut proba = Vec::new();
        for slot in 1..=self.router.n_slots() as u16 {
            let idxs = &grouped
                [starts[usize::from(slot)] as usize..starts[usize::from(slot) + 1] as usize];
            if idxs.is_empty() {
                continue;
            }
            let plan = self.router.plan(slot);
            batch.clear();
            for &i in idxs {
                // Schema validation is vacuous for these rows — see
                // `Ad3Detector::p_abnormal_batch` — and the width always
                // matches, so `push_row` cannot fail either.
                let _ = batch.push_row(&nb_feature_array(&recs[i as usize]));
            }
            let n = batch.n_rows();
            p1.clear();
            p1.resize(n, 0.0);
            proba.clear();
            proba.resize(2 * n, 0.0);
            if plan.predict_proba_into(&batch, &mut p1, &mut proba).is_err() {
                continue;
            }
            for (k, &i) in idxs.iter().enumerate() {
                // proba is row-major [P(0), P(1)]; class 0 is abnormal.
                out[base + i as usize] = Some(proba[k * 2]);
            }
        }
    }
}

impl Detector for LogisticAd3Detector {
    fn name(&self) -> &'static str {
        "logistic-ad3"
    }

    fn detect(
        &self,
        rec: &FeatureRecord,
        _summary: Option<&VehicleSummary>,
    ) -> Result<Detection, CoreError> {
        Ok(Detection::from_p_abnormal(self.p_abnormal(rec)?))
    }

    fn detect_batch(
        &self,
        recs: &[FeatureRecord],
        observe: &mut dyn FnMut(usize, f64) -> Option<VehicleSummary>,
        out: &mut Vec<Option<Detection>>,
    ) {
        if recs.len() <= SCALAR_FALLBACK_MAX {
            return scalar_detect_batch(self, recs, observe, out);
        }
        let mut p_abn: Vec<Option<f64>> = Vec::with_capacity(recs.len());
        self.p_abnormal_batch(recs, &mut p_abn);
        for (i, p) in p_abn.iter().enumerate() {
            let Some(p) = *p else {
                out.push(None);
                continue;
            };
            let _ = observe(i, p);
            out.push(Some(Detection::from_p_abnormal(p)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_data::{DatasetConfig, SyntheticDataset};
    use cad3_ml::ConfusionMatrix;
    use cad3_types::Label;

    #[test]
    fn drops_into_the_detector_interface() {
        let ds = SyntheticDataset::generate(&DatasetConfig::small(71));
        let cut = ds.features.len() * 8 / 10;
        let det =
            LogisticAd3Detector::train(&ds.features[..cut], LogisticParams::default()).unwrap();
        assert_eq!(det.name(), "logistic-ad3");
        let mut cm = ConfusionMatrix::new();
        for rec in &ds.features[cut..] {
            if let Ok(d) = det.detect(rec, None) {
                cm.record(rec.label == Label::Abnormal, d.label == Label::Abnormal);
            }
        }
        assert!(cm.total() > 100);
        assert!(cm.accuracy() > 0.65, "accuracy {}", cm.accuracy());
        assert!(cm.f1() > 0.4, "f1 {}", cm.f1());
    }

    #[test]
    fn insufficient_data_is_an_error() {
        assert!(matches!(
            LogisticAd3Detector::train(&[], LogisticParams::default()),
            Err(CoreError::InsufficientTrainingData { .. }) | Err(CoreError::Ml(_))
        ));
    }
}

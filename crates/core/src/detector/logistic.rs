use super::{nb_features, nb_schema, Detection, Detector};
use crate::collaboration::VehicleSummary;
use crate::CoreError;
use cad3_data::TimeBucket;
use cad3_ml::{Dataset, LogisticParams, LogisticRegression};
use cad3_types::{FeatureRecord, RoadType};
use std::collections::HashMap;

/// A logistic-regression variant of the standalone edge detector — the
/// "more complex anomaly detection algorithms" the paper leaves as future
/// work, hosted unchanged by the CAD3 pipeline (it implements the same
/// [`Detector`] interface as the Naïve Bayes stage, so it drops into the
/// RSU, the testbed and the collaboration flow).
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticAd3Detector {
    models: HashMap<(RoadType, TimeBucket), LogisticRegression>,
    pooled: HashMap<RoadType, LogisticRegression>,
}

impl LogisticAd3Detector {
    /// Trains one logistic model per (road type, time regime), with
    /// hour-pooled per-road-type fallbacks, mirroring
    /// [`super::Ad3Detector::train`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientTrainingData`] when no context is
    /// trainable.
    pub fn train(records: &[FeatureRecord], params: LogisticParams) -> Result<Self, CoreError> {
        const MIN_CONTEXT_RECORDS: usize = 200;
        let mut by_context: HashMap<(RoadType, TimeBucket), Dataset> = HashMap::new();
        let mut by_type: HashMap<RoadType, Dataset> = HashMap::new();
        for rec in records {
            by_context
                .entry((rec.road_type, TimeBucket::of(rec.hour)))
                .or_insert_with(|| Dataset::new(nb_schema(), 2))
                .push(nb_features(rec), rec.label.class() as usize)?;
            by_type
                .entry(rec.road_type)
                .or_insert_with(|| Dataset::new(nb_schema(), 2))
                .push(nb_features(rec), rec.label.class() as usize)?;
        }
        let mut models = HashMap::new();
        for (key, ds) in by_context {
            if ds.len() >= MIN_CONTEXT_RECORDS && ds.class_counts().iter().all(|&c| c > 0) {
                models.insert(key, LogisticRegression::fit(&ds, params)?);
            }
        }
        let mut pooled = HashMap::new();
        for (rt, ds) in by_type {
            if ds.class_counts().iter().all(|&c| c > 0) {
                pooled.insert(rt, LogisticRegression::fit(&ds, params)?);
            }
        }
        if models.is_empty() && pooled.is_empty() {
            return Err(CoreError::InsufficientTrainingData {
                what: "no context had examples of both classes".to_owned(),
            });
        }
        Ok(LogisticAd3Detector { models, pooled })
    }

    /// The abnormal-class probability for a record.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoModelForRoadType`] for untrained road types.
    pub fn p_abnormal(&self, rec: &FeatureRecord) -> Result<f64, CoreError> {
        let bucket = TimeBucket::of(rec.hour);
        let model = self
            .models
            .get(&(rec.road_type, bucket))
            .or_else(|| self.pooled.get(&rec.road_type))
            .ok_or(CoreError::NoModelForRoadType(rec.road_type))?;
        // Class 0 is abnormal in the paper's convention.
        Ok(model.predict_proba(&nb_features(rec))?[0])
    }
}

impl Detector for LogisticAd3Detector {
    fn name(&self) -> &'static str {
        "logistic-ad3"
    }

    fn detect(
        &self,
        rec: &FeatureRecord,
        _summary: Option<&VehicleSummary>,
    ) -> Result<Detection, CoreError> {
        Ok(Detection::from_p_abnormal(self.p_abnormal(rec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_data::{DatasetConfig, SyntheticDataset};
    use cad3_ml::ConfusionMatrix;
    use cad3_types::Label;

    #[test]
    fn drops_into_the_detector_interface() {
        let ds = SyntheticDataset::generate(&DatasetConfig::small(71));
        let cut = ds.features.len() * 8 / 10;
        let det =
            LogisticAd3Detector::train(&ds.features[..cut], LogisticParams::default()).unwrap();
        assert_eq!(det.name(), "logistic-ad3");
        let mut cm = ConfusionMatrix::new();
        for rec in &ds.features[cut..] {
            if let Ok(d) = det.detect(rec, None) {
                cm.record(rec.label == Label::Abnormal, d.label == Label::Abnormal);
            }
        }
        assert!(cm.total() > 100);
        assert!(cm.accuracy() > 0.65, "accuracy {}", cm.accuracy());
        assert!(cm.f1() > 0.4, "f1 {}", cm.f1());
    }

    #[test]
    fn insufficient_data_is_an_error() {
        assert!(matches!(
            LogisticAd3Detector::train(&[], LogisticParams::default()),
            Err(CoreError::InsufficientTrainingData { .. }) | Err(CoreError::Ml(_))
        ));
    }
}

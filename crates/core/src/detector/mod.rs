//! The three detection models the paper compares: standalone edge (AD3),
//! collaborative edge (CAD3) and the centralized baseline.
//!
//! All three are binary classifiers over the Table II features with the
//! paper's class convention (`1` = normal, `0` = abnormal); internally the
//! class index equals [`Label::class`], so the abnormal class is index 0
//! and `p_abnormal = predict_proba(..)[0]`.

mod ad3;
mod cad3;
mod centralized;
mod logistic;
mod trainer;

pub use ad3::Ad3Detector;
pub use cad3::Cad3Detector;
pub use centralized::CentralizedDetector;
pub use logistic::LogisticAd3Detector;
pub use trainer::{train_all, TrainedModels};

use crate::collaboration::VehicleSummary;
use crate::CoreError;
use cad3_ml::{DecisionTreeParams, FeatureKind, Schema};
use cad3_types::{FeatureRecord, Label};

/// Output of a detector for one record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Predicted class.
    pub label: Label,
    /// Probability assigned to the abnormal class.
    pub p_abnormal: f64,
}

impl Detection {
    /// Builds a detection from an abnormal-class probability.
    pub fn from_p_abnormal(p: f64) -> Self {
        Detection { label: if p >= 0.5 { Label::Abnormal } else { Label::Normal }, p_abnormal: p }
    }
}

/// Hyper-parameters of model training.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionConfig {
    /// Decision-tree hyper-parameters for the collaborative model.
    pub dt_params: DecisionTreeParams,
    /// Eq. 1 fusion weight (0.5 in the paper).
    pub fusion_weight: f64,
    /// How many previous roads of prediction history the collaboration
    /// summaries retain (`None` = unbounded, the paper's behaviour).
    pub summary_road_depth: Option<usize>,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        // The stage-2 tree sees only summary-bearing records (a fraction of
        // the corpus) over a low-dimensional feature space; keep it shallow
        // and well-supported so sparse hour cells cannot carve degenerate
        // leaves.
        DetectionConfig {
            dt_params: DecisionTreeParams {
                max_depth: 6,
                min_samples_split: 50,
                min_samples_leaf: 25,
                max_thresholds: 32,
            },
            fusion_weight: 0.5,
            summary_road_depth: None,
        }
    }
}

/// The unified detector interface: every model maps a record (plus the
/// optional collaborative context) to a [`Detection`].
///
/// AD3 and the centralized baseline ignore the summary; CAD3 fuses it via
/// Eq. 1. Implementations must be `Send + Sync`: the RSU pipeline shares
/// one model across its parallel worker pool, exactly as a broadcast model
/// is shared across Spark executors.
pub trait Detector: Send + Sync {
    /// Short model name ("ad3", "cad3", "centralized").
    fn name(&self) -> &'static str;

    /// Classifies a record.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoModelForRoadType`] when the record's road
    /// type was absent from training, and propagates model errors.
    fn detect(
        &self,
        rec: &FeatureRecord,
        summary: Option<&VehicleSummary>,
    ) -> Result<Detection, CoreError>;

    /// The probability fed into the collaborative summaries (`P_NB` in the
    /// paper). For single-stage models this is the final probability; CAD3
    /// overrides it with its stage-1 Naïve Bayes output so summaries stay
    /// comparable across RSUs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect`].
    fn stage1_p_abnormal(&self, rec: &FeatureRecord) -> Result<f64, CoreError> {
        self.detect(rec, None).map(|d| d.p_abnormal)
    }

    /// A summary tracker configured the way this detector was trained
    /// (CAD3 overrides it to apply its summary road depth).
    fn new_tracker(&self) -> crate::SummaryTracker {
        crate::SummaryTracker::new()
    }

    /// Classifies a micro-batch of records, pushing one entry per record
    /// onto `out` (`None` where the scalar path would return an error).
    ///
    /// `observe` is the per-record collaboration hook: it is called exactly
    /// once, **in record order**, for every record whose stage-1 probability
    /// is computable, with that record's index and stage-1 probability, and
    /// returns the summary (if any) to fuse — mirroring how the RSU loop
    /// interleaves `stage1_p_abnormal`, `SummaryTracker::observe` and
    /// [`Detector::detect`]. Records whose stage 1 fails are *not* observed.
    ///
    /// The default implementation is the scalar loop; the built-in
    /// detectors override it with column-major batch plans whose outputs
    /// are bit-identical to the scalar path (see `cad3_ml::batch`).
    fn detect_batch(
        &self,
        recs: &[FeatureRecord],
        observe: &mut dyn FnMut(usize, f64) -> Option<VehicleSummary>,
        out: &mut Vec<Option<Detection>>,
    ) {
        scalar_detect_batch(self, recs, observe, out);
    }
}

/// The scalar reference loop behind [`Detector::detect_batch`]: per-record
/// stage 1, observation, then classification, in record order.
///
/// The batch overrides also route here below [`SCALAR_FALLBACK_MAX`]
/// records, where per-call grouping and scratch setup cost more than the
/// column-major sweeps save. Outputs are bit-identical on both paths (the
/// `batch_equivalence` proptests pin this), so the cutoff is purely a
/// latency choice.
pub(crate) fn scalar_detect_batch<D: Detector + ?Sized>(
    det: &D,
    recs: &[FeatureRecord],
    observe: &mut dyn FnMut(usize, f64) -> Option<VehicleSummary>,
    out: &mut Vec<Option<Detection>>,
) {
    for (i, rec) in recs.iter().enumerate() {
        let Ok(p1) = det.stage1_p_abnormal(rec) else {
            out.push(None);
            continue;
        };
        let summary = observe(i, p1);
        out.push(det.detect(rec, summary.as_ref()).ok());
    }
}

/// Batches at or below this size take the scalar loop inside the batch
/// overrides; above it the column-major plans win. Calibrated with
/// `bench_detect`: at 1 record the batch path's scratch setup roughly
/// doubles latency, by 16 records the sweep is already ~1.6× ahead.
pub(crate) const SCALAR_FALLBACK_MAX: usize = 8;

/// Time-of-day regimes a routing table distinguishes.
pub(crate) const N_BUCKETS: usize = 3;

/// Dense index of a time bucket for the routing LUT.
pub(crate) fn bucket_index(bucket: cad3_data::TimeBucket) -> usize {
    match bucket {
        cad3_data::TimeBucket::Night => 0,
        cad3_data::TimeBucket::Rush => 1,
        cad3_data::TimeBucket::Normal => 2,
    }
}

/// Resolves the context/pooled model-fallback routing of the AD3-style
/// detectors into a dense lookup table at training time, so the batch
/// detect path routes each record with one array index instead of
/// hashing `(RoadType, TimeBucket)` per record.
///
/// Slot 0 means "no model" (the scalar path's `NoModelForRoadType`);
/// slot `s >= 1` indexes `plans[s - 1]`. Slots are assigned scanning
/// `RoadType::ALL` × bucket order, so the derived evaluation order is
/// deterministic by construction — no map iteration anywhere.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PlanRouter<P> {
    plans: Vec<P>,
    lut: [u16; cad3_types::RoadType::ALL.len() * N_BUCKETS],
}

impl<P> PlanRouter<P> {
    /// Builds the table from the per-context and pooled plan sources,
    /// mirroring the scalar fallback: a context plan where one was
    /// trained, else the road type's hour-pooled plan, else no model.
    pub(crate) fn build(
        mut ctx_plan: impl FnMut(cad3_types::RoadType, cad3_data::TimeBucket) -> Option<P>,
        mut pooled_plan: impl FnMut(cad3_types::RoadType) -> Option<P>,
    ) -> Self {
        use cad3_data::TimeBucket;
        let mut plans = Vec::new();
        let mut lut = [0u16; cad3_types::RoadType::ALL.len() * N_BUCKETS];
        for road in cad3_types::RoadType::ALL {
            let mut pooled_slot = 0u16;
            for bucket in [TimeBucket::Night, TimeBucket::Rush, TimeBucket::Normal] {
                let slot = if let Some(p) = ctx_plan(road, bucket) {
                    plans.push(p);
                    plans.len() as u16
                } else if pooled_slot != 0 {
                    pooled_slot
                } else if let Some(p) = pooled_plan(road) {
                    plans.push(p);
                    pooled_slot = plans.len() as u16;
                    pooled_slot
                } else {
                    0
                };
                lut[road.code() as usize * N_BUCKETS + bucket_index(bucket)] = slot;
            }
        }
        PlanRouter { plans, lut }
    }

    /// The plan slot for a record's context (0 = no model).
    #[inline]
    pub(crate) fn slot(&self, road: cad3_types::RoadType, bucket: cad3_data::TimeBucket) -> u16 {
        self.lut[road.code() as usize * N_BUCKETS + bucket_index(bucket)]
    }

    /// Number of assigned plan slots (valid slots are `1..=n_slots()`).
    pub(crate) fn n_slots(&self) -> usize {
        self.plans.len()
    }

    /// The plan behind a non-zero slot.
    #[inline]
    pub(crate) fn plan(&self, slot: u16) -> &P {
        &self.plans[usize::from(slot) - 1]
    }
}

/// Splits a record batch into per-plan groups with one counting-sort
/// pass: `slots[i]` is record *i*'s routing slot, and on return
/// `grouped[starts[s] as usize..starts[s + 1] as usize]` lists the
/// records of slot `s` in record order. No hashing, no tree nodes.
pub(crate) fn group_by_slot(
    slots: &[u16],
    n_slots: usize,
    starts: &mut Vec<u32>,
    grouped: &mut Vec<u32>,
) {
    starts.clear();
    starts.resize(n_slots + 2, 0);
    for &s in slots {
        starts[usize::from(s) + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    grouped.clear();
    grouped.resize(slots.len(), 0);
    let mut cursor = starts.clone();
    for (i, &s) in slots.iter().enumerate() {
        let c = &mut cursor[usize::from(s)];
        grouped[*c as usize] = i as u32;
        *c += 1;
    }
}

/// The Naïve Bayes feature schema shared by AD3 and the centralized model:
/// `[InstSpeed, accel, Hour, RdType]` (the paper's four features).
pub(crate) fn nb_schema() -> Schema {
    Schema::new(vec![
        FeatureKind::Continuous,
        FeatureKind::Continuous,
        FeatureKind::Categorical { cardinality: 24 },
        FeatureKind::Categorical { cardinality: 10 },
    ])
}

/// Encodes a record into the NB feature vector.
pub(crate) fn nb_features(rec: &FeatureRecord) -> Vec<f64> {
    vec![rec.speed_kmh, rec.accel_mps2, rec.hour.get() as f64, rec.road_type.code() as f64]
}

/// Allocation-free variant of [`nb_features`] for the batch detect path.
pub(crate) fn nb_feature_array(rec: &FeatureRecord) -> [f64; 4] {
    [rec.speed_kmh, rec.accel_mps2, rec.hour.get() as f64, rec.road_type.code() as f64]
}

/// The Decision Tree feature schema of the collaborative model:
/// `[Hour, P_X, Class_NB]` (the paper's Fig. 4). The hour enters as the
/// 3-level time-of-day regime rather than 24 raw values: the tree's
/// training set (summary-bearing link records) is far too sparse per raw
/// hour, and raw-hour splits overfit cells that shift between trips.
pub(crate) fn dt_schema() -> Schema {
    Schema::new(vec![
        FeatureKind::Categorical { cardinality: 3 },
        FeatureKind::Continuous,
        FeatureKind::Categorical { cardinality: 2 },
    ])
}

/// Encodes an hour into the DT's coarse time-regime code.
pub(crate) fn dt_hour_code(hour: cad3_types::HourOfDay) -> f64 {
    match cad3_data::TimeBucket::of(hour) {
        cad3_data::TimeBucket::Night => 0.0,
        cad3_data::TimeBucket::Rush => 1.0,
        cad3_data::TimeBucket::Normal => 2.0,
    }
}

/// The paper's Eq. 1: `P_X = w · P̄_prevs + (1 − w) · P_NB`, degrading to
/// `P_NB` when no summary exists yet.
pub(crate) fn fuse_probability(p_nb: f64, summary: Option<&VehicleSummary>, weight: f64) -> f64 {
    match summary {
        Some(s) => weight * s.mean_probability + (1.0 - weight) * p_nb,
        None => p_nb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_types::{DayOfWeek, HourOfDay, RoadId, RoadType, TripId, VehicleId};

    fn rec() -> FeatureRecord {
        FeatureRecord {
            vehicle: VehicleId(1),
            trip: TripId(1),
            road: RoadId(1),
            accel_mps2: -0.5,
            speed_kmh: 88.0,
            hour: HourOfDay::new(17).unwrap(),
            day: DayOfWeek::Friday,
            road_type: RoadType::Motorway,
            road_speed_kmh: 100.0,
            label: Label::Normal,
        }
    }

    #[test]
    fn nb_features_encode_paper_columns() {
        let f = nb_features(&rec());
        assert_eq!(f, vec![88.0, -0.5, 17.0, 0.0]);
        nb_schema().validate(&f).unwrap();
    }

    #[test]
    fn dt_schema_validates_fusion_vector() {
        dt_schema().validate(&[1.0, 0.65, 1.0]).unwrap();
        assert!(dt_schema().validate(&[3.0, 0.65, 1.0]).is_err());
    }

    #[test]
    fn dt_hour_code_buckets() {
        use cad3_types::HourOfDay;
        let code = |h: u8| dt_hour_code(HourOfDay::new(h).unwrap());
        assert_eq!(code(3), 0.0); // night
        assert_eq!(code(8), 1.0); // rush
        assert_eq!(code(18), 1.0); // rush
        assert_eq!(code(13), 2.0); // normal
    }

    #[test]
    fn eq1_fusion() {
        let s = VehicleSummary { mean_probability: 0.8, count: 5, last_class: 0 };
        assert!((fuse_probability(0.2, Some(&s), 0.5) - 0.5).abs() < 1e-12);
        assert!((fuse_probability(0.2, None, 0.5) - 0.2).abs() < 1e-12);
        // Weight 0 ignores the summary; weight 1 trusts it fully.
        assert!((fuse_probability(0.2, Some(&s), 0.0) - 0.2).abs() < 1e-12);
        assert!((fuse_probability(0.2, Some(&s), 1.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn detection_threshold() {
        assert_eq!(Detection::from_p_abnormal(0.7).label, Label::Abnormal);
        assert_eq!(Detection::from_p_abnormal(0.5).label, Label::Abnormal);
        assert_eq!(Detection::from_p_abnormal(0.49).label, Label::Normal);
    }
}

use super::{Ad3Detector, Cad3Detector, CentralizedDetector, DetectionConfig};
use crate::CoreError;
use cad3_types::FeatureRecord;

/// All three models of the paper's comparison, trained on one corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModels {
    /// Distributed standalone model (per-road-type Naïve Bayes).
    pub ad3: Ad3Detector,
    /// Collaborative model (Naïve Bayes + summary-fused Decision Tree).
    pub cad3: Cad3Detector,
    /// Centralized baseline (one city-wide Naïve Bayes).
    pub centralized: CentralizedDetector,
}

/// Trains AD3, CAD3 and the centralized baseline on the same training
/// records (which must be in trip order; see [`Cad3Detector::train`]).
///
/// # Errors
///
/// Propagates any model's training error.
///
/// # Example
///
/// ```
/// use cad3::detector::{train_all, DetectionConfig, Detector};
/// use cad3_data::{DatasetConfig, SyntheticDataset};
///
/// let ds = SyntheticDataset::generate(&DatasetConfig::small(3));
/// let models = train_all(&ds.features, &DetectionConfig::default())?;
/// let d = models.ad3.detect(&ds.features[0], None)?;
/// assert!((0.0..=1.0).contains(&d.p_abnormal));
/// # Ok::<(), cad3::CoreError>(())
/// ```
pub fn train_all(
    records: &[FeatureRecord],
    config: &DetectionConfig,
) -> Result<TrainedModels, CoreError> {
    Ok(TrainedModels {
        ad3: Ad3Detector::train(records)?,
        cad3: Cad3Detector::train_with_depth(
            records,
            config.dt_params,
            config.fusion_weight,
            config.summary_road_depth,
        )?,
        centralized: CentralizedDetector::train(records)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use cad3_data::{DatasetConfig, SyntheticDataset};

    #[test]
    fn trains_all_three() {
        let ds = SyntheticDataset::generate(&DatasetConfig::small(41));
        let models = train_all(&ds.features, &DetectionConfig::default()).unwrap();
        let rec = &ds.features[10];
        for d in [
            models.ad3.detect(rec, None).unwrap(),
            models.cad3.detect(rec, None).unwrap(),
            models.centralized.detect(rec, None).unwrap(),
        ] {
            assert!((0.0..=1.0).contains(&d.p_abnormal));
        }
    }

    #[test]
    fn empty_corpus_fails() {
        assert!(train_all(&[], &DetectionConfig::default()).is_err());
    }
}

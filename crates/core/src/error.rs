use std::error::Error;
use std::fmt;

/// Errors surfaced by the CAD3 core library.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying model error (training or inference).
    Ml(cad3_ml::MlError),
    /// An underlying streaming error.
    Stream(cad3_stream::StreamError),
    /// A detector was asked about a road type it has no model for.
    NoModelForRoadType(cad3_types::RoadType),
    /// Training data was insufficient (e.g. a road type or class missing).
    InsufficientTrainingData {
        /// Human-readable description of what was missing.
        what: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Ml(e) => write!(f, "model error: {e}"),
            CoreError::Stream(e) => write!(f, "stream error: {e}"),
            CoreError::NoModelForRoadType(rt) => {
                write!(f, "no model trained for road type `{rt}`")
            }
            CoreError::InsufficientTrainingData { what } => {
                write!(f, "insufficient training data: {what}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Ml(e) => Some(e),
            CoreError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<cad3_ml::MlError> for CoreError {
    fn from(e: cad3_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

#[doc(hidden)]
impl From<cad3_stream::StreamError> for CoreError {
    fn from(e: cad3_stream::StreamError) -> Self {
        CoreError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(cad3_ml::MlError::EmptyDataset);
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
        let e = CoreError::NoModelForRoadType(cad3_types::RoadType::Trunk);
        assert!(e.to_string().contains("trunk"));
        assert!(e.source().is_none());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}

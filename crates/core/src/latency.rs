use cad3_sim::SampleSet;
use cad3_types::SimDuration;

/// The end-to-end latency decomposition of the paper's Fig. 6a:
/// transmission (DSRC access), queuing (wait for the micro-batch),
/// processing (detection compute) and dissemination (poll + fetch of the
/// warning).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Vehicle radio → RSU broker.
    pub tx: SimDuration,
    /// Broker arrival → micro-batch start.
    pub queuing: SimDuration,
    /// Micro-batch compute time.
    pub processing: SimDuration,
    /// Detection complete → warning delivered to consumers.
    pub dissemination: SimDuration,
}

impl LatencyBreakdown {
    /// Total end-to-end latency.
    pub fn total(&self) -> SimDuration {
        self.tx + self.queuing + self.processing + self.dissemination
    }
}

/// Aggregated latency samples for one experiment configuration.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    /// Transmission samples, milliseconds.
    pub tx_ms: SampleSet,
    /// Queuing samples, milliseconds.
    pub queuing_ms: SampleSet,
    /// Processing samples, milliseconds.
    pub processing_ms: SampleSet,
    /// Dissemination samples, milliseconds.
    pub dissemination_ms: SampleSet,
    /// Total end-to-end samples, milliseconds.
    pub total_ms: SampleSet,
}

impl LatencyStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fully decomposed measurement.
    ///
    /// When an exporter is attached ([`cad3_obs::enabled`]) the sample also
    /// feeds the `rsu.*_us` histograms, so a metrics snapshot reproduces the
    /// Fig. 6a stage decomposition in microseconds of modelled time.
    pub fn record(&mut self, b: &LatencyBreakdown) {
        self.record_inner(b, 0);
    }

    /// [`Self::record`] carrying the record's trace id (0 = untraced): on
    /// the exemplar-enabled histograms (`rsu.detect_us`, `rsu.total_us`)
    /// the observation publishes a tail exemplar, so any bucket above p95
    /// links back to a concrete assembled trace.
    fn record_inner(&mut self, b: &LatencyBreakdown, trace_id: u64) {
        self.tx_ms.push(b.tx.as_millis_f64());
        self.queuing_ms.push(b.queuing.as_millis_f64());
        self.processing_ms.push(b.processing.as_millis_f64());
        self.dissemination_ms.push(b.dissemination.as_millis_f64());
        self.total_ms.push(b.total().as_millis_f64());
        if cad3_obs::enabled() {
            cad3_obs::histogram!("rsu.tx_us").observe(b.tx.as_nanos() / 1_000);
            cad3_obs::histogram!("rsu.queuing_us").observe(b.queuing.as_nanos() / 1_000);
            cad3_obs::histogram!("rsu.processing_us").observe(b.processing.as_nanos() / 1_000);
            cad3_obs::histogram!("rsu.dissemination_us")
                .observe(b.dissemination.as_nanos() / 1_000);
            let detect = b.tx + b.queuing + b.processing;
            cad3_obs::histogram!("rsu.detect_us")
                .observe_with_exemplar(detect.as_nanos() / 1_000, trace_id);
            cad3_obs::histogram!("rsu.total_us")
                .observe_with_exemplar(b.total().as_nanos() / 1_000, trace_id);
        }
    }

    /// [`LatencyStats::record`], closing the record's distributed trace:
    /// emits an `rsu.disseminate` span from detection complete
    /// (`detected_ns`) to warning delivery (`delivered_ns`), attributed to
    /// `node`, for warnings whose trace context survived to the
    /// dissemination poll. The span's value is the dissemination share in
    /// nanoseconds, mirroring the breakdown's last stage.
    pub fn record_traced(
        &mut self,
        b: &LatencyBreakdown,
        trace: Option<&cad3_obs::TraceContext>,
        node: u32,
        detected_ns: u64,
        delivered_ns: u64,
    ) {
        self.record_inner(b, trace.map(|ctx| ctx.trace_id()).unwrap_or(0));
        if let Some(ctx) = trace {
            cad3_obs::trace_span!(
                "rsu.disseminate",
                ctx,
                detected_ns,
                delivered_ns,
                node,
                b.dissemination.as_nanos()
            );
        }
    }

    /// Number of recorded measurements.
    pub fn len(&self) -> usize {
        self.total_ms.len()
    }

    /// Whether no measurements were recorded.
    pub fn is_empty(&self) -> bool {
        self.total_ms.is_empty()
    }

    /// One-line summary in the Fig. 6a format.
    pub fn summary_line(&self) -> String {
        format!(
            "tx {:.2} ms | queue {:.2} ms | proc {:.2} ms | dissem {:.2} ms | total {:.2} ± {:.2} ms (n={})",
            self.tx_ms.mean(),
            self.queuing_ms.mean(),
            self.processing_ms.mean(),
            self.dissemination_ms.mean(),
            self.total_ms.mean(),
            self.total_ms.std_err(),
            self.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(ms: [u64; 4]) -> LatencyBreakdown {
        LatencyBreakdown {
            tx: SimDuration::from_millis(ms[0]),
            queuing: SimDuration::from_millis(ms[1]),
            processing: SimDuration::from_millis(ms[2]),
            dissemination: SimDuration::from_millis(ms[3]),
        }
    }

    #[test]
    fn total_is_sum_of_components() {
        let b = breakdown([1, 25, 8, 12]);
        assert_eq!(b.total(), SimDuration::from_millis(46));
    }

    #[test]
    fn stats_aggregate_components_independently() {
        let mut s = LatencyStats::new();
        s.record(&breakdown([1, 20, 8, 10]));
        s.record(&breakdown([3, 30, 12, 14]));
        assert_eq!(s.len(), 2);
        assert!((s.tx_ms.mean() - 2.0).abs() < 1e-12);
        assert!((s.queuing_ms.mean() - 25.0).abs() < 1e-12);
        assert!((s.processing_ms.mean() - 10.0).abs() < 1e-12);
        assert!((s.dissemination_ms.mean() - 12.0).abs() < 1e-12);
        assert!((s.total_ms.mean() - 49.0).abs() < 1e-12);
    }

    #[test]
    fn summary_line_mentions_all_components() {
        let mut s = LatencyStats::new();
        s.record(&breakdown([1, 2, 3, 4]));
        let line = s.summary_line();
        for key in ["tx", "queue", "proc", "dissem", "total"] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn empty_stats() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}

//! CAD3: edge-facilitated real-time collaborative abnormal-driving
//! distributed detection — the core library of the reproduction.
//!
//! This crate implements the paper's contribution on top of the substrate
//! crates:
//!
//! * **Detectors** ([`detector`]): the standalone per-road-type Naïve Bayes
//!   detector (AD3), the collaborative detector fusing cross-RSU prediction
//!   summaries through Eq. 1 and a Decision Tree (CAD3), and the
//!   centralized baseline.
//! * **Collaboration** ([`SummaryTracker`], [`VehicleSummary`]): the
//!   per-vehicle running prediction summaries RSUs exchange on handover
//!   (the `CO-DATA` flow of Figs. 3–4).
//! * **Safety model** ([`accidents`]): the Nilsson power-model estimate of
//!   potential accidents caused by false negatives (Eqs. 2–3).
//! * **Pipeline** ([`RsuNode`], [`VehicleAgent`]): the Kafka+Spark-style
//!   RSU pipeline over the three topics, and the vehicle agents that feed
//!   it at 10 Hz.
//! * **Testbed** ([`Testbed`], [`scenario`]): deterministic virtual-time
//!   reconstructions of every experiment in the paper's evaluation
//!   (latency/bandwidth scaling, multi-RSU dissemination, detection
//!   quality, mesoscopic trip analysis).
//!
//! # Quickstart
//!
//! ```
//! use cad3::detector::{train_all, DetectionConfig, Detector};
//! use cad3_data::{DatasetConfig, SyntheticDataset};
//!
//! // Generate a Shenzhen-like corpus and train all three models.
//! let ds = SyntheticDataset::generate(&DatasetConfig::small(7));
//! let models = train_all(&ds.features, &DetectionConfig::default())?;
//!
//! // Detect on a fresh record.
//! let mut tracker = cad3::SummaryTracker::new();
//! let rec = ds.features[0];
//! let summary = tracker.observe(rec.vehicle, rec.road, 0.9);
//! let detection = models.cad3.detect(&rec, summary.as_ref())?;
//! assert!(detection.p_abnormal >= 0.0 && detection.p_abnormal <= 1.0);
//! # Ok::<(), cad3::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accidents;
mod alerts;
mod collaboration;
mod config;
pub mod detector;
mod error;
mod latency;
mod roadstats;
mod rsu;
pub mod scenario;
mod testbed;
mod vehicle;

pub use alerts::AlertThrottle;
pub use collaboration::{lineage_context, lineage_of, SummaryTracker, VehicleSummary};
pub use testbed::{MigrationSpec, Observer, RsuReport, RsuSpec, ScenarioSpec};

/// Approximate centre of Shenzhen, used as the default reported position.
pub(crate) const fn shenzhen_center() -> cad3_types::GeoPoint {
    cad3_types::GeoPoint { lon: 114.06, lat: 22.54 }
}
pub use config::{ProcessingCostModel, SystemConfig};
pub use error::CoreError;
pub use latency::{LatencyBreakdown, LatencyStats};
pub use roadstats::OnlineRoadStats;
pub use rsu::{BatchResult, RsuNode};
pub use testbed::{Testbed, TestbedReport};
pub use vehicle::VehicleAgent;

#[cfg(test)]
pub(crate) mod testutil {
    /// Serialises unit tests that mutate process-global tracing state (the
    /// sampling rate and the shared trace sink), so concurrent tests in
    /// this binary cannot steal each other's drained events.
    pub static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}

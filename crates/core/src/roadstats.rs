use cad3_engine::KeyedWindows;
use cad3_types::{RoadId, SimDuration, SimTime};

/// Online per-road speed context — the RSU "learns the normal behavior
/// over time and maintains contextual information of the road in its
/// coverage" (the paper's Section III-A), using a sliding window so only
/// recent traffic defines the current norm.
#[derive(Debug, Clone)]
pub struct OnlineRoadStats {
    windows: KeyedWindows<RoadId>,
    min_samples: u64,
}

impl OnlineRoadStats {
    /// Creates stats over a 5-minute window at 10-second resolution,
    /// requiring 20 samples before reporting an estimate.
    pub fn new() -> Self {
        Self::with_window(SimDuration::from_secs(300), SimDuration::from_secs(10), 20)
    }

    /// Creates stats with a custom window, resolution and sample floor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < bucket <= window`.
    pub fn with_window(window: SimDuration, bucket: SimDuration, min_samples: u64) -> Self {
        OnlineRoadStats {
            windows: KeyedWindows::new(window.as_nanos(), bucket.as_nanos()),
            min_samples,
        }
    }

    /// Records one observed instantaneous speed on `road` at `t`.
    pub fn observe(&mut self, road: RoadId, t: SimTime, speed_kmh: f64) {
        self.windows.record(road, t.as_nanos(), speed_kmh);
    }

    /// The road's current mean speed over the window, once at least the
    /// configured number of recent samples exist.
    pub fn road_speed_kmh(&mut self, road: RoadId, now: SimTime) -> Option<f64> {
        let (count, mean) = self.windows.stats_at(&road, now.as_nanos())?;
        (count >= self.min_samples).then_some(mean)
    }

    /// Number of roads with any retained observations.
    pub fn roads_tracked(&self) -> usize {
        self.windows.len()
    }
}

impl Default for OnlineRoadStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_appears_after_enough_samples() {
        let mut stats =
            OnlineRoadStats::with_window(SimDuration::from_secs(60), SimDuration::from_secs(5), 10);
        let road = RoadId(7);
        for i in 0..9u64 {
            stats.observe(road, SimTime::from_secs(i), 100.0);
        }
        assert_eq!(stats.road_speed_kmh(road, SimTime::from_secs(9)), None);
        stats.observe(road, SimTime::from_secs(9), 100.0);
        let est = stats.road_speed_kmh(road, SimTime::from_secs(9)).unwrap();
        assert!((est - 100.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_tracks_congestion_onset() {
        // Free flow at 100 km/h, then congestion at 40: the windowed norm
        // follows within a window length.
        let mut stats =
            OnlineRoadStats::with_window(SimDuration::from_secs(60), SimDuration::from_secs(5), 5);
        let road = RoadId(1);
        for i in 0..120u64 {
            stats.observe(road, SimTime::from_secs(i), 100.0);
        }
        for i in 120..200u64 {
            stats.observe(road, SimTime::from_secs(i), 40.0);
        }
        let est = stats.road_speed_kmh(road, SimTime::from_secs(199)).unwrap();
        assert!((est - 40.0).abs() < 5.0, "estimate {est} should track congestion");
    }

    #[test]
    fn roads_are_independent() {
        let mut stats =
            OnlineRoadStats::with_window(SimDuration::from_secs(60), SimDuration::from_secs(5), 1);
        stats.observe(RoadId(1), SimTime::from_secs(1), 30.0);
        stats.observe(RoadId(2), SimTime::from_secs(1), 90.0);
        assert_eq!(stats.roads_tracked(), 2);
        let now = SimTime::from_secs(1);
        assert!((stats.road_speed_kmh(RoadId(1), now).unwrap() - 30.0).abs() < 1e-9);
        assert!((stats.road_speed_kmh(RoadId(2), now).unwrap() - 90.0).abs() < 1e-9);
        assert_eq!(stats.road_speed_kmh(RoadId(3), now), None);
    }
}

use crate::collaboration::{SummaryTracker, VehicleSummary};
use crate::config::ProcessingCostModel;
use crate::detector::Detector;
use crate::CoreError;
use bytes::Bytes;
use cad3_engine::{Executor, PartitionedDataset};
use cad3_stream::{
    Broker, Consumer, OffsetReset, PAPER_PARTITIONS, TOPIC_CO_DATA, TOPIC_IN_DATA, TOPIC_OUT_DATA,
};
use cad3_types::{
    RsuId, SimDuration, SimTime, SummaryMessage, VehicleId, VehicleStatus, WarningKind,
    WarningMessage, WireDecode, WireEncode,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Outcome of one RSU micro-batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Records processed in this batch.
    pub records: usize,
    /// Modelled detection compute time.
    pub processing: SimDuration,
    /// Per-record wait between broker arrival and batch start.
    pub queuing: Vec<SimDuration>,
    /// Warnings produced, stamped `detected_at = batch start + processing`.
    /// The caller publishes them to `OUT-DATA` at that instant.
    pub warnings: Vec<WarningMessage>,
    /// Trace context for each warning, aligned index-for-index with
    /// `warnings` (`None` for warnings from unsampled records). The caller
    /// passes it to [`RsuNode::publish_warning_traced`] so the
    /// dissemination leg joins the record's end-to-end trace.
    pub warning_traces: Vec<Option<cad3_obs::TraceContext>>,
    /// `CO-DATA` summaries consumed this batch.
    pub summaries_received: usize,
}

/// One road-side unit: a broker with the paper's three topics plus the
/// micro-batch detection pipeline (Fig. 3).
///
/// Each batch: (1) ingest `CO-DATA` summaries from the previous RSU into
/// the collaboration state, (2) pull the pending `IN-DATA` status packets,
/// (3) classify them as a parallel stage over the worker pool (the paper's
/// six-worker Spark cluster), partitioned by vehicle so each vehicle's
/// records stay ordered against its collaboration state, (4) emit warnings
/// for abnormal records.
pub struct RsuNode {
    id: RsuId,
    name: String,
    broker: Arc<Broker>,
    detector: Arc<dyn Detector>,
    executor: Executor,
    /// Per-vehicle collaboration state, sharded by vehicle hash so the
    /// parallel detection stage contends on nothing.
    shards: Vec<Mutex<SummaryTracker>>,
    in_consumer: Consumer,
    co_consumer: Consumer,
    cost_model: ProcessingCostModel,
    /// Pre-created `rsu.lag.<name>` gauge: publishing from the batch path
    /// is a single atomic store (no name formatting, no registry lock).
    lag_gauge: cad3_obs::Handle<cad3_obs::Gauge>,
    road_stats: crate::OnlineRoadStats,
    records_processed: u64,
    warnings_produced: u64,
    batches: u64,
}

impl std::fmt::Debug for RsuNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RsuNode")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("detector", &self.detector.name())
            .field("workers", &self.executor.workers())
            .field("records_processed", &self.records_processed)
            .field("warnings_produced", &self.warnings_produced)
            .field("batches", &self.batches)
            .finish()
    }
}

impl RsuNode {
    /// Creates an RSU with a fresh broker holding the three paper topics
    /// (`IN-DATA`, `OUT-DATA`, `CO-DATA`, three partitions each) and the
    /// paper's six-worker executor.
    pub fn new(
        id: RsuId,
        name: impl Into<String>,
        detector: Arc<dyn Detector>,
        cost_model: ProcessingCostModel,
    ) -> Self {
        Self::with_executor(id, name, detector, cost_model, Executor::paper_default())
    }

    /// Creates an RSU with a custom worker pool.
    pub fn with_executor(
        id: RsuId,
        name: impl Into<String>,
        detector: Arc<dyn Detector>,
        cost_model: ProcessingCostModel,
        executor: Executor,
    ) -> Self {
        let name = name.into();
        let broker = Arc::new(Broker::new(name.clone()));
        for topic in [TOPIC_IN_DATA, TOPIC_OUT_DATA, TOPIC_CO_DATA] {
            broker.create_topic(topic, PAPER_PARTITIONS).expect("fresh broker has no topics");
        }
        let mut in_consumer = Consumer::new(Arc::clone(&broker), "detector", OffsetReset::Earliest);
        in_consumer.subscribe(&[TOPIC_IN_DATA]).expect("topic just created");
        let mut co_consumer =
            Consumer::new(Arc::clone(&broker), "collaboration", OffsetReset::Earliest);
        co_consumer.subscribe(&[TOPIC_CO_DATA]).expect("topic just created");
        let shards = (0..executor.workers()).map(|_| Mutex::new(SummaryTracker::new())).collect();
        let lag_gauge =
            cad3_obs::registry().gauge(&format!("{}.{name}", cad3_obs::names::RSU_LAG_PREFIX));
        RsuNode {
            id,
            name,
            broker,
            detector,
            executor,
            shards,
            in_consumer,
            co_consumer,
            cost_model,
            lag_gauge,
            road_stats: crate::OnlineRoadStats::new(),
            records_processed: 0,
            warnings_produced: 0,
            batches: 0,
        }
    }

    /// The RSU's id.
    pub fn id(&self) -> RsuId {
        self.id
    }

    /// The RSU's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The RSU's broker (vehicles produce to / consume from it).
    pub fn broker(&self) -> Arc<Broker> {
        Arc::clone(&self.broker)
    }

    /// Total records processed.
    pub fn records_processed(&self) -> u64 {
        self.records_processed
    }

    /// Total warnings produced.
    pub fn warnings_produced(&self) -> u64 {
        self.warnings_produced
    }

    /// Total batches run.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    fn shard_of(&self, vehicle: VehicleId) -> usize {
        (vehicle.raw() % self.shards.len() as u64) as usize
    }

    /// Runs one micro-batch at virtual time `now`.
    ///
    /// # Errors
    ///
    /// Propagates stream errors; malformed messages are skipped (a real
    /// deployment logs and drops them).
    pub fn run_batch(&mut self, now: SimTime) -> Result<BatchResult, CoreError> {
        self.batches += 1;
        let _batch_span = cad3_obs::span!("rsu.micro_batch", self.batches);
        if cad3_obs::enabled() {
            // Pre-poll backlog: records that accumulated in IN-DATA since
            // the previous batch — the health engine's per-RSU lag signal.
            self.lag_gauge.set(self.in_consumer.lag());
        }

        // 1. Collaboration input.
        let mut summaries_received = 0;
        {
            let _fuse_span = cad3_obs::span!("rsu.handover.fuse");
            for rec in self.co_consumer.poll(usize::MAX)? {
                let arrival_ns = rec.timestamp;
                let mut buf: Bytes = rec.value;
                if let Ok(msg) = SummaryMessage::decode(&mut buf) {
                    let _held = cad3_lockrank::rank_scope!("cad3::RsuNode::shards");
                    let mut tracker = self.shards[self.shard_of(msg.vehicle)].lock();
                    tracker.seed(msg.vehicle, VehicleSummary::from_message(&msg));
                    if let Some(lineage) = &msg.trace {
                        // The fusion span covers the summary's wait in
                        // CO-DATA up to this batch and links back to the
                        // previous RSU's spans through the carried
                        // lineage; the continuation becomes the vehicle's
                        // lineage on *this* RSU.
                        let ctx = crate::collaboration::lineage_context(lineage);
                        let span = cad3_obs::trace_span!(
                            "rsu.handover.fuse",
                            &ctx,
                            arrival_ns,
                            now.as_nanos(),
                            self.id.raw()
                        );
                        tracker.set_lineage(
                            msg.vehicle,
                            crate::collaboration::lineage_of(&ctx.next_hop(span)),
                        );
                    }
                    summaries_received += 1;
                }
            }
        }
        cad3_obs::counter!("rsu.handover.summaries_in")
            .add(cad3_types::len_u64(summaries_received));

        // 2. Ingest the micro-batch and shard it by vehicle (the keyed
        //    partitioning the paper gets from Kafka's partitioner).
        let ingest_span = cad3_obs::span!("rsu.ingest");
        let batch = self.in_consumer.poll(usize::MAX)?;
        let records = batch.len();
        let processing = self.cost_model.batch_time(records);
        let detected_at = now + processing;

        let mut buckets: Vec<Vec<(u64, u64, cad3_stream::FetchedRecord)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for rec in batch {
            // Kafka keys our status records with the vehicle id.
            let vehicle = rec
                .key
                .as_ref()
                .filter(|k| k.len() == 8)
                .map(|k| u64::from_be_bytes(k[..8].try_into().expect("checked length")))
                .unwrap_or(0);
            // A traced record's two span ids (rsu.queue, rsu.detect) are
            // reserved here, in input order on the batch thread; the
            // workers emit with these pre-assigned ids, so trace artifacts
            // never depend on worker schedule (0 = untraced, unused).
            let span_base = if rec.trace.is_some() { cad3_obs::trace::reserve_ids(2) } else { 0 };
            buckets[(vehicle % self.shards.len() as u64) as usize].push((vehicle, span_base, rec));
        }
        drop(ingest_span);
        let detect_span = cad3_obs::span!("rsu.detect", cad3_types::len_u64(records));

        // 3-4. Detect in parallel per shard; within a shard, a vehicle's
        //      records run in order against its summary state.
        let detector = &self.detector;
        let shards = &self.shards;
        let n_shards = self.shards.len();
        let node = self.id.raw();
        /// Per-record result of the parallel stage: queuing wait, whether
        /// the record was processed, the warning (if abnormal), the
        /// (road, speed) observation feeding the road context, and the
        /// record's trace context after the detection spans (`None` for
        /// unsampled records).
        type RecordOutcome = (
            SimDuration,
            bool,
            Option<WarningMessage>,
            Option<(cad3_types::RoadId, f64)>,
            Option<cad3_obs::TraceContext>,
        );
        let outcomes: Vec<RecordOutcome> = PartitionedDataset::from_partitions(buckets)
            .map_partitions(&self.executor, |part| {
                let Some((first_vehicle, _, _)) = part.first() else { return Vec::new() };
                let _held = cad3_lockrank::rank_scope!("cad3::RsuNode::shards");
                let mut tracker = shards[(*first_vehicle % n_shards as u64) as usize].lock();

                // Phase 1: decode and emit the queue spans in input order,
                // compacting decodable records into a contiguous feature
                // slice for the batched detect sweep.
                let mut queuings = Vec::with_capacity(part.len());
                let mut traces = Vec::with_capacity(part.len());
                let mut statuses: Vec<Option<VehicleStatus>> = Vec::with_capacity(part.len());
                let mut feats = Vec::with_capacity(part.len());
                for (_, span_base, rec) in part {
                    queuings.push(now.saturating_since(SimTime::from_nanos(rec.timestamp)));
                    // A sampled record's broker wait becomes an `rsu.queue`
                    // span (arrival at the log to batch start), emitted on
                    // the first of the record's pre-reserved ids.
                    traces.push(rec.trace.map(|ctx| {
                        let span = cad3_obs::trace_span_at!(
                            "rsu.queue",
                            *span_base,
                            &ctx,
                            rec.timestamp,
                            now.as_nanos(),
                            node
                        );
                        ctx.child(span)
                    }));
                    let mut buf: Bytes = rec.value.clone();
                    match VehicleStatus::decode(&mut buf) {
                        Ok(status) => {
                            feats.push(status.to_feature());
                            statuses.push(Some(status));
                        }
                        Err(_) => statuses.push(None),
                    }
                }

                // Phase 2: one column-major detect sweep over the shard's
                // records. The tracker observes each stage-1 probability in
                // record order through the hook, so a vehicle's later
                // records see exactly the summary state the scalar loop
                // would have produced.
                let mut detections = Vec::with_capacity(feats.len());
                {
                    // Profile-only stage (no recorder write): safe inside
                    // worker threads where span records would race the ring.
                    let _sweep = cad3_obs::profile_span!("ml.nb.sweep");
                    detector.detect_batch(
                        &feats,
                        &mut |i, p1| tracker.observe(feats[i].vehicle, feats[i].road, p1),
                        &mut detections,
                    );
                }

                // Phase 3: per-record outcomes in input order — detect
                // spans on the pre-reserved ids, warnings for abnormal
                // records, road-speed observations.
                let mut out = Vec::with_capacity(part.len());
                let mut row = 0usize;
                let per_record = part.iter().zip(queuings).zip(statuses.into_iter().zip(traces));
                for (((_, span_base, _), queuing), (status, trace)) in per_record {
                    let Some(status) = status else {
                        out.push((queuing, false, None, None, trace));
                        continue;
                    };
                    let detection = detections.get(row).copied().flatten();
                    row += 1;
                    let Some(detection) = detection else {
                        out.push((queuing, false, None, None, trace));
                        continue;
                    };
                    let trace = trace.map(|ctx| {
                        let span = cad3_obs::trace_span_at!(
                            "rsu.detect",
                            span_base + 1,
                            &ctx,
                            now.as_nanos(),
                            detected_at.as_nanos(),
                            node
                        );
                        let next = ctx.child(span);
                        // The vehicle's latest sampled lineage rides the
                        // next CO-DATA export across the handover.
                        tracker
                            .set_lineage(status.vehicle, crate::collaboration::lineage_of(&next));
                        next
                    });
                    let warning = detection.label.is_abnormal().then(|| WarningMessage {
                        vehicle: status.vehicle,
                        road: status.road,
                        kind: WarningKind::classify(
                            status.speed_kmh,
                            status.road_speed_kmh,
                            status.accel_mps2,
                        ),
                        probability: detection.p_abnormal,
                        source_sent_at: status.sent_at,
                        detected_at,
                        source_seq: status.seq,
                    });
                    out.push((
                        queuing,
                        true,
                        warning,
                        Some((status.road, status.speed_kmh)),
                        trace,
                    ));
                }
                out
            })
            .collect();
        drop(detect_span);

        let mut queuing = Vec::with_capacity(records);
        let mut warnings = Vec::new();
        let mut warning_traces = Vec::new();
        for (q, processed, warning, observation, trace) in outcomes {
            queuing.push(q);
            self.records_processed += u64::from(processed);
            if let Some(w) = warning {
                warnings.push(w);
                warning_traces.push(trace);
            }
            if let Some((road, speed)) = observation {
                // Maintain the road's recent speed context (Section III-A).
                self.road_stats.observe(road, now, speed);
            }
        }
        self.warnings_produced += warnings.len() as u64;
        cad3_obs::counter!("rsu.records").add(cad3_types::len_u64(records));
        cad3_obs::counter!("rsu.warnings").add(cad3_types::len_u64(warnings.len()));
        Ok(BatchResult {
            records,
            processing,
            queuing,
            warnings,
            warning_traces,
            summaries_received,
        })
    }

    /// Publishes a warning to this RSU's `OUT-DATA` topic (done by the
    /// testbed at the warning's `detected_at` instant).
    ///
    /// # Errors
    ///
    /// Propagates stream errors.
    pub fn publish_warning(&self, warning: &WarningMessage) -> Result<(), CoreError> {
        self.publish_warning_traced(warning, None)
    }

    /// [`RsuNode::publish_warning`] with the warning's trace context (from
    /// [`BatchResult::warning_traces`]) attached to the `OUT-DATA` record,
    /// so the dissemination poll can attribute delivery latency to the
    /// originating trace.
    ///
    /// # Errors
    ///
    /// Propagates stream errors.
    pub fn publish_warning_traced(
        &self,
        warning: &WarningMessage,
        trace: Option<cad3_obs::TraceContext>,
    ) -> Result<(), CoreError> {
        let key = warning.vehicle.raw().to_be_bytes();
        self.broker.produce_traced(
            TOPIC_OUT_DATA,
            None,
            Some(Bytes::copy_from_slice(&key)),
            warning.encode_to_bytes(),
            warning.detected_at.as_nanos(),
            trace,
        )?;
        Ok(())
    }

    /// Exports the current per-vehicle summaries for forwarding to an
    /// adjacent RSU's `CO-DATA` (the handover flow of Fig. 3, step 2).
    pub fn export_summaries(&self, now: SimTime) -> Vec<SummaryMessage> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let _held = cad3_lockrank::rank_scope!("cad3::RsuNode::shards");
            let tracker = shard.lock();
            out.extend(
                tracker.vehicles().into_iter().filter_map(|v| tracker.export(v, self.id, now)),
            );
        }
        out.sort_by_key(|m| m.vehicle);
        cad3_obs::counter!("rsu.handover.summaries_out").add(cad3_types::len_u64(out.len()));
        out
    }

    /// The RSU's live per-road speed context (the windowed norm it has
    /// learned from recent traffic).
    pub fn road_stats_mut(&mut self) -> &mut crate::OnlineRoadStats {
        &mut self.road_stats
    }

    /// Accepts a summary message into this RSU's `CO-DATA` topic.
    ///
    /// # Errors
    ///
    /// Propagates stream errors.
    pub fn receive_summary(&self, msg: &SummaryMessage) -> Result<(), CoreError> {
        self.receive_summary_at(msg, msg.sent_at)
    }

    /// [`RsuNode::receive_summary`] with an explicit arrival time `at`
    /// (after link delay), so the fusion trace span measures the summary's
    /// wait in `CO-DATA` from actual arrival rather than from send.
    ///
    /// # Errors
    ///
    /// Propagates stream errors.
    pub fn receive_summary_at(&self, msg: &SummaryMessage, at: SimTime) -> Result<(), CoreError> {
        let key = msg.vehicle.raw().to_be_bytes();
        self.broker.produce(
            TOPIC_CO_DATA,
            None,
            Some(Bytes::copy_from_slice(&key)),
            msg.encode_to_bytes(),
            at.as_nanos(),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{train_all, DetectionConfig};
    use crate::VehicleAgent;
    use cad3_data::{DatasetConfig, SyntheticDataset};
    use cad3_types::{Label, VehicleId};

    fn rsu_with_vehicles() -> (RsuNode, Vec<VehicleAgent>, SyntheticDataset) {
        let ds = SyntheticDataset::generate(&DatasetConfig::small(51));
        let models = train_all(&ds.features, &DetectionConfig::default()).unwrap();
        let rsu = RsuNode::new(
            RsuId(1),
            "rsu-motorway",
            Arc::new(models.cad3),
            ProcessingCostModel::default(),
        );
        let vehicles = (0..4)
            .map(|i| {
                VehicleAgent::new(
                    VehicleId(900 + i),
                    ds.features[i as usize * 50..(i as usize + 1) * 50].to_vec(),
                )
            })
            .collect();
        (rsu, vehicles, ds)
    }

    fn push_status(rsu: &RsuNode, status: &VehicleStatus, arrival: SimTime) {
        let key = status.vehicle.raw().to_be_bytes();
        rsu.broker()
            .produce(
                TOPIC_IN_DATA,
                None,
                Some(Bytes::copy_from_slice(&key)),
                status.encode_to_bytes(),
                arrival.as_nanos(),
            )
            .unwrap();
    }

    #[test]
    fn creates_paper_topics_and_workers() {
        let (rsu, _, _) = rsu_with_vehicles();
        assert_eq!(rsu.broker().topic_names(), vec!["CO-DATA", "IN-DATA", "OUT-DATA"]);
        assert_eq!(rsu.name(), "rsu-motorway");
        assert_eq!(rsu.id(), RsuId(1));
        assert!(format!("{rsu:?}").contains("workers: 6"));
    }

    #[test]
    fn batch_processes_pending_records_once() {
        let (mut rsu, mut vehicles, _) = rsu_with_vehicles();
        for v in &mut vehicles {
            let s = v.next_status(SimTime::from_millis(10));
            push_status(&rsu, &s, SimTime::from_millis(11));
        }
        let r1 = rsu.run_batch(SimTime::from_millis(50)).unwrap();
        assert_eq!(r1.records, 4);
        assert_eq!(r1.queuing.len(), 4);
        assert!((r1.queuing[0].as_millis_f64() - 39.0).abs() < 1e-6);
        // Processing follows the calibrated cost model.
        assert!((r1.processing.as_millis_f64() - 7.29).abs() < 0.05);
        let r2 = rsu.run_batch(SimTime::from_millis(100)).unwrap();
        assert_eq!(r2.records, 0, "no duplicates");
        assert_eq!(rsu.batches(), 2);
    }

    #[test]
    fn abnormal_records_yield_warnings_with_latency_stamps() {
        let (mut rsu, _, ds) = rsu_with_vehicles();
        // Hand-craft a blatantly abnormal status: far above road speed.
        let template = ds.features.iter().find(|f| f.label == Label::Abnormal).copied().unwrap();
        let mut agent = VehicleAgent::new(VehicleId(999), vec![template]);
        let status = agent.next_status(SimTime::from_millis(5));
        push_status(&rsu, &status, SimTime::from_millis(6));
        let now = SimTime::from_millis(50);
        let result = rsu.run_batch(now).unwrap();
        assert_eq!(result.records, 1);
        if let Some(w) = result.warnings.first() {
            assert_eq!(w.vehicle, VehicleId(999));
            assert_eq!(w.source_sent_at, SimTime::from_millis(5));
            assert_eq!(w.detected_at, now + result.processing);
            rsu.publish_warning(w).unwrap();
            assert_eq!(rsu.broker().topic_len(TOPIC_OUT_DATA).unwrap(), 1);
        }
    }

    #[test]
    fn co_data_summaries_seed_the_tracker() {
        let (mut rsu, mut vehicles, _) = rsu_with_vehicles();
        let v = vehicles[0].id();
        rsu.receive_summary(&SummaryMessage {
            vehicle: v,
            from_rsu: RsuId(9),
            count: 30,
            mean_probability: 0.97,
            last_class: 0,
            sent_at: SimTime::from_millis(1),
            trace: None,
        })
        .unwrap();
        let s = vehicles[0].next_status(SimTime::from_millis(10));
        push_status(&rsu, &s, SimTime::from_millis(12));
        let result = rsu.run_batch(SimTime::from_millis(50)).unwrap();
        assert_eq!(result.summaries_received, 1);
        assert_eq!(result.records, 1);
        // The seeded history is now exportable.
        let exported = rsu.export_summaries(SimTime::from_millis(60));
        let mine = exported.iter().find(|m| m.vehicle == v).unwrap();
        assert!(mine.count >= 30);
    }

    #[test]
    fn export_summaries_cover_observed_vehicles() {
        let (mut rsu, mut vehicles, _) = rsu_with_vehicles();
        for v in &mut vehicles {
            let s = v.next_status(SimTime::from_millis(10));
            push_status(&rsu, &s, SimTime::from_millis(11));
        }
        rsu.run_batch(SimTime::from_millis(50)).unwrap();
        let summaries = rsu.export_summaries(SimTime::from_millis(60));
        assert_eq!(summaries.len(), 4);
        // Sorted by vehicle for deterministic forwarding.
        for w in summaries.windows(2) {
            assert!(w[0].vehicle < w[1].vehicle);
        }
        for s in &summaries {
            assert!(s.count >= 1);
            assert!((0.0..=1.0).contains(&s.mean_probability));
            assert_eq!(s.from_rsu, RsuId(1));
        }
    }

    #[test]
    fn traced_records_and_lineage_flow_through_a_batch() {
        let _serial =
            crate::testutil::TRACE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let (mut rsu, mut vehicles, _) = rsu_with_vehicles();
        // A sampled IN-DATA record carries its context into the batch.
        let v = vehicles[0].id();
        let status = vehicles[0].next_status(SimTime::from_millis(10));
        let ctx = cad3_obs::TraceContext::from_parts(4242, 1, 1);
        rsu.broker()
            .produce_traced(
                TOPIC_IN_DATA,
                None,
                Some(Bytes::copy_from_slice(&status.vehicle.raw().to_be_bytes())),
                status.encode_to_bytes(),
                SimTime::from_millis(11).as_nanos(),
                Some(ctx),
            )
            .unwrap();
        // A lineage-bearing CO-DATA summary links the fusion back to the
        // previous RSU's trace.
        let other = vehicles[1].id();
        rsu.receive_summary_at(
            &SummaryMessage {
                vehicle: other,
                from_rsu: RsuId(9),
                count: 3,
                mean_probability: 0.5,
                last_class: 1,
                sent_at: SimTime::from_millis(1),
                trace: Some(cad3_types::TraceLineage { trace_id: 777, parent_span: 5, hop: 2 }),
            },
            SimTime::from_millis(2),
        )
        .unwrap();
        let now = SimTime::from_millis(50);
        let result = rsu.run_batch(now).unwrap();
        assert_eq!(result.records, 1);
        assert_eq!(result.summaries_received, 1);
        assert_eq!(result.warnings.len(), result.warning_traces.len());

        let events = cad3_obs::trace::sink().drain();
        let mine: Vec<_> = events.iter().filter(|e| e.trace_id == 4242).collect();
        let names: Vec<&str> = mine.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["rsu.queue", "rsu.detect"]);
        assert!(mine.iter().all(|e| e.node == 1), "attributed to this RSU");
        assert_eq!(mine[0].start_ns, SimTime::from_millis(11).as_nanos());
        assert_eq!(mine[0].end_ns, now.as_nanos());
        assert_eq!(mine[1].parent, mine[0].span, "detect chains under queue");
        let fused: Vec<_> = events.iter().filter(|e| e.trace_id == 777).collect();
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].name, "rsu.handover.fuse");
        assert_eq!(fused[0].parent, 5, "links back to the sender's lineage");
        assert_eq!(fused[0].start_ns, SimTime::from_millis(2).as_nanos());
        assert_eq!(fused[0].end_ns, now.as_nanos());

        // Both vehicles' next exports continue their traces.
        let exported = rsu.export_summaries(SimTime::from_millis(60));
        let mine_export = exported.iter().find(|m| m.vehicle == v).unwrap().trace.unwrap();
        assert_eq!(mine_export.trace_id, 4242);
        assert_eq!(mine_export.parent_span, mine[1].span, "lineage points at the detect span");
        let other_export = exported.iter().find(|m| m.vehicle == other).unwrap().trace.unwrap();
        assert_eq!(other_export.trace_id, 777);
        assert_eq!(other_export.parent_span, fused[0].span);
        assert_eq!(other_export.hop, 3, "fusion bumps the hop count");
    }

    #[test]
    fn malformed_messages_are_skipped_not_fatal() {
        let (mut rsu, _, _) = rsu_with_vehicles();
        rsu.broker().produce(TOPIC_IN_DATA, None, None, Bytes::from_static(b"garbage"), 0).unwrap();
        let result = rsu.run_batch(SimTime::from_millis(50)).unwrap();
        assert_eq!(result.records, 1, "the record is consumed");
        assert!(result.warnings.is_empty(), "but produces nothing");
        assert_eq!(rsu.records_processed(), 0);
    }

    #[test]
    fn parallel_sharding_matches_sequential_single_worker() {
        // The same traffic through a 6-worker RSU and a 1-worker RSU must
        // yield identical detection outcomes.
        let ds = SyntheticDataset::generate(&DatasetConfig::small(53));
        let models = train_all(&ds.features, &DetectionConfig::default()).unwrap();
        let det: Arc<dyn Detector> = Arc::new(models.cad3);
        let mut parallel =
            RsuNode::new(RsuId(1), "p", Arc::clone(&det), ProcessingCostModel::default());
        let mut sequential = RsuNode::with_executor(
            RsuId(2),
            "s",
            det,
            ProcessingCostModel::default(),
            Executor::new(1),
        );
        let mut agents: Vec<VehicleAgent> = (0..12)
            .map(|i| VehicleAgent::new(VehicleId(i + 1), ds.features[..400].to_vec()))
            .collect();
        for step in 0..20u64 {
            for a in &mut agents {
                let s = a.next_status(SimTime::from_millis(step * 100));
                push_status(&parallel, &s, SimTime::from_millis(step * 100 + 1));
                push_status(&sequential, &s, SimTime::from_millis(step * 100 + 1));
            }
            let now = SimTime::from_millis(step * 100 + 50);
            let rp = parallel.run_batch(now).unwrap();
            let rs = sequential.run_batch(now).unwrap();
            assert_eq!(rp.records, rs.records);
            let mut wp: Vec<_> = rp.warnings.iter().map(|w| (w.vehicle, w.source_seq)).collect();
            let mut ws: Vec<_> = rs.warnings.iter().map(|w| (w.vehicle, w.source_seq)).collect();
            wp.sort_unstable();
            ws.sort_unstable();
            assert_eq!(wp, ws, "step {step}");
        }
        assert_eq!(parallel.records_processed(), sequential.records_processed());
    }
}

//! Canned reconstructions of every experiment in the paper's evaluation:
//! the single-RSU latency/bandwidth scaling of Fig. 6a/6c, the five-RSU
//! collaboration deployment of Fig. 6b/6d, the model comparison of Fig. 7
//! and Table IV, and the mesoscopic trip analysis of Fig. 8.

use crate::accidents::{expected_potential_accidents, EvaluatedRecord};
use crate::detector::{train_all, DetectionConfig, Detector, TrainedModels};
use crate::{CoreError, RsuSpec, ScenarioSpec, SystemConfig, Testbed, TestbedReport};
use cad3_data::SyntheticDataset;
use cad3_ml::ConfusionMatrix;
use cad3_sim::SimRng;
use cad3_types::{DriverProfile, FeatureRecord, Label, RoadType, SimDuration, TripId, VehicleId};
use std::collections::HashSet;
use std::sync::Arc;

/// Runs the Fig. 6a/6c scenario: one RSU, `vehicles` producers at 10 Hz.
///
/// `records` is the pool the vehicles replay (typically motorway records);
/// `detector` is the deployed model. Returns the per-RSU report (a single
/// entry).
pub fn single_rsu_scaling(
    config: SystemConfig,
    seed: u64,
    detector: Arc<dyn Detector>,
    records: Vec<FeatureRecord>,
    vehicles: u32,
    duration: SimDuration,
) -> TestbedReport {
    Testbed::new(config, seed).run(ScenarioSpec {
        rsus: vec![RsuSpec {
            name: format!("rsu-{vehicles}v"),
            detector,
            vehicles,
            records,
            forwards_to: None,
            backhaul: None,
        }],
        duration,
        warmup: SimDuration::from_millis(500),
        summary_interval: SimDuration::from_millis(500),
        migration: None,
    })
}

/// Runs the Fig. 6b/6d scenario: four motorway RSUs forwarding `CO-DATA`
/// summaries to one motorway-link RSU, 128 vehicles each (the paper's
/// "5 sets of 128 Kafka producers").
pub fn multi_rsu(
    config: SystemConfig,
    seed: u64,
    detector: Arc<dyn Detector>,
    motorway_records: Vec<FeatureRecord>,
    link_records: Vec<FeatureRecord>,
    vehicles_per_rsu: u32,
    duration: SimDuration,
) -> TestbedReport {
    let mut rsus = Vec::new();
    // Index 0 is the motorway-link RSU; 1..=4 are motorway RSUs feeding it.
    rsus.push(RsuSpec {
        name: "Mw Link".to_owned(),
        detector: Arc::clone(&detector),
        vehicles: vehicles_per_rsu,
        records: link_records,
        forwards_to: None,
        backhaul: None,
    });
    for i in 1..=4 {
        rsus.push(RsuSpec {
            name: format!("Mw R{i}"),
            detector: Arc::clone(&detector),
            vehicles: vehicles_per_rsu,
            records: motorway_records.clone(),
            forwards_to: Some(0),
            backhaul: None,
        });
    }
    Testbed::new(config, seed).run(ScenarioSpec {
        rsus,
        duration,
        warmup: SimDuration::from_millis(500),
        // Handover summaries are incremental and per-vehicle; a 2 s export
        // cadence models the paper's gradual producer migration and keeps
        // CO-DATA a small fraction of the vehicle uplink ("slightly
        // higher" in Fig. 6d).
        summary_interval: SimDuration::from_secs(2),
        migration: None,
    })
}

/// Runs the paper's handover emulation: two RSUs (motorway and motorway
/// link); halfway through the run, `fraction` of the motorway's vehicles
/// migrate to the link RSU, switch to the link sub-dataset, and their
/// prediction summaries follow them over the backhaul.
#[allow(clippy::too_many_arguments)] // mirrors the scenario's natural parameter list
pub fn handover_migration(
    config: SystemConfig,
    seed: u64,
    detector: Arc<dyn Detector>,
    motorway_records: Vec<FeatureRecord>,
    link_records: Vec<FeatureRecord>,
    vehicles: u32,
    fraction: f64,
    duration: SimDuration,
) -> TestbedReport {
    handover_migration_observed(
        config,
        seed,
        detector,
        motorway_records,
        link_records,
        vehicles,
        fraction,
        duration,
        Vec::new(),
    )
}

/// [`handover_migration`] with periodic [`crate::Observer`] hooks riding
/// the simulation clock — how the health monitor ticks during the
/// 2-RSU handover scenario (`health_report`, the `health-e2e` CI job).
#[allow(clippy::too_many_arguments)] // mirrors the scenario's natural parameter list
pub fn handover_migration_observed(
    config: SystemConfig,
    seed: u64,
    detector: Arc<dyn Detector>,
    motorway_records: Vec<FeatureRecord>,
    link_records: Vec<FeatureRecord>,
    vehicles: u32,
    fraction: f64,
    duration: SimDuration,
    observers: Vec<crate::Observer>,
) -> TestbedReport {
    let half = SimDuration::from_secs_f64(duration.as_secs_f64() / 2.0);
    Testbed::new(config, seed).run_observed(
        ScenarioSpec {
            rsus: vec![
                RsuSpec {
                    name: "rsu-motorway".to_owned(),
                    detector: Arc::clone(&detector),
                    vehicles,
                    records: motorway_records,
                    forwards_to: Some(1),
                    backhaul: None,
                },
                RsuSpec {
                    name: "rsu-motorway-link".to_owned(),
                    detector,
                    vehicles: vehicles / 4,
                    records: link_records.clone(),
                    forwards_to: None,
                    backhaul: None,
                },
            ],
            duration,
            warmup: SimDuration::from_millis(500),
            summary_interval: SimDuration::from_secs(2),
            migration: Some(crate::MigrationSpec {
                from: 0,
                to: 1,
                fraction,
                at: half,
                new_records: link_records,
            }),
        },
        observers,
    )
}

/// Runs the paper's motivating edge-vs-cloud comparison (Sections II-B and
/// VII-A): the same traffic served by a roadside RSU versus a cloud node
/// behind a backhaul (one-way latency paid by every status packet and every
/// warning). Returns `(edge, cloud)` reports.
#[allow(clippy::too_many_arguments)] // mirrors the scenario's natural parameter list
pub fn edge_vs_cloud(
    config: SystemConfig,
    seed: u64,
    detector: Arc<dyn Detector>,
    records: Vec<FeatureRecord>,
    vehicles: u32,
    backhaul_one_way: SimDuration,
    duration: SimDuration,
) -> (TestbedReport, TestbedReport) {
    let run = |backhaul: Option<SimDuration>, name: &str| {
        Testbed::new(config, seed).run(ScenarioSpec {
            rsus: vec![RsuSpec {
                name: name.to_owned(),
                detector: Arc::clone(&detector),
                vehicles,
                records: records.clone(),
                forwards_to: None,
                backhaul,
            }],
            duration,
            warmup: SimDuration::from_millis(500),
            summary_interval: SimDuration::from_secs(2),
            migration: None,
        })
    };
    (run(None, "edge-rsu"), run(Some(backhaul_one_way), "cloud-node"))
}

/// Detection-quality metrics of one model (a Fig. 7 / Table IV row).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelComparison {
    /// Model name ("centralized", "ad3", "cad3").
    pub model: String,
    /// Confusion matrix with abnormal as the positive class.
    pub confusion: ConfusionMatrix,
    /// Accuracy.
    pub accuracy: f64,
    /// F1 (abnormal positive).
    pub f1: f64,
    /// TP rate over all records (Table IV convention).
    pub tp_rate: f64,
    /// FN rate over all records (Table IV convention).
    pub fn_rate: f64,
    /// Expected potential accidents from false negatives, Eq. 3.
    pub expected_accidents: f64,
}

/// Splits a corpus 80/20 *by trip* (trips stay contiguous so the summary
/// replay matches the online pipeline) and evaluates the three models —
/// the paper's Fig. 7 + Table IV procedure.
///
/// Returns `[centralized, ad3, cad3]`.
///
/// # Errors
///
/// Propagates training errors.
pub fn detection_comparison(
    dataset: &SyntheticDataset,
    config: &DetectionConfig,
    seed: u64,
) -> Result<Vec<ModelComparison>, CoreError> {
    let mut rng = SimRng::seed_from(seed);
    let mut trip_ids: Vec<TripId> = {
        let mut v: Vec<TripId> = dataset.features.iter().map(|f| f.trip).collect();
        v.dedup();
        v
    };
    rng.shuffle(&mut trip_ids);
    let cut = (trip_ids.len() * 8 / 10).max(1);
    let train_trips: HashSet<TripId> = trip_ids[..cut].iter().copied().collect();

    let train: Vec<FeatureRecord> =
        dataset.features.iter().filter(|f| train_trips.contains(&f.trip)).copied().collect();
    let test: Vec<FeatureRecord> =
        dataset.features.iter().filter(|f| !train_trips.contains(&f.trip)).copied().collect();

    let models = train_all(&train, config)?;
    Ok(evaluate_models(&models, &test))
}

/// Evaluates already-trained models over a test stream (trip-ordered),
/// replaying collaborative summaries for CAD3 exactly as the RSU pipeline
/// would. Returns `[centralized, ad3, cad3]`.
///
/// Metrics are recorded **at the collaboration point**: on records of link
/// roads (the motorway-link RSU and its siblings), which is where the
/// paper's Fig. 7 comparison is made ("CAD3 outperforms both AD3 and the
/// centralized model in the motorway link RSU"). The whole stream still
/// flows through the summary tracker so CAD3 receives the handover context
/// a deployment would.
pub fn evaluate_models(models: &TrainedModels, test: &[FeatureRecord]) -> Vec<ModelComparison> {
    evaluate_models_where(models, test, |rec| rec.road_type.is_link())
}

/// Like [`evaluate_models`], with an explicit predicate selecting which
/// records contribute to the metrics (all records still feed the summary
/// tracker).
pub fn evaluate_models_where(
    models: &TrainedModels,
    test: &[FeatureRecord],
    count_metric: impl Fn(&FeatureRecord) -> bool,
) -> Vec<ModelComparison> {
    let mut tracker = models.cad3.new_tracker();
    let mut cms = [ConfusionMatrix::new(), ConfusionMatrix::new(), ConfusionMatrix::new()];
    let mut evaluated: [Vec<EvaluatedRecord>; 3] = [Vec::new(), Vec::new(), Vec::new()];

    for rec in test {
        let Ok(p_nb) = models.cad3.naive_bayes().p_abnormal(rec) else { continue };
        let summary = tracker.observe(rec.vehicle, rec.road, p_nb);
        if !count_metric(rec) {
            continue;
        }
        let preds = [
            models.centralized.detect(rec, None),
            models.ad3.detect(rec, None),
            models.cad3.detect(rec, summary.as_ref()),
        ];
        for (i, pred) in preds.into_iter().enumerate() {
            let Ok(d) = pred else { continue };
            cms[i].record(rec.label == Label::Abnormal, d.label == Label::Abnormal);
            evaluated[i].push(EvaluatedRecord::new(rec, d.label));
        }
    }

    ["centralized", "ad3", "cad3"]
        .iter()
        .zip(cms.iter().zip(evaluated.iter()))
        .map(|(name, (cm, ev))| ModelComparison {
            model: (*name).to_owned(),
            confusion: *cm,
            accuracy: cm.accuracy(),
            f1: cm.f1(),
            tp_rate: cm.tp_rate_overall(),
            fn_rate: cm.fn_rate_overall(),
            expected_accidents: expected_potential_accidents(ev.iter()),
        })
        .collect()
}

/// One point of the mesoscopic (driver-trip) timeline of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MesoscopicPoint {
    /// Index along the trip.
    pub index: usize,
    /// Road type at this point.
    pub road_type: RoadType,
    /// Ground truth.
    pub truth: Label,
    /// Centralized model's verdict.
    pub centralized: Label,
    /// AD3's verdict.
    pub ad3: Label,
    /// CAD3's verdict.
    pub cad3: Label,
}

/// The Fig. 8 mesoscopic analysis for one trip.
#[derive(Debug, Clone)]
pub struct MesoscopicResult {
    /// The analysed trip.
    pub trip: TripId,
    /// The vehicle.
    pub vehicle: VehicleId,
    /// The driver's ground-truth profile.
    pub profile: DriverProfile,
    /// Per-point verdicts.
    pub points: Vec<MesoscopicPoint>,
}

impl MesoscopicResult {
    /// Accuracy of each model over the trip: `[centralized, ad3, cad3]`.
    pub fn accuracies(&self) -> [f64; 3] {
        let n = self.points.len().max(1) as f64;
        let count = |f: &dyn Fn(&MesoscopicPoint) -> Label| {
            self.points.iter().filter(|p| f(p) == p.truth).count() as f64 / n
        };
        [count(&|p| p.centralized), count(&|p| p.ad3), count(&|p| p.cad3)]
    }

    /// Number of prediction flips (instability) per model:
    /// `[centralized, ad3, cad3]`. The paper's Fig. 8 point is that CAD3 is
    /// *stable* while AD3 fluctuates and centralized is unpredictable.
    pub fn flips(&self) -> [usize; 3] {
        let flips = |f: &dyn Fn(&MesoscopicPoint) -> Label| {
            self.points.windows(2).filter(|w| f(&w[0]) != f(&w[1])).count()
        };
        [flips(&|p| p.centralized), flips(&|p| p.ad3), flips(&|p| p.cad3)]
    }
}

/// Replays one trip through all three models (Fig. 8). The trip should be
/// from the test split; its records are taken from the dataset in order.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientTrainingData`] if the trip has no
/// records usable by the models.
pub fn mesoscopic_trip(
    dataset: &SyntheticDataset,
    models: &TrainedModels,
    trip: TripId,
) -> Result<MesoscopicResult, CoreError> {
    let records: Vec<FeatureRecord> =
        dataset.features.iter().filter(|f| f.trip == trip).copied().collect();
    let mut tracker = models.cad3.new_tracker();
    let mut points = Vec::new();
    let mut vehicle = VehicleId(0);
    for (index, rec) in records.iter().enumerate() {
        vehicle = rec.vehicle;
        let Ok(p_nb) = models.cad3.naive_bayes().p_abnormal(rec) else { continue };
        let summary = tracker.observe(rec.vehicle, rec.road, p_nb);
        let (Ok(c), Ok(a), Ok(k)) = (
            models.centralized.detect(rec, None),
            models.ad3.detect(rec, None),
            models.cad3.detect(rec, summary.as_ref()),
        ) else {
            continue;
        };
        points.push(MesoscopicPoint {
            index,
            road_type: rec.road_type,
            truth: rec.label,
            centralized: c.label,
            ad3: a.label,
            cad3: k.label,
        });
    }
    if points.is_empty() {
        return Err(CoreError::InsufficientTrainingData {
            what: format!("trip {trip} has no records usable by the models"),
        });
    }
    let profile = dataset.profiles.get(&vehicle).copied().unwrap_or(DriverProfile::Typical);
    Ok(MesoscopicResult { trip, vehicle, profile, points })
}

/// Finds a test-set trip by an abnormal driver crossing at least two roads
/// — the kind of trip Fig. 8 illustrates (a car behaving abnormally while
/// moving across the network).
///
/// Prefers the paper's microscopic shape — a trip that starts on a
/// motorway and hands over to its link — and a moderate length; falls back
/// to the longest multi-road trip of the profile.
pub fn find_mesoscopic_trip(dataset: &SyntheticDataset, profile: DriverProfile) -> Option<TripId> {
    let candidates: Vec<_> = dataset
        .trips
        .iter()
        .filter(|t| dataset.profiles.get(&t.vehicle) == Some(&profile))
        .filter(|t| t.roads.len() >= 2)
        .collect();
    let points = |trip: TripId| dataset.features.iter().filter(|f| f.trip == trip).count();
    let microscopic = candidates
        .iter()
        .filter(|t| {
            dataset.network.road(t.roads[0]).map(|r| r.road_type) == Some(RoadType::Motorway)
        })
        .map(|t| (t.trip, points(t.trip)))
        .filter(|(_, n)| (80..900).contains(n))
        .max_by_key(|(_, n)| *n);
    microscopic
        .map(|(t, _)| t)
        .or_else(|| candidates.iter().map(|t| t.trip).max_by_key(|t| points(*t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_data::DatasetConfig;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::small(61))
    }

    #[test]
    fn comparison_reproduces_paper_ordering() {
        // Fig. 7 + Table IV: CAD3 ≥ AD3 > centralized on F1; FN rates and
        // expected accidents in the opposite order.
        let ds = dataset();
        let rows = detection_comparison(&ds, &DetectionConfig::default(), 5).unwrap();
        assert_eq!(rows.len(), 3);
        let (central, ad3, cad3) = (&rows[0], &rows[1], &rows[2]);
        assert_eq!(central.model, "centralized");
        assert!(ad3.f1 > central.f1, "AD3 {} vs centralized {}", ad3.f1, central.f1);
        assert!(cad3.f1 + 0.01 >= ad3.f1, "CAD3 {} vs AD3 {}", cad3.f1, ad3.f1);
        assert!(cad3.fn_rate <= ad3.fn_rate, "CAD3 FN {} vs AD3 {}", cad3.fn_rate, ad3.fn_rate);
        assert!(ad3.fn_rate < central.fn_rate);
        assert!(
            cad3.expected_accidents < central.expected_accidents,
            "CAD3 E(Λ) {} vs centralized {}",
            cad3.expected_accidents,
            central.expected_accidents
        );
    }

    #[test]
    fn mesoscopic_cad3_is_most_stable() {
        let ds = dataset();
        let mut trips: Vec<TripId> = ds.features.iter().map(|f| f.trip).collect();
        trips.dedup();
        let cut = (trips.len() * 8 / 10).max(1);
        let train: Vec<FeatureRecord> =
            ds.features.iter().filter(|f| trips[..cut].contains(&f.trip)).copied().collect();
        let models = train_all(&train, &DetectionConfig::default()).unwrap();
        let trip = find_mesoscopic_trip(&ds, DriverProfile::Sluggish).expect("sluggish trip");
        let result = mesoscopic_trip(&ds, &models, trip).unwrap();
        assert!(result.points.len() > 20);
        assert_eq!(result.profile, DriverProfile::Sluggish);
        let [acc_c, acc_a, acc_k] = result.accuracies();
        // CAD3 should track the abnormal driver at least as well as the
        // others on this trip.
        assert!(acc_k + 0.05 >= acc_a, "cad3 {acc_k} vs ad3 {acc_a}");
        assert!(acc_k > acc_c - 0.05, "cad3 {acc_k} vs centralized {acc_c}");
    }

    #[test]
    fn mesoscopic_missing_trip_errors() {
        let ds = dataset();
        let train: Vec<FeatureRecord> = ds.features[..ds.features.len() / 2].to_vec();
        let models = train_all(&train, &DetectionConfig::default()).unwrap();
        assert!(mesoscopic_trip(&ds, &models, TripId(999_999)).is_err());
    }

    #[test]
    fn evaluate_models_returns_three_rows() {
        let ds = dataset();
        let models = train_all(&ds.features, &DetectionConfig::default()).unwrap();
        let rows = evaluate_models(&models, &ds.features[..500]);
        assert_eq!(rows.len(), 3);
        for r in rows {
            assert!(r.accuracy > 0.0);
            assert!(r.confusion.total() > 0);
        }
    }
}

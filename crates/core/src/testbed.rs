//! Deterministic virtual-time reconstruction of the paper's physical
//! testbed (Fig. 5): vehicles (Kafka producers) on an emulated DSRC access
//! network, RSUs (broker + micro-batch detection) and a warning
//! dissemination path polled every 10 ms.
//!
//! Every latency component of Fig. 6a is modelled explicitly:
//!
//! * **Tx** — HTB-shaped DSRC medium access ([`cad3_net::DsrcChannel`]).
//! * **Queuing** — wait for the next 50 ms micro-batch.
//! * **Processing** — the calibrated [`crate::ProcessingCostModel`].
//! * **Dissemination** — wait for the vehicle's next 10 ms `OUT-DATA` poll
//!   plus a consumer-fetch latency (`7.2 ± 4.4 ms` in the paper).

use crate::detector::Detector;
use crate::{LatencyBreakdown, LatencyStats, RsuNode, SystemConfig};
use bytes::Bytes;
use cad3_net::{DsrcChannel, HtbShaper, MacModel, Mcs, WiredLink};
use cad3_sim::{SimRng, Simulation};
use cad3_stream::{Consumer, OffsetReset, TOPIC_IN_DATA, TOPIC_OUT_DATA};
use cad3_types::{
    FeatureRecord, GeoPoint, RsuId, SimDuration, SimTime, VehicleId, WarningMessage, WireDecode,
    WireEncode,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Default geographic position reported by simulated vehicles.
pub(crate) const DEFAULT_POSITION: GeoPoint = crate::shenzhen_center();

/// Specification of one RSU in a testbed scenario.
pub struct RsuSpec {
    /// Human-readable name ("Mw R1", "Mw Link", ...).
    pub name: String,
    /// Detector deployed at this RSU.
    pub detector: Arc<dyn Detector>,
    /// Number of vehicles attached to this RSU.
    pub vehicles: u32,
    /// Record pool the vehicles replay (sliced round-robin per vehicle).
    pub records: Vec<FeatureRecord>,
    /// Index of the RSU that receives this RSU's `CO-DATA` summaries, if
    /// any (the motorway→motorway-link collaboration of Fig. 3).
    pub forwards_to: Option<usize>,
    /// One-way backhaul latency between the vehicles' radio access and
    /// this node's compute, if the node is *not* at the roadside — models
    /// the cloud-offload baseline of the paper's Section II-B (status
    /// packets pay it on the way up, warnings on the way down). `None`
    /// for a true edge RSU.
    pub backhaul: Option<SimDuration>,
}

/// A mid-run vehicle handover — the paper's emulation of mobility, where a
/// portion of the motorway RSU's producers migrate to the motorway-link
/// RSU and start replaying the link sub-dataset.
pub struct MigrationSpec {
    /// RSU index the vehicles leave.
    pub from: usize,
    /// RSU index the vehicles join.
    pub to: usize,
    /// Fraction of the `from` fleet that migrates (clamped to `[0, 1]`).
    pub fraction: f64,
    /// Virtual instant of the handover.
    pub at: SimDuration,
    /// Record pool the migrated vehicles replay afterwards (the link
    /// sub-dataset in the paper's scenario).
    pub new_records: Vec<FeatureRecord>,
}

/// A full testbed scenario.
pub struct ScenarioSpec {
    /// Participating RSUs.
    pub rsus: Vec<RsuSpec>,
    /// Virtual run time.
    pub duration: SimDuration,
    /// Samples delivered before this instant are discarded (system
    /// warm-up).
    pub warmup: SimDuration,
    /// Interval at which forwarding RSUs export summaries.
    pub summary_interval: SimDuration,
    /// Optional mid-run handover.
    pub migration: Option<MigrationSpec>,
}

/// Per-RSU experiment outputs.
#[derive(Debug, Clone)]
pub struct RsuReport {
    /// RSU name.
    pub name: String,
    /// Warning-path latency decomposition (one sample per delivered
    /// warning).
    pub latency: LatencyStats,
    /// Average uplink bandwidth received by the RSU, bits/s (on-air bytes,
    /// i.e. payload plus MAC framing).
    pub uplink_bps: f64,
    /// Average per-vehicle uplink bandwidth, bits/s.
    pub per_vehicle_bps: f64,
    /// Average inbound `CO-DATA` bandwidth, bits/s.
    pub co_data_bps: f64,
    /// Status records processed.
    pub records: u64,
    /// Warnings produced.
    pub warnings: u64,
    /// Micro-batches executed.
    pub batches: u64,
}

/// Results of a testbed run.
#[derive(Debug, Clone)]
pub struct TestbedReport {
    /// One report per RSU, in scenario order.
    pub per_rsu: Vec<RsuReport>,
}

impl TestbedReport {
    /// Latency statistics pooled over all RSUs.
    pub fn pooled_latency(&self) -> LatencyStats {
        let mut pooled = LatencyStats::new();
        for r in &self.per_rsu {
            pooled.tx_ms.merge(&r.latency.tx_ms);
            pooled.queuing_ms.merge(&r.latency.queuing_ms);
            pooled.processing_ms.merge(&r.latency.processing_ms);
            pooled.dissemination_ms.merge(&r.latency.dissemination_ms);
            pooled.total_ms.merge(&r.latency.total_ms);
        }
        pooled
    }
}

/// The virtual-time testbed runner.
#[derive(Debug, Clone, Copy)]
pub struct Testbed {
    config: SystemConfig,
    seed: u64,
}

/// A periodic observer attached to a testbed run: `hook` is called every
/// `interval` of virtual time (first at `interval`, last at or before the
/// scenario end), interleaved deterministically with the scenario's own
/// events. The health monitor ticks through one of these; benches use them
/// to sample mid-run snapshots.
pub struct Observer {
    /// Virtual-time period between calls.
    pub interval: SimDuration,
    /// The callback; receives the current virtual instant.
    pub hook: Box<dyn FnMut(SimTime)>,
}

struct World {
    config: SystemConfig,
    end: SimTime,
    warmup: SimTime,
    rng: SimRng,
    rsus: Vec<RsuNode>,
    channels: Vec<DsrcChannel>,
    /// Per-RSU fleet of vehicle agents.
    fleets: Vec<Vec<crate::VehicleAgent>>,
    /// Current RSU of each vehicle, indexed like `fleets`; handovers move
    /// vehicles by rewriting this table.
    home: Vec<Vec<usize>>,
    /// One-way backhaul latency per RSU (zero for edge nodes).
    backhauls: Vec<SimDuration>,
    /// Per-RSU representative warning consumer.
    out_consumers: Vec<Consumer>,
    /// Wired links keyed by (from, to) RSU index.
    links: HashMap<(usize, usize), WiredLink>,
    /// In-flight warning-path components keyed by (vehicle, seq).
    pending: HashMap<(u64, u32), (SimDuration, SimDuration, SimDuration)>,
    /// Pre-created `net.dsrc.offered_bps.<rsu>` gauges, indexed like
    /// `channels`; published from the batch path as a single atomic store.
    offered_gauges: Vec<cad3_obs::Handle<cad3_obs::Gauge>>,
    latency: Vec<LatencyStats>,
    co_bytes: Vec<u64>,
    /// On-air bytes added to each payload (MAC framing + record header).
    wire_overhead: usize,
}

impl Testbed {
    /// Creates a testbed with the given system configuration and seed.
    pub fn new(config: SystemConfig, seed: u64) -> Self {
        config.validate();
        Testbed { config, seed }
    }

    /// Runs a scenario to completion and reports per-RSU measurements.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no RSUs or an RSU has no vehicles or
    /// records.
    pub fn run(&self, spec: ScenarioSpec) -> TestbedReport {
        self.run_observed(spec, Vec::new())
    }

    /// [`Testbed::run`] with periodic [`Observer`] hooks riding the
    /// simulation clock — the health monitor's sampling tick, mid-run
    /// snapshot capture. Observers are ordinary simulation events, so an
    /// observed run interleaves them deterministically; an empty observer
    /// list reproduces [`Testbed::run`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no RSUs or an RSU has no vehicles or
    /// records.
    pub fn run_observed(&self, spec: ScenarioSpec, observers: Vec<Observer>) -> TestbedReport {
        assert!(!spec.rsus.is_empty(), "scenario needs at least one RSU");
        let mut rng = SimRng::seed_from(self.seed);
        let config = self.config;
        let end = SimTime::ZERO + spec.duration;

        // Build the world.
        let mut rsus = Vec::new();
        let mut channels = Vec::new();
        let mut fleets = Vec::new();
        let mut out_consumers = Vec::new();
        let mut links = HashMap::new();
        let mut offered_gauges = Vec::new();
        for (i, r) in spec.rsus.iter().enumerate() {
            assert!(r.vehicles > 0, "RSU `{}` needs vehicles", r.name);
            assert!(!r.records.is_empty(), "RSU `{}` needs records", r.name);
            let node = RsuNode::new(
                RsuId(i as u32),
                r.name.clone(),
                Arc::clone(&r.detector),
                config.cost_model,
            );
            let mut consumer =
                Consumer::new(node.broker(), format!("fleet-{i}"), OffsetReset::Earliest);
            consumer.subscribe(&[TOPIC_OUT_DATA]).expect("topic exists");
            out_consumers.push(consumer);
            // The testbed channel: high-rate MCS (the paper's testbed is a
            // shaped 1 Gb/s link, not a contended radio), HTB as configured
            // by the paper's netem setup.
            channels.push(DsrcChannel::new(
                MacModel::default(),
                Mcs::MCS8,
                HtbShaper::paper_default(),
                r.vehicles,
                config.update_period,
            ));
            offered_gauges.push(cad3_obs::registry().gauge(&format!(
                "{}.{}",
                cad3_obs::names::NET_DSRC_OFFERED_BPS_PREFIX,
                r.name
            )));
            // Group the pool by its original driver so each agent replays a
            // behaviourally coherent stream (summaries would otherwise see
            // one "vehicle" flip personality every record).
            let mut by_driver: std::collections::BTreeMap<VehicleId, Vec<FeatureRecord>> =
                std::collections::BTreeMap::new();
            for rec in &r.records {
                by_driver.entry(rec.vehicle).or_default().push(*rec);
            }
            let pools: Vec<Vec<FeatureRecord>> = by_driver.into_values().collect();
            let fleet: Vec<crate::VehicleAgent> = (0..r.vehicles)
                .map(|v| {
                    let pool = pools[v as usize % pools.len()].clone();
                    crate::VehicleAgent::new(VehicleId(((i as u64) << 32) | (v as u64 + 1)), pool)
                })
                .collect();
            fleets.push(fleet);
            rsus.push(node);
            if let Some(to) = r.forwards_to {
                assert!(to < spec.rsus.len() && to != i, "invalid forwards_to for `{}`", r.name);
                links.insert((i, to), WiredLink::gigabit_ethernet());
            }
        }
        let n_rsus = rsus.len();
        let latency = vec![LatencyStats::new(); n_rsus];
        let home: Vec<Vec<usize>> =
            fleets.iter().enumerate().map(|(i, f)| vec![i; f.len()]).collect();
        let backhauls: Vec<SimDuration> =
            spec.rsus.iter().map(|r| r.backhaul.unwrap_or(SimDuration::ZERO)).collect();
        let world = Rc::new(RefCell::new(World {
            config,
            end,
            warmup: SimTime::ZERO + spec.warmup,
            rng: rng.fork(1),
            rsus,
            channels,
            fleets,
            home,
            backhauls,
            out_consumers,
            links,
            pending: HashMap::new(),
            offered_gauges,
            latency,
            co_bytes: vec![0; n_rsus],
            wire_overhead: 44,
        }));

        let mut sim = Simulation::new();

        // Vehicle send loops, phase-staggered across the update period.
        for rsu_idx in 0..n_rsus {
            let fleet_size = world.borrow().fleets[rsu_idx].len();
            for veh_idx in 0..fleet_size {
                let phase = SimDuration::from_nanos(
                    rng.uniform(0.0, config.update_period.as_nanos() as f64) as u64,
                );
                schedule_send(&mut sim, Rc::clone(&world), rsu_idx, veh_idx, SimTime::ZERO + phase);
            }
        }
        // RSU batch loops, lightly staggered so multi-RSU runs do not tie.
        for rsu_idx in 0..n_rsus {
            let phase = SimDuration::from_micros(rsu_idx as u64 * 137);
            schedule_batch(
                &mut sim,
                Rc::clone(&world),
                rsu_idx,
                SimTime::ZERO + config.batch_interval + phase,
            );
        }
        // Dissemination poll loops.
        for rsu_idx in 0..n_rsus {
            let phase = SimDuration::from_micros(rsu_idx as u64 * 613);
            schedule_poll(
                &mut sim,
                Rc::clone(&world),
                rsu_idx,
                SimTime::ZERO + config.poll_interval + phase,
            );
        }
        // Summary forwarding loops.
        let forwarding: Vec<(usize, usize)> = spec
            .rsus
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.forwards_to.map(|t| (i, t)))
            .collect();
        for (from, to) in forwarding {
            schedule_summary(
                &mut sim,
                Rc::clone(&world),
                from,
                to,
                SimTime::ZERO + spec.summary_interval,
                spec.summary_interval,
            );
        }
        // Optional mid-run handover.
        if let Some(m) = spec.migration {
            assert!(m.from < n_rsus && m.to < n_rsus && m.from != m.to, "invalid migration");
            assert!(!m.new_records.is_empty(), "migration needs a new record pool");
            world
                .borrow_mut()
                .links
                .entry((m.from, m.to))
                .or_insert_with(WiredLink::gigabit_ethernet);
            schedule_migration(&mut sim, Rc::clone(&world), m);
        }
        // Observer hooks (health ticks, snapshot capture) ride the same
        // deterministic event queue.
        for obs in observers {
            let mut hook = obs.hook;
            sim.schedule_every(obs.interval, end, move |_, now| hook(now));
        }

        sim.run_until(end);

        // Assemble the report.
        let w = world.borrow();
        let elapsed = spec.duration;
        let mut per_rsu = Vec::new();
        for i in 0..n_rsus {
            let uplink = w.channels[i].average_rate_bps();
            let vehicles = w.fleets[i].len() as f64;
            per_rsu.push(RsuReport {
                name: w.rsus[i].name().to_owned(),
                latency: w.latency[i].clone(),
                uplink_bps: uplink,
                per_vehicle_bps: uplink / vehicles,
                co_data_bps: w.co_bytes[i] as f64 * 8.0 / elapsed.as_secs_f64(),
                records: w.rsus[i].records_processed(),
                warnings: w.rsus[i].warnings_produced(),
                batches: w.rsus[i].batches(),
            });
        }
        TestbedReport { per_rsu }
    }
}

fn schedule_send(
    sim: &mut Simulation,
    world: Rc<RefCell<World>>,
    rsu_idx: usize,
    veh_idx: usize,
    at: SimTime,
) {
    sim.schedule_at(at, move |sim| {
        let now = sim.now();
        let (target, arrival, key, value, trace, period, end) = {
            let w = &mut *world.borrow_mut();
            // Handovers may have moved this vehicle to another RSU.
            let target = w.home[rsu_idx][veh_idx];
            let (status, ctx) = w.fleets[rsu_idx][veh_idx].next_status_traced(now, target as u32);
            let value = status.encode_to_bytes();
            let on_air = value.len() + w.wire_overhead;
            let sender = status.vehicle.raw();
            let arrival =
                w.channels[target].send(&mut w.rng, sender, now, on_air) + w.backhauls[target];
            // A sampled emission gets a `net.dsrc.tx` span covering medium
            // access + backhaul, and the continuation rides the IN-DATA
            // record to the RSU.
            let trace = ctx.map(|ctx| {
                let span = cad3_obs::trace_span!(
                    "net.dsrc.tx",
                    &ctx,
                    now.as_nanos(),
                    arrival.as_nanos(),
                    target as u32
                );
                ctx.next_hop(span)
            });
            let tx = arrival.saturating_since(status.sent_at);
            w.pending.insert(
                (status.vehicle.raw(), status.seq),
                (tx, SimDuration::ZERO, SimDuration::ZERO),
            );
            (
                target,
                arrival,
                status.vehicle.raw().to_be_bytes(),
                value,
                trace,
                w.config.update_period,
                w.end,
            )
        };
        // Deliver to the broker at the channel arrival time.
        let world2 = Rc::clone(&world);
        sim.schedule_at(arrival, move |_| {
            let w = world2.borrow();
            let _ = w.rsus[target].broker().produce_traced(
                TOPIC_IN_DATA,
                None,
                Some(Bytes::copy_from_slice(&key)),
                value,
                arrival.as_nanos(),
                trace,
            );
        });
        if now + period < end {
            // Jitter each period by ±5% so sender phases decorrelate from
            // the batch boundaries, as on a real access network.
            let jittered = {
                let mut w = world.borrow_mut();
                let p = period.as_secs_f64();
                SimDuration::from_secs_f64(w.rng.uniform(p * 0.95, p * 1.05))
            };
            schedule_send(sim, world, rsu_idx, veh_idx, now + jittered);
        }
    });
}

fn schedule_batch(sim: &mut Simulation, world: Rc<RefCell<World>>, rsu_idx: usize, at: SimTime) {
    sim.schedule_at(at, move |sim| {
        let now = sim.now();
        let (warnings, warning_traces, queuing, processing, interval, end) = {
            let mut w = world.borrow_mut();
            if cad3_obs::enabled() {
                // Windowed offered load on this RSU's DSRC medium, sampled
                // at batch cadence for the health engine's bandwidth SLO.
                let bps = w.channels[rsu_idx].rate_bps(now);
                w.offered_gauges[rsu_idx].set(bps as u64);
            }
            let result = w.rsus[rsu_idx].run_batch(now).expect("batch never fails in-sim");
            (
                result.warnings,
                result.warning_traces,
                result.queuing,
                result.processing,
                w.config.batch_interval,
                w.end,
            )
        };
        {
            let mut w = world.borrow_mut();
            // Attach queuing + processing to pending warning paths:
            // queuing = batch start − broker arrival, where arrival is the
            // send time plus the stored tx component.
            for warning in &warnings {
                if let Some(entry) = w.pending.get_mut(&(warning.vehicle.raw(), warning.source_seq))
                {
                    entry.1 = now.saturating_since(warning.source_sent_at).saturating_sub(entry.0);
                    entry.2 = processing;
                }
            }
            let _ = queuing;
        }
        // Publish each warning at its detection-complete instant.
        for (warning, trace) in warnings.into_iter().zip(warning_traces) {
            let world2 = Rc::clone(&world);
            sim.schedule_at(warning.detected_at, move |_| {
                let w = world2.borrow();
                let _ = w.rsus[rsu_idx].publish_warning_traced(&warning, trace);
            });
        }
        if now + interval < end {
            schedule_batch(sim, world, rsu_idx, now + interval);
        }
    });
}

fn schedule_poll(sim: &mut Simulation, world: Rc<RefCell<World>>, rsu_idx: usize, at: SimTime) {
    sim.schedule_at(at, move |sim| {
        let now = sim.now();
        let (interval, end) = {
            let mut w = world.borrow_mut();
            let batch = w.out_consumers[rsu_idx].poll(usize::MAX).unwrap_or_default();
            for rec in batch {
                let mut buf: Bytes = rec.value;
                let Ok(warning) = WarningMessage::decode(&mut buf) else { continue };
                // Each vehicle polls with its own phase, so the wait until
                // the audience's next poll tick is uniform over one poll
                // interval; the consumer fetch itself adds the paper's
                // 7.2 ± 4.4 ms. (This representative consumer's own tick
                // alignment would otherwise leak a deterministic phase
                // artefact into the measurement.)
                let fetch_mean = w.config.fetch_latency_mean.as_secs_f64();
                let fetch_std = w.config.fetch_latency_std.as_secs_f64();
                let fetch = SimDuration::from_secs_f64(w.rng.normal(fetch_mean, fetch_std).abs());
                let poll_s = w.config.poll_interval.as_secs_f64();
                let poll_wait = SimDuration::from_secs_f64(w.rng.uniform(0.0, poll_s));
                let delivery = warning.detected_at + poll_wait + fetch + w.backhauls[rsu_idx];
                if delivery < w.warmup {
                    continue;
                }
                let key = (warning.vehicle.raw(), warning.source_seq);
                if let Some((tx, queuing, processing)) = w.pending.remove(&key) {
                    let dissemination = delivery.saturating_since(warning.detected_at);
                    w.latency[rsu_idx].record_traced(
                        &LatencyBreakdown { tx, queuing, processing, dissemination },
                        rec.trace.as_ref(),
                        rsu_idx as u32,
                        warning.detected_at.as_nanos(),
                        delivery.as_nanos(),
                    );
                }
            }
            (w.config.poll_interval, w.end)
        };
        if now + interval < end {
            schedule_poll(sim, world, rsu_idx, now + interval);
        }
    });
}

fn schedule_migration(sim: &mut Simulation, world: Rc<RefCell<World>>, m: MigrationSpec) {
    sim.schedule_at(SimTime::ZERO + m.at, move |sim| {
        let now = sim.now();
        // Group the new pool by driver for behaviourally coherent replay.
        let mut by_driver: std::collections::BTreeMap<VehicleId, Vec<FeatureRecord>> =
            std::collections::BTreeMap::new();
        for rec in &m.new_records {
            by_driver.entry(rec.vehicle).or_default().push(*rec);
        }
        let pools: Vec<Vec<FeatureRecord>> = by_driver.into_values().collect();

        let mut handed_over: Vec<(cad3_types::SummaryMessage, SimTime)> = Vec::new();
        {
            let w = &mut *world.borrow_mut();
            if cad3_obs::enabled() {
                // Consult the destination's published health state before
                // handing the fleet over. Observational for now: the
                // testbed counts an unhealthy target rather than deferring
                // the migration, so detection quality is unaffected while
                // the signal is validated.
                cad3_obs::counter!("health.handover.checks").inc();
                let state = cad3_obs::registry()
                    .gauge(&cad3_obs::health::state_gauge_name(w.rsus[m.to].name()))
                    .value();
                if cad3_obs::HealthState::from_gauge(state) != cad3_obs::HealthState::Healthy {
                    cad3_obs::counter!("health.handover.unhealthy").inc();
                }
            }
            let fleet_size = w.fleets[m.from].len();
            let count = ((fleet_size as f64) * m.fraction.clamp(0.0, 1.0)).round() as usize;
            let mut moved = 0u32;
            for veh_idx in 0..count.min(fleet_size) {
                if w.home[m.from][veh_idx] != m.from {
                    continue; // already migrated
                }
                w.home[m.from][veh_idx] = m.to;
                let vehicle = w.fleets[m.from][veh_idx].id();
                w.fleets[m.from][veh_idx].switch_pool(pools[veh_idx % pools.len()].clone());
                moved += 1;
                // The former RSU hands the vehicle's prediction summary to
                // the next RSU over the wired backhaul (Fig. 3, step 2).
                if let Some(msg) =
                    w.rsus[m.from].export_summaries(now).into_iter().find(|s| s.vehicle == vehicle)
                {
                    let bytes = msg.encoded_len() + w.wire_overhead;
                    let link = w.links.get_mut(&(m.from, m.to)).expect("link created at setup");
                    let (msg, arrival) = transmit_summary(link, now, bytes, msg);
                    w.co_bytes[m.to] += bytes as u64;
                    handed_over.push((msg, arrival));
                }
            }
            // The shared media see the new contender counts immediately.
            let from_contenders = w.channels[m.from].contenders().saturating_sub(moved);
            let to_contenders = w.channels[m.to].contenders() + moved;
            w.channels[m.from].set_contenders(from_contenders.max(1));
            w.channels[m.to].set_contenders(to_contenders);
        }
        for (msg, arrival) in handed_over {
            let world2 = Rc::clone(&world);
            sim.schedule_at(arrival, move |_| {
                let w = world2.borrow();
                let _ = w.rsus[m.to].receive_summary_at(&msg, arrival);
            });
        }
    });
}

/// Sends an exported summary over an inter-RSU link, threading its trace
/// lineage through the link's `net.link.tx` span, and returns the message
/// (lineage re-parented under the link span) with its arrival time at the
/// far RSU.
fn transmit_summary(
    link: &mut WiredLink,
    now: SimTime,
    bytes: usize,
    msg: cad3_types::SummaryMessage,
) -> (cad3_types::SummaryMessage, SimTime) {
    let ctx = msg.trace.map(|l| crate::collaboration::lineage_context(&l));
    let (arrival, continued) = link.transmit_traced(now, bytes, ctx);
    let trace = continued.map(|c| crate::collaboration::lineage_of(&c));
    (cad3_types::SummaryMessage { trace, ..msg }, arrival)
}

fn schedule_summary(
    sim: &mut Simulation,
    world: Rc<RefCell<World>>,
    from: usize,
    to: usize,
    at: SimTime,
    interval: SimDuration,
) {
    sim.schedule_at(at, move |sim| {
        let now = sim.now();
        let (messages, end) = {
            let w = world.borrow();
            (w.rsus[from].export_summaries(now), w.end)
        };
        for msg in messages {
            let (msg, arrival, bytes) = {
                let mut w = world.borrow_mut();
                let bytes = msg.encoded_len() + w.wire_overhead;
                let link = w.links.get_mut(&(from, to)).expect("link exists");
                let (msg, arrival) = transmit_summary(link, now, bytes, msg);
                (msg, arrival, bytes)
            };
            let world2 = Rc::clone(&world);
            sim.schedule_at(arrival, move |_| {
                let mut w = world2.borrow_mut();
                w.co_bytes[to] += bytes as u64;
                let _ = w.rsus[to].receive_summary_at(&msg, arrival);
            });
        }
        if now + interval < end {
            schedule_summary(sim, world, from, to, now + interval, interval);
        }
    });
}

use cad3_types::{
    FeatureRecord, GeoPoint, RoadId, SimTime, VehicleId, VehicleStatus, WarningMessage,
};

/// A simulated connected vehicle: replays dataset records as 10 Hz status
/// packets, the role the paper's Kafka producers play on PC1.
///
/// # Example
///
/// ```
/// use cad3::VehicleAgent;
/// use cad3_data::{DatasetConfig, SyntheticDataset};
/// use cad3_types::{SimTime, VehicleId};
///
/// let ds = SyntheticDataset::generate(&DatasetConfig::small(2));
/// let mut agent = VehicleAgent::new(VehicleId(900), ds.features[..100].to_vec());
/// let s1 = agent.next_status(SimTime::ZERO);
/// let s2 = agent.next_status(SimTime::from_millis(100));
/// assert_eq!(s1.vehicle, VehicleId(900));
/// assert_eq!(s2.seq, s1.seq + 1);
/// ```
#[derive(Debug, Clone)]
pub struct VehicleAgent {
    id: VehicleId,
    records: Vec<FeatureRecord>,
    cursor: usize,
    seq: u32,
    position: GeoPoint,
    current_road: Option<RoadId>,
}

impl VehicleAgent {
    /// Creates an agent streaming from a pool of records (cycled when
    /// exhausted).
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn new(id: VehicleId, records: Vec<FeatureRecord>) -> Self {
        assert!(!records.is_empty(), "vehicle agent needs at least one record");
        VehicleAgent {
            id,
            records,
            cursor: 0,
            seq: 0,
            position: crate::testbed::DEFAULT_POSITION,
            current_road: None,
        }
    }

    /// The agent's vehicle id.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// Number of status packets produced so far.
    pub fn sent(&self) -> u32 {
        self.seq
    }

    /// Produces the next status packet, stamped with `now`.
    ///
    /// The replayed record's vehicle id is overridden by the agent's own id
    /// so each agent streams under a distinct identity even when agents
    /// share a record pool.
    pub fn next_status(&mut self, now: SimTime) -> VehicleStatus {
        let rec = self.records[self.cursor % self.records.len()];
        self.cursor += 1;
        self.seq += 1;
        self.current_road = Some(rec.road);
        let rec = FeatureRecord { vehicle: self.id, ..rec };
        VehicleStatus::from_feature(&rec, self.position, now, self.seq)
    }

    /// [`VehicleAgent::next_status`], additionally minting a distributed
    /// trace for the emission when the head sampler elects it
    /// ([`cad3_obs::trace::mint`]). A sampled emission gets an
    /// instantaneous `vehicle.emit` root span at `now` attributed to
    /// `node` (the RSU the packet targets), and the returned context —
    /// parented under that root — rides the record through the pipeline.
    /// At the default 0 sampling rate this is one relaxed load and a
    /// branch on top of the untraced path.
    pub fn next_status_traced(
        &mut self,
        now: SimTime,
        node: u32,
    ) -> (VehicleStatus, Option<cad3_obs::TraceContext>) {
        let status = self.next_status(now);
        let ctx = cad3_obs::trace::mint().map(|ctx| {
            let root = cad3_obs::trace_span!(
                "vehicle.emit",
                &ctx,
                now.as_nanos(),
                now.as_nanos(),
                node,
                self.id.raw()
            );
            ctx.child(root)
        });
        (status, ctx)
    }

    /// The road the agent last reported from (`None` before any status).
    pub fn current_road(&self) -> Option<RoadId> {
        self.current_road
    }

    /// Whether a consumed `OUT-DATA` warning matters to this vehicle: it
    /// concerns *another* vehicle on the road this one is driving — the
    /// paper's dissemination goal of "informing drivers who are in the
    /// vicinity of dangerous vehicles".
    pub fn is_warning_relevant(&self, warning: &WarningMessage) -> bool {
        warning.vehicle != self.id && Some(warning.road) == self.current_road
    }

    /// Switches the replayed pool — the paper's handover emulation, where
    /// migrated producers "start reading from the motorway link
    /// subdataset". The sequence number keeps counting.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn switch_pool(&mut self, records: Vec<FeatureRecord>) {
        assert!(!records.is_empty(), "vehicle agent needs at least one record");
        self.records = records;
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_types::{DayOfWeek, HourOfDay, Label, RoadId, RoadType, TripId};

    fn rec(speed: f64) -> FeatureRecord {
        FeatureRecord {
            vehicle: VehicleId(1),
            trip: TripId(1),
            road: RoadId(1),
            accel_mps2: 0.0,
            speed_kmh: speed,
            hour: HourOfDay::new(9).unwrap(),
            day: DayOfWeek::Monday,
            road_type: RoadType::Motorway,
            road_speed_kmh: 100.0,
            label: Label::Normal,
        }
    }

    #[test]
    fn cycles_through_pool() {
        let mut agent = VehicleAgent::new(VehicleId(5), vec![rec(10.0), rec(20.0)]);
        let speeds: Vec<f64> =
            (0..5).map(|i| agent.next_status(SimTime::from_millis(i * 100)).speed_kmh).collect();
        assert_eq!(speeds, vec![10.0, 20.0, 10.0, 20.0, 10.0]);
        assert_eq!(agent.sent(), 5);
    }

    #[test]
    fn overrides_vehicle_identity() {
        let mut agent = VehicleAgent::new(VehicleId(42), vec![rec(10.0)]);
        let s = agent.next_status(SimTime::ZERO);
        assert_eq!(s.vehicle, VehicleId(42));
        assert_eq!(agent.id(), VehicleId(42));
    }

    #[test]
    fn stamps_send_time_and_sequence() {
        let mut agent = VehicleAgent::new(VehicleId(1), vec![rec(10.0)]);
        let s1 = agent.next_status(SimTime::from_millis(100));
        let s2 = agent.next_status(SimTime::from_millis(200));
        assert_eq!(s1.sent_at, SimTime::from_millis(100));
        assert_eq!(s2.sent_at, SimTime::from_millis(200));
        assert_eq!((s1.seq, s2.seq), (1, 2));
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_pool_panics() {
        VehicleAgent::new(VehicleId(1), Vec::new());
    }

    #[test]
    fn traced_status_mints_a_root_emit_span() {
        let _serial =
            crate::testutil::TRACE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut agent = VehicleAgent::new(VehicleId(77), vec![rec(10.0)]);
        // At the default 0 rate, emissions are never sampled.
        let (_, none) = agent.next_status_traced(SimTime::ZERO, 4);
        assert!(none.is_none());
        cad3_obs::trace::set_sample_rate(1.0);
        let (status, ctx) = agent.next_status_traced(SimTime::from_millis(100), 4);
        cad3_obs::trace::set_sample_rate(0.0);
        assert_eq!(status.vehicle, VehicleId(77));
        let ctx = ctx.expect("sampled at rate 1.0");
        let events: Vec<_> = cad3_obs::trace::sink()
            .drain()
            .into_iter()
            .filter(|e| e.trace_id == ctx.trace_id())
            .collect();
        assert_eq!(events.len(), 1);
        let root = &events[0];
        assert_eq!(root.name, "vehicle.emit");
        assert_eq!(root.node, 4, "attributed to the target RSU");
        assert_eq!(root.start_ns, SimTime::from_millis(100).as_nanos());
        assert_eq!(root.end_ns, root.start_ns, "emission is instantaneous");
        assert_eq!(ctx.parent_span(), root.span, "context continues under the root");
        assert_eq!(root.value, 77, "span value carries the vehicle id");
    }

    #[test]
    fn warning_relevance_requires_same_road_other_vehicle() {
        use cad3_types::{SimTime, WarningKind, WarningMessage};
        let mut agent = VehicleAgent::new(VehicleId(5), vec![rec(10.0)]);
        let warning = |vehicle: u64, road: u64| WarningMessage {
            vehicle: VehicleId(vehicle),
            road: cad3_types::RoadId(road),
            kind: WarningKind::Speeding,
            probability: 0.9,
            source_sent_at: SimTime::ZERO,
            detected_at: SimTime::ZERO,
            source_seq: 1,
        };
        // Before any status the agent has no road context.
        assert_eq!(agent.current_road(), None);
        assert!(!agent.is_warning_relevant(&warning(9, 1)));
        agent.next_status(SimTime::ZERO);
        assert_eq!(agent.current_road(), Some(cad3_types::RoadId(1)));
        assert!(agent.is_warning_relevant(&warning(9, 1)), "other vehicle, same road");
        assert!(!agent.is_warning_relevant(&warning(9, 2)), "different road");
        assert!(!agent.is_warning_relevant(&warning(5, 1)), "own warning");
    }
}

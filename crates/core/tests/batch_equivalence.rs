//! The batched detect path must be bit-identical to the scalar loop.
//!
//! Each built-in detector overrides `Detector::detect_batch` with a
//! column-major plan sweep; this test runs the same records through the
//! trait's default (scalar) implementation via a delegating wrapper that
//! does *not* override the method, and asserts that every detection and
//! the full collaboration-tracker end state come out bit-for-bit equal.

use cad3::detector::{
    Ad3Detector, Cad3Detector, CentralizedDetector, Detection, DetectionConfig, Detector,
    LogisticAd3Detector,
};
use cad3::{SummaryTracker, VehicleSummary};
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_ml::LogisticParams;
use cad3_types::{FeatureRecord, RoadType, RsuId, SimTime};

/// Delegates everything except `detect_batch`, so the trait's default
/// scalar loop runs against the same underlying model.
struct ScalarRef<'a, D: Detector>(&'a D);

impl<D: Detector> Detector for ScalarRef<'_, D> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn detect(
        &self,
        rec: &FeatureRecord,
        summary: Option<&VehicleSummary>,
    ) -> Result<Detection, cad3::CoreError> {
        self.0.detect(rec, summary)
    }
    fn stage1_p_abnormal(&self, rec: &FeatureRecord) -> Result<f64, cad3::CoreError> {
        self.0.stage1_p_abnormal(rec)
    }
    fn new_tracker(&self) -> SummaryTracker {
        self.0.new_tracker()
    }
}

/// Runs `det.detect_batch` over `records` in micro-batches against a live
/// tracker, returning the detections and the tracker end state.
fn run(
    det: &dyn Detector,
    records: &[FeatureRecord],
    chunk: usize,
) -> (Vec<Option<Detection>>, SummaryTracker) {
    let mut tracker = det.new_tracker();
    let mut out = Vec::with_capacity(records.len());
    for batch in records.chunks(chunk) {
        det.detect_batch(
            batch,
            &mut |i, p1| tracker.observe(batch[i].vehicle, batch[i].road, p1),
            &mut out,
        );
    }
    (out, tracker)
}

fn assert_equivalent(fast: &dyn Detector, scalar: &dyn Detector, records: &[FeatureRecord]) {
    // Odd chunk sizes so batches straddle trip boundaries.
    for chunk in [1usize, 7, 97, 1024] {
        let (batched, t_batched) = run(fast, records, chunk);
        let (expected, t_expected) = run(scalar, records, chunk);
        assert_eq!(batched.len(), records.len());
        assert_eq!(expected.len(), records.len());
        for (i, (b, e)) in batched.iter().zip(&expected).enumerate() {
            match (b, e) {
                (Some(b), Some(e)) => {
                    assert_eq!(b.label, e.label, "record {i} (chunk {chunk})");
                    assert_eq!(
                        b.p_abnormal.to_bits(),
                        e.p_abnormal.to_bits(),
                        "record {i} (chunk {chunk}): {} vs {}",
                        b.p_abnormal,
                        e.p_abnormal
                    );
                }
                (None, None) => {}
                _ => panic!("record {i} (chunk {chunk}): {b:?} vs {e:?}"),
            }
        }
        // The collaboration state the next batch would see must match too.
        assert_eq!(t_batched.vehicles(), t_expected.vehicles(), "chunk {chunk}");
        for v in t_batched.vehicles() {
            let b = t_batched.export(v, RsuId(0), SimTime::ZERO);
            let e = t_expected.export(v, RsuId(0), SimTime::ZERO);
            match (b, e) {
                (Some(b), Some(e)) => {
                    assert_eq!(b.count, e.count, "vehicle {v:?} (chunk {chunk})");
                    assert_eq!(b.last_class, e.last_class, "vehicle {v:?} (chunk {chunk})");
                    assert_eq!(
                        b.mean_probability.to_bits(),
                        e.mean_probability.to_bits(),
                        "vehicle {v:?} (chunk {chunk})"
                    );
                }
                (None, None) => {}
                (b, e) => panic!("vehicle {v:?} (chunk {chunk}): {b:?} vs {e:?}"),
            }
        }
    }
}

fn corpus() -> SyntheticDataset {
    SyntheticDataset::generate(&DatasetConfig::small(7))
}

#[test]
fn ad3_batch_matches_scalar() {
    let ds = corpus();
    let cut = ds.features.len() * 8 / 10;
    let det = Ad3Detector::train(&ds.features[..cut]).unwrap();
    assert_equivalent(&det, &ScalarRef(&det), &ds.features[cut..]);
}

#[test]
fn cad3_batch_matches_scalar() {
    let ds = corpus();
    let cut = ds.features.len() * 8 / 10;
    let cfg = DetectionConfig::default();
    let det = Cad3Detector::train(&ds.features[..cut], cfg.dt_params, cfg.fusion_weight).unwrap();
    assert_equivalent(&det, &ScalarRef(&det), &ds.features[cut..]);
}

#[test]
fn centralized_batch_matches_scalar() {
    let ds = corpus();
    let cut = ds.features.len() * 8 / 10;
    let det = CentralizedDetector::train(&ds.features[..cut]).unwrap();
    assert_equivalent(&det, &ScalarRef(&det), &ds.features[cut..]);
}

#[test]
fn logistic_batch_matches_scalar() {
    let ds = corpus();
    let cut = ds.features.len() * 8 / 10;
    let det = LogisticAd3Detector::train(&ds.features[..cut], LogisticParams::default()).unwrap();
    assert_equivalent(&det, &ScalarRef(&det), &ds.features[cut..]);
}

#[test]
fn missing_models_stay_none_in_batch() {
    // Train on motorway records only; link records must come back `None`
    // from both paths (scalar: `NoModelForRoadType`), at every position.
    let ds = corpus();
    let motorway_only: Vec<FeatureRecord> =
        ds.features.iter().filter(|f| f.road_type == RoadType::Motorway).copied().collect();
    let det = Ad3Detector::train(&motorway_only).unwrap();
    assert_equivalent(&det, &ScalarRef(&det), &ds.features);
    let (out, _) = run(&det, &ds.features, 64);
    let n_links = ds.features.iter().filter(|f| f.road_type != RoadType::Motorway).count();
    assert!(n_links > 0, "corpus has link records");
    assert_eq!(out.iter().filter(|d| d.is_none()).count(), n_links);
}

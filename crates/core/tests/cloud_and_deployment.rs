//! Integration tests of the edge-vs-cloud comparison and the deployment
//! feasibility pipeline.

use cad3::detector::{train_all, DetectionConfig};
use cad3::scenario::edge_vs_cloud;
use cad3::SystemConfig;
use cad3_data::{DatasetConfig, DeploymentPlan, RoadNetwork, RoadNetworkConfig, SyntheticDataset};
use cad3_net::{assign_channels, DSRC_SERVICE_CHANNELS};
use cad3_types::{RoadType, SimDuration};
use std::sync::Arc;

#[test]
fn cloud_offload_pays_the_backhaul_twice() {
    let ds = SyntheticDataset::generate(&DatasetConfig::small(501));
    let models = train_all(&ds.features, &DetectionConfig::default()).unwrap();
    let backhaul_ms = 40.0;
    let (edge, cloud) = edge_vs_cloud(
        SystemConfig::default(),
        501,
        Arc::new(models.ad3),
        ds.features_of_type(RoadType::Motorway),
        24,
        SimDuration::from_millis(backhaul_ms as u64),
        SimDuration::from_secs(6),
    );
    let e = &edge.per_rsu[0].latency;
    let c = &cloud.per_rsu[0].latency;
    assert!(e.total_ms.mean() < 50.0, "edge meets the paper bound: {}", e.total_ms.mean());
    // The cloud pays the backhaul on the way up (tx) and down (dissemination).
    let gap = c.total_ms.mean() - e.total_ms.mean();
    assert!(
        (gap - 2.0 * backhaul_ms).abs() < 10.0,
        "cloud total should exceed edge by ~2×backhaul: gap {gap}"
    );
    assert!(c.tx_ms.mean() > backhaul_ms);
    assert!(c.dissemination_ms.mean() > backhaul_ms);
    // Detection itself is unaffected — compute is the same on both sides.
    assert!((c.processing_ms.mean() - e.processing_ms.mean()).abs() < 1.0);
}

#[test]
fn deployment_plan_plus_channels_cover_a_network() {
    let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(503, 0.02));
    let plan = DeploymentPlan::plan(&net, 600.0);
    // 600 m spacing with 300 m DSRC covers the whole network.
    assert!(plan.coverage(&net, 300.0, 100.0) > 0.999);
    // And the sites can share the six service channels without conflicts
    // at that density.
    let positions: Vec<_> = plan.sites.iter().map(|s| s.position).collect();
    let channels = assign_channels(&positions, 250.0, DSRC_SERVICE_CHANNELS);
    let conflicts = channels.conflicts(&positions, 250.0);
    let conflict_rate = conflicts.len() as f64 / positions.len().max(1) as f64;
    assert!(
        conflict_rate < 0.02,
        "interference conflicts should be rare: {} of {}",
        conflicts.len(),
        positions.len()
    );
}

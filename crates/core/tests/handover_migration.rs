//! Integration tests of the paper's handover emulation: vehicles migrating
//! mid-run from the motorway RSU to the motorway-link RSU, with their
//! prediction summaries following them over the backhaul.

use cad3::detector::{train_all, DetectionConfig};
use cad3::scenario::handover_migration;
use cad3::SystemConfig;
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_types::{RoadType, SimDuration};
use std::sync::Arc;

#[test]
fn migrated_vehicles_shift_load_and_carry_summaries() {
    let ds = SyntheticDataset::generate(&DatasetConfig::small(401));
    let models = train_all(&ds.features, &DetectionConfig::default()).unwrap();
    let detector = Arc::new(models.cad3);

    let run = |fraction: f64| {
        handover_migration(
            SystemConfig::default(),
            401,
            detector.clone(),
            ds.features_of_type(RoadType::Motorway),
            ds.features_of_type(RoadType::MotorwayLink),
            40,
            fraction,
            SimDuration::from_secs(10),
        )
    };

    let without = run(0.0);
    let with = run(0.5);

    let link_records = |r: &cad3::TestbedReport| r.per_rsu[1].records;
    let mw_records = |r: &cad3::TestbedReport| r.per_rsu[0].records;

    // Migration moves traffic: the link RSU processes substantially more,
    // the motorway RSU less.
    assert!(
        link_records(&with) as f64 > link_records(&without) as f64 * 1.5,
        "link records {} vs {}",
        link_records(&with),
        link_records(&without)
    );
    assert!(
        mw_records(&with) < mw_records(&without),
        "motorway records {} vs {}",
        mw_records(&with),
        mw_records(&without)
    );

    // The handover carried per-vehicle summaries over the backhaul
    // (CO-DATA at the link grows beyond the periodic forwarding alone).
    assert!(
        with.per_rsu[1].co_data_bps >= without.per_rsu[1].co_data_bps,
        "handover adds CO-DATA: {} vs {}",
        with.per_rsu[1].co_data_bps,
        without.per_rsu[1].co_data_bps
    );

    // Detection keeps running on both sides and latency stays bounded.
    assert!(with.per_rsu[1].warnings > 0);
    let pooled = with.pooled_latency();
    assert!(pooled.total_ms.mean() < 50.0, "total {}", pooled.total_ms.mean());
}

#[test]
fn full_migration_drains_the_motorway() {
    let ds = SyntheticDataset::generate(&DatasetConfig::small(403));
    let models = train_all(&ds.features, &DetectionConfig::default()).unwrap();
    let report = handover_migration(
        SystemConfig::default(),
        403,
        Arc::new(models.ad3),
        ds.features_of_type(RoadType::Motorway),
        ds.features_of_type(RoadType::MotorwayLink),
        24,
        1.0,
        SimDuration::from_secs(8),
    );
    // After the halfway point every motorway vehicle streams to the link;
    // the motorway RSU keeps only its first-half traffic.
    let mw = &report.per_rsu[0];
    let link = &report.per_rsu[1];
    // Motorway: 24 vehicles × 10 Hz × ~4 s ≈ 960 records; link gets its own
    // 6 vehicles × 8 s plus the migrated 24 × 4 s.
    assert!(
        (mw.records as f64) < 24.0 * 10.0 * 8.0 * 0.75,
        "motorway kept sending after migration: {}",
        mw.records
    );
    assert!(
        link.records as f64 > 6.0 * 10.0 * 7.5,
        "link received the migrated fleet: {}",
        link.records
    );
}

//! Property-based tests of the Fig. 6a latency decomposition and the
//! `cad3-obs` histograms that export it: the stage components always sum to
//! the reported total, and a merged histogram's quantile estimates stay
//! within one log2 bucket of a sorted-vector oracle.

use cad3::{LatencyBreakdown, LatencyStats};
use cad3_obs::{bucket_lower, bucket_upper, Histogram};
use cad3_types::SimDuration;
use proptest::prelude::*;

/// The log2 bucket a value falls in, mirroring `cad3_obs`'s layout (bucket
/// `b` holds the values with exactly `b` significant bits).
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

proptest! {
    /// Fig. 6a invariant: the decomposition is exhaustive — tx, queuing,
    /// processing and dissemination always reconstruct the end-to-end total,
    /// both on the raw breakdown and through `LatencyStats` aggregation.
    #[test]
    fn decomposition_components_sum_to_total(
        samples in prop::collection::vec(
            // Nanosecond stage durations up to ~18 minutes each: far beyond
            // any modelled latency, still overflow-safe when summed.
            prop::collection::vec(0u64..1 << 40, 4),
            1..64,
        )
    ) {
        let mut stats = LatencyStats::new();
        for ns in &samples {
            let b = LatencyBreakdown {
                tx: SimDuration::from_nanos(ns[0]),
                queuing: SimDuration::from_nanos(ns[1]),
                processing: SimDuration::from_nanos(ns[2]),
                dissemination: SimDuration::from_nanos(ns[3]),
            };
            prop_assert_eq!(
                b.total(),
                SimDuration::from_nanos(ns.iter().sum()),
                "components must reconstruct the total"
            );
            stats.record(&b);
        }
        prop_assert_eq!(stats.len(), samples.len());
        // The aggregated means decompose the mean total the same way.
        let mean_parts = stats.tx_ms.mean()
            + stats.queuing_ms.mean()
            + stats.processing_ms.mean()
            + stats.dissemination_ms.mean();
        let tolerance = 1e-9 * (1.0 + stats.total_ms.mean().abs());
        prop_assert!(
            (stats.total_ms.mean() - mean_parts).abs() < tolerance,
            "mean total {} != sum of mean components {}",
            stats.total_ms.mean(),
            mean_parts,
        );
    }

    /// A histogram merged from concurrently-written shards estimates every
    /// quantile as the upper bound of the bucket holding the exact order
    /// statistic — i.e. within one bucket width of a sorted-vector oracle.
    #[test]
    fn merged_histogram_quantiles_match_sorted_oracle(
        values in prop::collection::vec(0u64..1 << 48, 1..512),
        qs in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let hist = Histogram::new();
        // Observe from several threads so the snapshot genuinely merges
        // more than one shard cell.
        std::thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(4)) {
                let hist = &hist;
                scope.spawn(move || {
                    for &v in chunk {
                        hist.observe(v);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for q in qs.iter().copied().chain([0.5, 0.95, 0.99]) {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let estimate = snap.quantile(q);
            let b = bucket_of(oracle);
            prop_assert_eq!(
                estimate,
                bucket_upper(b),
                "q={} rank={} oracle={} must resolve to its bucket's upper bound",
                q, rank, oracle,
            );
            prop_assert!(
                oracle <= estimate && estimate - oracle <= bucket_upper(b) - bucket_lower(b),
                "q={} estimate {} strays more than one bucket from oracle {}",
                q, estimate, oracle,
            );
        }
    }
}

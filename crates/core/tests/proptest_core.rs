//! Property-based tests of the core library's invariants: the Nilsson
//! accident model, Eq. 1 fusion and the collaboration tracker.

use cad3::accidents::{expected_potential_accidents, speed_deviation_delta, EvaluatedRecord};
use cad3::{SummaryTracker, VehicleSummary};
use cad3_types::{Label, RoadId, VehicleId};
use proptest::prelude::*;

proptest! {
    /// δ is always in [0, 1), zero exactly at the road speed, and monotone
    /// in the deviation on each side.
    #[test]
    fn delta_is_bounded_and_monotone(road in 10.0f64..200.0, dev in 0.0f64..150.0) {
        let fast = speed_deviation_delta(road + dev, road);
        let slow = speed_deviation_delta((road - dev).max(0.0), road);
        prop_assert!((0.0..1.0).contains(&fast));
        prop_assert!((0.0..1.0).contains(&slow));
        let fast2 = speed_deviation_delta(road + dev + 1.0, road);
        prop_assert!(fast2 >= fast, "speeding δ must grow with deviation");
        prop_assert_eq!(speed_deviation_delta(road, road), 0.0);
    }

    /// E(Λ) counts only false negatives and is additive.
    #[test]
    fn expected_accidents_additive(
        records in prop::collection::vec(
            (0usize..2, 0usize..2, 10.0f64..250.0, 20.0f64..150.0),
            0..200,
        )
    ) {
        let evaluated: Vec<EvaluatedRecord> = records
            .iter()
            .map(|(truth, pred, speed, road)| EvaluatedRecord {
                truth: if *truth == 0 { Label::Abnormal } else { Label::Normal },
                predicted: if *pred == 0 { Label::Abnormal } else { Label::Normal },
                speed_kmh: *speed,
                road_speed_kmh: *road,
            })
            .collect();
        let total = expected_potential_accidents(evaluated.iter());
        prop_assert!(total >= 0.0);
        let fns = evaluated.iter().filter(|r| r.is_false_negative()).count();
        prop_assert!(total <= fns as f64, "each FN contributes at most δ < 1");
        // Additivity over any split.
        let (a, b) = evaluated.split_at(evaluated.len() / 2);
        let parts = expected_potential_accidents(a.iter())
            + expected_potential_accidents(b.iter());
        prop_assert!((total - parts).abs() < 1e-9);
        // A perfect detector accrues zero.
        let perfect: Vec<EvaluatedRecord> = evaluated
            .iter()
            .map(|r| EvaluatedRecord { predicted: r.truth, ..*r })
            .collect();
        prop_assert_eq!(expected_potential_accidents(perfect.iter()), 0.0);
    }

    /// The tracker's exported mean is always the running average of the
    /// observed probabilities, per vehicle, regardless of interleaving.
    #[test]
    fn tracker_mean_is_running_average(
        obs in prop::collection::vec((0u64..4, 0u64..3, 0.0f64..1.0), 1..200)
    ) {
        let mut tracker = SummaryTracker::new();
        let mut sums: std::collections::HashMap<u64, (f64, u32)> = std::collections::HashMap::new();
        for (veh, road, p) in &obs {
            tracker.observe(VehicleId(*veh), RoadId(*road), *p);
            let e = sums.entry(*veh).or_insert((0.0, 0));
            e.0 += p;
            e.1 += 1;
        }
        for (veh, (sum, count)) in sums {
            let msg = tracker
                .export(VehicleId(veh), cad3_types::RsuId(1), cad3_types::SimTime::ZERO)
                .expect("observed vehicle exports");
            prop_assert_eq!(msg.count, count);
            prop_assert!((msg.mean_probability - sum / count as f64).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&msg.mean_probability));
        }
    }

    /// A summary returned by observe never includes the current record and
    /// only appears after a handover.
    #[test]
    fn summary_lags_by_at_least_one_road(
        roads in prop::collection::vec(0u64..3, 1..100)
    ) {
        let mut tracker = SummaryTracker::new();
        let v = VehicleId(1);
        let mut seen_roads: Vec<u64> = Vec::new();
        for (i, road) in roads.iter().enumerate() {
            let summary = tracker.observe(v, RoadId(*road), 0.5);
            let handovers = seen_roads.windows(2).filter(|w| w[0] != w[1]).count()
                + usize::from(seen_roads.last().is_some_and(|l| l != road));
            if handovers == 0 {
                prop_assert!(summary.is_none(), "no handover yet at step {}", i);
            }
            if let Some(s) = summary {
                prop_assert!(s.count as usize <= i, "summary cannot include current record");
            }
            seen_roads.push(*road);
        }
    }

    /// Seeding from a CO-DATA summary reproduces that summary on export.
    #[test]
    fn seed_round_trips(p in 0.0f64..1.0, count in 1u32..1000) {
        let mut tracker = SummaryTracker::new();
        let v = VehicleId(9);
        tracker.seed(v, VehicleSummary { mean_probability: p, count, last_class: 0 });
        let msg = tracker
            .export(v, cad3_types::RsuId(2), cad3_types::SimTime::ZERO)
            .expect("seeded vehicle exports");
        prop_assert_eq!(msg.count, count);
        prop_assert!((msg.mean_probability - p).abs() < 1e-9);
    }
}

//! Integration tests of the virtual-time testbed: the paper's Fig. 6
//! scenarios end-to-end (vehicles → DSRC channel → broker → micro-batch
//! detection → OUT-DATA dissemination).

use cad3::detector::{train_all, DetectionConfig};
use cad3::scenario::{multi_rsu, single_rsu_scaling};
use cad3::SystemConfig;
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_types::{FeatureRecord, RoadType, SimDuration};
use std::sync::Arc;

fn corpus_and_models() -> (SyntheticDataset, cad3::detector::TrainedModels) {
    let ds = SyntheticDataset::generate(&DatasetConfig::small(77));
    let models = train_all(&ds.features, &DetectionConfig::default()).unwrap();
    (ds, models)
}

fn motorway_pool(ds: &SyntheticDataset) -> Vec<FeatureRecord> {
    ds.features_of_type(RoadType::Motorway)
}

#[test]
fn single_rsu_latency_stays_under_50ms() {
    let (ds, models) = corpus_and_models();
    let report = single_rsu_scaling(
        SystemConfig::default(),
        1,
        Arc::new(models.ad3),
        motorway_pool(&ds),
        32,
        SimDuration::from_secs(10),
    );
    let rsu = &report.per_rsu[0];
    assert!(rsu.latency.len() > 30, "warnings were disseminated: {}", rsu.latency.len());
    let total = rsu.latency.total_ms.mean();
    assert!(total < 50.0, "paper's headline bound: total {total} ms");
    assert!(total > 25.0, "sanity: the pipeline has real queuing: {total} ms");
    // Components have the right magnitudes.
    assert!(rsu.latency.processing_ms.mean() > 5.0);
    assert!(rsu.latency.processing_ms.mean() < 15.0);
    assert!(rsu.latency.queuing_ms.mean() < 30.0);
    assert!(rsu.latency.dissemination_ms.mean() > 5.0);
    assert!(rsu.latency.dissemination_ms.mean() < 25.0);
    assert!(rsu.latency.tx_ms.mean() < 5.0);
}

#[test]
fn latency_grows_gently_with_vehicles() {
    let (ds, models) = corpus_and_models();
    let detector = Arc::new(models.ad3);
    let pool = motorway_pool(&ds);
    let run = |n: u32| {
        single_rsu_scaling(
            SystemConfig::default(),
            2,
            detector.clone(),
            pool.clone(),
            n,
            SimDuration::from_secs(8),
        )
        .per_rsu[0]
            .clone()
    };
    let small = run(8);
    let large = run(128);
    let (t_small, t_large) = (small.latency.total_ms.mean(), large.latency.total_ms.mean());
    assert!(
        t_large >= t_small - 1.0,
        "latency should not shrink with load: {t_small} -> {t_large}"
    );
    assert!(t_large - t_small < 15.0, "growth stays gentle as in Fig. 6a: {t_small} -> {t_large}");
    // Processing grows with batch size (Fig. 6a's 7.3 -> 11.7 ms trend).
    assert!(large.latency.processing_ms.mean() > small.latency.processing_ms.mean());
}

#[test]
fn bandwidth_matches_paper_fig6c() {
    let (ds, models) = corpus_and_models();
    let report = single_rsu_scaling(
        SystemConfig::default(),
        3,
        Arc::new(models.ad3),
        motorway_pool(&ds),
        64,
        SimDuration::from_secs(8),
    );
    let rsu = &report.per_rsu[0];
    // ~20 kb/s per vehicle (200 B payload + framing at 10 Hz).
    assert!(
        rsu.per_vehicle_bps > 15_000.0 && rsu.per_vehicle_bps < 25_000.0,
        "per-vehicle {} b/s",
        rsu.per_vehicle_bps
    );
    // Total far below the 27 Mb/s DSRC capacity.
    assert!(rsu.uplink_bps < 27e6 / 5.0, "total {} b/s", rsu.uplink_bps);
}

#[test]
fn multi_rsu_collaboration_loads_link_rsu_more() {
    let (ds, models) = corpus_and_models();
    let report = multi_rsu(
        SystemConfig::default(),
        4,
        Arc::new(models.cad3),
        motorway_pool(&ds),
        ds.features_of_type(RoadType::MotorwayLink),
        32,
        SimDuration::from_secs(6),
    );
    assert_eq!(report.per_rsu.len(), 5);
    let link = &report.per_rsu[0];
    assert_eq!(link.name, "Mw Link");
    // The link RSU receives CO-DATA from four motorway RSUs; the motorway
    // RSUs receive none (Fig. 6d's asymmetry).
    assert!(link.co_data_bps > 0.0, "link receives summaries");
    for mw in &report.per_rsu[1..] {
        assert_eq!(mw.co_data_bps, 0.0, "{} receives no summaries", mw.name);
        assert!(mw.records > 0);
    }
    // Dissemination stays in the Fig. 6b range on every RSU that warned.
    for rsu in &report.per_rsu {
        if !rsu.latency.is_empty() {
            let d = rsu.latency.dissemination_ms.mean();
            assert!(d > 3.0 && d < 30.0, "{}: dissemination {d} ms", rsu.name);
        }
    }
    let pooled = report.pooled_latency();
    assert!(pooled.total_ms.mean() < 50.0, "pooled total {}", pooled.total_ms.mean());
}

#[test]
fn detection_actually_flags_abnormal_traffic() {
    let (ds, models) = corpus_and_models();
    let report = single_rsu_scaling(
        SystemConfig::default(),
        5,
        Arc::new(models.cad3),
        motorway_pool(&ds),
        16,
        SimDuration::from_secs(6),
    );
    let rsu = &report.per_rsu[0];
    assert!(rsu.records > 500, "records {}", rsu.records);
    assert!(rsu.warnings > 10, "warnings {}", rsu.warnings);
    assert!(
        (rsu.warnings as f64) < rsu.records as f64 * 0.8,
        "not everything is abnormal: {}/{}",
        rsu.warnings,
        rsu.records
    );
    assert!(rsu.batches > 100);
}

//! End-to-end tracing contract over the paper's 2-RSU handover scenario:
//! at 100% head sampling every assembled trace is complete (zero missing
//! spans, zero orphans), and at least one trace spans both RSUs — the
//! CO-DATA lineage carried RSU A's context across the wired link so RSU
//! B's `rsu.handover.fuse` span links back to the originating vehicle's
//! emission.
//!
//! Single `#[test]` on purpose: the trace sink and sampling rate are
//! process-global, and this binary owns them for its lifetime.

use cad3::detector::{train_all, DetectionConfig};
use cad3::{scenario, SystemConfig};
use cad3_data::{DatasetConfig, SyntheticDataset};
use cad3_obs::{names, trace};
use cad3_types::{RoadType, SimDuration};
use std::sync::Arc;

#[test]
fn handover_traces_span_both_rsus_with_no_missing_spans() {
    cad3_obs::set_enabled(true);
    trace::set_sample_rate(1.0);
    let _ = trace::sink().drain();

    let ds = SyntheticDataset::generate(&DatasetConfig::small(11));
    let models = train_all(&ds.features, &DetectionConfig::default()).expect("trainable corpus");
    scenario::handover_migration(
        SystemConfig::default(),
        11,
        Arc::new(models.cad3),
        ds.features_of_type(RoadType::Motorway),
        ds.features_of_type(RoadType::MotorwayLink),
        8,
        0.5,
        SimDuration::from_secs(4),
    );
    trace::set_sample_rate(0.0);

    let events = trace::sink().drain();
    assert_eq!(trace::sink().dropped(), 0, "sink must not drop at this scale");
    assert!(!events.is_empty(), "100% sampling must produce trace events");

    let traces = trace::assemble(&events);
    assert!(!traces.is_empty());
    for t in &traces {
        assert!(
            t.is_complete(),
            "trace {:#x} has missing spans at 100% sampling:\n{}",
            t.trace_id,
            t.waterfall(),
        );
        let root = t.root().expect("complete trace has a root");
        assert_eq!(root.name, names::VEHICLE_EMIT, "every trace roots at the emission");
    }

    // The handover half: some traces must cross from RSU 0 to RSU 1 via a
    // fuse span whose lineage chain reaches back to the root.
    let cross: Vec<_> = traces
        .iter()
        .filter(|t| {
            let nodes = t.nodes();
            nodes.contains(&0) && nodes.contains(&1)
        })
        .collect();
    assert!(!cross.is_empty(), "no trace spans both RSUs");
    let fused = cross
        .iter()
        .find(|t| t.spans().values().any(|s| s.name == names::RSU_HANDOVER_FUSE))
        .unwrap_or_else(|| {
            panic!("no cross-RSU trace contains a {} span", names::RSU_HANDOVER_FUSE)
        });
    let fuse = fused
        .spans()
        .values()
        .find(|s| s.name == names::RSU_HANDOVER_FUSE)
        .expect("filtered on presence");
    assert_eq!(fuse.node, 1, "the fuse runs on the receiving RSU");
    // Walk parent links from the fuse span back to the root: the lineage
    // decoded off the CO-DATA wire must reconnect to the emission.
    let mut cursor = fuse.parent;
    let mut hops = 0;
    while cursor != 0 {
        let span = fused.spans().get(&cursor).expect("parent chain is fully present");
        cursor = span.parent;
        hops += 1;
        assert!(hops <= 16, "parent chain must terminate at the root");
    }
    assert!(hops >= 2, "the fuse must link through upstream spans, not sit at the root");
}

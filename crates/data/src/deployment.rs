//! RSU deployment planning — the paper's macroscopic feasibility analysis
//! (Section VII, Fig. 9): place edge nodes along the road network, measure
//! what a given DSRC range covers, and find the gaps that need dedicated
//! installations (the figure's grey circles).

use crate::RoadNetwork;
use cad3_types::{GeoPoint, RoadId};

/// A planned RSU installation site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RsuSite {
    /// Site index in the plan.
    pub id: usize,
    /// Road the site serves.
    pub road: RoadId,
    /// Geographic position.
    pub position: GeoPoint,
    /// Distance along the road's polyline, metres.
    pub along_m: f64,
}

/// A deployment plan: RSU sites along every road of a network.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    /// Planned sites.
    pub sites: Vec<RsuSite>,
    /// The spacing used, metres.
    pub spacing_m: f64,
}

impl DeploymentPlan {
    /// Plans one RSU per `spacing_m` of road (the paper's Table V uses
    /// 1000 m — one RSU per kilometre), centred on its served stretch.
    /// Every road gets at least one site.
    ///
    /// # Panics
    ///
    /// Panics if `spacing_m` is not strictly positive.
    pub fn plan(network: &RoadNetwork, spacing_m: f64) -> Self {
        assert!(spacing_m > 0.0, "spacing must be positive");
        let mut sites = Vec::new();
        for road in network.iter() {
            let count = (road.length_m / spacing_m).ceil().max(1.0) as usize;
            let stretch = road.length_m / count as f64;
            for k in 0..count {
                let along = stretch * (k as f64 + 0.5);
                sites.push(RsuSite {
                    id: sites.len(),
                    road: road.id,
                    position: road.point_at(along),
                    along_m: along,
                });
            }
        }
        DeploymentPlan { sites, spacing_m }
    }

    /// Number of planned sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the plan is empty (never true for a non-empty network).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Fraction of the road network within `range_m` of a site, measured by
    /// sampling every road at `sample_step_m` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `sample_step_m` is not strictly positive.
    pub fn coverage(&self, network: &RoadNetwork, range_m: f64, sample_step_m: f64) -> f64 {
        let (covered, total) = self.classify_samples(network, range_m, sample_step_m);
        if total == 0 {
            return 1.0;
        }
        covered as f64 / total as f64
    }

    /// Sampled road points *not* within `range_m` of any site — the grey
    /// circles of the paper's Fig. 9, where dedicated installation is
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `sample_step_m` is not strictly positive.
    pub fn coverage_gaps(
        &self,
        network: &RoadNetwork,
        range_m: f64,
        sample_step_m: f64,
    ) -> Vec<GeoPoint> {
        assert!(sample_step_m > 0.0, "sample step must be positive");
        let mut gaps = Vec::new();
        for road in network.iter() {
            let mut along = 0.0;
            while along <= road.length_m {
                let p = road.point_at(along);
                if !self.is_covered(&p, range_m) {
                    gaps.push(p);
                }
                along += sample_step_m;
            }
        }
        gaps
    }

    fn classify_samples(
        &self,
        network: &RoadNetwork,
        range_m: f64,
        sample_step_m: f64,
    ) -> (usize, usize) {
        assert!(sample_step_m > 0.0, "sample step must be positive");
        let mut covered = 0;
        let mut total = 0;
        for road in network.iter() {
            let mut along = 0.0;
            while along <= road.length_m {
                total += 1;
                if self.is_covered(&road.point_at(along), range_m) {
                    covered += 1;
                }
                along += sample_step_m;
            }
        }
        (covered, total)
    }

    fn is_covered(&self, p: &GeoPoint, range_m: f64) -> bool {
        self.sites.iter().any(|s| s.position.haversine_m(p) <= range_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoadNetworkConfig;

    fn network() -> RoadNetwork {
        RoadNetwork::generate(&RoadNetworkConfig::scaled(13, 0.01))
    }

    #[test]
    fn plan_covers_every_road() {
        let net = network();
        let plan = DeploymentPlan::plan(&net, 1000.0);
        assert!(!plan.is_empty());
        for road in net.iter() {
            let sites: Vec<_> = plan.sites.iter().filter(|s| s.road == road.id).collect();
            assert!(!sites.is_empty(), "road {} has no site", road.id);
            let expected = (road.length_m / 1000.0).ceil().max(1.0) as usize;
            assert_eq!(sites.len(), expected, "road {} ({} m)", road.id, road.length_m);
            for s in sites {
                assert!(s.along_m >= 0.0 && s.along_m <= road.length_m);
            }
        }
    }

    #[test]
    fn site_count_tracks_table_v_rule() {
        // One RSU per km: total sites ≈ total road km (ceil per road).
        let net = network();
        let plan = DeploymentPlan::plan(&net, 1000.0);
        let total_km: f64 = net.iter().map(|r| r.length_m).sum::<f64>() / 1000.0;
        assert!(plan.len() as f64 >= total_km, "ceil per road never undershoots");
        assert!((plan.len() as f64) < total_km + net.len() as f64 + 1.0);
    }

    #[test]
    fn own_spacing_range_fully_covers() {
        // Sites every 500 m with a 300 m radius cover their own roads
        // (each site serves ±250 m of road).
        let net = network();
        let plan = DeploymentPlan::plan(&net, 500.0);
        let coverage = plan.coverage(&net, 300.0, 100.0);
        assert!(coverage > 0.999, "coverage {coverage}");
        assert!(plan.coverage_gaps(&net, 300.0, 100.0).is_empty());
    }

    #[test]
    fn short_range_leaves_gaps() {
        // 1 km spacing with a 125 m radius (the MCS 8 range) cannot cover
        // long roads — the paper's grey circles appear.
        let net = network();
        let plan = DeploymentPlan::plan(&net, 1000.0);
        let coverage = plan.coverage(&net, 125.0, 50.0);
        assert!(coverage < 0.9, "coverage {coverage}");
        let gaps = plan.coverage_gaps(&net, 125.0, 50.0);
        assert!(!gaps.is_empty());
        // Gaps really are uncovered.
        for g in gaps.iter().take(20) {
            assert!(plan.sites.iter().all(|s| s.position.haversine_m(g) > 125.0));
        }
    }

    #[test]
    fn coverage_monotone_in_range() {
        let net = network();
        let plan = DeploymentPlan::plan(&net, 1000.0);
        let c1 = plan.coverage(&net, 100.0, 100.0);
        let c2 = plan.coverage(&net, 300.0, 100.0);
        let c3 = plan.coverage(&net, 600.0, 100.0);
        assert!(c1 <= c2 && c2 <= c3);
    }

    #[test]
    #[should_panic(expected = "spacing must be positive")]
    fn zero_spacing_panics() {
        DeploymentPlan::plan(&network(), 0.0);
    }
}

use crate::{LabelModel, ProfileMix, RoadNetwork, RoadNetworkConfig, TripGenerator};
use cad3_sim::SimRng;
use cad3_types::{
    DayOfWeek, DriverProfile, FeatureRecord, TrajectoryPoint, TripId, TripRecord, VehicleId,
};
use std::collections::HashMap;

/// Configuration of a synthetic dataset generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// RNG seed; the whole corpus is a pure function of the config.
    pub seed: u64,
    /// Number of vehicles (the paper's filtered dataset has 3,306).
    pub n_vehicles: u32,
    /// Trips generated per vehicle.
    pub trips_per_vehicle: u32,
    /// Road-network scale (fraction of the Table V road counts).
    pub network_scale: f64,
    /// Driver-profile mix.
    pub mix: ProfileMix,
    /// Probability that a trip follows the microscopic motorway→link route
    /// (the rest follow random routes over the whole network).
    pub microscopic_fraction: f64,
    /// Whether to keep raw GPS trajectories (needed only for map-matching
    /// experiments; the feature records are always kept).
    pub keep_trajectories: bool,
}

impl DatasetConfig {
    /// A small corpus for tests and examples (~10–20 k records).
    pub fn small(seed: u64) -> Self {
        DatasetConfig {
            seed,
            n_vehicles: 40,
            trips_per_vehicle: 3,
            network_scale: 0.02,
            mix: ProfileMix::paper_default(),
            microscopic_fraction: 0.6,
            keep_trajectories: false,
        }
    }

    /// A corpus sized like the paper's Table IV evaluation (~500 k records,
    /// 35% abnormal drivers).
    pub fn paper_500k(seed: u64) -> Self {
        DatasetConfig {
            seed,
            n_vehicles: 600,
            trips_per_vehicle: 4,
            network_scale: 0.05,
            mix: ProfileMix::paper_default(),
            microscopic_fraction: 0.6,
            keep_trajectories: false,
        }
    }

    /// A corpus sized like the paper's 89 k-record accuracy evaluation.
    pub fn paper_89k(seed: u64) -> Self {
        DatasetConfig { n_vehicles: 120, trips_per_vehicle: 3, ..Self::paper_500k(seed) }
    }
}

/// A fully generated synthetic corpus: the reproduction's replacement for
/// the paper's proprietary Shenzhen private-car dataset.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The configuration that produced this corpus.
    pub config: DatasetConfig,
    /// The road network.
    pub network: RoadNetwork,
    /// Trip-level records (Table I trips).
    pub trips: Vec<TripRecord>,
    /// Preprocessed, labelled analysis records (Table II), in trip order.
    pub features: Vec<FeatureRecord>,
    /// Raw trajectories (empty unless `keep_trajectories`).
    pub trajectories: Vec<TrajectoryPoint>,
    /// Ground-truth behavioural profile per vehicle.
    pub profiles: HashMap<VehicleId, DriverProfile>,
    /// The offline labelling model fitted on this corpus.
    pub label_model: LabelModel,
}

impl SyntheticDataset {
    /// Generates a corpus from a configuration. Deterministic in the seed.
    pub fn generate(config: &DatasetConfig) -> Self {
        let mut rng = SimRng::seed_from(config.seed);
        let network = RoadNetwork::generate(&RoadNetworkConfig::scaled(
            config.seed ^ 0xA5A5,
            config.network_scale,
        ));
        let generator = TripGenerator::new(&network);

        let mut trips = Vec::new();
        let mut features = Vec::new();
        let mut true_kinematics: Vec<(f64, f64)> = Vec::new();
        let mut trajectories = Vec::new();
        let mut profiles = HashMap::new();
        let mut trip_counter: u64 = 1;

        for v in 1..=config.n_vehicles as u64 {
            let vehicle = VehicleId(v);
            let profile = config.mix.sample(&mut rng);
            profiles.insert(vehicle, profile);
            for _ in 0..config.trips_per_vehicle {
                let day = DayOfWeek::from_index_wrapping(rng.index(7) as u64);
                // Start hours weighted toward commuting times.
                let hour_weights: Vec<f64> = (0..24)
                    .map(|h| match h {
                        7..=9 | 17..=19 => 3.0,
                        10..=16 => 1.5,
                        20..=22 => 1.0,
                        _ => 0.3,
                    })
                    .collect();
                let hour = rng.pick_weighted(&hour_weights) as f64;
                let start_time_s =
                    day.index() as f64 * 86_400.0 + hour * 3600.0 + rng.uniform(0.0, 3600.0);

                let route = if rng.chance(config.microscopic_fraction) {
                    generator.microscopic_route(&mut rng)
                } else {
                    generator.random_route(&mut rng, 4)
                };
                let trip = generator.generate_trip(
                    &mut rng,
                    vehicle,
                    TripId(trip_counter),
                    profile,
                    day,
                    start_time_s,
                    &route,
                );
                trip_counter += 1;
                trips.push(trip.record);
                features.extend(trip.features);
                true_kinematics.extend(trip.true_kinematics);
                if config.keep_trajectories {
                    trajectories.extend(trip.points);
                }
            }
        }

        // Offline labelling stage: fit μ±σ cut-offs and assign labels on the
        // *true* kinematics. The detectors only ever see the measured
        // (noisy) values kept in `features` — the latent-truth gap is what
        // cross-road collaboration recovers.
        let mut truth_records = features.clone();
        for (r, &(v, a)) in truth_records.iter_mut().zip(&true_kinematics) {
            r.speed_kmh = v;
            r.accel_mps2 = a;
        }
        let label_model = LabelModel::fit(truth_records.iter());
        for (f, t) in features.iter_mut().zip(&truth_records) {
            f.label = label_model.label(t);
        }

        SyntheticDataset {
            config: config.clone(),
            network,
            trips,
            features,
            trajectories,
            profiles,
            label_model,
        }
    }

    /// Records on roads of the given type (the paper's per-road-type
    /// sub-datasets).
    pub fn features_of_type(&self, rt: cad3_types::RoadType) -> Vec<FeatureRecord> {
        self.features.iter().filter(|f| f.road_type == rt).copied().collect()
    }

    /// Fraction of records labelled abnormal.
    pub fn abnormal_fraction(&self) -> f64 {
        if self.features.is_empty() {
            return 0.0;
        }
        self.features.iter().filter(|f| f.label.is_abnormal()).count() as f64
            / self.features.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_types::{Label, RoadType};

    fn small() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::small(21))
    }

    #[test]
    fn corpus_is_deterministic_in_seed() {
        let a = SyntheticDataset::generate(&DatasetConfig::small(9));
        let b = SyntheticDataset::generate(&DatasetConfig::small(9));
        assert_eq!(a.features.len(), b.features.len());
        assert_eq!(a.features.first(), b.features.first());
        assert_eq!(a.features.last(), b.features.last());
        assert_eq!(a.abnormal_fraction(), b.abnormal_fraction());
    }

    #[test]
    fn trip_and_vehicle_counts() {
        let ds = small();
        assert_eq!(ds.trips.len(), 40 * 3);
        assert_eq!(ds.profiles.len(), 40);
        assert!(ds.features.len() > 5_000, "got {}", ds.features.len());
        assert!(ds.trajectories.is_empty(), "trajectories off by default");
    }

    #[test]
    fn abnormal_fraction_in_paper_ballpark() {
        let ds = small();
        let f = ds.abnormal_fraction();
        assert!((0.15..0.55).contains(&f), "abnormal fraction {f}");
    }

    #[test]
    fn abnormal_drivers_have_more_abnormal_points() {
        let ds = small();
        let mut rates: HashMap<bool, (usize, usize)> = HashMap::new();
        for f in &ds.features {
            let abnormal_driver = ds.profiles[&f.vehicle].is_abnormal();
            let e = rates.entry(abnormal_driver).or_default();
            e.0 += usize::from(f.label == Label::Abnormal);
            e.1 += 1;
        }
        let rate = |k: bool| {
            let (a, n) = rates[&k];
            a as f64 / n as f64
        };
        assert!(
            rate(true) > rate(false) + 0.2,
            "abnormal drivers {:.2} vs typical {:.2}",
            rate(true),
            rate(false)
        );
    }

    #[test]
    fn microscopic_trips_cover_motorway_and_link() {
        let ds = small();
        assert!(!ds.features_of_type(RoadType::Motorway).is_empty());
        assert!(!ds.features_of_type(RoadType::MotorwayLink).is_empty());
    }

    #[test]
    fn keep_trajectories_flag_works() {
        let config = DatasetConfig { keep_trajectories: true, ..DatasetConfig::small(3) };
        let ds = SyntheticDataset::generate(&config);
        assert_eq!(ds.trajectories.len(), ds.features.len());
    }

    #[test]
    fn both_classes_present_per_main_road_type() {
        let ds = small();
        for rt in [RoadType::Motorway, RoadType::MotorwayLink] {
            let recs = ds.features_of_type(rt);
            assert!(recs.iter().any(|r| r.label == Label::Normal), "{rt} has normals");
            assert!(recs.iter().any(|r| r.label == Label::Abnormal), "{rt} has abnormals");
        }
    }
}

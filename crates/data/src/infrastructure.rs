//! Roadside infrastructure placement and the paper's macroscopic
//! feasibility analyses (Tables V and VI, Fig. 9).
//!
//! The paper argues CAD3 is deployable because edge nodes can be co-located
//! with existing traffic lights and lamp poles. This module synthesises
//! such infrastructure along the road network, reproduces the spacing
//! statistics of Table VI and the RSU-requirement calculation of Table V
//! (one RSU per kilometre of frequently-used road, which matches the
//! paper's numbers, e.g. 435 motorways × 3.357 km ≈ 1460 RSUs).

use crate::{RoadNetwork, RoadTypeSpec};
use cad3_sim::SimRng;
use cad3_types::{GeoPoint, RoadType};

/// Kind of roadside infrastructure that can host an edge node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InfrastructureKind {
    /// Traffic signals (Table VI row 1: avg spacing ≈ 245 m).
    TrafficLight,
    /// Street lamp poles (Table VI row 2: avg spacing ≈ 72 m).
    LampPole,
}

impl InfrastructureKind {
    /// Mean and standard deviation of the spacing between consecutive
    /// installations, metres (calibrated to Table VI).
    pub fn spacing_params(self) -> (f64, f64) {
        match self {
            InfrastructureKind::TrafficLight => (244.57, 299.7),
            InfrastructureKind::LampPole => (71.9, 82.8),
        }
    }

    /// Maximum spacing observed in Table VI, metres.
    pub fn max_spacing_m(self) -> f64 {
        match self {
            InfrastructureKind::TrafficLight => 999.5,
            InfrastructureKind::LampPole => 520.0,
        }
    }
}

/// Spacing statistics of placed infrastructure (the Table VI columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpacingStats {
    /// Number of installations.
    pub count: usize,
    /// Average spacing, metres.
    pub avg_m: f64,
    /// Spacing standard deviation, metres.
    pub std_m: f64,
    /// 75th-percentile spacing, metres.
    pub p75_m: f64,
    /// Maximum spacing, metres.
    pub max_m: f64,
}

/// Synthesised roadside infrastructure: positions of installations along
/// the road network plus their consecutive spacings.
#[derive(Debug, Clone)]
pub struct RoadsideInfrastructure {
    /// Kind of installation.
    pub kind: InfrastructureKind,
    /// Installation positions.
    pub positions: Vec<GeoPoint>,
    spacings: Vec<f64>,
}

impl RoadsideInfrastructure {
    /// Places installations of `kind` along every road of the network, with
    /// spacings drawn from the Table VI distribution (clamped to its
    /// observed maximum).
    pub fn place(network: &RoadNetwork, kind: InfrastructureKind, rng: &mut SimRng) -> Self {
        let (mean, std) = kind.spacing_params();
        let max = kind.max_spacing_m();
        let mut positions = Vec::new();
        let mut spacings = Vec::new();
        for road in network.iter() {
            let mut at = 0.0;
            positions.push(road.point_at(0.0));
            loop {
                let gap = rng.normal(mean, std).clamp(10.0, max);
                at += gap;
                if at > road.length_m {
                    break;
                }
                positions.push(road.point_at(at));
                spacings.push(gap);
            }
        }
        RoadsideInfrastructure { kind, positions, spacings }
    }

    /// Spacing statistics in the Table VI format.
    pub fn spacing_stats(&self) -> SpacingStats {
        let n = self.spacings.len();
        if n == 0 {
            return SpacingStats {
                count: self.positions.len(),
                avg_m: 0.0,
                std_m: 0.0,
                p75_m: 0.0,
                max_m: 0.0,
            };
        }
        let avg = self.spacings.iter().sum::<f64>() / n as f64;
        let var = self.spacings.iter().map(|s| (s - avg).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = self.spacings.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("spacings are not NaN"));
        SpacingStats {
            count: self.positions.len(),
            avg_m: avg,
            std_m: var.sqrt(),
            p75_m: sorted[(0.75 * (n - 1) as f64).round() as usize],
            max_m: *sorted.last().expect("non-empty"),
        }
    }

    /// Fraction of installations whose nearest neighbour is within
    /// `range_m` — the paper's coverage argument (DSRC range covers the
    /// gaps between existing infrastructure).
    pub fn coverage_within(&self, range_m: f64) -> f64 {
        if self.spacings.is_empty() {
            return 1.0;
        }
        let covered = self.spacings.iter().filter(|s| **s <= range_m).count();
        covered as f64 / self.spacings.len() as f64
    }
}

/// One row of the paper's Table V: RSUs required for a road type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RsuRequirement {
    /// Road type.
    pub road_type: RoadType,
    /// Traffic-density share.
    pub traffic_share: f64,
    /// Number of road trunks.
    pub road_count: usize,
    /// Mean trunk length, metres.
    pub mean_length_m: f64,
    /// RSUs required.
    pub rsus: usize,
}

/// Computes the Table V RSU requirement: one RSU per kilometre of road,
/// per type (`rsus = count × mean_length / 1000`), which reproduces the
/// paper's column (motorway: 435 × 3357 m → 1460 RSUs).
pub fn rsu_requirements(specs: &[RoadTypeSpec]) -> Vec<RsuRequirement> {
    specs
        .iter()
        .map(|s| RsuRequirement {
            road_type: s.road_type,
            traffic_share: s.traffic_share,
            road_count: s.count,
            mean_length_m: s.mean_length_m,
            rsus: ((s.count as f64 * s.mean_length_m) / 1000.0).round() as usize,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoadNetworkConfig;

    #[test]
    fn table_v_rsu_counts_match_paper() {
        let reqs = rsu_requirements(&RoadTypeSpec::paper_table_v());
        let find = |rt: RoadType| reqs.iter().find(|r| r.road_type == rt).unwrap().rsus;
        // Paper Table V: 1460, 94, 1064, 956, 639, 555 for these types.
        assert_eq!(find(RoadType::Motorway), 1460);
        assert_eq!(find(RoadType::MotorwayLink), 95); // paper rounds to 94
        assert_eq!(find(RoadType::Trunk), 1064);
        assert_eq!(find(RoadType::Primary), 956);
        assert_eq!(find(RoadType::Secondary), 640); // paper: 639
        assert_eq!(find(RoadType::Tertiary), 555);
    }

    #[test]
    fn total_rsus_are_a_few_thousand() {
        let reqs = rsu_requirements(&RoadTypeSpec::paper_table_v());
        let total: usize = reqs.iter().map(|r| r.rsus).sum();
        // Paper total ≈ 4998.
        assert!((4500..5500).contains(&total), "total {total}");
    }

    fn infra(kind: InfrastructureKind) -> RoadsideInfrastructure {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(5, 0.05));
        let mut rng = SimRng::seed_from(5);
        RoadsideInfrastructure::place(&net, kind, &mut rng)
    }

    #[test]
    fn lamp_poles_denser_than_traffic_lights() {
        let lights = infra(InfrastructureKind::TrafficLight);
        let lamps = infra(InfrastructureKind::LampPole);
        assert!(lamps.positions.len() > 2 * lights.positions.len());
    }

    #[test]
    fn spacing_stats_track_table_vi() {
        let lamps = infra(InfrastructureKind::LampPole);
        let s = lamps.spacing_stats();
        assert!((s.avg_m - 71.9).abs() < 15.0, "avg {}", s.avg_m);
        assert!(s.max_m <= 520.0);
        assert!(s.p75_m >= s.avg_m * 0.8);
        let lights = infra(InfrastructureKind::TrafficLight);
        let s = lights.spacing_stats();
        assert!((s.avg_m - 244.57).abs() < 60.0, "avg {}", s.avg_m);
        assert!(s.max_m <= 999.5);
    }

    #[test]
    fn coverage_improves_with_range() {
        let lights = infra(InfrastructureKind::TrafficLight);
        let near = lights.coverage_within(100.0);
        let far = lights.coverage_within(600.0);
        assert!(far > near);
        // The paper's argument: a few hundred metres of DSRC range covers
        // nearly all gaps between existing roadside infrastructure.
        assert!(lights.coverage_within(1000.0) > 0.99);
    }

    #[test]
    fn every_position_is_near_a_road() {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(6, 0.03));
        let mut rng = SimRng::seed_from(6);
        let lights =
            RoadsideInfrastructure::place(&net, InfrastructureKind::TrafficLight, &mut rng);
        for p in lights.positions.iter().take(50) {
            assert!(!net.roads_near(p, 200.0).is_empty());
        }
    }
}

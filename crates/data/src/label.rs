use cad3_ml::GaussianStats;
use cad3_types::{FeatureRecord, HourOfDay, Label, RoadType};
use std::collections::BTreeMap;

/// Time-of-day regime used as labelling context alongside the road type.
///
/// Driving behaviour "changes over time, owing to the day time (rush hours
/// vs. normal hours)" (the paper's Section II challenge); pooling all hours
/// into one cut-off would label rush-hour traffic abnormal wholesale, so
/// the offline stage conditions its statistics on the regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimeBucket {
    /// Free-flowing night traffic (00:00–05:59).
    Night,
    /// Commuter rush (07:00–09:59, 17:00–19:59).
    Rush,
    /// Everything else.
    Normal,
}

impl TimeBucket {
    /// Buckets an hour of day.
    pub fn of(hour: HourOfDay) -> TimeBucket {
        match hour.get() {
            0..=5 => TimeBucket::Night,
            h if HourOfDay::new(h).map(|x| x.is_rush_hour()) == Some(true) => TimeBucket::Rush,
            _ => TimeBucket::Normal,
        }
    }
}

/// The paper's offline outlier-labelling stage.
///
/// "The speed data of each road type is Gaussian-like; therefore, we use
/// the standard deviation as a cut-off for identifying outliers. We label
/// a data point as normal (class=1) if it exhibits a speed and acceleration
/// in the range `[μ − 1σ, μ + 1σ]`, otherwise abnormal (class=0)."
///
/// Statistics are pooled per road type (the paper splits its sub-datasets
/// by road type before fitting).
///
/// # Example
///
/// ```
/// use cad3_data::{DatasetConfig, LabelModel, SyntheticDataset};
///
/// let ds = SyntheticDataset::generate(&DatasetConfig::small(1));
/// let model = LabelModel::fit(ds.features.iter());
/// let stats = model
///     .stats(cad3_types::RoadType::Motorway, cad3_data::TimeBucket::Normal)
///     .unwrap();
/// assert!(stats.speed_mean > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LabelModel {
    // BTreeMap, not HashMap: fitted on the seeded-generator path, where any
    // hasher-order iteration would leak into the replay contract.
    per_context: BTreeMap<(RoadType, TimeBucket), TypeStats>,
    sigma_multiplier: f64,
}

/// Pooled per-road-type moments used as labelling cut-offs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeStats {
    /// Mean speed, km/h.
    pub speed_mean: f64,
    /// Speed standard deviation, km/h.
    pub speed_std: f64,
    /// Mean acceleration, m/s².
    pub accel_mean: f64,
    /// Acceleration standard deviation, m/s².
    pub accel_std: f64,
    /// Records pooled.
    pub count: u64,
}

impl LabelModel {
    /// Fits cut-offs with the paper's 1σ multiplier.
    pub fn fit<'a>(records: impl IntoIterator<Item = &'a FeatureRecord>) -> Self {
        Self::fit_with_sigma(records, 1.0)
    }

    /// Fits cut-offs with a custom σ multiplier (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_multiplier` is not strictly positive.
    pub fn fit_with_sigma<'a>(
        records: impl IntoIterator<Item = &'a FeatureRecord>,
        sigma_multiplier: f64,
    ) -> Self {
        assert!(sigma_multiplier > 0.0, "sigma multiplier must be positive");
        let mut speed: BTreeMap<(RoadType, TimeBucket), GaussianStats> = BTreeMap::new();
        let mut accel: BTreeMap<(RoadType, TimeBucket), GaussianStats> = BTreeMap::new();
        for r in records {
            let key = (r.road_type, TimeBucket::of(r.hour));
            speed.entry(key).or_default().push(r.speed_kmh);
            accel.entry(key).or_default().push(r.accel_mps2);
        }
        let per_context = speed
            .into_iter()
            .map(|(key, s)| {
                let a = accel[&key];
                (
                    key,
                    TypeStats {
                        speed_mean: s.mean(),
                        speed_std: s.std_dev(),
                        accel_mean: a.mean(),
                        accel_std: a.std_dev(),
                        count: s.count(),
                    },
                )
            })
            .collect();
        LabelModel { per_context, sigma_multiplier }
    }

    /// The fitted statistics for a road type and time regime, if any
    /// records were seen in that context.
    pub fn stats(&self, rt: RoadType, bucket: TimeBucket) -> Option<&TypeStats> {
        self.per_context.get(&(rt, bucket))
    }

    /// Labels a record: normal iff *both* speed and acceleration fall
    /// within `μ ± kσ` of the record's spatio-temporal context (road type ×
    /// time-of-day regime).
    ///
    /// Records of unseen contexts are labelled abnormal (no normality
    /// evidence exists for them).
    pub fn label(&self, record: &FeatureRecord) -> Label {
        let key = (record.road_type, TimeBucket::of(record.hour));
        let Some(s) = self.per_context.get(&key) else {
            return Label::Abnormal;
        };
        let k = self.sigma_multiplier;
        let speed_ok = (record.speed_kmh - s.speed_mean).abs() <= k * s.speed_std;
        let accel_ok = (record.accel_mps2 - s.accel_mean).abs() <= k * s.accel_std;
        if speed_ok && accel_ok {
            Label::Normal
        } else {
            Label::Abnormal
        }
    }

    /// Applies [`LabelModel::label`] to every record in place.
    pub fn relabel(&self, records: &mut [FeatureRecord]) {
        for r in records {
            r.label = self.label(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_types::{DayOfWeek, HourOfDay, RoadId, TripId, VehicleId};

    fn rec(speed: f64, accel: f64, rt: RoadType) -> FeatureRecord {
        FeatureRecord {
            vehicle: VehicleId(1),
            trip: TripId(1),
            road: RoadId(1),
            accel_mps2: accel,
            speed_kmh: speed,
            hour: HourOfDay::new(12).unwrap(),
            day: DayOfWeek::Monday,
            road_type: rt,
            road_speed_kmh: 100.0,
            label: Label::Normal,
        }
    }

    fn corpus() -> Vec<FeatureRecord> {
        // Motorway speeds 80..=120 symmetric around 100; accel ~ ±1.
        let mut v = Vec::new();
        for i in 0..=40 {
            let speed = 80.0 + i as f64;
            let accel = (i as f64 - 20.0) / 20.0;
            v.push(rec(speed, accel, RoadType::Motorway));
        }
        v
    }

    #[test]
    fn central_records_are_normal_tails_abnormal() {
        let model = LabelModel::fit(corpus().iter());
        assert_eq!(model.label(&rec(100.0, 0.0, RoadType::Motorway)), Label::Normal);
        assert_eq!(model.label(&rec(135.0, 0.0, RoadType::Motorway)), Label::Abnormal);
        assert_eq!(model.label(&rec(60.0, 0.0, RoadType::Motorway)), Label::Abnormal);
    }

    #[test]
    fn accel_outlier_is_abnormal_even_at_normal_speed() {
        let model = LabelModel::fit(corpus().iter());
        assert_eq!(model.label(&rec(100.0, 5.0, RoadType::Motorway)), Label::Abnormal);
    }

    #[test]
    fn unseen_road_type_is_abnormal() {
        let model = LabelModel::fit(corpus().iter());
        assert_eq!(model.label(&rec(30.0, 0.0, RoadType::Residential)), Label::Abnormal);
    }

    #[test]
    fn one_sigma_on_gaussian_labels_about_one_third_abnormal() {
        // For Gaussian data, ±1σ keeps ~68% (speed) and the accel test
        // shaves more — the paper's "35% of samples exhibit abnormality"
        // arises naturally from this rule.
        let mut rng = cad3_sim::SimRng::seed_from(5);
        let records: Vec<FeatureRecord> = (0..20_000)
            .map(|_| rec(rng.normal(100.0, 10.0), rng.normal(0.0, 1.0), RoadType::Motorway))
            .collect();
        let model = LabelModel::fit(records.iter());
        let abnormal = records.iter().filter(|r| model.label(r) == Label::Abnormal).count() as f64
            / records.len() as f64;
        assert!((0.40..0.60).contains(&abnormal), "got {abnormal}");
    }

    #[test]
    fn wider_sigma_labels_fewer_abnormal() {
        let records = corpus();
        let strict = LabelModel::fit_with_sigma(records.iter(), 0.5);
        let loose = LabelModel::fit_with_sigma(records.iter(), 2.0);
        let count =
            |m: &LabelModel| records.iter().filter(|r| m.label(r) == Label::Abnormal).count();
        assert!(count(&strict) > count(&loose));
    }

    #[test]
    fn relabel_mutates_in_place() {
        let mut records = corpus();
        let model = LabelModel::fit(records.iter());
        model.relabel(&mut records);
        assert!(records.iter().any(|r| r.label == Label::Abnormal));
        assert!(records.iter().any(|r| r.label == Label::Normal));
    }

    #[test]
    fn per_type_stats_are_isolated() {
        let mut records = corpus();
        for i in 0..=40 {
            records.push(rec(20.0 + i as f64 * 0.5, 0.0, RoadType::Residential));
        }
        let model = LabelModel::fit(records.iter());
        let mw = model.stats(RoadType::Motorway, TimeBucket::Normal).unwrap();
        let res = model.stats(RoadType::Residential, TimeBucket::Normal).unwrap();
        assert!(mw.speed_mean > 90.0);
        assert!(res.speed_mean < 40.0);
        // 100 km/h is normal on a motorway, wildly abnormal on residential.
        assert_eq!(model.label(&rec(100.0, 0.0, RoadType::Motorway)), Label::Normal);
        assert_eq!(model.label(&rec(100.0, 0.0, RoadType::Residential)), Label::Abnormal);
    }
}

//! Synthetic Shenzhen-like driving-dataset substrate.
//!
//! The paper trains and evaluates on a proprietary one-month dataset of
//! 3,306 private cars in Shenzhen (trips + ~18 M GPS trajectories,
//! map-matched onto the OSM road network). That dataset is not
//! redistributable, so this crate synthesises a statistically equivalent
//! one, reproducing the structure every experiment depends on:
//!
//! * [`RoadNetwork`] — a road network with the paper's Table V road-type
//!   mix and per-type length distributions, including motorway→motorway-link
//!   junctions for the handover scenario.
//! * [`SpeedProfile`] — per-road-type, hour-of-day and weekday/weekend
//!   Gaussian speed profiles (the Fig. 2 shapes; e.g. most motorway-link
//!   traffic at 0–35 km/h while motorways flow much faster).
//! * [`TripGenerator`] — trips and 1 Hz GPS trajectories for drivers with
//!   persistent behavioural profiles ([`cad3_types::DriverProfile`]):
//!   aggressive drivers speed on *every* road of a trip, which is exactly
//!   the structure that makes the paper's collaborative model work.
//! * [`preprocess`] — the paper's Eq. 4: instantaneous speed/acceleration
//!   from consecutive fixes, erroneous-value filtering, Table II records.
//! * [`HmmMapMatcher`] — a Viterbi map matcher in the spirit of
//!   Newson–Krumm, used to recover road IDs from noisy GPS.
//! * [`LabelModel`] — the offline μ±1σ outlier-labelling stage.
//! * [`DatasetStats`] — Table III statistics.
//! * [`infrastructure`] — roadside traffic-light/lamp-pole placement and
//!   the Table V RSU-requirement / Table VI spacing analyses.
//! * [`SyntheticDataset`] — one-call generation of the full corpus.
//!
//! # Example
//!
//! ```
//! use cad3_data::{DatasetConfig, SyntheticDataset};
//!
//! let ds = SyntheticDataset::generate(&DatasetConfig::small(42));
//! assert!(ds.features.len() > 1_000);
//! let abnormal = ds.features.iter().filter(|f| f.label.is_abnormal()).count();
//! let frac = abnormal as f64 / ds.features.len() as f64;
//! assert!(frac > 0.15 && frac < 0.55, "got {frac}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
mod generator;
pub mod infrastructure;
mod label;
mod mapmatch;
pub mod preprocess;
mod profile_mix;
mod roadnet;
mod speed_profile;
mod stats;
mod trips;

pub use deployment::{DeploymentPlan, RsuSite};
pub use generator::{DatasetConfig, SyntheticDataset};
pub use infrastructure::{
    InfrastructureKind, RoadsideInfrastructure, RsuRequirement, SpacingStats,
};
pub use label::{LabelModel, TimeBucket};
pub use mapmatch::HmmMapMatcher;
pub use profile_mix::ProfileMix;
pub use roadnet::{RoadNetwork, RoadNetworkConfig, RoadTypeSpec};
pub use speed_profile::SpeedProfile;
pub use stats::DatasetStats;
pub use trips::{GeneratedTrip, TripGenerator};

/// Approximate centre of Shenzhen, the city the paper's dataset covers.
pub const SHENZHEN_CENTER: cad3_types::GeoPoint = cad3_types::GeoPoint { lon: 114.06, lat: 22.54 };

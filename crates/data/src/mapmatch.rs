use crate::RoadNetwork;
use cad3_types::{RoadId, TrajectoryPoint};

/// A hidden-Markov-model map matcher in the spirit of Newson–Krumm (the
/// algorithm the paper cites for mapping trajectories onto the Shenzhen
/// road network).
///
/// States are candidate roads near each fix; emission likelihood is a
/// Gaussian on the fix-to-road distance; transitions favour staying on the
/// same road and following known junctions. Decoding is exact Viterbi.
///
/// # Example
///
/// ```
/// use cad3_data::{HmmMapMatcher, RoadNetwork, RoadNetworkConfig, TripGenerator};
/// use cad3_sim::SimRng;
/// use cad3_types::{DayOfWeek, DriverProfile, TripId, VehicleId};
///
/// let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(3, 0.02));
/// let gen = TripGenerator::new(&net);
/// let mut rng = SimRng::seed_from(1);
/// let route = gen.microscopic_route(&mut rng);
/// let trip = gen.generate_trip(&mut rng, VehicleId(1), TripId(1),
///     DriverProfile::Typical, DayOfWeek::Monday, 0.0, &route);
///
/// let matcher = HmmMapMatcher::new(&net);
/// let matched = matcher.match_trajectory(&trip.points);
/// assert_eq!(matched.len(), trip.points.len());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HmmMapMatcher<'a> {
    network: &'a RoadNetwork,
    /// Emission sigma: expected GPS error, metres.
    gps_sigma_m: f64,
    /// Candidate search radius, metres.
    candidate_radius_m: f64,
    /// Log-penalty for switching roads without a junction.
    switch_penalty: f64,
    /// Log-penalty for switching roads across a junction.
    junction_penalty: f64,
}

impl<'a> HmmMapMatcher<'a> {
    /// Creates a matcher with defaults suited to ~5 m GPS noise.
    pub fn new(network: &'a RoadNetwork) -> Self {
        HmmMapMatcher {
            network,
            gps_sigma_m: 10.0,
            candidate_radius_m: 150.0,
            switch_penalty: 12.0,
            junction_penalty: 2.0,
        }
    }

    /// Overrides the expected GPS noise (emission sigma).
    pub fn with_gps_sigma(mut self, sigma_m: f64) -> Self {
        self.gps_sigma_m = sigma_m;
        self
    }

    fn emission_logp(&self, dist_m: f64) -> f64 {
        -0.5 * (dist_m / self.gps_sigma_m).powi(2)
    }

    fn transition_logp(&self, from: RoadId, to: RoadId) -> f64 {
        if from == to {
            0.0
        } else if self.network.links_of(from).contains(&to)
            || self.network.links_of(to).contains(&from)
        {
            -self.junction_penalty
        } else {
            -self.switch_penalty
        }
    }

    /// Matches each fix to a road by Viterbi decoding.
    ///
    /// Fixes with no candidate road within the search radius reuse the
    /// nearest road in the whole network (GPS outliers far from any road).
    /// Returns one road per input point; empty input yields empty output.
    pub fn match_trajectory(&self, points: &[TrajectoryPoint]) -> Vec<RoadId> {
        if points.is_empty() {
            return Vec::new();
        }
        // Candidate sets per point.
        let candidates: Vec<Vec<(RoadId, f64)>> = points
            .iter()
            .map(|p| {
                let mut c: Vec<(RoadId, f64)> = self
                    .network
                    .roads_near(&p.position, self.candidate_radius_m)
                    .into_iter()
                    .map(|id| {
                        let d =
                            self.network.road(id).expect("road exists").distance_to(&p.position);
                        (id, d)
                    })
                    .collect();
                if c.is_empty() {
                    // Fall back to the globally nearest road.
                    if let Some(best) = self
                        .network
                        .iter()
                        .map(|r| (r.id, r.distance_to(&p.position)))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are not NaN"))
                    {
                        c.push(best);
                    }
                }
                c.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are not NaN"));
                c.truncate(8);
                c
            })
            .collect();

        // Viterbi.
        let mut scores: Vec<f64> =
            candidates[0].iter().map(|(_, d)| self.emission_logp(*d)).collect();
        let mut backptr: Vec<Vec<usize>> = Vec::with_capacity(points.len());
        backptr.push(vec![0; candidates[0].len()]);

        for t in 1..points.len() {
            let mut new_scores = Vec::with_capacity(candidates[t].len());
            let mut new_back = Vec::with_capacity(candidates[t].len());
            for (to_road, d) in &candidates[t] {
                let (best_prev, best_score) = candidates[t - 1]
                    .iter()
                    .enumerate()
                    .map(|(j, (from_road, _))| {
                        (j, scores[j] + self.transition_logp(*from_road, *to_road))
                    })
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are not NaN"))
                    .expect("candidate set non-empty");
                new_scores.push(best_score + self.emission_logp(*d));
                new_back.push(best_prev);
            }
            scores = new_scores;
            backptr.push(new_back);
        }

        // Back-trace.
        let mut idx = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are not NaN"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut out = vec![RoadId(0); points.len()];
        for t in (0..points.len()).rev() {
            out[t] = candidates[t][idx].0;
            idx = backptr[t][idx];
        }
        out
    }

    /// Fraction of points matched to their true road — used to validate the
    /// matcher against generated ground truth.
    pub fn accuracy(&self, points: &[TrajectoryPoint], truth: &[RoadId]) -> f64 {
        assert_eq!(points.len(), truth.len(), "truth must align with points");
        if points.is_empty() {
            return 1.0;
        }
        let matched = self.match_trajectory(points);
        let correct = matched.iter().zip(truth).filter(|(a, b)| a == b).count();
        correct as f64 / points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoadNetworkConfig, TripGenerator};
    use cad3_sim::SimRng;
    use cad3_types::{DayOfWeek, DriverProfile, TripId, VehicleId};

    fn setup(seed: u64, noise: f64) -> (RoadNetwork, Vec<TrajectoryPoint>, Vec<RoadId>) {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(3, 0.02));
        let gen = TripGenerator::new(&net).with_gps_noise(noise);
        let mut rng = SimRng::seed_from(seed);
        let route = gen.microscopic_route(&mut rng);
        let trip = gen.generate_trip(
            &mut rng,
            VehicleId(1),
            TripId(1),
            DriverProfile::Typical,
            DayOfWeek::Monday,
            12.0 * 3600.0,
            &route,
        );
        (net, trip.points, trip.true_roads)
    }

    #[test]
    fn clean_gps_matches_nearly_perfectly() {
        let (net, points, truth) = setup(1, 0.5);
        let matcher = HmmMapMatcher::new(&net);
        let acc = matcher.accuracy(&points, &truth);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn noisy_gps_still_matches_well() {
        let (net, points, truth) = setup(2, 8.0);
        let matcher = HmmMapMatcher::new(&net);
        let acc = matcher.accuracy(&points, &truth);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn output_length_matches_input() {
        let (net, points, _) = setup(3, 5.0);
        let matcher = HmmMapMatcher::new(&net);
        assert_eq!(matcher.match_trajectory(&points).len(), points.len());
        assert!(matcher.match_trajectory(&[]).is_empty());
    }

    #[test]
    fn viterbi_is_smoother_than_nearest_road() {
        // Count road switches: HMM output should not flap between parallel
        // roads the way per-point nearest matching can.
        let (net, points, truth) = setup(4, 8.0);
        let matcher = HmmMapMatcher::new(&net);
        let matched = matcher.match_trajectory(&points);
        let switches = matched.windows(2).filter(|w| w[0] != w[1]).count();
        let true_switches = truth.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches <= true_switches + 4,
            "matched switches {switches} vs true {true_switches}"
        );
    }

    #[test]
    fn junction_transition_is_cheaper_than_jump() {
        let (net, _, _) = setup(5, 5.0);
        let matcher = HmmMapMatcher::new(&net);
        let (parent, link) = net.junctions()[0];
        let other = net
            .iter()
            .map(|r| r.id)
            .find(|id| *id != parent && *id != link && !net.links_of(parent).contains(id))
            .unwrap();
        assert!(matcher.transition_logp(parent, link) > matcher.transition_logp(parent, other));
        assert_eq!(matcher.transition_logp(parent, parent), 0.0);
    }
}

//! The paper's preprocessing stage (Section V, Eq. 4): derive instantaneous
//! speed and acceleration from consecutive GPS fixes, attach road context
//! from map matching, and filter erroneous measurements.

use crate::RoadNetwork;
use cad3_ml::GaussianStats;
use cad3_types::{DayOfWeek, FeatureRecord, HourOfDay, Label, RoadId, TrajectoryPoint};
use std::collections::HashMap;

/// Filtering thresholds for erroneous values ("after we filter out
/// erroneous measurements" — Section V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Maximum plausible speed in km/h.
    pub max_speed_kmh: f64,
    /// Maximum plausible |acceleration| in m/s².
    pub max_accel_mps2: f64,
    /// Moving-average window applied to the derived speeds before
    /// differentiating into accelerations (odd, ≥1; 1 disables smoothing).
    /// GPS position noise of a few metres turns into tens of m/s² of fake
    /// acceleration at 1 Hz without it.
    pub smoothing_window: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig { max_speed_kmh: 250.0, max_accel_mps2: 12.0, smoothing_window: 3 }
    }
}

/// Centred moving average over `Some` values; `None` entries break runs.
fn smooth(speeds: &[Option<f64>], window: usize) -> Vec<Option<f64>> {
    if window <= 1 {
        return speeds.to_vec();
    }
    let half = window / 2;
    speeds
        .iter()
        .enumerate()
        .map(|(i, v)| {
            (*v)?;
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(speeds.len() - 1);
            let vals: Vec<f64> = speeds[lo..=hi].iter().flatten().copied().collect();
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        })
        .collect()
}

/// Computes the instantaneous speed of each displacement (the paper's
/// Eq. 4): `v_r(i) = Dist(l_i, l_{i+1}) / (t_{i+1} − t_i)`, in km/h.
///
/// The output has one entry per consecutive pair; non-increasing timestamps
/// yield `None` entries (erroneous).
pub fn instantaneous_speeds(points: &[TrajectoryPoint]) -> Vec<Option<f64>> {
    points
        .windows(2)
        .map(|w| {
            let dt = w[1].gps_time_s - w[0].gps_time_s;
            if dt <= 0.0 {
                return None;
            }
            let d = w[0].position.haversine_m(&w[1].position);
            Some(d / dt * 3.6)
        })
        .collect()
}

/// Builds Table II feature records from a trajectory and its map-matched
/// roads, applying Eq. 4 and the erroneous-value filter.
///
/// `matched_roads` must have one road per trajectory point (as returned by
/// [`crate::HmmMapMatcher::match_trajectory`]). The per-road normal speed
/// `v̄_r` is the running mean of the instantaneous speeds observed on that
/// road, exactly as Eq. 4 defines it.
///
/// `day` is the day of week of the trip. Labels are placeholders
/// ([`Label::Normal`]) for the offline labelling stage.
///
/// # Panics
///
/// Panics if `matched_roads.len() != points.len()`.
pub fn to_feature_records(
    network: &RoadNetwork,
    points: &[TrajectoryPoint],
    matched_roads: &[RoadId],
    day: DayOfWeek,
    filter: &FilterConfig,
) -> Vec<FeatureRecord> {
    assert_eq!(points.len(), matched_roads.len(), "one matched road per trajectory point required");
    let speeds = smooth(&instantaneous_speeds(points), filter.smoothing_window);
    let mut road_speed: HashMap<RoadId, GaussianStats> = HashMap::new();
    let mut out = Vec::new();
    let mut prev_speed: Option<(f64, f64)> = None; // (speed_kmh, time_s)

    for (i, speed) in speeds.iter().enumerate() {
        let Some(v) = *speed else {
            prev_speed = None;
            continue;
        };
        let p = &points[i + 1];
        let road_id = matched_roads[i + 1];
        let Some(road) = network.road(road_id) else { continue };

        let accel = match prev_speed {
            Some((pv, pt)) if p.gps_time_s > pt => (v - pv) / 3.6 / (p.gps_time_s - pt),
            _ => 0.0,
        };
        prev_speed = Some((v, p.gps_time_s));

        // Erroneous-value filter.
        if v > filter.max_speed_kmh || accel.abs() > filter.max_accel_mps2 {
            continue;
        }

        let stats = road_speed.entry(road_id).or_default();
        stats.push(v);
        out.push(FeatureRecord {
            vehicle: p.vehicle,
            trip: p.trip,
            road: road_id,
            accel_mps2: accel,
            speed_kmh: v,
            hour: HourOfDay::wrapping((p.gps_time_s / 3600.0) as u64),
            day,
            road_type: road.road_type,
            road_speed_kmh: stats.mean(),
            label: Label::Normal,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoadNetworkConfig, TripGenerator};
    use cad3_sim::SimRng;
    use cad3_types::{DriverProfile, GeoPoint, TripId, VehicleId};

    fn straight_points(speed_kmh: f64, n: usize) -> Vec<TrajectoryPoint> {
        let start = GeoPoint::new(114.0, 22.5);
        let step_m = speed_kmh / 3.6;
        (0..n)
            .map(|i| TrajectoryPoint {
                vehicle: VehicleId(1),
                trip: TripId(1),
                position: start.destination(90.0, step_m * i as f64),
                gps_time_s: i as f64,
                ac_mileage_m: step_m * i as f64,
            })
            .collect()
    }

    #[test]
    fn eq4_recovers_constant_speed() {
        let points = straight_points(72.0, 10);
        let speeds = instantaneous_speeds(&points);
        assert_eq!(speeds.len(), 9);
        for s in speeds {
            let v = s.unwrap();
            assert!((v - 72.0).abs() < 0.5, "got {v}");
        }
    }

    #[test]
    fn non_monotonic_time_is_erroneous() {
        let mut points = straight_points(50.0, 5);
        points[2].gps_time_s = points[1].gps_time_s; // dt = 0
        let speeds = instantaneous_speeds(&points);
        assert!(speeds[1].is_none());
        assert!(speeds[0].is_some());
    }

    #[test]
    fn feature_records_from_generated_trip() {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(3, 0.02));
        let gen = TripGenerator::new(&net).with_gps_noise(2.0);
        let mut rng = SimRng::seed_from(4);
        let route = gen.microscopic_route(&mut rng);
        let trip = gen.generate_trip(
            &mut rng,
            VehicleId(9),
            TripId(3),
            DriverProfile::Typical,
            DayOfWeek::Thursday,
            9.5 * 3600.0,
            &route,
        );
        let recs = to_feature_records(
            &net,
            &trip.points,
            &trip.true_roads,
            DayOfWeek::Thursday,
            &FilterConfig::default(),
        );
        assert!(recs.len() > trip.points.len() / 2, "most points survive preprocessing");
        // Derived speeds track the generator's ground-truth speeds.
        let derived_mean = recs.iter().map(|r| r.speed_kmh).sum::<f64>() / recs.len() as f64;
        let truth_mean =
            trip.features.iter().map(|f| f.speed_kmh).sum::<f64>() / trip.features.len() as f64;
        assert!(
            (derived_mean - truth_mean).abs() < truth_mean * 0.25,
            "derived {derived_mean} vs truth {truth_mean}"
        );
        // Context attached.
        assert!(recs.iter().all(|r| r.road_speed_kmh > 0.0));
        assert_eq!(recs[0].vehicle, VehicleId(9));
        assert_eq!(recs[0].day, DayOfWeek::Thursday);
    }

    #[test]
    fn smoothing_reduces_derived_acceleration_noise() {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(3, 0.02));
        let gen = TripGenerator::new(&net).with_gps_noise(5.0);
        let mut rng = SimRng::seed_from(12);
        let route = gen.microscopic_route(&mut rng);
        let trip = gen.generate_trip(
            &mut rng,
            VehicleId(1),
            TripId(1),
            DriverProfile::Typical,
            DayOfWeek::Monday,
            12.0 * 3600.0,
            &route,
        );
        let accel_spread = |window: usize| {
            let recs = to_feature_records(
                &net,
                &trip.points,
                &trip.true_roads,
                DayOfWeek::Monday,
                &FilterConfig { smoothing_window: window, ..FilterConfig::default() },
            );
            let mean = recs.iter().map(|r| r.accel_mps2).sum::<f64>() / recs.len() as f64;
            (recs.iter().map(|r| (r.accel_mps2 - mean).powi(2)).sum::<f64>() / recs.len() as f64)
                .sqrt()
        };
        let raw = accel_spread(1);
        let smoothed = accel_spread(3);
        assert!(
            smoothed < raw * 0.7,
            "3-point smoothing should cut accel noise: {raw} -> {smoothed}"
        );
    }

    #[test]
    fn filter_drops_teleporting_fixes() {
        let mut points = straight_points(60.0, 10);
        // Teleport one fix 10 km away: instantaneous speed becomes absurd.
        points[5].position = points[5].position.destination(0.0, 10_000.0);
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(3, 0.02));
        let any_road = net.iter().next().unwrap().id;
        let matched = vec![any_road; points.len()];
        let recs = to_feature_records(
            &net,
            &points,
            &matched,
            DayOfWeek::Monday,
            &FilterConfig::default(),
        );
        assert!(recs.iter().all(|r| r.speed_kmh <= 250.0));
        assert!(recs.len() < 9, "erroneous displacements filtered");
    }

    #[test]
    #[should_panic(expected = "one matched road per trajectory point")]
    fn mismatched_lengths_panic() {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(3, 0.02));
        let points = straight_points(60.0, 5);
        to_feature_records(&net, &points, &[], DayOfWeek::Monday, &FilterConfig::default());
    }
}

use cad3_sim::SimRng;
use cad3_types::DriverProfile;

/// A distribution over driver behavioural profiles.
///
/// The paper's Table IV experiment states that "35% of the samples exhibit
/// abnormality"; [`ProfileMix::paper_default`] reproduces that ratio at the
/// driver level, splitting the abnormal mass across speeding, slowing and
/// erratic acceleration (the three behaviours the paper warns about).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileMix {
    /// Fraction of typical drivers.
    pub typical: f64,
    /// Fraction of aggressive (speeding) drivers.
    pub aggressive: f64,
    /// Fraction of sluggish (slowing) drivers.
    pub sluggish: f64,
    /// Fraction of erratic (sudden-acceleration) drivers.
    pub erratic: f64,
}

impl ProfileMix {
    /// The paper-calibrated mix: 65% typical, 35% abnormal
    /// (speeding-heavy, as speeding dominates highway accidents).
    pub fn paper_default() -> Self {
        ProfileMix { typical: 0.65, aggressive: 0.17, sluggish: 0.12, erratic: 0.06 }
    }

    /// A mix with no abnormal drivers (for baseline calibration).
    pub fn all_typical() -> Self {
        ProfileMix { typical: 1.0, aggressive: 0.0, sluggish: 0.0, erratic: 0.0 }
    }

    /// Creates a custom mix.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or the weights do not sum to ~1.
    pub fn new(typical: f64, aggressive: f64, sluggish: f64, erratic: f64) -> Self {
        let sum = typical + aggressive + sluggish + erratic;
        assert!(
            typical >= 0.0 && aggressive >= 0.0 && sluggish >= 0.0 && erratic >= 0.0,
            "profile weights must be non-negative"
        );
        assert!((sum - 1.0).abs() < 1e-6, "profile weights must sum to 1, got {sum}");
        ProfileMix { typical, aggressive, sluggish, erratic }
    }

    /// Fraction of drivers with an abnormal profile.
    pub fn abnormal_fraction(&self) -> f64 {
        self.aggressive + self.sluggish + self.erratic
    }

    /// Samples a driver profile.
    pub fn sample(&self, rng: &mut SimRng) -> DriverProfile {
        let idx = rng.pick_weighted(&[self.typical, self.aggressive, self.sluggish, self.erratic]);
        DriverProfile::ALL[idx]
    }
}

impl Default for ProfileMix {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_35_percent_abnormal() {
        let mix = ProfileMix::paper_default();
        assert!((mix.abnormal_fraction() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn sampling_tracks_weights() {
        let mix = ProfileMix::paper_default();
        let mut rng = SimRng::seed_from(1);
        let n = 50_000;
        let abnormal =
            (0..n).filter(|_| mix.sample(&mut rng).is_abnormal()).count() as f64 / n as f64;
        assert!((abnormal - 0.35).abs() < 0.01, "got {abnormal}");
    }

    #[test]
    fn all_typical_never_abnormal() {
        let mix = ProfileMix::all_typical();
        let mut rng = SimRng::seed_from(2);
        assert!((0..1000).all(|_| mix.sample(&mut rng) == DriverProfile::Typical));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weights_panic() {
        ProfileMix::new(0.5, 0.1, 0.1, 0.1);
    }
}

use crate::SHENZHEN_CENTER;
use cad3_sim::SimRng;
use cad3_types::{GeoPoint, RoadId, RoadSegment, RoadType};
use std::collections::{BTreeMap, HashMap};

/// Per-road-type generation parameters, mirroring the paper's Table V
/// columns: traffic-density share, road count, mean length and length
/// standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadTypeSpec {
    /// Road type.
    pub road_type: RoadType,
    /// Share of city traffic carried by this type (Table V "Density").
    pub traffic_share: f64,
    /// Number of road trunks of this type (Table V "# road").
    pub count: usize,
    /// Mean trunk length in metres (Table V "Mean").
    pub mean_length_m: f64,
    /// Length standard deviation in metres (Table V "STD").
    pub std_length_m: f64,
}

impl RoadTypeSpec {
    /// The paper's Table V rows for Shenzhen.
    pub fn paper_table_v() -> Vec<RoadTypeSpec> {
        use RoadType::*;
        let rows: [(RoadType, f64, usize, f64, f64); 10] = [
            (Motorway, 0.077, 435, 3357.0, 7652.0),
            (MotorwayLink, 0.028, 159, 596.0, 1626.0),
            (Trunk, 0.116, 656, 1622.0, 5520.0),
            (TrunkLink, 0.044, 247, 339.0, 1931.0),
            (Primary, 0.252, 1431, 668.0, 2939.0),
            (PrimaryLink, 0.034, 191, 211.0, 169.0),
            (Secondary, 0.201, 1140, 561.0, 2337.0),
            (SecondaryLink, 0.003, 36, 186.0, 156.0),
            (Tertiary, 0.188, 1064, 522.0, 2592.0),
            (Residential, 0.053, 303, 334.0, 1470.0),
        ];
        rows.into_iter()
            .map(|(road_type, traffic_share, count, mean_length_m, std_length_m)| RoadTypeSpec {
                road_type,
                traffic_share,
                count,
                mean_length_m,
                std_length_m,
            })
            .collect()
    }
}

/// Configuration of the synthetic road network.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadNetworkConfig {
    /// RNG seed.
    pub seed: u64,
    /// Scale factor applied to the Table V road counts (1.0 = full
    /// Shenzhen, ~5.7 k trunks; tests use much smaller scales).
    pub scale: f64,
    /// Per-type specifications.
    pub specs: Vec<RoadTypeSpec>,
    /// Half-width of the city bounding box in metres.
    pub extent_m: f64,
}

impl RoadNetworkConfig {
    /// Full-city configuration from the paper's Table V.
    pub fn shenzhen(seed: u64) -> Self {
        RoadNetworkConfig {
            seed,
            scale: 1.0,
            specs: RoadTypeSpec::paper_table_v(),
            extent_m: 25_000.0,
        }
    }

    /// A scaled-down configuration for fast tests and examples.
    pub fn scaled(seed: u64, scale: f64) -> Self {
        RoadNetworkConfig { scale, ..Self::shenzhen(seed) }
    }
}

/// A synthetic road network: typed road trunks plus motorway→link-style
/// junctions used for RSU handover scenarios.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    roads: BTreeMap<RoadId, RoadSegment>,
    by_type: HashMap<RoadType, Vec<RoadId>>,
    /// `(from, to)` pairs where `to` (a link road) begins at the end of
    /// `from` (its parent road).
    junctions: Vec<(RoadId, RoadId)>,
}

impl RoadNetwork {
    /// Generates a network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields no roads.
    pub fn generate(config: &RoadNetworkConfig) -> Self {
        let mut rng = SimRng::seed_from(config.seed);
        let mut roads = BTreeMap::new();
        let mut by_type: HashMap<RoadType, Vec<RoadId>> = HashMap::new();
        let mut junctions = Vec::new();
        let mut next_id: u64 = 1;

        // Pass 1: non-link roads scattered over the city box.
        for spec in config.specs.iter().filter(|s| !s.road_type.is_link()) {
            let n = ((spec.count as f64 * config.scale).round() as usize).max(1);
            for _ in 0..n {
                let id = RoadId(next_id);
                next_id += 1;
                let seg = Self::random_road(&mut rng, spec, config.extent_m, None);
                by_type.entry(spec.road_type).or_default().push(id);
                roads.insert(id, RoadSegment { id, ..seg });
            }
        }

        // Pass 2: link roads, attached to the end of a random parent road
        // of the matching type (motorway_link to motorway, etc.).
        for spec in config.specs.iter().filter(|s| s.road_type.is_link()) {
            let n = ((spec.count as f64 * config.scale).round() as usize).max(1);
            let parent_type = match spec.road_type {
                RoadType::MotorwayLink => RoadType::Motorway,
                RoadType::TrunkLink => RoadType::Trunk,
                RoadType::PrimaryLink => RoadType::Primary,
                RoadType::SecondaryLink => RoadType::Secondary,
                _ => unreachable!("is_link covers exactly these four"),
            };
            for _ in 0..n {
                let id = RoadId(next_id);
                next_id += 1;
                let parent =
                    by_type.get(&parent_type).and_then(|v| (!v.is_empty()).then(|| *rng.pick(v)));
                let anchor = parent.map(|p| roads[&p].end());
                let seg = Self::random_road(&mut rng, spec, config.extent_m, anchor);
                by_type.entry(spec.road_type).or_default().push(id);
                roads.insert(id, RoadSegment { id, ..seg });
                if let Some(p) = parent {
                    junctions.push((p, id));
                }
            }
        }

        assert!(!roads.is_empty(), "road network configuration produced no roads");
        RoadNetwork { roads, by_type, junctions }
    }

    fn random_road(
        rng: &mut SimRng,
        spec: &RoadTypeSpec,
        extent_m: f64,
        anchor: Option<GeoPoint>,
    ) -> RoadSegment {
        // Length: lognormal-ish — clamp a Gaussian draw to a sane range so
        // the heavy Table V std values cannot produce degenerate roads.
        let raw = rng.normal(spec.mean_length_m, spec.std_length_m.min(spec.mean_length_m));
        let length = raw.clamp(spec.mean_length_m * 0.25, spec.mean_length_m * 4.0).max(60.0);

        let start = anchor.unwrap_or_else(|| {
            let dx = rng.uniform(-extent_m, extent_m);
            let dy = rng.uniform(-extent_m, extent_m);
            SHENZHEN_CENTER.destination(90.0, dx).destination(0.0, dy)
        });
        let mut bearing = rng.uniform(0.0, 360.0);
        // 3–6 vertices with gentle bearing wobble.
        let vertices = 3 + rng.index(4);
        let hop = length / (vertices - 1) as f64;
        let mut polyline = vec![start];
        let mut here = start;
        for _ in 1..vertices {
            bearing += rng.normal(0.0, 8.0);
            here = here.destination(bearing, hop);
            polyline.push(here);
        }
        RoadSegment::new(RoadId(0), spec.road_type, polyline)
    }

    /// The road with the given id.
    pub fn road(&self, id: RoadId) -> Option<&RoadSegment> {
        self.roads.get(&id)
    }

    /// All road ids of a type, in generation order.
    pub fn roads_of_type(&self, rt: RoadType) -> &[RoadId] {
        self.by_type.get(&rt).map_or(&[], Vec::as_slice)
    }

    /// All `(parent, link)` junction pairs.
    pub fn junctions(&self) -> &[(RoadId, RoadId)] {
        &self.junctions
    }

    /// Links reachable from the end of `road`.
    pub fn links_of(&self, road: RoadId) -> Vec<RoadId> {
        self.junctions.iter().filter(|(p, _)| *p == road).map(|(_, l)| *l).collect()
    }

    /// Total number of roads.
    pub fn len(&self) -> usize {
        self.roads.len()
    }

    /// Whether the network has no roads (never true after generation).
    pub fn is_empty(&self) -> bool {
        self.roads.is_empty()
    }

    /// Iterates over all roads.
    pub fn iter(&self) -> impl Iterator<Item = &RoadSegment> {
        self.roads.values()
    }

    /// Roads whose geometry passes within `radius_m` of `p`.
    pub fn roads_near(&self, p: &GeoPoint, radius_m: f64) -> Vec<RoadId> {
        self.roads.values().filter(|r| r.distance_to(p) <= radius_m).map(|r| r.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RoadNetwork {
        RoadNetwork::generate(&RoadNetworkConfig::scaled(7, 0.02))
    }

    #[test]
    fn generates_all_road_types() {
        let net = small();
        for rt in RoadType::ALL {
            assert!(!net.roads_of_type(rt).is_empty(), "missing {rt}");
        }
    }

    #[test]
    fn scale_controls_counts() {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(7, 0.1));
        // Full Shenzhen has 5,662 trunks; 10% ≈ 566 (±rounding).
        assert!(net.len() > 450 && net.len() < 700, "got {}", net.len());
    }

    #[test]
    fn links_attach_to_parent_roads() {
        let net = small();
        assert!(!net.junctions().is_empty());
        for (parent, link) in net.junctions() {
            let p = net.road(*parent).unwrap();
            let l = net.road(*link).unwrap();
            assert!(l.road_type.is_link());
            assert_eq!(Some(l.road_type), p.road_type.link_type());
            // Link starts where the parent ends.
            assert!(p.end().haversine_m(&l.start()) < 1.0);
        }
    }

    #[test]
    fn links_of_inverts_junctions() {
        let net = small();
        let (parent, link) = net.junctions()[0];
        assert!(net.links_of(parent).contains(&link));
    }

    #[test]
    fn lengths_are_plausible() {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(11, 0.05));
        let mw: Vec<f64> = net
            .roads_of_type(RoadType::Motorway)
            .iter()
            .map(|id| net.road(*id).unwrap().length_m)
            .collect();
        let mean = mw.iter().sum::<f64>() / mw.len() as f64;
        assert!(mean > 1500.0 && mean < 6000.0, "motorway mean length {mean}");
        let link: Vec<f64> = net
            .roads_of_type(RoadType::MotorwayLink)
            .iter()
            .map(|id| net.road(*id).unwrap().length_m)
            .collect();
        let link_mean = link.iter().sum::<f64>() / link.len() as f64;
        assert!(link_mean < mean, "links shorter than motorways");
    }

    #[test]
    fn same_seed_same_network() {
        let a = RoadNetwork::generate(&RoadNetworkConfig::scaled(5, 0.02));
        let b = RoadNetwork::generate(&RoadNetworkConfig::scaled(5, 0.02));
        assert_eq!(a.len(), b.len());
        for road in a.iter() {
            let other = b.road(road.id).unwrap();
            assert_eq!(road.polyline, other.polyline);
        }
    }

    #[test]
    fn roads_near_finds_own_geometry() {
        let net = small();
        let road = net.iter().next().unwrap();
        let mid = road.point_at(road.length_m / 2.0);
        assert!(net.roads_near(&mid, 200.0).contains(&road.id));
    }

    #[test]
    fn table_v_spec_sums() {
        let specs = RoadTypeSpec::paper_table_v();
        let total: usize = specs.iter().map(|s| s.count).sum();
        assert_eq!(total, 5662);
        let share: f64 = specs.iter().map(|s| s.traffic_share).sum();
        assert!((share - 0.996).abs() < 0.01, "density shares sum to ~1: {share}");
    }
}

use cad3_sim::SimRng;
use cad3_types::{DayOfWeek, HourOfDay, RoadType};

/// Per-road-type Gaussian speed profile with hour-of-day and
/// weekday/weekend modulation — the generator behind the paper's Fig. 2.
///
/// The paper's running example (Section IV-C): on a motorway link "most
/// vehicles drive between 0 km/h and 35 km/h", so a driver at 90 km/h is
/// abnormal, while motorways flow much faster. Profiles here encode that
/// contrast plus the Fig. 2 temporal structure: weekday rush-hour dips,
/// free-flowing nights, flatter weekends.
///
/// # Example
///
/// ```
/// use cad3_data::SpeedProfile;
/// use cad3_types::{DayOfWeek, HourOfDay, RoadType};
///
/// let mw = SpeedProfile::for_road_type(RoadType::Motorway);
/// let link = SpeedProfile::for_road_type(RoadType::MotorwayLink);
/// let h = HourOfDay::new(14).unwrap();
/// assert!(mw.mean_kmh(h, DayOfWeek::Tuesday) > 2.0 * link.mean_kmh(h, DayOfWeek::Tuesday));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedProfile {
    road_type: RoadType,
    base_mean_kmh: f64,
    base_std_kmh: f64,
}

impl SpeedProfile {
    /// The calibrated profile for a road type.
    pub fn for_road_type(road_type: RoadType) -> Self {
        // (mean, std) of free-flow speed per road type, km/h. Chosen so the
        // road-type ordering and the Fig. 2 / Section IV-C contrasts hold.
        let (base_mean_kmh, base_std_kmh) = match road_type {
            RoadType::Motorway => (100.0, 12.0),
            RoadType::MotorwayLink => (28.0, 7.0),
            RoadType::Trunk => (70.0, 10.0),
            RoadType::TrunkLink => (32.0, 7.0),
            RoadType::Primary => (50.0, 9.0),
            RoadType::PrimaryLink => (30.0, 6.0),
            RoadType::Secondary => (40.0, 8.0),
            RoadType::SecondaryLink => (28.0, 6.0),
            RoadType::Tertiary => (35.0, 7.0),
            RoadType::Residential => (22.0, 5.0),
        };
        SpeedProfile { road_type, base_mean_kmh, base_std_kmh }
    }

    /// The road type this profile describes.
    pub fn road_type(&self) -> RoadType {
        self.road_type
    }

    /// Multiplicative factor applied to the base mean for a given hour/day.
    pub fn modulation(hour: HourOfDay, day: DayOfWeek) -> f64 {
        let h = hour.get();
        if day.is_weekend() {
            // Weekends: no commuter rush; slightly slower mid-day bustle.
            match h {
                0..=5 => 1.10,
                11..=16 => 0.92,
                _ => 1.0,
            }
        } else {
            // Weekdays: free-flowing nights, congested rush hours.
            match h {
                0..=5 => 1.12,
                7..=9 => 0.72,
                17..=19 => 0.70,
                _ => 1.0,
            }
        }
    }

    /// Mean speed at the given hour and day, km/h.
    pub fn mean_kmh(&self, hour: HourOfDay, day: DayOfWeek) -> f64 {
        self.base_mean_kmh * Self::modulation(hour, day)
    }

    /// Standard deviation at the given hour and day, km/h.
    ///
    /// Rush hours have *higher* relative variance (stop-and-go), which is
    /// part of what makes context-awareness necessary.
    pub fn std_kmh(&self, hour: HourOfDay, day: DayOfWeek) -> f64 {
        let m = Self::modulation(hour, day);
        if m < 0.9 {
            self.base_std_kmh * 1.3
        } else {
            self.base_std_kmh
        }
    }

    /// Draws a typical-driver speed for this context, clamped at 0.
    pub fn sample_kmh(&self, rng: &mut SimRng, hour: HourOfDay, day: DayOfWeek) -> f64 {
        rng.normal(self.mean_kmh(hour, day), self.std_kmh(hour, day)).max(0.0)
    }

    /// The Fig. 2 series: mean speed for each hour of a day.
    pub fn daily_series(&self, day: DayOfWeek) -> Vec<f64> {
        (0..24).map(|h| self.mean_kmh(HourOfDay::new(h).expect("hour in range"), day)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(x: u8) -> HourOfDay {
        HourOfDay::new(x).unwrap()
    }

    #[test]
    fn motorway_much_faster_than_link() {
        let mw = SpeedProfile::for_road_type(RoadType::Motorway);
        let link = SpeedProfile::for_road_type(RoadType::MotorwayLink);
        for hour in 0..24u8 {
            assert!(
                mw.mean_kmh(h(hour), DayOfWeek::Monday)
                    > 2.0 * link.mean_kmh(h(hour), DayOfWeek::Monday)
            );
        }
    }

    #[test]
    fn section_ivc_example_holds() {
        // "most vehicles drive between 0 km/h and 35 km/h" on a motorway
        // link: mean + 1σ stays at or below ~35.
        let link = SpeedProfile::for_road_type(RoadType::MotorwayLink);
        let m = link.mean_kmh(h(14), DayOfWeek::Tuesday);
        let s = link.std_kmh(h(14), DayOfWeek::Tuesday);
        assert!(m + s <= 36.0, "link profile too fast: {m} + {s}");
        // And 90 km/h is far outside the normal band.
        assert!(90.0 > m + 3.0 * s);
    }

    #[test]
    fn weekday_rush_hour_dips() {
        let mw = SpeedProfile::for_road_type(RoadType::Motorway);
        let rush = mw.mean_kmh(h(8), DayOfWeek::Wednesday);
        let noon = mw.mean_kmh(h(12), DayOfWeek::Wednesday);
        let night = mw.mean_kmh(h(3), DayOfWeek::Wednesday);
        assert!(rush < noon, "rush {rush} must dip below noon {noon}");
        assert!(night > noon, "night free-flow should exceed noon");
    }

    #[test]
    fn weekend_has_no_commuter_rush() {
        let mw = SpeedProfile::for_road_type(RoadType::Motorway);
        let sat_rush = mw.mean_kmh(h(8), DayOfWeek::Saturday);
        let wed_rush = mw.mean_kmh(h(8), DayOfWeek::Wednesday);
        assert!(sat_rush > wed_rush, "weekend morning flows freer than weekday rush");
    }

    #[test]
    fn rush_hour_variance_grows() {
        let mw = SpeedProfile::for_road_type(RoadType::Motorway);
        assert!(mw.std_kmh(h(8), DayOfWeek::Monday) > mw.std_kmh(h(12), DayOfWeek::Monday));
    }

    #[test]
    fn samples_are_nonnegative_and_centered() {
        let link = SpeedProfile::for_road_type(RoadType::MotorwayLink);
        let mut rng = cad3_sim::SimRng::seed_from(3);
        let n = 20_000;
        let samples: Vec<f64> =
            (0..n).map(|_| link.sample_kmh(&mut rng, h(14), DayOfWeek::Friday)).collect();
        assert!(samples.iter().all(|&s| s >= 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        let expected = link.mean_kmh(h(14), DayOfWeek::Friday);
        assert!((mean - expected).abs() < 0.5, "mean {mean} vs expected {expected}");
    }

    #[test]
    fn daily_series_has_24_points() {
        let s = SpeedProfile::for_road_type(RoadType::Primary).daily_series(DayOfWeek::Monday);
        assert_eq!(s.len(), 24);
        // Rush dip visible in the series itself.
        assert!(s[8] < s[12]);
    }

    #[test]
    fn road_type_ordering_motorway_fastest() {
        let speeds: Vec<f64> = RoadType::ALL
            .iter()
            .map(|&rt| SpeedProfile::for_road_type(rt).mean_kmh(h(12), DayOfWeek::Monday))
            .collect();
        let mw = speeds[0];
        assert!(speeds.iter().all(|&s| s <= mw), "motorway must be fastest");
    }
}

use cad3_types::{FeatureRecord, RoadType, TripRecord};
use std::collections::HashSet;

/// Dataset statistics in the format of the paper's Table III: cars, trips,
/// mean speed and trajectory counts, per region and per road type.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Region / road-type rows.
    pub rows: Vec<StatsRow>,
}

/// One row of the Table III layout.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsRow {
    /// Row label ("Shenzhen", "Motorway", ...).
    pub region: String,
    /// Distinct vehicles.
    pub cars: usize,
    /// Distinct trips.
    pub trips: usize,
    /// Mean instantaneous speed, km/h.
    pub mean_speed_kmh: f64,
    /// Number of trajectory records.
    pub trajectories: usize,
}

impl DatasetStats {
    /// Computes the city-wide row plus one row per road type present.
    pub fn compute(features: &[FeatureRecord], trips: &[TripRecord]) -> Self {
        let mut rows = vec![Self::row("Shenzhen", features, trips, None)];
        for rt in RoadType::ALL {
            if features.iter().any(|f| f.road_type == rt) {
                rows.push(Self::row(&rt.to_string(), features, trips, Some(rt)));
            }
        }
        DatasetStats { rows }
    }

    fn row(
        name: &str,
        features: &[FeatureRecord],
        trips: &[TripRecord],
        rt: Option<RoadType>,
    ) -> StatsRow {
        let select: Vec<&FeatureRecord> =
            features.iter().filter(|f| rt.is_none_or(|t| f.road_type == t)).collect();
        let cars: HashSet<_> = select.iter().map(|f| f.vehicle).collect();
        let trip_ids: HashSet<_> = select.iter().map(|f| (f.vehicle, f.trip)).collect();
        let mean = if select.is_empty() {
            0.0
        } else {
            select.iter().map(|f| f.speed_kmh).sum::<f64>() / select.len() as f64
        };
        // City-wide trip count uses the trip table; per-type rows count
        // trips that touch the type.
        let trips_count = if rt.is_none() { trips.len() } else { trip_ids.len() };
        StatsRow {
            region: name.to_owned(),
            cars: cars.len(),
            trips: trips_count,
            mean_speed_kmh: mean,
            trajectories: select.len(),
        }
    }

    /// The row for a region name, if present.
    pub fn row_named(&self, name: &str) -> Option<&StatsRow> {
        self.rows.iter().find(|r| r.region == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetConfig, SyntheticDataset};

    #[test]
    fn table_iii_shape_holds() {
        let ds = SyntheticDataset::generate(&DatasetConfig::small(11));
        let stats = DatasetStats::compute(&ds.features, &ds.trips);
        let city = stats.row_named("Shenzhen").unwrap();
        let mw = stats.row_named("motorway").unwrap();
        let link = stats.row_named("motorway_link").unwrap();

        // Motorway flows much faster than the link and than the city mean —
        // the Table III / Fig. 2 ordering.
        assert!(mw.mean_speed_kmh > link.mean_speed_kmh);
        assert!(mw.mean_speed_kmh > city.mean_speed_kmh);
        // City row aggregates everything.
        assert_eq!(city.trajectories, ds.features.len(), "city row counts all trajectories");
        assert!(city.cars <= ds.config.n_vehicles as usize);
        assert_eq!(city.trips, ds.trips.len());
        // Sub-rows are subsets.
        assert!(mw.trajectories < city.trajectories);
        assert!(mw.cars <= city.cars);
    }

    #[test]
    fn row_named_missing_is_none() {
        let stats = DatasetStats { rows: vec![] };
        assert!(stats.row_named("nowhere").is_none());
    }
}

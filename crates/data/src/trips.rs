use crate::{RoadNetwork, SpeedProfile};
use cad3_sim::SimRng;
use cad3_types::{
    DayOfWeek, DriverProfile, FeatureRecord, GeoPoint, HourOfDay, Label, RoadId, TrajectoryPoint,
    TripId, TripRecord, VehicleId,
};

/// A generated trip: the Table I trip row, its 1 Hz GPS trajectory, the
/// ground-truth road of every fix, and the preprocessed Table II records.
#[derive(Debug, Clone)]
pub struct GeneratedTrip {
    /// Trip-level record.
    pub record: TripRecord,
    /// Raw 1 Hz trajectory (with GPS noise).
    pub points: Vec<TrajectoryPoint>,
    /// Ground-truth road of each trajectory point (for map-matcher
    /// validation).
    pub true_roads: Vec<RoadId>,
    /// Preprocessed per-point analysis records carrying the *measured*
    /// kinematics (GPS-derived speed with sensor noise). Labels are
    /// [`Label::Normal`] placeholders until the offline labelling stage
    /// runs (see [`crate::LabelModel`]).
    pub features: Vec<FeatureRecord>,
    /// True (noise-free) `(speed_kmh, accel_mps2)` per point, aligned with
    /// `features`. The offline labelling stage uses these as ground truth;
    /// the detectors only ever see the measured values — the gap between
    /// the two is what makes cross-road collaboration informative.
    pub true_kinematics: Vec<(f64, f64)>,
    /// The driver's behavioural profile.
    pub profile: DriverProfile,
}

/// Generates trips and trajectories over a road network.
///
/// Driver behaviour is *persistent within a trip*: an aggressive driver
/// targets well above the road's normal speed on every road traversed,
/// which is the statistical structure that lets CAD3's cross-RSU summary
/// carry information (the paper's driver-awareness).
#[derive(Debug, Clone, Copy)]
pub struct TripGenerator<'a> {
    network: &'a RoadNetwork,
    /// GPS noise standard deviation in metres.
    gps_noise_m: f64,
    /// Speed measurement noise (GPS-derived speed), km/h.
    speed_noise_kmh: f64,
    /// Acceleration measurement noise (IMU), m/s².
    accel_noise_mps2: f64,
}

impl<'a> TripGenerator<'a> {
    /// Creates a generator over a network with 5 m GPS noise, 4 km/h
    /// speed-measurement noise and 0.15 m/s² accelerometer noise.
    pub fn new(network: &'a RoadNetwork) -> Self {
        TripGenerator { network, gps_noise_m: 5.0, speed_noise_kmh: 5.0, accel_noise_mps2: 0.15 }
    }

    /// Overrides the GPS noise level.
    pub fn with_gps_noise(mut self, noise_m: f64) -> Self {
        self.gps_noise_m = noise_m;
        self
    }

    /// Overrides the kinematic measurement noise (speed km/h, accel m/s²).
    pub fn with_measurement_noise(mut self, speed_kmh: f64, accel_mps2: f64) -> Self {
        self.speed_noise_kmh = speed_kmh;
        self.accel_noise_mps2 = accel_mps2;
        self
    }

    /// The microscopic scenario of the paper's Fig. 3: one motorway
    /// followed by a motorway link attached to it.
    ///
    /// # Panics
    ///
    /// Panics if the network has no motorway→link junction.
    pub fn microscopic_route(&self, rng: &mut SimRng) -> Vec<RoadId> {
        let motorway_junctions: Vec<&(RoadId, RoadId)> = self
            .network
            .junctions()
            .iter()
            .filter(|(p, _)| {
                self.network.road(*p).map(|r| r.road_type == cad3_types::RoadType::Motorway)
                    == Some(true)
            })
            .collect();
        assert!(!motorway_junctions.is_empty(), "network has no motorway junction");
        let (p, l) = **rng.pick(&motorway_junctions);
        vec![p, l]
    }

    /// A random route of up to `max_roads` roads, following junctions when
    /// possible and hopping to a random road otherwise.
    pub fn random_route(&self, rng: &mut SimRng, max_roads: usize) -> Vec<RoadId> {
        assert!(max_roads > 0, "route needs at least one road");
        let all: Vec<RoadId> = self.network.iter().map(|r| r.id).collect();
        let mut route = vec![*rng.pick(&all)];
        while route.len() < max_roads {
            let here = *route.last().expect("route non-empty");
            let links = self.network.links_of(here);
            let next = if !links.is_empty() && rng.chance(0.7) {
                *rng.pick(&links)
            } else {
                *rng.pick(&all)
            };
            if next == here {
                break;
            }
            route.push(next);
        }
        route
    }

    /// Generates one trip along `route`.
    ///
    /// `start_time_s` is seconds since the dataset epoch (midnight of day
    /// 0); hour-of-day features derive from it.
    ///
    /// # Panics
    ///
    /// Panics if `route` is empty or references an unknown road.
    #[allow(clippy::too_many_arguments)] // a trip is naturally this wide
    pub fn generate_trip(
        &self,
        rng: &mut SimRng,
        vehicle: VehicleId,
        trip: TripId,
        profile: DriverProfile,
        day: DayOfWeek,
        start_time_s: f64,
        route: &[RoadId],
    ) -> GeneratedTrip {
        assert!(!route.is_empty(), "trip route must not be empty");
        let dt = 1.0; // 1 Hz GPS, like the paper's dataset
        let mut points = Vec::new();
        let mut true_roads = Vec::new();
        let mut features = Vec::new();
        let mut true_kinematics = Vec::new();

        let mut t = start_time_s;
        let mut mileage = 0.0;
        let mut prev_speed_kmh: Option<f64> = None;
        // Erratic drivers flip between slow and fast targets.
        let mut erratic_high = rng.chance(0.5);
        let mut erratic_countdown: usize = 3 + rng.index(5);

        let start_pos = self.network.road(route[0]).expect("route road exists").start();

        for &road_id in route {
            let road = self.network.road(road_id).expect("route road exists").clone();
            let sp = SpeedProfile::for_road_type(road.road_type);
            let mut dist_on_road = 0.0;
            // Initialise speed near the context's norm.
            let hour = HourOfDay::wrapping((t / 3600.0) as u64);
            let mut v = prev_speed_kmh.unwrap_or_else(|| sp.sample_kmh(rng, hour, day)).max(1.0);

            while dist_on_road < road.length_m {
                let hour = HourOfDay::wrapping((t / 3600.0) as u64);
                let mean = sp.mean_kmh(hour, day);
                let std = sp.std_kmh(hour, day);
                // Behavioural target speed.
                let (target, pull, noise) = match profile {
                    DriverProfile::Typical => (rng.normal(mean, std * 0.7), 0.35, 1.2),
                    DriverProfile::Aggressive => (mean + rng.normal(2.4, 0.3) * std, 0.5, 1.2),
                    DriverProfile::Sluggish => {
                        ((mean - rng.normal(2.4, 0.3) * std).max(2.0), 0.5, 1.2)
                    }
                    DriverProfile::Erratic => {
                        erratic_countdown = erratic_countdown.saturating_sub(1);
                        if erratic_countdown == 0 {
                            erratic_high = !erratic_high;
                            erratic_countdown = 3 + rng.index(5);
                        }
                        let tgt = if erratic_high { mean * 1.45 } else { mean * 0.55 };
                        (tgt, 0.75, 4.0)
                    }
                };
                let new_v = (v + pull * (target - v) + rng.normal(0.0, noise)).max(0.0);
                let accel_mps2 = (new_v - v) / 3.6 / dt;
                v = new_v;

                dist_on_road += v / 3.6 * dt;
                t += dt;
                mileage += v / 3.6 * dt;

                let true_pos = road.point_at(dist_on_road.min(road.length_m));
                let gps_pos = self.jitter(rng, true_pos);
                points.push(TrajectoryPoint {
                    vehicle,
                    trip,
                    position: gps_pos,
                    gps_time_s: t,
                    ac_mileage_m: mileage,
                });
                true_roads.push(road_id);
                // Detectors see measured kinematics; the labelling ground
                // truth keeps the noise-free values.
                let measured_speed = (v + rng.normal(0.0, self.speed_noise_kmh)).max(0.0);
                let measured_accel = accel_mps2 + rng.normal(0.0, self.accel_noise_mps2);
                features.push(FeatureRecord {
                    vehicle,
                    trip,
                    road: road_id,
                    accel_mps2: measured_accel,
                    speed_kmh: measured_speed,
                    hour,
                    day,
                    road_type: road.road_type,
                    road_speed_kmh: mean,
                    label: Label::Normal, // placeholder until offline labelling
                });
                true_kinematics.push((v, accel_mps2));
                prev_speed_kmh = Some(v);
            }
        }

        let stop_pos = points.last().map_or(start_pos, |p| p.position);
        let record = TripRecord {
            vehicle,
            trip,
            start: start_pos,
            stop: stop_pos,
            start_time_s,
            stop_time_s: t,
            mileage_m: mileage,
            day,
            roads: route.to_vec(),
        };
        GeneratedTrip { record, points, true_roads, features, true_kinematics, profile }
    }

    fn jitter(&self, rng: &mut SimRng, p: GeoPoint) -> GeoPoint {
        let bearing = rng.uniform(0.0, 360.0);
        let dist = rng.normal(0.0, self.gps_noise_m).abs();
        p.destination(bearing, dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoadNetworkConfig;

    fn network() -> RoadNetwork {
        RoadNetwork::generate(&RoadNetworkConfig::scaled(3, 0.02))
    }

    fn trip(profile: DriverProfile, seed: u64) -> GeneratedTrip {
        let net = network();
        let gen = TripGenerator::new(&net);
        let mut rng = SimRng::seed_from(seed);
        let route = gen.microscopic_route(&mut rng);
        gen.generate_trip(
            &mut rng,
            VehicleId(1),
            TripId(1),
            profile,
            DayOfWeek::Tuesday,
            10.0 * 3600.0,
            &route,
        )
    }

    #[test]
    fn trip_covers_route_in_order() {
        let t = trip(DriverProfile::Typical, 1);
        assert_eq!(t.record.roads.len(), 2);
        // true_roads is a non-decreasing walk through the route.
        let first_link_idx =
            t.true_roads.iter().position(|r| *r == t.record.roads[1]).expect("reaches link");
        assert!(t.true_roads[..first_link_idx].iter().all(|r| *r == t.record.roads[0]));
        assert!(t.true_roads[first_link_idx..].iter().all(|r| *r == t.record.roads[1]));
    }

    #[test]
    fn streams_are_aligned_and_timed_at_1hz() {
        let t = trip(DriverProfile::Typical, 2);
        assert_eq!(t.points.len(), t.features.len());
        assert_eq!(t.points.len(), t.true_roads.len());
        for w in t.points.windows(2) {
            assert!((w[1].gps_time_s - w[0].gps_time_s - 1.0).abs() < 1e-9);
        }
        assert!(t.record.period_s() >= t.points.len() as f64 - 1.0);
    }

    #[test]
    fn typical_driver_stays_near_profile() {
        let t = trip(DriverProfile::Typical, 3);
        // On the motorway stretch, speed should hover near the mean.
        let mw_speeds: Vec<f64> = t
            .features
            .iter()
            .filter(|f| f.road_type == cad3_types::RoadType::Motorway)
            .map(|f| f.speed_kmh)
            .collect();
        let mean = mw_speeds.iter().sum::<f64>() / mw_speeds.len() as f64;
        let road_speed = t.features[0].road_speed_kmh;
        assert!(
            (mean - road_speed).abs() < road_speed * 0.2,
            "typical mean {mean} vs road {road_speed}"
        );
    }

    #[test]
    fn aggressive_driver_speeds_on_every_road() {
        let t = trip(DriverProfile::Aggressive, 4);
        for road in &t.record.roads {
            let speeds: Vec<&FeatureRecord> =
                t.features.iter().filter(|f| f.road == *road).collect();
            let over = speeds.iter().filter(|f| f.speed_kmh > f.road_speed_kmh).count();
            assert!(
                over as f64 / speeds.len() as f64 > 0.8,
                "aggressive driver persistent on {road}"
            );
        }
    }

    #[test]
    fn sluggish_driver_crawls() {
        let t = trip(DriverProfile::Sluggish, 5);
        let under = t.features.iter().filter(|f| f.speed_kmh < f.road_speed_kmh).count();
        assert!(under as f64 / t.features.len() as f64 > 0.8);
    }

    #[test]
    fn erratic_driver_has_violent_acceleration() {
        let te = trip(DriverProfile::Erratic, 6);
        let tt = trip(DriverProfile::Typical, 6);
        let max_abs = |t: &GeneratedTrip| {
            t.features.iter().map(|f| f.accel_mps2.abs()).fold(0.0f64, f64::max)
        };
        assert!(max_abs(&te) > 1.5 * max_abs(&tt), "erratic should out-accelerate typical");
    }

    #[test]
    fn mileage_accumulates_monotonically() {
        let t = trip(DriverProfile::Typical, 7);
        for w in t.points.windows(2) {
            assert!(w[1].ac_mileage_m >= w[0].ac_mileage_m);
        }
        assert!((t.record.mileage_m - t.points.last().unwrap().ac_mileage_m).abs() < 1e-9);
    }

    #[test]
    fn gps_noise_is_bounded() {
        let net = network();
        let gen = TripGenerator::new(&net).with_gps_noise(3.0);
        let mut rng = SimRng::seed_from(8);
        let route = gen.microscopic_route(&mut rng);
        let t = gen.generate_trip(
            &mut rng,
            VehicleId(1),
            TripId(1),
            DriverProfile::Typical,
            DayOfWeek::Monday,
            0.0,
            &route,
        );
        for (p, road_id) in t.points.iter().zip(&t.true_roads) {
            let road = net.road(*road_id).unwrap();
            assert!(road.distance_to(&p.position) < 60.0, "fix too far from its road");
        }
    }

    #[test]
    fn hour_feature_advances_across_hour_boundary() {
        let net = network();
        let gen = TripGenerator::new(&net);
        let mut rng = SimRng::seed_from(9);
        let route = gen.random_route(&mut rng, 4);
        // Start 30 s before 11:00.
        let t = gen.generate_trip(
            &mut rng,
            VehicleId(1),
            TripId(1),
            DriverProfile::Typical,
            DayOfWeek::Monday,
            10.0 * 3600.0 + 3570.0,
            &route,
        );
        let hours: std::collections::HashSet<u8> =
            t.features.iter().map(|f| f.hour.get()).collect();
        assert!(hours.contains(&11), "trip crosses into hour 11: {hours:?}");
    }

    #[test]
    fn random_route_respects_max() {
        let net = network();
        let gen = TripGenerator::new(&net);
        let mut rng = SimRng::seed_from(10);
        for _ in 0..20 {
            let r = gen.random_route(&mut rng, 3);
            assert!(!r.is_empty() && r.len() <= 3);
        }
    }
}

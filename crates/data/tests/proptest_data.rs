//! Property-based tests of the dataset substrate's invariants.

use cad3_data::{
    LabelModel, ProfileMix, RoadNetwork, RoadNetworkConfig, SpeedProfile, TripGenerator,
};
use cad3_sim::SimRng;
use cad3_types::{DayOfWeek, DriverProfile, HourOfDay, RoadType, TripId, VehicleId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated trip is physically consistent: aligned streams, 1 Hz
    /// sampling, monotone mileage, roads followed in route order.
    #[test]
    fn trips_are_physically_consistent(
        seed in any::<u64>(),
        profile_idx in 0usize..4,
        start_hour in 0u64..24,
    ) {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(3, 0.02));
        let generator = TripGenerator::new(&net);
        let mut rng = SimRng::seed_from(seed);
        let route = generator.random_route(&mut rng, 3);
        let trip = generator.generate_trip(
            &mut rng,
            VehicleId(1),
            TripId(1),
            DriverProfile::ALL[profile_idx],
            DayOfWeek::from_index_wrapping(seed),
            start_hour as f64 * 3600.0,
            &route,
        );
        prop_assert_eq!(trip.points.len(), trip.features.len());
        prop_assert_eq!(trip.points.len(), trip.true_roads.len());
        prop_assert_eq!(trip.points.len(), trip.true_kinematics.len());
        prop_assert!(!trip.points.is_empty());
        for w in trip.points.windows(2) {
            prop_assert!((w[1].gps_time_s - w[0].gps_time_s - 1.0).abs() < 1e-9);
            prop_assert!(w[1].ac_mileage_m >= w[0].ac_mileage_m);
        }
        // Roads appear in route order without revisits.
        let mut route_cursor = 0usize;
        for road in &trip.true_roads {
            while route_cursor < route.len() && route[route_cursor] != *road {
                route_cursor += 1;
            }
            prop_assert!(route_cursor < route.len(), "unknown road visited");
        }
        // Kinematics: measured speed is non-negative, true speed too.
        for (f, (tv, _)) in trip.features.iter().zip(&trip.true_kinematics) {
            prop_assert!(f.speed_kmh >= 0.0);
            prop_assert!(*tv >= 0.0);
        }
    }

    /// Labelling is idempotent and symmetric to the fitted band.
    #[test]
    fn labelling_is_idempotent(seed in any::<u64>()) {
        let net = RoadNetwork::generate(&RoadNetworkConfig::scaled(5, 0.02));
        let generator = TripGenerator::new(&net);
        let mut rng = SimRng::seed_from(seed);
        let route = generator.microscopic_route(&mut rng);
        let trip = generator.generate_trip(
            &mut rng,
            VehicleId(1),
            TripId(1),
            DriverProfile::Typical,
            DayOfWeek::Monday,
            12.0 * 3600.0,
            &route,
        );
        let mut records = trip.features.clone();
        let model = LabelModel::fit(records.iter());
        model.relabel(&mut records);
        let first: Vec<_> = records.iter().map(|r| r.label).collect();
        model.relabel(&mut records);
        let second: Vec<_> = records.iter().map(|r| r.label).collect();
        prop_assert_eq!(first, second);
    }

    /// Speed profiles are strictly positive and modulation stays within
    /// sane factors for every context.
    #[test]
    fn speed_profiles_are_sane(hour in 0u8..24, day_idx in 0u64..7, rt_code in 0u8..10) {
        let rt = RoadType::from_code(rt_code).unwrap();
        let day = DayOfWeek::from_index_wrapping(day_idx);
        let hour = HourOfDay::new(hour).unwrap();
        let p = SpeedProfile::for_road_type(rt);
        let mean = p.mean_kmh(hour, day);
        let std = p.std_kmh(hour, day);
        prop_assert!(mean > 5.0 && mean < 150.0, "mean {}", mean);
        prop_assert!(std > 0.0 && std < mean, "std {} vs mean {}", std, mean);
        let modulation = SpeedProfile::modulation(hour, day);
        prop_assert!((0.5..=1.3).contains(&modulation));
    }

    /// Profile mixes sample only their support.
    #[test]
    fn profile_mix_support(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let mix = ProfileMix::new(0.5, 0.5, 0.0, 0.0);
        for _ in 0..100 {
            let p = mix.sample(&mut rng);
            prop_assert!(matches!(p, DriverProfile::Typical | DriverProfile::Aggressive));
        }
    }
}

use crate::PartitionedDataset;
use cad3_stream::{Consumer, FetchedRecord, StreamError};
use cad3_types::len_u64;
use std::time::Duration;

/// Configuration of the micro-batch discretisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Batch interval in milliseconds (50 ms in the paper).
    pub interval_ms: u64,
    /// Upper bound on records pulled per batch.
    pub max_records: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { interval_ms: crate::PAPER_BATCH_INTERVAL_MS, max_records: 100_000 }
    }
}

/// Metrics of one executed micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Zero-based batch index.
    pub index: u64,
    /// Records in the batch.
    pub records: usize,
    /// Wall-clock processing time, stamped by [`crate::RealtimeScheduler`]
    /// around each batch. Zero when the runner is driven by the
    /// virtual-time testbed, which uses its own calibrated cost model.
    pub wall_time: Duration,
}

/// Discretises a stream consumer into micro-batches and applies a job to
/// each — one `DStream` of the paper's pipeline.
///
/// The runner performs *one* batch per [`MicroBatchRunner::run_batch`] call
/// so it can be driven either by the discrete-event simulator (every 50
/// virtual milliseconds) or by [`crate::RealtimeScheduler`]'s ticker thread.
#[derive(Debug)]
pub struct MicroBatchRunner {
    consumer: Consumer,
    config: BatchConfig,
    next_index: u64,
    total_records: u64,
}

impl MicroBatchRunner {
    /// Creates a runner over a subscribed consumer.
    pub fn new(consumer: Consumer, config: BatchConfig) -> Self {
        MicroBatchRunner { consumer, config, next_index: 0, total_records: 0 }
    }

    /// The configured batch interval.
    pub fn interval(&self) -> Duration {
        Duration::from_millis(self.config.interval_ms)
    }

    /// Total records processed across all batches.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Mutable access to the underlying consumer (e.g. to seek).
    pub fn consumer_mut(&mut self) -> &mut Consumer {
        &mut self.consumer
    }

    /// Pulls one batch and runs `job` on it.
    ///
    /// The batch is partitioned the way it was stored: records from one
    /// topic partition form one dataset partition, so per-vehicle ordering
    /// survives into the parallel stage. The grouping comes straight from
    /// the consumer's fetch boundaries ([`Consumer::poll_grouped`]) — no
    /// per-record regrouping happens here. An empty poll yields a dataset
    /// with zero partitions.
    ///
    /// # Errors
    ///
    /// Propagates consumer errors ([`StreamError`]).
    pub fn run_batch<F>(&mut self, job: F) -> Result<BatchMetrics, StreamError>
    where
        F: FnOnce(PartitionedDataset<FetchedRecord>),
    {
        // Backlog right before the poll — the paper's "queuing" pressure
        // signal. Exporter-gated: `lag()` walks the topic end offsets.
        if cad3_obs::enabled() {
            cad3_obs::gauge!("engine.batch.queue_depth").set(self.consumer.lag());
        }
        let mut grouped = self.consumer.poll_grouped(self.config.max_records)?;
        let n: usize = grouped.iter().map(|g| g.records.len()).sum();
        cad3_obs::counter!("engine.batches").inc();
        cad3_obs::counter!("engine.batch.records").add(len_u64(n));
        if n > 0 {
            // Batch-size distribution (log2 buckets) and total rows swept by
            // the batched detect path — the two signals that tell whether
            // the column-major sweep actually sees multi-row batches.
            cad3_obs::histogram!("rsu.detect.batch_size").observe(len_u64(n));
            cad3_obs::counter!("ml.batch.rows").add(len_u64(n));
        }

        // Deterministic partition order regardless of assignment order.
        grouped.sort_unstable_by(|a, b| {
            a.topic.cmp(&b.topic).then_with(|| a.partition.cmp(&b.partition))
        });
        let partitions: Vec<Vec<FetchedRecord>> = grouped.into_iter().map(|g| g.records).collect();
        job(PartitionedDataset::from_partitions(partitions));

        let metrics =
            BatchMetrics { index: self.next_index, records: n, wall_time: Duration::ZERO };
        self.next_index += 1;
        self.total_records += len_u64(n);
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_stream::{Broker, OffsetReset, Producer};
    use std::sync::Arc;

    fn runner() -> (Producer, MicroBatchRunner) {
        let broker = Arc::new(Broker::new("rsu"));
        broker.create_topic("IN-DATA", 3).unwrap();
        let producer = Producer::new(Arc::clone(&broker));
        let mut consumer = Consumer::new(broker, "spark", OffsetReset::Earliest);
        consumer.subscribe(&["IN-DATA"]).unwrap();
        (producer, MicroBatchRunner::new(consumer, BatchConfig::default()))
    }

    #[test]
    fn batch_carries_all_pending_records() {
        let (producer, mut runner) = runner();
        for i in 0..25u64 {
            producer.send("IN-DATA", Some(format!("v{i}").as_bytes()), &b"x"[..], i).unwrap();
        }
        let mut seen = 0;
        let m = runner.run_batch(|ds| seen = ds.count()).unwrap();
        assert_eq!(seen, 25);
        assert_eq!(m.records, 25);
        assert_eq!(m.index, 0);
    }

    #[test]
    fn consecutive_batches_do_not_overlap() {
        let (producer, mut runner) = runner();
        producer.send("IN-DATA", None, &b"a"[..], 0).unwrap();
        let m0 = runner.run_batch(|_| {}).unwrap();
        producer.send("IN-DATA", None, &b"b"[..], 1).unwrap();
        producer.send("IN-DATA", None, &b"c"[..], 2).unwrap();
        let mut values = Vec::new();
        let m1 = runner
            .run_batch(|ds| {
                values = ds.collect().into_iter().map(|r| r.value).collect();
            })
            .unwrap();
        assert_eq!(m0.records, 1);
        assert_eq!(m1.records, 2);
        assert_eq!(m1.index, 1);
        assert_eq!(values, vec![&b"b"[..], &b"c"[..]]);
        assert_eq!(runner.total_records(), 3);
    }

    #[test]
    fn empty_batch_still_runs_job() {
        let (_producer, mut runner) = runner();
        let mut ran = false;
        let m = runner
            .run_batch(|ds| {
                ran = true;
                assert!(ds.is_empty());
            })
            .unwrap();
        assert!(ran);
        assert_eq!(m.records, 0);
    }

    #[test]
    fn empty_batch_has_zero_partitions() {
        let (_producer, mut runner) = runner();
        let mut parts = usize::MAX;
        runner.run_batch(|ds| parts = ds.partition_count()).unwrap();
        assert_eq!(parts, 0, "an empty batch is zero partitions, not one empty one");
    }

    #[test]
    fn partitioning_mirrors_topic_partitions() {
        let (producer, mut runner) = runner();
        // Many distinct keys hit all three topic partitions.
        for i in 0..60u64 {
            producer.send("IN-DATA", Some(format!("v{i}").as_bytes()), &b"x"[..], i).unwrap();
        }
        let mut parts = 0;
        runner.run_batch(|ds| parts = ds.partition_count()).unwrap();
        assert_eq!(parts, 3);
    }

    #[test]
    fn paper_default_interval() {
        let (_p, runner) = runner();
        assert_eq!(runner.interval(), Duration::from_millis(50));
    }
}

use crate::Executor;
use cad3_types::{index_usize, len_u64};
use std::collections::HashMap;
use std::hash::Hash;

/// An RDD-like partitioned, immutable collection.
///
/// Operators are eager (each call runs a parallel stage on the given
/// [`Executor`]) and return a new dataset. Partitioning is preserved by
/// narrow operators (`map`, `filter`, `flat_map`) and rebuilt by wide ones
/// (`group_by_key`).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedDataset<T> {
    partitions: Vec<Vec<T>>,
}

impl<T> PartitionedDataset<T> {
    /// Splits `data` into `partitions` contiguous chunks.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`.
    pub fn from_vec(data: Vec<T>, partitions: usize) -> Self {
        assert!(partitions > 0, "dataset needs at least one partition");
        let per = data.len().div_ceil(partitions).max(1);
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(partitions);
        let mut it = data.into_iter();
        for _ in 0..partitions {
            let chunk: Vec<T> = it.by_ref().take(per).collect();
            parts.push(chunk);
        }
        PartitionedDataset { partitions: parts }
    }

    /// Builds a dataset from pre-formed partitions (e.g. one per topic
    /// partition of a fetched micro-batch).
    ///
    /// Unlike [`PartitionedDataset::from_vec`], zero partitions is allowed:
    /// an empty micro-batch is a dataset with no partitions at all (and all
    /// operators on it are no-ops), not one empty partition.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Self {
        PartitionedDataset { partitions }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of elements.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Whether the dataset holds no elements.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Flattens the dataset into a single vector, partition order first.
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }

    /// Borrowing iterator over all elements.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.partitions.iter().flatten()
    }
}

impl<T: Send + Sync> PartitionedDataset<T> {
    /// Applies `f` to every element (narrow, parallel per partition).
    pub fn map<U, F>(&self, exec: &Executor, f: F) -> PartitionedDataset<U>
    where
        U: Send,
        T: Clone,
        F: Fn(&T) -> U + Sync,
    {
        let parts = exec.run(self.partitions.iter().collect::<Vec<_>>(), |p| {
            p.iter().map(&f).collect::<Vec<U>>()
        });
        PartitionedDataset { partitions: parts }
    }

    /// Keeps elements satisfying `pred` (narrow, parallel per partition).
    pub fn filter<F>(&self, exec: &Executor, pred: F) -> PartitionedDataset<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Sync,
    {
        let parts = exec.run(self.partitions.iter().collect::<Vec<_>>(), |p| {
            p.iter().filter(|x| pred(x)).cloned().collect::<Vec<T>>()
        });
        PartitionedDataset { partitions: parts }
    }

    /// Maps each element to zero or more outputs (narrow).
    pub fn flat_map<U, I, F>(&self, exec: &Executor, f: F) -> PartitionedDataset<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        T: Clone,
        F: Fn(&T) -> I + Sync,
    {
        let parts = exec.run(self.partitions.iter().collect::<Vec<_>>(), |p| {
            p.iter().flat_map(&f).collect::<Vec<U>>()
        });
        PartitionedDataset { partitions: parts }
    }

    /// Runs `f` once per partition (the `mapPartitions` pattern — lets a job
    /// amortise per-batch state such as a loaded model).
    pub fn map_partitions<U, F>(&self, exec: &Executor, f: F) -> PartitionedDataset<U>
    where
        U: Send,
        F: Fn(&[T]) -> Vec<U> + Sync,
    {
        let parts = exec.run(self.partitions.iter().collect::<Vec<_>>(), |p| f(p.as_slice()));
        PartitionedDataset { partitions: parts }
    }

    /// Concatenates two datasets (Spark's `union`): partitions of `other`
    /// are appended after `self`'s, preserving both partitionings.
    pub fn union(mut self, other: PartitionedDataset<T>) -> PartitionedDataset<T> {
        self.partitions.extend(other.partitions);
        self
    }

    /// Reduces all elements with `op`, starting from `identity` in each
    /// partition and combining partials (requires `op` associative and
    /// `identity` neutral, like Spark's `fold`).
    pub fn reduce<F>(&self, exec: &Executor, identity: T, op: F) -> T
    where
        T: Clone,
        F: Fn(T, T) -> T + Sync,
    {
        let partials = exec.run(self.partitions.iter().collect::<Vec<_>>(), |p| {
            p.iter().cloned().fold(identity.clone(), &op)
        });
        partials.into_iter().fold(identity, &op)
    }
}

impl<K, V> PartitionedDataset<(K, V)>
where
    K: Send + Sync + Clone + Eq + Hash,
    V: Send + Sync + Clone,
{
    /// Combines values per key with an associative `op` (wide). Equivalent
    /// to `group_by_key` followed by a fold, but combines within input
    /// partitions first — Spark's `reduceByKey` shuffle optimisation.
    pub fn reduce_by_key<F>(&self, exec: &Executor, op: F) -> PartitionedDataset<(K, V)>
    where
        F: Fn(V, V) -> V + Sync,
    {
        // Map-side combine.
        let combined: Vec<Vec<(K, V)>> =
            exec.run(self.partitions.iter().collect::<Vec<_>>(), |p| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in p.iter() {
                    match acc.remove(k) {
                        Some(prev) => {
                            let merged = op(prev, v.clone());
                            acc.insert(k.clone(), merged);
                        }
                        None => {
                            acc.insert(k.clone(), v.clone());
                        }
                    }
                }
                acc.into_iter().collect::<Vec<(K, V)>>()
            });
        // Reduce-side combine via the grouped shuffle.
        PartitionedDataset { partitions: combined }.group_by_key(exec).map(exec, |(k, vs)| {
            let mut it = vs.iter().cloned();
            let first = it.next().expect("groups are non-empty");
            (k.clone(), it.fold(first, &op))
        })
    }

    /// Counts occurrences per key (Spark's `countByKey` as a dataset).
    pub fn count_by_key(&self, exec: &Executor) -> PartitionedDataset<(K, u64)> {
        self.map(exec, |(k, _)| (k.clone(), 1u64)).reduce_by_key(exec, |a, b| a + b)
    }

    /// Groups values by key (wide: repartitions by key hash).
    ///
    /// The output has the same partition count; all pairs for one key land
    /// in one partition.
    pub fn group_by_key(&self, exec: &Executor) -> PartitionedDataset<(K, Vec<V>)> {
        let n = self.partitions.len();
        // Shuffle-write: each input partition buckets its pairs.
        let bucketed: Vec<Vec<Vec<(K, V)>>> =
            exec.run(self.partitions.iter().collect::<Vec<_>>(), |p| {
                let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
                for (k, v) in p.iter() {
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    use std::hash::Hasher;
                    k.hash(&mut h);
                    let b = index_usize(h.finish() % len_u64(n));
                    buckets[b].push((k.clone(), v.clone()));
                }
                buckets
            });
        // Shuffle-read + combine per output partition.
        let combined = exec.run((0..n).collect::<Vec<_>>(), |b| {
            let mut groups: HashMap<K, Vec<V>> = HashMap::new();
            for part in &bucketed {
                for (k, v) in &part[b] {
                    groups.entry(k.clone()).or_default().push(v.clone());
                }
            }
            groups.into_iter().collect::<Vec<(K, Vec<V>)>>()
        });
        PartitionedDataset { partitions: combined }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> Executor {
        Executor::new(4)
    }

    #[test]
    fn from_vec_partitions_evenly() {
        let ds = PartitionedDataset::from_vec((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(ds.partition_count(), 3);
        assert_eq!(ds.count(), 10);
        assert_eq!(ds.clone().collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn from_vec_more_partitions_than_elements() {
        let ds = PartitionedDataset::from_vec(vec![1, 2], 5);
        assert_eq!(ds.partition_count(), 5);
        assert_eq!(ds.count(), 2);
    }

    #[test]
    fn map_matches_sequential() {
        let ds = PartitionedDataset::from_vec((0..1000).collect::<Vec<i64>>(), 7);
        let out = ds.map(&exec(), |x| x * 3).collect();
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn filter_matches_sequential() {
        let ds = PartitionedDataset::from_vec((0..100).collect::<Vec<i64>>(), 4);
        let out = ds.filter(&exec(), |x| x % 2 == 0).collect();
        assert_eq!(out, (0..100).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_expands() {
        let ds = PartitionedDataset::from_vec(vec![1, 2, 3], 2);
        let out = ds.flat_map(&exec(), |x| vec![*x; *x as usize]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn reduce_sums() {
        let ds = PartitionedDataset::from_vec((1..=100).collect::<Vec<i64>>(), 6);
        assert_eq!(ds.reduce(&exec(), 0, |a, b| a + b), 5050);
    }

    #[test]
    fn map_partitions_sees_whole_partitions() {
        let ds = PartitionedDataset::from_vec((0..12).collect::<Vec<i32>>(), 3);
        let sizes = ds.map_partitions(&exec(), |p| vec![p.len()]).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 12);
        assert_eq!(sizes.len(), 3);
    }

    #[test]
    fn group_by_key_collects_all_values_per_key() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i % 5, i)).collect();
        let ds = PartitionedDataset::from_vec(pairs, 4);
        let grouped = ds.group_by_key(&exec()).collect();
        assert_eq!(grouped.len(), 5);
        for (k, vs) in &grouped {
            assert_eq!(vs.len(), 20, "key {k}");
            for v in vs {
                assert_eq!(v % 5, *k);
            }
        }
    }

    #[test]
    fn group_by_key_puts_key_in_single_partition() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i % 7, i)).collect();
        let ds = PartitionedDataset::from_vec(pairs, 4);
        let grouped = ds.group_by_key(&exec());
        let mut seen = std::collections::HashMap::new();
        for (pi, part) in grouped.partitions.iter().enumerate() {
            for (k, _) in part {
                if let Some(prev) = seen.insert(*k, pi) {
                    assert_eq!(prev, pi, "key {k} appears in two partitions");
                }
            }
        }
    }

    #[test]
    fn union_concatenates_preserving_partitions() {
        let a = PartitionedDataset::from_vec(vec![1, 2, 3], 2);
        let b = PartitionedDataset::from_vec(vec![4, 5], 1);
        let u = a.union(b);
        assert_eq!(u.partition_count(), 3);
        assert_eq!(u.collect(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn count_by_key_counts() {
        let pairs: Vec<(u32, &str)> = vec![(1, "a"), (2, "b"), (1, "c"), (1, "d"), (3, "e")];
        let ds = PartitionedDataset::from_vec(pairs, 2);
        let mut counts = ds.count_by_key(&exec()).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![(1, 3), (2, 1), (3, 1)]);
    }

    #[test]
    fn reduce_by_key_matches_group_then_fold() {
        let pairs: Vec<(u32, u64)> = (0..200).map(|i| (i % 7, i as u64)).collect();
        let ds = PartitionedDataset::from_vec(pairs.clone(), 5);
        let mut reduced = ds.reduce_by_key(&exec(), |a, b| a + b).collect();
        reduced.sort_unstable();
        let mut expected: std::collections::HashMap<u32, u64> = Default::default();
        for (k, v) in pairs {
            *expected.entry(k).or_default() += v;
        }
        let mut expected: Vec<(u32, u64)> = expected.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(reduced, expected);
    }

    #[test]
    fn reduce_by_key_single_occurrence_keys_pass_through() {
        let pairs: Vec<(u32, u32)> = (0..20).map(|i| (i, i * 10)).collect();
        let ds = PartitionedDataset::from_vec(pairs.clone(), 3);
        let mut out = ds.reduce_by_key(&exec(), |a, b| a.max(b)).collect();
        out.sort_unstable();
        assert_eq!(out, pairs);
    }

    #[test]
    fn empty_dataset_ops() {
        let ds = PartitionedDataset::from_vec(Vec::<i32>::new(), 3);
        assert!(ds.is_empty());
        assert!(ds.map(&exec(), |x| *x).collect().is_empty());
        assert_eq!(ds.reduce(&exec(), 0, |a, b| a + b), 0);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        PartitionedDataset::from_vec(vec![1], 0);
    }

    #[test]
    fn from_partitions_accepts_zero_partitions() {
        let ds = PartitionedDataset::<i32>::from_partitions(Vec::new());
        assert_eq!(ds.partition_count(), 0);
        assert!(ds.is_empty());
        assert!(ds.map(&exec(), |x| *x).collect().is_empty());
        assert_eq!(ds.reduce(&exec(), 0, |a, b| a + b), 0);
    }
}

/// A fixed-size worker pool executing independent per-partition tasks.
///
/// Inputs are split into one contiguous chunk per worker up front — the
/// same fan-out/fan-in structure as a Spark stage over an RDD's partitions.
/// Each worker owns its chunk and its output buffer, so the fan-out takes
/// no locks at all; input order is restored by concatenating the buffers in
/// chunk order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// Creates an executor with the given worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "executor needs at least one worker");
        Executor { workers }
    }

    /// The paper's configuration: six workers.
    pub fn paper_default() -> Self {
        Executor::new(crate::PAPER_WORKERS)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every element of `inputs` in parallel, returning the
    /// outputs in input order.
    ///
    /// # Panics
    ///
    /// A panic in `f` is re-raised on the calling thread with its original
    /// payload (the first one, if several workers panic).
    pub fn run<I, O, F>(&self, inputs: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers == 1 || n == 1 {
            return inputs.into_iter().map(f).collect();
        }

        // One contiguous chunk per worker. `div_ceil` may leave fewer
        // (never more) chunks than workers; each chunk becomes one thread.
        let chunk_len = n.div_ceil(self.workers.min(n));
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(self.workers.min(n));
        let mut inputs = inputs.into_iter();
        loop {
            let chunk: Vec<I> = inputs.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }

        let f = &f;
        // Profiler stage attribution: workers adopt the coordinator's open
        // stage path so their self-time lands under it (e.g. a detect sweep
        // inside `run` shows up below `rsu.run_batch;rsu.detect`).
        let token = cad3_obs::profile::current_token();
        let joined = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    // determinism-exempt(thread): workers own disjoint input
                    // chunks, joined in spawn (= input) order — the output is
                    // identical to the sequential map regardless of schedule.
                    scope.spawn(move |_| {
                        cad3_obs::profile::set_thread_class("worker");
                        let _adopt = cad3_obs::profile::adopt(token);
                        chunk.into_iter().map(f).collect::<Vec<O>>()
                    })
                })
                .collect();
            // Join in spawn (= input) order, deferring any panic until every
            // worker has been joined so no output buffer is dropped early.
            let mut outputs: Vec<O> = Vec::with_capacity(n);
            let mut panic_payload = None;
            for handle in handles {
                match handle.join() {
                    Ok(chunk_out) => outputs.extend(chunk_out),
                    Err(payload) => {
                        if panic_payload.is_none() {
                            panic_payload = Some(payload);
                        }
                    }
                }
            }
            (outputs, panic_payload)
        });
        match joined {
            Ok((outputs, None)) => {
                debug_assert_eq!(outputs.len(), n, "every chunk produced its outputs");
                outputs
            }
            // Re-raise a worker panic on the calling thread unchanged.
            Ok((_, Some(payload))) | Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn outputs_preserve_input_order() {
        let exec = Executor::new(4);
        let out = exec.run((0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn outputs_preserve_order_when_chunks_are_uneven() {
        // 10 inputs over 4 workers: chunks of 3/3/3/1.
        let exec = Executor::new(4);
        let out = exec.run((0..10).collect(), |x: i32| x + 1);
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let exec = Executor::new(8);
        let seen = Mutex::new(HashSet::new());
        exec.run((0..1000).collect(), |x: i32| {
            assert!(seen.lock().unwrap().insert(x), "task {x} ran twice");
            x
        });
        assert_eq!(seen.lock().unwrap().len(), 1000);
    }

    #[test]
    fn multiple_workers_actually_run_concurrently() {
        // With 4 workers and 4 blocking tasks that wait for each other, the
        // run completes only if they truly overlap.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        let exec = Executor::new(4);
        let barrier = Barrier::new(4);
        let arrived = AtomicUsize::new(0);
        exec.run(vec![(), (), (), ()], |()| {
            arrived.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
        });
        assert_eq!(arrived.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn single_worker_is_sequential_fallback() {
        let exec = Executor::new(1);
        let out = exec.run(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let exec = Executor::new(4);
        let out: Vec<i32> = exec.run(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "task 5 exploded")]
    fn worker_panic_propagates_with_its_payload() {
        let exec = Executor::new(4);
        exec.run((0..8).collect(), |x: i32| {
            assert!(x != 5, "task {x} exploded");
            x
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        Executor::new(0);
    }

    #[test]
    fn paper_default_has_six_workers() {
        assert_eq!(Executor::paper_default().workers(), 6);
        assert_eq!(Executor::default().workers(), 6);
    }
}

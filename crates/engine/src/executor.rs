use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-size worker pool executing independent per-partition tasks.
///
/// Tasks are pulled from a shared index by up to `workers` scoped threads —
/// the same fan-out/fan-in structure as a Spark stage over an RDD's
/// partitions. Results come back in partition order regardless of which
/// worker ran them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// Creates an executor with the given worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "executor needs at least one worker");
        Executor { workers }
    }

    /// The paper's configuration: six workers.
    pub fn paper_default() -> Self {
        Executor::new(crate::PAPER_WORKERS)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every element of `inputs` in parallel, returning the
    /// outputs in input order.
    pub fn run<I, O, F>(&self, inputs: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers == 1 || n == 1 {
            return inputs.into_iter().map(f).collect();
        }

        // Give each task a slot; workers claim indices from a shared counter.
        let tasks: Vec<parking_lot::Mutex<Option<I>>> =
            inputs.into_iter().map(|i| parking_lot::Mutex::new(Some(i))).collect();
        let results: Vec<parking_lot::Mutex<Option<O>>> =
            (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let f = &f;
        let tasks_ref = &tasks;
        let results_ref = &results;
        let next_ref = &next;

        let joined = crossbeam::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(move |_| loop {
                    // ordering: Relaxed — the counter only hands out unique
                    // indices; slot contents are published by the per-slot
                    // mutexes and the scope join, not by this atomic.
                    let idx = next_ref.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let input = {
                        let _held = cad3_lockrank::rank_scope!("cad3_engine::Executor::run::tasks");
                        tasks_ref[idx].lock().take()
                    };
                    // The counter hands each index to exactly one worker, so
                    // the slot is always full; treat an empty one as no work.
                    let Some(input) = input else { continue };
                    let out = f(input);
                    let _held = cad3_lockrank::rank_scope!("cad3_engine::Executor::run::results");
                    *results_ref[idx].lock() = Some(out);
                });
            }
        });
        if let Err(payload) = joined {
            // Re-raise a worker panic on the calling thread unchanged.
            std::panic::resume_unwind(payload);
        }

        drop(tasks);
        let outputs: Vec<O> =
            results.into_iter().filter_map(parking_lot::Mutex::into_inner).collect();
        debug_assert_eq!(outputs.len(), n, "every claimed task produced a result");
        outputs
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn outputs_preserve_input_order() {
        let exec = Executor::new(4);
        let out = exec.run((0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let exec = Executor::new(8);
        let seen = Mutex::new(HashSet::new());
        exec.run((0..1000).collect(), |x: i32| {
            assert!(seen.lock().unwrap().insert(x), "task {x} ran twice");
            x
        });
        assert_eq!(seen.lock().unwrap().len(), 1000);
    }

    #[test]
    fn multiple_workers_actually_run_concurrently() {
        // With 4 workers and 4 blocking tasks that wait for each other, the
        // run completes only if they truly overlap.
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        let exec = Executor::new(4);
        let barrier = Barrier::new(4);
        let arrived = AtomicUsize::new(0);
        exec.run(vec![(), (), (), ()], |()| {
            arrived.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
        });
        assert_eq!(arrived.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn single_worker_is_sequential_fallback() {
        let exec = Executor::new(1);
        let out = exec.run(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let exec = Executor::new(4);
        let out: Vec<i32> = exec.run(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        Executor::new(0);
    }

    #[test]
    fn paper_default_has_six_workers() {
        assert_eq!(Executor::paper_default().workers(), 6);
        assert_eq!(Executor::default().workers(), 6);
    }
}

//! Micro-batch stream-processing engine — the reproduction's stand-in for
//! Apache Spark Streaming.
//!
//! The paper configures Spark with a cluster of six workers and 50 ms
//! micro-batches ("RDDs") read from the `IN-DATA` topic. This crate
//! implements the pieces that matter for the pipeline:
//!
//! * [`Executor`] — a fixed worker pool executing per-partition tasks in
//!   parallel (the "6 worker nodes").
//! * [`PartitionedDataset`] — an RDD-like partitioned collection with
//!   `map` / `filter` / `flat_map` / `reduce` / `group_by_key` operators
//!   that run on an executor.
//! * [`MicroBatchRunner`] — discretises a stream consumer into fixed-size
//!   batches and applies a job to each, reporting [`BatchMetrics`]; drive it
//!   from a virtual-time scheduler or from [`RealtimeScheduler`]'s ticker
//!   thread.
//!
//! # Example
//!
//! ```
//! use cad3_engine::{Executor, PartitionedDataset};
//!
//! let exec = Executor::new(6);
//! let ds = PartitionedDataset::from_vec((0..100).collect::<Vec<i64>>(), 4);
//! let doubled = ds.map(&exec, |x| x * 2);
//! assert_eq!(doubled.count(), 100);
//! assert_eq!(doubled.reduce(&exec, 0i64, |a, b| a + b), 9900);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod dataset;
mod executor;
mod realtime;
mod window;

pub use batch::{BatchConfig, BatchMetrics, MicroBatchRunner};
pub use dataset::PartitionedDataset;
pub use executor::Executor;
pub use realtime::{RealtimeScheduler, WallClockPacer};
pub use window::{KeyedWindows, SlidingWindow};

/// Micro-batch interval used throughout the paper: 50 ms.
pub const PAPER_BATCH_INTERVAL_MS: u64 = 50;

/// Spark worker count in the paper's testbed.
pub const PAPER_WORKERS: usize = 6;

use crate::{BatchMetrics, MicroBatchRunner, PartitionedDataset};
use cad3_stream::{FetchedRecord, StreamError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Drives a [`MicroBatchRunner`] on a real ticker thread — the wall-clock
/// analogue of the virtual-time batch scheduling used in the experiments.
///
/// Used by the live integration tests to show the pipeline also works
/// end-to-end on real threads, as on the paper's physical testbed.
#[derive(Debug)]
pub struct RealtimeScheduler {
    stop: Arc<AtomicBool>,
    metrics: Arc<Mutex<Vec<BatchMetrics>>>,
    handle: Option<JoinHandle<Result<(), StreamError>>>,
}

impl RealtimeScheduler {
    /// Starts a scheduler thread running `job` on every batch.
    ///
    /// The job receives each batch as a partitioned dataset; batch metrics
    /// accumulate and can be snapshotted with
    /// [`RealtimeScheduler::metrics`].
    pub fn start<F>(mut runner: MicroBatchRunner, mut job: F) -> Self
    where
        F: FnMut(PartitionedDataset<FetchedRecord>) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Mutex::new(Vec::new()));
        let stop2 = Arc::clone(&stop);
        let metrics2 = Arc::clone(&metrics);
        let interval = runner.interval();

        let handle = std::thread::spawn(move || {
            let mut next_tick = Instant::now() + interval;
            // The instant the previous iteration planned to wake at; its
            // distance to the actual wake is the scheduler's tick jitter.
            let mut planned_tick: Option<Instant> = None;
            // ordering: Relaxed — `stop` is a lone advisory flag; the join in
            // `stop()`/`drop` provides the happens-before for everything else.
            while !stop2.load(Ordering::Relaxed) {
                let start = Instant::now();
                if cad3_obs::enabled() {
                    if let Some(planned) = planned_tick {
                        let jitter = start.saturating_duration_since(planned);
                        cad3_obs::histogram!("engine.scheduler.tick_jitter_ns")
                            .observe(u64::try_from(jitter.as_nanos()).unwrap_or(u64::MAX));
                    }
                }
                match runner.run_batch(&mut job) {
                    Ok(mut m) => {
                        m.wall_time = start.elapsed();
                        if cad3_obs::enabled() {
                            cad3_obs::histogram!("engine.batch.wall_ns")
                                .observe(u64::try_from(m.wall_time.as_nanos()).unwrap_or(u64::MAX));
                        }
                        let _held =
                            cad3_lockrank::rank_scope!("cad3_engine::RealtimeScheduler::metrics");
                        metrics2.lock().push(m);
                    }
                    Err(e) => {
                        // A torn-down broker during shutdown is expected;
                        // anything else kills the ticker and surfaces from
                        // `stop()`.
                        // ordering: Relaxed — same advisory stop flag as above.
                        if !stop2.load(Ordering::Relaxed) {
                            return Err(e);
                        }
                    }
                }
                let now = Instant::now();
                if next_tick > now {
                    std::thread::sleep(next_tick - now);
                }
                planned_tick = Some(next_tick);
                next_tick += interval;
            }
            Ok(())
        });

        RealtimeScheduler { stop, metrics, handle: Some(handle) }
    }

    /// A snapshot of the metrics of every batch executed so far.
    pub fn metrics(&self) -> Vec<BatchMetrics> {
        let _held = cad3_lockrank::rank_scope!("cad3_engine::RealtimeScheduler::metrics");
        self.metrics.lock().clone()
    }

    /// Signals the ticker to stop, waits for the thread to exit and returns
    /// the accumulated batch metrics.
    ///
    /// # Errors
    ///
    /// Returns the consumer error that killed the ticker early, if any.
    pub fn stop(mut self) -> Result<Vec<BatchMetrics>, StreamError> {
        // ordering: Relaxed — the subsequent join() synchronises with the
        // ticker thread; the flag itself carries no payload.
        self.stop.store(true, Ordering::Relaxed);
        let outcome = match self.handle.take().map(JoinHandle::join) {
            Some(Ok(r)) => r,
            // A panicked job closure was already reported by the panic hook.
            Some(Err(_)) | None => Ok(()),
        };
        let _held = cad3_lockrank::rank_scope!("cad3_engine::RealtimeScheduler::metrics");
        let metrics = self.metrics.lock().clone();
        outcome.map(|()| metrics)
    }
}

/// A fixed-rate wall-clock pacer for interactive tools (the `cad3_top`
/// console). Lives here because this file is the engine's sanctioned
/// wall-clock site (the `no-wallclock` lint allowance): binaries pace
/// through it instead of calling `Instant::now`/`sleep` directly.
#[derive(Debug)]
pub struct WallClockPacer {
    next: Instant,
    interval: std::time::Duration,
}

impl WallClockPacer {
    /// Creates a pacer whose first tick is one `interval` from now.
    pub fn new(interval: std::time::Duration) -> Self {
        WallClockPacer { next: Instant::now() + interval, interval }
    }

    /// Sleeps until the next tick boundary. A pacer that has fallen behind
    /// re-anchors to the present rather than bursting to catch up.
    pub fn wait(&mut self) {
        let now = Instant::now();
        if self.next > now {
            std::thread::sleep(self.next - now);
        } else {
            self.next = now;
        }
        self.next += self.interval;
    }
}

impl Drop for RealtimeScheduler {
    fn drop(&mut self) {
        // ordering: Relaxed — see `stop()`; join() below is the sync point.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatchConfig;
    use cad3_stream::{Broker, Consumer, OffsetReset, Producer};
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn scheduler_processes_records_in_near_real_time() {
        let broker = Arc::new(Broker::new("rsu"));
        broker.create_topic("IN-DATA", 3).unwrap();
        let producer = Producer::new(Arc::clone(&broker));
        let mut consumer = Consumer::new(Arc::clone(&broker), "spark", OffsetReset::Earliest);
        consumer.subscribe(&["IN-DATA"]).unwrap();
        let runner =
            MicroBatchRunner::new(consumer, BatchConfig { interval_ms: 10, max_records: 10_000 });

        let processed = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&processed);
        let scheduler = RealtimeScheduler::start(runner, move |ds| {
            p2.fetch_add(ds.count(), Ordering::Relaxed);
        });

        for i in 0..100u64 {
            producer.send("IN-DATA", Some(b"veh"), &b"x"[..], i).unwrap();
        }
        // Give the ticker a few intervals to drain.
        let deadline = Instant::now() + Duration::from_secs(5);
        while processed.load(Ordering::Relaxed) < 100 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let metrics = scheduler.stop().unwrap();
        assert_eq!(processed.load(Ordering::Relaxed), 100);
        assert!(!metrics.is_empty());
        let total: usize = metrics.iter().map(|m| m.records).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let broker = Arc::new(Broker::new("rsu"));
        broker.create_topic("T", 1).unwrap();
        let mut consumer = Consumer::new(broker, "g", OffsetReset::Earliest);
        consumer.subscribe(&["T"]).unwrap();
        let runner =
            MicroBatchRunner::new(consumer, BatchConfig { interval_ms: 5, max_records: 10 });
        let scheduler = RealtimeScheduler::start(runner, |_| {});
        std::thread::sleep(Duration::from_millis(20));
        let metrics = scheduler.stop().unwrap();
        assert!(!metrics.is_empty(), "ticker should have fired at least once");
    }
}

//! Sliding-window aggregation over timestamped values — the streaming
//! primitive behind "the latest received data is the most valuable for
//! accurate timely decision making" (the paper's Section II): RSUs keep
//! per-road speed statistics over a recent window rather than all history.

use cad3_types::count_f64;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A count/sum aggregate over a sliding time window, bucketed at a fixed
/// granularity (ring of sub-window buckets, O(1) memory in stream length).
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    window_ns: u64,
    bucket_ns: u64,
    /// `(bucket_index, count, sum)` in increasing bucket order.
    buckets: VecDeque<(u64, u64, f64)>,
}

impl SlidingWindow {
    /// Creates a window of length `window_ns` with `bucket_ns` resolution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < bucket_ns <= window_ns`.
    pub fn new(window_ns: u64, bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0 && bucket_ns <= window_ns, "invalid window/bucket sizes");
        SlidingWindow { window_ns, bucket_ns, buckets: VecDeque::new() }
    }

    fn evict(&mut self, now_ns: u64) {
        let horizon = now_ns.saturating_sub(self.window_ns) / self.bucket_ns;
        while let Some(&(b, _, _)) = self.buckets.front() {
            if b < horizon {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// Records `value` at time `t_ns`. Values may arrive slightly out of
    /// order within the window.
    pub fn record(&mut self, t_ns: u64, value: f64) {
        let bucket = t_ns / self.bucket_ns;
        match self.buckets.iter_mut().rev().find(|(b, _, _)| *b <= bucket) {
            Some((b, count, sum)) if *b == bucket => {
                *count += 1;
                *sum += value;
            }
            _ => {
                // Insert keeping bucket order (common case: append).
                let pos = self.buckets.iter().position(|(b, _, _)| *b > bucket);
                match pos {
                    Some(i) => self.buckets.insert(i, (bucket, 1, value)),
                    None => self.buckets.push_back((bucket, 1, value)),
                }
            }
        }
        self.evict(t_ns);
    }

    /// `(count, mean)` of the values within the window ending at `now_ns`.
    /// Returns `(0, 0.0)` for an empty window.
    pub fn stats_at(&mut self, now_ns: u64) -> (u64, f64) {
        self.evict(now_ns);
        let (count, sum) =
            self.buckets.iter().fold((0u64, 0.0), |(c, s), (_, bc, bs)| (c + bc, s + bs));
        if count == 0 {
            (0, 0.0)
        } else {
            (count, sum / count_f64(count))
        }
    }
}

/// Per-key sliding windows (e.g. one per road).
#[derive(Debug, Clone)]
pub struct KeyedWindows<K> {
    window_ns: u64,
    bucket_ns: u64,
    map: HashMap<K, SlidingWindow>,
}

impl<K: Eq + Hash + Clone> KeyedWindows<K> {
    /// Creates an empty keyed-window set.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < bucket_ns <= window_ns`.
    pub fn new(window_ns: u64, bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0 && bucket_ns <= window_ns, "invalid window/bucket sizes");
        KeyedWindows { window_ns, bucket_ns, map: HashMap::new() }
    }

    /// Records a value for `key` at `t_ns`.
    pub fn record(&mut self, key: K, t_ns: u64, value: f64) {
        self.map
            .entry(key)
            .or_insert_with(|| SlidingWindow::new(self.window_ns, self.bucket_ns))
            .record(t_ns, value);
    }

    /// `(count, mean)` for `key` at `now_ns`; `None` if the key was never
    /// seen.
    pub fn stats_at(&mut self, key: &K, now_ns: u64) -> Option<(u64, f64)> {
        self.map.get_mut(key).map(|w| w.stats_at(now_ns))
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn mean_over_window() {
        let mut w = SlidingWindow::new(10 * SEC, SEC);
        for i in 0..10u64 {
            w.record(i * SEC, i as f64);
        }
        let (count, mean) = w.stats_at(9 * SEC);
        assert_eq!(count, 10);
        assert!((mean - 4.5).abs() < 1e-12);
    }

    #[test]
    fn old_values_age_out() {
        let mut w = SlidingWindow::new(5 * SEC, SEC);
        w.record(0, 100.0);
        for i in 10..15u64 {
            w.record(i * SEC, 1.0);
        }
        let (count, mean) = w.stats_at(14 * SEC);
        assert_eq!(count, 5, "the value at t=0 aged out");
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero() {
        let mut w = SlidingWindow::new(SEC, SEC / 10);
        assert_eq!(w.stats_at(SEC), (0, 0.0));
        w.record(0, 5.0);
        let _ = w.stats_at(100 * SEC);
        assert_eq!(w.stats_at(100 * SEC), (0, 0.0));
    }

    #[test]
    fn slightly_out_of_order_values_accepted() {
        let mut w = SlidingWindow::new(10 * SEC, SEC);
        w.record(5 * SEC, 1.0);
        w.record(3 * SEC, 3.0); // late arrival
        w.record(6 * SEC, 2.0);
        let (count, mean) = w.stats_at(6 * SEC);
        assert_eq!(count, 3);
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tracking_follows_a_level_shift() {
        // The window mean tracks a regime change within one window length —
        // the "most recent data" requirement.
        let mut w = SlidingWindow::new(10 * SEC, SEC);
        for i in 0..20u64 {
            w.record(i * SEC, 10.0);
        }
        for i in 20..31u64 {
            w.record(i * SEC, 50.0);
        }
        let (_, mean) = w.stats_at(30 * SEC);
        assert!((mean - 50.0).abs() < 4.0, "mean {mean} should approach the new level");
    }

    #[test]
    fn keyed_windows_are_independent() {
        let mut kw: KeyedWindows<&str> = KeyedWindows::new(10 * SEC, SEC);
        for i in 0..5u64 {
            kw.record("a", i * SEC, 10.0);
            kw.record("b", i * SEC, 20.0);
        }
        assert_eq!(kw.len(), 2);
        let (ca, ma) = kw.stats_at(&"a", 4 * SEC).unwrap();
        let (cb, mb) = kw.stats_at(&"b", 4 * SEC).unwrap();
        assert_eq!((ca, cb), (5, 5));
        assert!((ma - 10.0).abs() < 1e-12 && (mb - 20.0).abs() < 1e-12);
        assert!(kw.stats_at(&"c", 0).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid window/bucket")]
    fn zero_bucket_panics() {
        SlidingWindow::new(SEC, 0);
    }
}

//! Runtime lock-rank witness for the CAD3 workspace.
//!
//! Every named lock site in the workspace has a rank in the checked-in
//! `lockranks.toml` (repo root), bootstrapped by `cargo xtask analyze
//! --emit-lockranks` and verified statically by `cargo xtask analyze`. This
//! crate is the *dynamic* half of that contract: a call site wraps each
//! acquisition in [`rank_scope!`], which pushes the site's rank onto a
//! thread-local held-locks stack and asserts that ranks are strictly
//! increasing — so any lock-order inversion a test actually executes panics
//! on the spot, and every existing test doubles as a deadlock regression
//! test.
//!
//! The witness exists only when `debug_assertions` are on or the build sets
//! `--cfg cad3_lockrank` (CI runs the suite once in release with the cfg
//! forced); in ordinary release builds and under `--cfg loom` the macro
//! expands to a unit value and this crate contributes no code at all.
//!
//! ```text
//! let _held = cad3_lockrank::rank_scope!("cad3_stream::Broker::topics");
//! // ... acquire the `topics` lock while `_held` is live ...
//! ```
//!
//! (Shown as text, not a doctest: the macro body is selected by the *calling*
//! crate's `debug_assertions`, and doctests can build with a different
//! profile than the library they link against.)

/// Marks the start of a lock-guard scope for the named site.
///
/// Expands to a value that must be bound to a named local (`let _held = ...`)
/// spanning the same lexical scope as the lock guard itself. In witness
/// builds it panics if `site` is unknown to `lockranks.toml` or if its rank
/// is not strictly above every rank already held by this thread; elsewhere it
/// expands to `()`.
#[macro_export]
macro_rules! rank_scope {
    ($site:literal) => {{
        #[cfg(all(not(loom), any(debug_assertions, cad3_lockrank)))]
        let held = $crate::acquire($site);
        #[cfg(not(all(not(loom), any(debug_assertions, cad3_lockrank))))]
        let held = ();
        held
    }};
}

#[cfg(all(not(loom), any(debug_assertions, cad3_lockrank)))]
mod imp {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::OnceLock;

    /// The checked-in rank declarations, compiled into the witness so the
    /// runtime check can never drift from the file the analyzer verifies.
    const RANKS_TOML: &str = include_str!("../../../lockranks.toml");

    fn ranks() -> &'static HashMap<&'static str, u32> {
        static TABLE: OnceLock<HashMap<&'static str, u32>> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut map = HashMap::new();
            for raw in RANKS_TOML.lines() {
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') || line.starts_with('[') {
                    continue;
                }
                let Some((key, value)) = line.split_once('=') else {
                    panic!("lockranks.toml: malformed line: {raw}");
                };
                let site = key.trim().trim_matches('"');
                let Ok(rank) = value.trim().parse::<u32>() else {
                    panic!("lockranks.toml: bad rank for {site}: {raw}");
                };
                if map.insert(site, rank).is_some() {
                    panic!("lockranks.toml: duplicate site {site}");
                }
            }
            map
        })
    }

    thread_local! {
        /// Ranks (and sites, for messages) of the locks this thread holds.
        static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// A held-lock token; popping happens on drop (out-of-order drops pop
    /// the matching entry, not necessarily the top).
    #[derive(Debug)]
    #[must_use = "bind to a named local spanning the lock guard's scope"]
    pub struct Held {
        site: &'static str,
    }

    /// Records an acquisition at `site`, panicking on a rank inversion.
    pub fn acquire(site: &'static str) -> Held {
        let Some(&rank) = ranks().get(site) else {
            panic!(
                "lockrank: site {site:?} is not in lockranks.toml — \
                 run `cargo xtask analyze --emit-lockranks`"
            );
        };
        HELD.with(|held| {
            let mut stack = held.borrow_mut();
            if let Some(&(top_rank, top_site)) = stack.last() {
                assert!(
                    rank > top_rank,
                    "lockrank: acquiring {site} (rank {rank}) while holding {top_site} \
                     (rank {top_rank}) — violates the hierarchy in lockranks.toml"
                );
            }
            stack.push((rank, site));
        });
        Held { site }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut stack = held.borrow_mut();
                if let Some(idx) = stack.iter().rposition(|&(_, s)| s == self.site) {
                    stack.remove(idx);
                }
            });
        }
    }

    /// The number of lock sites this thread currently holds (test helper).
    pub fn held_depth() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

#[cfg(all(not(loom), any(debug_assertions, cad3_lockrank)))]
pub use imp::{acquire, held_depth, Held};

#[cfg(all(not(loom), any(debug_assertions, cad3_lockrank)))]
#[cfg(test)]
mod tests {
    #[test]
    fn increasing_ranks_are_accepted() {
        let a = crate::rank_scope!("cad3_stream::Broker::topics");
        let b = crate::rank_scope!("cad3_stream::SharedTopic::partitions");
        let c = crate::rank_scope!("cad3_stream::Broker::groups");
        assert_eq!(crate::held_depth(), 3);
        drop((a, b, c));
        assert_eq!(crate::held_depth(), 0);
    }

    #[test]
    #[should_panic(expected = "violates the hierarchy")]
    fn inverted_acquisition_panics() {
        let _groups = crate::rank_scope!("cad3_stream::Broker::groups");
        let _topics = crate::rank_scope!("cad3_stream::Broker::topics");
    }

    #[test]
    #[should_panic(expected = "violates the hierarchy")]
    fn equal_rank_reacquisition_panics() {
        let _a = crate::rank_scope!("cad3_stream::SharedTopic::partitions");
        let _b = crate::rank_scope!("cad3_stream::SharedTopic::partitions");
    }

    #[test]
    #[should_panic(expected = "not in lockranks.toml")]
    fn unknown_site_panics() {
        let _x = crate::rank_scope!("cad3_nonexistent::Struct::field");
    }

    #[test]
    fn out_of_order_drop_pops_the_matching_entry() {
        let a = crate::rank_scope!("cad3_stream::Broker::topics");
        let b = crate::rank_scope!("cad3_stream::SharedTopic::partitions");
        drop(a);
        assert_eq!(crate::held_depth(), 1);
        // `groups` outranks the still-held partition mutex.
        let _c = crate::rank_scope!("cad3_stream::Broker::groups");
        drop(b);
        assert_eq!(crate::held_depth(), 1);
    }

    #[test]
    fn stacks_are_per_thread() {
        let _groups = crate::rank_scope!("cad3_stream::Broker::groups");
        // A fresh thread starts with an empty stack, so a lower rank is fine.
        std::thread::spawn(|| {
            let _topics = crate::rank_scope!("cad3_stream::Broker::topics");
            assert_eq!(crate::held_depth(), 1);
        })
        .join()
        .expect("witness thread");
    }
}

//! Column-major micro-batch inference plans — the batched, branchless
//! counterpart of the scalar `predict`/`predict_proba` paths.
//!
//! A plan is precomputed once at model-build time ([`crate::NaiveBayes::batch_plan`],
//! [`crate::DecisionTree::batch_plan`], [`crate::LogisticRegression::batch_plan`])
//! and then evaluated over a [`FeatureBatch`] holding one contiguous column
//! per feature. Evaluation writes into caller-provided slices and performs
//! no heap allocation; all allocation happens at plan construction, which is
//! what the `hotpaths.toml` contract enforces.
//!
//! Every plan is *bit-identical* to its scalar counterpart: the per-row
//! floating-point operations are replicated in the exact order the scalar
//! path performs them (see each method's notes), so replacing a scalar loop
//! with a plan sweep cannot change a single prediction. In particular:
//!
//! * The Naïve Bayes plan stores `(mean, var, ln(2π·var))` per class and
//!   continuous feature — the `ln` call is hoisted to build time (ln of the
//!   same input bits is deterministic), while the division `d·d/var` stays a
//!   division: multiplying by a precomputed `1/var` would round twice and
//!   break bit-identity with the scalar `gaussian_log_pdf`.
//! * The tree plan quantizes thresholds into order-preserving `u64` keys
//!   ([`ord_key`]) at build time, and quantizes each feature column the same
//!   way at eval time. The map is an exact order isomorphism, so the
//!   branchless integer compare decides every split exactly as the scalar
//!   `row[feature] <= threshold` does.

use crate::dataset::Schema;
use crate::MlError;

/// Order-preserving quantization of an `f64` into a `u64` sort key.
///
/// For non-NaN `a`, `b`: `a <= b` iff `ord_key(a) <= ord_key(b)` — the
/// negative range is bit-complemented and the positive range offset past it,
/// after normalising `-0.0` to `+0.0` (they compare equal as floats and must
/// map to the same key). `NaN` maps to `u64::MAX`, which no non-NaN value
/// reaches, so a NaN feature compares greater than every finite threshold —
/// exactly how the scalar `NaN <= t` (false, go right) behaves.
#[inline]
pub fn ord_key(x: f64) -> u64 {
    if x.is_nan() {
        return u64::MAX;
    }
    let x = if x == 0.0 { 0.0 } else { x };
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// A column-major micro-batch of feature rows.
///
/// Rows are appended via [`FeatureBatch::push_row`]; each feature lives in
/// its own contiguous column so a plan sweep reads unit-stride memory. The
/// container is reusable: [`FeatureBatch::clear`] keeps column capacity, so
/// a steady-state detect loop stops allocating once warm.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBatch {
    cols: Vec<Vec<f64>>,
    n_rows: usize,
}

impl FeatureBatch {
    /// An empty batch with `n_features` columns.
    pub fn new(n_features: usize) -> Self {
        FeatureBatch { cols: (0..n_features).map(|_| Vec::new()).collect(), n_rows: 0 }
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows pushed.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Drops all rows, keeping column capacity for reuse.
    pub fn clear(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.n_rows = 0;
    }

    /// Appends one row, scattering its features into the columns.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when the row width differs
    /// from the column count.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), MlError> {
        if row.len() != self.cols.len() {
            return Err(MlError::DimensionMismatch { expected: self.cols.len(), got: row.len() });
        }
        for (col, &x) in self.cols.iter_mut().zip(row) {
            col.push(x);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Column `f`, or an empty slice when out of range.
    pub fn col(&self, feat: usize) -> &[f64] {
        self.cols.get(feat).map_or(&[], Vec::as_slice)
    }
}

/// One feature column of a [`NbBatchPlan`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum NbPlanCol {
    /// `(mean, var, ln(2π·var))` per class; the log-normaliser is hoisted
    /// to build time, the division by `var` stays a division (bit-identity
    /// with the scalar `gaussian_log_pdf`).
    Gaussian { per_class: Vec<(f64, f64, f64)> },
    /// Class-major concatenation of the per-class category log-probability
    /// tables: entry `c * cardinality + v`.
    Categorical { cardinality: usize, log_probs: Vec<f64> },
}

/// Precomputed column-major evaluation plan for a [`crate::NaiveBayes`]
/// model. Built once via [`crate::NaiveBayes::batch_plan`]; evaluation is
/// allocation-free and bit-identical to the scalar path.
#[derive(Debug, Clone, PartialEq)]
pub struct NbBatchPlan {
    pub(crate) schema: Schema,
    pub(crate) log_priors: Vec<f64>,
    pub(crate) cols: Vec<NbPlanCol>,
}

impl NbBatchPlan {
    /// The model's feature schema (rows fed to the plan must satisfy it;
    /// see the eval methods' preconditions).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.log_priors.len()
    }

    /// Joint log-likelihoods for every row, class-major: `ll[c * n_rows + r]`.
    ///
    /// Per `(class, row)` cell this performs exactly the scalar
    /// [`crate::NaiveBayes::log_likelihoods`] operations in the same order:
    /// terms accumulate from `0.0` in ascending feature order, then the
    /// class log-prior is added on the left.
    ///
    /// Rows must satisfy the plan's [`NbBatchPlan::schema`] (categorical
    /// values in range); out-of-range categories are clamped to the last
    /// table entry instead of panicking, which is deterministic but not
    /// meaningful — validate rows first where the input is untrusted.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when the batch width differs
    /// from the schema or `ll` is not `n_classes * n_rows` long.
    pub fn log_likelihoods_into(
        &self,
        batch: &FeatureBatch,
        ll: &mut [f64],
    ) -> Result<(), MlError> {
        let rows = batch.n_rows();
        let n_classes = self.log_priors.len();
        if batch.n_features() != self.cols.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.cols.len(),
                got: batch.n_features(),
            });
        }
        if ll.len() != n_classes * rows {
            return Err(MlError::DimensionMismatch { expected: n_classes * rows, got: ll.len() });
        }
        ll.fill(0.0);
        for (feat, col) in self.cols.iter().enumerate() {
            let xs = batch.col(feat);
            match col {
                NbPlanCol::Gaussian { per_class } => {
                    for (acc, &(mean, var, ln_2pi_var)) in
                        ll.chunks_exact_mut(rows.max(1)).zip(per_class)
                    {
                        for (a, &x) in acc.iter_mut().zip(xs) {
                            // Same ops, same order as `gaussian_log_pdf`:
                            // -0.5 * (ln(2π·var) + d·d/var), ln hoisted.
                            let d = x - mean;
                            *a += -0.5 * (ln_2pi_var + d * d / var);
                        }
                    }
                }
                NbPlanCol::Categorical { cardinality, log_probs } => {
                    for (acc, table) in
                        ll.chunks_exact_mut(rows.max(1)).zip(log_probs.chunks_exact(*cardinality))
                    {
                        for (a, &x) in acc.iter_mut().zip(xs) {
                            // Clamped gather: in-range values (the documented
                            // precondition) index their own entry; `as usize`
                            // saturates NaN/negatives to 0, so this is total.
                            let i = (x as usize).min(cardinality - 1);
                            // hotpath-exempt(panic): `i < cardinality` by the
                            // clamp above and `table.len() == cardinality` by
                            // chunks_exact.
                            *a += table[i];
                        }
                    }
                }
            }
        }
        // Log-priors last, written `lp + Σ terms` to mirror the scalar
        // operand order (IEEE addition commutes bit-exactly, but keeping
        // the order makes the correspondence auditable by eye).
        #[allow(clippy::assign_op_pattern)]
        for (acc, &lp) in ll.chunks_exact_mut(rows.max(1)).zip(&self.log_priors) {
            for a in acc.iter_mut() {
                *a = lp + *a;
            }
        }
        Ok(())
    }

    /// Posterior class probabilities, row-major: `out[r * n_classes + c]`.
    ///
    /// The per-row log-sum-exp replicates the scalar
    /// [`crate::NaiveBayes::predict_proba`] exactly: max-fold from
    /// `NEG_INFINITY` via `f64::max` in class order, exponentials in class
    /// order, sum folded from `0.0`, then each exponential divided by it.
    ///
    /// `ll` is scratch sized `n_classes * n_rows`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on any size mismatch.
    pub fn predict_proba_into(
        &self,
        batch: &FeatureBatch,
        ll: &mut [f64],
        out: &mut [f64],
    ) -> Result<(), MlError> {
        self.log_likelihoods_into(batch, ll)?;
        let rows = batch.n_rows();
        let n_classes = self.log_priors.len();
        if out.len() != rows * n_classes {
            return Err(MlError::DimensionMismatch { expected: rows * n_classes, got: out.len() });
        }
        for (r, dst) in out.chunks_exact_mut(n_classes.max(1)).enumerate() {
            let mut max = f64::NEG_INFINITY;
            for c in 0..n_classes {
                // hotpath-exempt(panic): `c * rows + r` < n_classes * rows ==
                // ll.len(), checked by log_likelihoods_into above.
                max = f64::max(max, ll[c * rows + r]);
            }
            let mut sum = 0.0;
            for (c, e) in dst.iter_mut().enumerate() {
                // hotpath-exempt(panic): same bound as the max fold above.
                *e = (ll[c * rows + r] - max).exp();
                sum += *e;
            }
            for e in dst.iter_mut() {
                *e /= sum;
            }
        }
        Ok(())
    }

    /// The most probable class per row.
    ///
    /// The argmax replicates the scalar [`crate::NaiveBayes::predict`]:
    /// running best over classes in order, strict `>`, NaN-safe.
    ///
    /// `ll` is scratch sized `n_classes * n_rows`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on any size mismatch.
    pub fn predict_into(
        &self,
        batch: &FeatureBatch,
        ll: &mut [f64],
        out: &mut [u32],
    ) -> Result<(), MlError> {
        self.log_likelihoods_into(batch, ll)?;
        let rows = batch.n_rows();
        let n_classes = self.log_priors.len();
        if out.len() != rows {
            return Err(MlError::DimensionMismatch { expected: rows, got: out.len() });
        }
        for (r, o) in out.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_ll = f64::NEG_INFINITY;
            for c in 0..n_classes {
                // hotpath-exempt(panic): `c * rows + r` < ll.len(), checked
                // by log_likelihoods_into above.
                let x = ll[c * rows + r];
                if x > best_ll {
                    best = c;
                    best_ll = x;
                }
            }
            *o = best as u32;
        }
        Ok(())
    }
}

/// Precomputed flattened-array evaluation plan for a
/// [`crate::DecisionTree`]. Built once via
/// [`crate::DecisionTree::batch_plan`]; descent is branchless (arithmetic
/// child select over [`ord_key`]-quantized thresholds) and bit-identical to
/// the scalar walk.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeBatchPlan {
    pub(crate) schema: Schema,
    pub(crate) n_classes: usize,
    pub(crate) depth: usize,
    /// Per node: split feature column (leaves: 0, unused).
    pub(crate) feat: Vec<u32>,
    /// Per node: [`ord_key`] of the split threshold (leaves: 0, unused).
    pub(crate) tkey: Vec<u64>,
    /// Interleaved `[left, right]` child indices; leaves point to
    /// themselves, so rows parked on a leaf stay put for the remaining
    /// level sweeps.
    pub(crate) children: Vec<u32>,
    /// Node-major leaf distributions `probs[node * n_classes + c]`
    /// (internal nodes hold zeros, never read).
    pub(crate) probs: Vec<f64>,
}

impl TreeBatchPlan {
    /// The tree's feature schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Advances every row to its leaf, level by level. `keys` is scratch
    /// sized `n_features * n_rows` (column-major quantized features), `cur`
    /// is scratch sized `n_rows`; on return `cur[r]` is row `r`'s leaf.
    fn descend(&self, batch: &FeatureBatch, keys: &mut [u64], cur: &mut [u32]) {
        let rows = batch.n_rows();
        for (f_keys, feat) in keys.chunks_exact_mut(rows.max(1)).zip(0..batch.n_features()) {
            for (k, &x) in f_keys.iter_mut().zip(batch.col(feat)) {
                *k = ord_key(x);
            }
        }
        cur.fill(0);
        for _ in 0..self.depth {
            for (r, c) in cur.iter_mut().enumerate() {
                let n = *c as usize;
                // hotpath-exempt(panic): `n` comes from `children`, whose
                // entries are < node count by construction.
                let feat = self.feat[n] as usize;
                // hotpath-exempt(panic): `feat < n_features`, `r < rows`,
                // `tkey` is node-indexed — both gathers are in range.
                let k = keys[feat * rows + r];
                let go_right = usize::from(k > self.tkey[n]);
                // hotpath-exempt(panic): `2n + go_right < children.len()`
                // because `n` is a valid node index.
                *c = self.children[2 * n + go_right];
            }
        }
    }

    /// Leaf class distribution per row, row-major:
    /// `out[r * n_classes + c]` — the same `f64` bits the scalar
    /// [`crate::DecisionTree::predict_proba`] clones out of the leaf.
    ///
    /// `keys` is scratch sized `n_features * n_rows`, `cur` scratch sized
    /// `n_rows`. Rows must satisfy the plan's schema (the scalar path
    /// validates and errors; the plan's descent is total either way).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on any size mismatch.
    pub fn predict_proba_into(
        &self,
        batch: &FeatureBatch,
        keys: &mut [u64],
        cur: &mut [u32],
        out: &mut [f64],
    ) -> Result<(), MlError> {
        let rows = batch.n_rows();
        self.check_sizes(batch, keys, cur)?;
        if out.len() != rows * self.n_classes {
            return Err(MlError::DimensionMismatch {
                expected: rows * self.n_classes,
                got: out.len(),
            });
        }
        self.descend(batch, keys, cur);
        for (dst, &n) in out.chunks_exact_mut(self.n_classes.max(1)).zip(cur.iter()) {
            let start = n as usize * self.n_classes;
            // hotpath-exempt(panic): `n` is a valid node index (see
            // descend), and `probs` holds n_classes entries per node.
            dst.copy_from_slice(&self.probs[start..start + self.n_classes]);
        }
        Ok(())
    }

    /// The most probable class per row (scalar-identical argmax over the
    /// leaf distribution: running best, strict `>`, NaN-safe).
    ///
    /// `keys` is scratch sized `n_features * n_rows`, `cur` scratch sized
    /// `n_rows`; `out` receives one class per row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on any size mismatch.
    pub fn predict_into(
        &self,
        batch: &FeatureBatch,
        keys: &mut [u64],
        cur: &mut [u32],
        out: &mut [u32],
    ) -> Result<(), MlError> {
        let rows = batch.n_rows();
        self.check_sizes(batch, keys, cur)?;
        if out.len() != rows {
            return Err(MlError::DimensionMismatch { expected: rows, got: out.len() });
        }
        self.descend(batch, keys, cur);
        for (o, &n) in out.iter_mut().zip(cur.iter()) {
            let start = n as usize * self.n_classes;
            // hotpath-exempt(panic): same bound as predict_proba_into.
            let leaf = &self.probs[start..start + self.n_classes];
            let mut best = 0usize;
            let mut best_p = f64::NEG_INFINITY;
            for (c, &p) in leaf.iter().enumerate() {
                if p > best_p {
                    best = c;
                    best_p = p;
                }
            }
            *o = best as u32;
        }
        Ok(())
    }

    fn check_sizes(&self, batch: &FeatureBatch, keys: &[u64], cur: &[u32]) -> Result<(), MlError> {
        let rows = batch.n_rows();
        if batch.n_features() != self.schema.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.schema.len(),
                got: batch.n_features(),
            });
        }
        if keys.len() != self.schema.len() * rows {
            return Err(MlError::DimensionMismatch {
                expected: self.schema.len() * rows,
                got: keys.len(),
            });
        }
        if cur.len() != rows {
            return Err(MlError::DimensionMismatch { expected: rows, got: cur.len() });
        }
        Ok(())
    }
}

/// Precomputed column-major evaluation plan for a
/// [`crate::LogisticRegression`]. Built once via
/// [`crate::LogisticRegression::batch_plan`]; evaluation is allocation-free
/// and bit-identical to the scalar path.
#[derive(Debug, Clone, PartialEq)]
pub struct LrBatchPlan {
    pub(crate) schema: Schema,
    pub(crate) standardise: Vec<(f64, f64)>,
    pub(crate) offsets: Vec<usize>,
    pub(crate) weights: Vec<f64>,
    pub(crate) bias: f64,
}

impl LrBatchPlan {
    /// The model's feature schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Probability of class 1 per row — the scalar
    /// [`crate::LogisticRegression::predict_proba_one`] replicated term by
    /// term: per feature in order, a continuous column contributes
    /// `w₀·z` then `w₁·z²` (z standardised), a categorical column its
    /// one-hot weight times `1.0`; the bias is added on the left before the
    /// sigmoid. Rows must satisfy the schema (out-of-range categories clamp
    /// deterministically instead of panicking).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on any size mismatch.
    pub fn predict_proba_one_into(
        &self,
        batch: &FeatureBatch,
        out: &mut [f64],
    ) -> Result<(), MlError> {
        let rows = batch.n_rows();
        if batch.n_features() != self.schema.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.schema.len(),
                got: batch.n_features(),
            });
        }
        if out.len() != rows {
            return Err(MlError::DimensionMismatch { expected: rows, got: out.len() });
        }
        out.fill(0.0);
        for (feat, kind) in self.schema.kinds().enumerate() {
            let xs = batch.col(feat);
            // hotpath-exempt(panic): `standardise` and `offsets` are one
            // entry per schema column by construction.
            let (mean, std) = self.standardise[feat];
            let off = self.offsets[feat];
            match kind {
                crate::FeatureKind::Continuous => {
                    // hotpath-exempt(panic): the design width counts two
                    // columns per continuous feature starting at `off`.
                    let w0 = self.weights[off];
                    let w1 = self.weights[off + 1];
                    for (a, &x) in out.iter_mut().zip(xs) {
                        let z = (x - mean) / std;
                        *a += w0 * z;
                        *a += w1 * (z * z);
                    }
                }
                crate::FeatureKind::Categorical { cardinality } => {
                    for (a, &x) in out.iter_mut().zip(xs) {
                        let i = (x as usize).min(cardinality - 1);
                        // hotpath-exempt(panic): `off + i` is within the
                        // design width (cardinality one-hot columns at
                        // `off`), `i` clamped above.
                        *a += self.weights[off + i] * 1.0;
                    }
                }
            }
        }
        for a in out.iter_mut() {
            let z = self.bias + *a;
            *a = 1.0 / (1.0 + (-z).exp());
        }
        Ok(())
    }

    /// Class probabilities per row, row-major `[P(0), P(1)]` — the scalar
    /// `vec![1.0 - p1, p1]` replicated. `p1` is scratch sized `n_rows`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on any size mismatch.
    pub fn predict_proba_into(
        &self,
        batch: &FeatureBatch,
        p1: &mut [f64],
        out: &mut [f64],
    ) -> Result<(), MlError> {
        self.predict_proba_one_into(batch, p1)?;
        if out.len() != p1.len() * 2 {
            return Err(MlError::DimensionMismatch { expected: p1.len() * 2, got: out.len() });
        }
        for (dst, &p) in out.chunks_exact_mut(2).zip(p1.iter()) {
            // hotpath-exempt(panic): chunks_exact_mut(2) yields 2-slices.
            dst[0] = 1.0 - p;
            dst[1] = p;
        }
        Ok(())
    }

    /// The most probable class per row (`p1 >= 0.5`, as the scalar
    /// [`crate::LogisticRegression::predict`]). `p1` is scratch sized
    /// `n_rows`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on any size mismatch.
    pub fn predict_into(
        &self,
        batch: &FeatureBatch,
        p1: &mut [f64],
        out: &mut [u32],
    ) -> Result<(), MlError> {
        self.predict_proba_one_into(batch, p1)?;
        if out.len() != p1.len() {
            return Err(MlError::DimensionMismatch { expected: p1.len(), got: out.len() });
        }
        for (o, &p) in out.iter_mut().zip(p1.iter()) {
            *o = u32::from(p >= 0.5);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, FeatureKind};
    use crate::{
        DecisionTree, DecisionTreeParams, LogisticParams, LogisticRegression, NaiveBayes, Schema,
    };

    fn mixed_dataset() -> Dataset {
        let schema = Schema::new(vec![
            FeatureKind::Continuous,
            FeatureKind::Continuous,
            FeatureKind::Categorical { cardinality: 3 },
        ]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..120 {
            let jitter = (i % 13) as f64 * 0.17;
            ds.push(vec![jitter, -jitter * 0.5, (i % 3) as f64], 0).unwrap();
            ds.push(vec![9.0 + jitter, 4.0 - jitter, ((i + 1) % 3) as f64], 1).unwrap();
        }
        ds
    }

    fn probe_rows() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..60 {
            let x = (i as f64 - 30.0) * 0.45;
            rows.push(vec![x, -x * 0.3 + 1.0, (i % 3) as f64]);
        }
        rows
    }

    fn batch_of(rows: &[Vec<f64>]) -> FeatureBatch {
        let mut b = FeatureBatch::new(rows.first().map_or(0, Vec::len));
        for r in rows {
            b.push_row(r).unwrap();
        }
        b
    }

    #[test]
    fn ord_key_is_an_order_isomorphism() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            0.5,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(a <= b, ord_key(a) <= ord_key(b), "a={a}, b={b}");
                assert_eq!(a == b, ord_key(a) == ord_key(b), "a={a}, b={b}");
            }
        }
        // NaN maps to a key strictly above every non-NaN key: the branchless
        // compare then always sends a NaN feature right, as the scalar does.
        for &a in &vals {
            assert!(ord_key(f64::NAN) > ord_key(a));
        }
        assert_eq!(ord_key(f64::NAN), u64::MAX);
    }

    #[test]
    fn nb_plan_matches_scalar_bits() {
        let nb = NaiveBayes::fit(&mixed_dataset()).unwrap();
        let plan = nb.batch_plan();
        let rows = probe_rows();
        let batch = batch_of(&rows);
        let n = rows.len();
        let mut ll = vec![0.0; 2 * n];
        let mut proba = vec![0.0; 2 * n];
        let mut classes = vec![0u32; n];
        plan.predict_proba_into(&batch, &mut ll, &mut proba).unwrap();
        plan.predict_into(&batch, &mut ll, &mut classes).unwrap();
        plan.log_likelihoods_into(&batch, &mut ll).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let s_ll = nb.log_likelihoods(row).unwrap();
            let s_proba = nb.predict_proba(row).unwrap();
            let s_class = nb.predict(row).unwrap();
            for c in 0..2 {
                assert_eq!(s_ll[c].to_bits(), ll[c * n + r].to_bits(), "ll row {r} class {c}");
                assert_eq!(
                    s_proba[c].to_bits(),
                    proba[r * 2 + c].to_bits(),
                    "proba row {r} class {c}"
                );
            }
            assert_eq!(s_class as u32, classes[r], "class row {r}");
        }
    }

    #[test]
    fn tree_plan_matches_scalar_bits() {
        let tree = DecisionTree::fit(&mixed_dataset(), DecisionTreeParams::default()).unwrap();
        let plan = tree.batch_plan();
        let rows = probe_rows();
        let batch = batch_of(&rows);
        let n = rows.len();
        let mut keys = vec![0u64; 3 * n];
        let mut cur = vec![0u32; n];
        let mut proba = vec![0.0; 2 * n];
        let mut classes = vec![0u32; n];
        plan.predict_proba_into(&batch, &mut keys, &mut cur, &mut proba).unwrap();
        plan.predict_into(&batch, &mut keys, &mut cur, &mut classes).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let s_proba = tree.predict_proba(row).unwrap();
            for c in 0..2 {
                assert_eq!(
                    s_proba[c].to_bits(),
                    proba[r * 2 + c].to_bits(),
                    "proba row {r} class {c}"
                );
            }
            assert_eq!(tree.predict(row).unwrap() as u32, classes[r], "class row {r}");
        }
    }

    #[test]
    fn tree_plan_single_leaf_tree() {
        // A pure dataset fits to one leaf: depth 0, every row parks on the
        // self-looping root.
        let schema = Schema::new(vec![FeatureKind::Continuous]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..10 {
            ds.push(vec![i as f64], 1).unwrap();
        }
        let tree = DecisionTree::fit(&ds, DecisionTreeParams::default()).unwrap();
        let plan = tree.batch_plan();
        let rows: Vec<Vec<f64>> = vec![vec![-5.0], vec![0.0], vec![99.0]];
        let batch = batch_of(&rows);
        let mut keys = vec![0u64; 3];
        let mut cur = vec![0u32; 3];
        let mut proba = vec![0.0; 6];
        plan.predict_proba_into(&batch, &mut keys, &mut cur, &mut proba).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let s = tree.predict_proba(row).unwrap();
            assert_eq!(s[0].to_bits(), proba[r * 2].to_bits());
            assert_eq!(s[1].to_bits(), proba[r * 2 + 1].to_bits());
        }
    }

    #[test]
    fn lr_plan_matches_scalar_bits() {
        let lr = LogisticRegression::fit(&mixed_dataset(), LogisticParams::default()).unwrap();
        let plan = lr.batch_plan();
        let rows = probe_rows();
        let batch = batch_of(&rows);
        let n = rows.len();
        let mut p1 = vec![0.0; n];
        let mut proba = vec![0.0; 2 * n];
        let mut classes = vec![0u32; n];
        plan.predict_proba_into(&batch, &mut p1, &mut proba).unwrap();
        plan.predict_into(&batch, &mut p1, &mut classes).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let s_p1 = lr.predict_proba_one(row).unwrap();
            let s_proba = lr.predict_proba(row).unwrap();
            assert_eq!(s_p1.to_bits(), p1[r].to_bits(), "p1 row {r}");
            assert_eq!(s_proba[0].to_bits(), proba[r * 2].to_bits(), "p0 row {r}");
            assert_eq!(s_proba[1].to_bits(), proba[r * 2 + 1].to_bits(), "p1 row {r}");
            assert_eq!(lr.predict(row).unwrap() as u32, classes[r], "class row {r}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let nb = NaiveBayes::fit(&mixed_dataset()).unwrap();
        let plan = nb.batch_plan();
        let batch = FeatureBatch::new(3);
        let mut ll = [0.0; 0];
        let mut out = [0.0; 0];
        plan.predict_proba_into(&batch, &mut ll, &mut out).unwrap();
    }

    #[test]
    fn size_mismatches_are_rejected() {
        let nb = NaiveBayes::fit(&mixed_dataset()).unwrap();
        let plan = nb.batch_plan();
        let batch = batch_of(&probe_rows());
        let mut short = vec![0.0; 3];
        assert!(matches!(
            plan.log_likelihoods_into(&batch, &mut short),
            Err(MlError::DimensionMismatch { .. })
        ));
        let wrong_width = FeatureBatch::new(2);
        let mut ll = [0.0; 0];
        assert!(matches!(
            plan.log_likelihoods_into(&wrong_width, &mut ll),
            Err(MlError::DimensionMismatch { .. })
        ));
        let tree = DecisionTree::fit(&mixed_dataset(), DecisionTreeParams::default()).unwrap();
        let tplan = tree.batch_plan();
        let mut keys = vec![0u64; 1];
        let mut cur = vec![0u32; batch.n_rows()];
        let mut out = vec![0.0; batch.n_rows() * 2];
        assert!(matches!(
            tplan.predict_proba_into(&batch, &mut keys, &mut cur, &mut out),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn feature_batch_reuse_keeps_capacity() {
        let mut b = FeatureBatch::new(2);
        b.push_row(&[1.0, 2.0]).unwrap();
        b.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(b.n_rows(), 2);
        assert_eq!(b.col(0), &[1.0, 3.0]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.col(1), &[] as &[f64]);
        assert!(b.push_row(&[1.0]).is_err());
    }
}

use crate::MlError;
use serde::{Deserialize, Serialize};

/// Kind of a feature column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// A real-valued feature (speed, acceleration, fused probability).
    Continuous,
    /// An integer-coded categorical feature with the given cardinality
    /// (hour of day = 24, road type = 10, predicted class = 2).
    Categorical {
        /// Number of distinct categories; values must lie in
        /// `0..cardinality`.
        cardinality: usize,
    },
}

/// Column schema of a feature matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    kinds: Vec<FeatureKind>,
}

impl Schema {
    /// Creates a schema from column kinds.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty or a categorical column has zero
    /// cardinality.
    pub fn new(kinds: Vec<FeatureKind>) -> Self {
        assert!(!kinds.is_empty(), "schema needs at least one feature");
        for k in &kinds {
            if let FeatureKind::Categorical { cardinality } = k {
                assert!(*cardinality > 0, "categorical features need cardinality >= 1");
            }
        }
        Schema { kinds }
    }

    /// Number of feature columns.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the schema has no columns (never true for a constructed
    /// schema).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Kind of column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn kind(&self, i: usize) -> FeatureKind {
        self.kinds[i]
    }

    /// Iterates over the column kinds.
    pub fn kinds(&self) -> impl Iterator<Item = FeatureKind> + '_ {
        self.kinds.iter().copied()
    }

    /// Validates one row against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] or
    /// [`MlError::InvalidCategory`].
    pub fn validate(&self, row: &[f64]) -> Result<(), MlError> {
        if row.len() != self.kinds.len() {
            return Err(MlError::DimensionMismatch { expected: self.kinds.len(), got: row.len() });
        }
        for (i, (&x, kind)) in row.iter().zip(self.kinds.iter()).enumerate() {
            if let FeatureKind::Categorical { cardinality } = kind {
                if x < 0.0 || x.fract() != 0.0 || (x as usize) >= *cardinality {
                    return Err(MlError::InvalidCategory {
                        feature: i,
                        value: x,
                        cardinality: *cardinality,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A labelled feature matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Creates an empty dataset.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(schema: Schema, n_classes: usize) -> Self {
        assert!(n_classes > 0, "dataset needs at least one class");
        Dataset { schema, rows: Vec::new(), labels: Vec::new(), n_classes }
    }

    /// Appends one labelled row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`], [`MlError::InvalidCategory`]
    /// or [`MlError::InvalidLabel`].
    pub fn push(&mut self, row: Vec<f64>, label: usize) -> Result<(), MlError> {
        self.schema.validate(&row)?;
        if label >= self.n_classes {
            return Err(MlError::InvalidLabel { label, n_classes: self.n_classes });
        }
        self.rows.push(row);
        self.labels.push(label);
        Ok(())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Label of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Iterates over `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], usize)> {
        self.rows.iter().map(Vec::as_slice).zip(self.labels.iter().copied())
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Builds a dataset containing the rows at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![FeatureKind::Continuous, FeatureKind::Categorical { cardinality: 24 }])
    }

    #[test]
    fn push_and_read_back() {
        let mut ds = Dataset::new(schema(), 2);
        ds.push(vec![1.5, 8.0], 1).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.row(0), &[1.5, 8.0]);
        assert_eq!(ds.label(0), 1);
        assert_eq!(ds.n_classes(), 2);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut ds = Dataset::new(schema(), 2);
        let err = ds.push(vec![1.0], 0).unwrap_err();
        assert_eq!(err, MlError::DimensionMismatch { expected: 2, got: 1 });
    }

    #[test]
    fn invalid_category_rejected() {
        let mut ds = Dataset::new(schema(), 2);
        assert!(matches!(
            ds.push(vec![1.0, 24.0], 0).unwrap_err(),
            MlError::InvalidCategory { feature: 1, .. }
        ));
        assert!(matches!(ds.push(vec![1.0, 3.5], 0).unwrap_err(), MlError::InvalidCategory { .. }));
        assert!(matches!(
            ds.push(vec![1.0, -1.0], 0).unwrap_err(),
            MlError::InvalidCategory { .. }
        ));
    }

    #[test]
    fn invalid_label_rejected() {
        let mut ds = Dataset::new(schema(), 2);
        assert_eq!(
            ds.push(vec![1.0, 0.0], 2).unwrap_err(),
            MlError::InvalidLabel { label: 2, n_classes: 2 }
        );
    }

    #[test]
    fn class_counts() {
        let mut ds = Dataset::new(schema(), 3);
        for (x, l) in [(0.0, 0), (1.0, 1), (2.0, 1), (3.0, 2)] {
            ds.push(vec![x, 0.0], l).unwrap();
        }
        assert_eq!(ds.class_counts(), vec![1, 2, 1]);
    }

    #[test]
    fn subset_selects_rows() {
        let mut ds = Dataset::new(schema(), 2);
        for i in 0..5 {
            ds.push(vec![i as f64, 0.0], i % 2).unwrap();
        }
        let sub = ds.subset(&[0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.row(1), &[2.0, 0.0]);
        assert_eq!(sub.label(2), 0);
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn empty_schema_panics() {
        Schema::new(vec![]);
    }
}

use crate::dataset::{Dataset, Schema};
use crate::MlError;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the CART decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a node needs to be considered for splitting.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
    /// Maximum number of candidate thresholds evaluated per feature
    /// (quantile-sampled when a feature has more unique values).
    pub max_thresholds: usize,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: 8,
            min_samples_split: 4,
            min_samples_leaf: 1,
            max_thresholds: 32,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf { probs: Vec<f64> },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A CART decision tree with Gini impurity — the collaborative classifier
/// of the paper's Fig. 4, fed the feature vector `[Hour, P_X, Class_NB]`.
///
/// Categorical columns are treated as ordered integer codes, which is exact
/// for binary codes (`Class_NB`) and a standard approximation otherwise.
///
/// # Example
///
/// ```
/// use cad3_ml::{Dataset, DecisionTree, DecisionTreeParams, FeatureKind, Schema};
///
/// let schema = Schema::new(vec![FeatureKind::Continuous]);
/// let mut ds = Dataset::new(schema, 2);
/// for i in 0..20 {
///     ds.push(vec![i as f64], usize::from(i >= 10))?;
/// }
/// let tree = DecisionTree::fit(&ds, DecisionTreeParams::default())?;
/// assert_eq!(tree.predict(&[3.0])?, 0);
/// assert_eq!(tree.predict(&[15.0])?, 1);
/// # Ok::<(), cad3_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    schema: Schema,
    n_classes: usize,
    params: DecisionTreeParams,
    root: Node,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn class_counts(data: &Dataset, idx: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; data.n_classes()];
    for &i in idx {
        counts[data.label(i)] += 1;
    }
    counts
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    impurity: f64,
}

impl DecisionTree {
    /// Fits a tree on the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty dataset.
    pub fn fit(data: &Dataset, params: DecisionTreeParams) -> Result<DecisionTree, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = Self::build(data, &indices, 0, &params);
        Ok(DecisionTree {
            schema: data.schema().clone(),
            n_classes: data.n_classes(),
            params,
            root,
        })
    }

    fn leaf(data: &Dataset, idx: &[usize]) -> Node {
        let counts = class_counts(data, idx);
        let total = idx.len().max(1) as f64;
        Node::Leaf { probs: counts.iter().map(|&c| c as f64 / total).collect() }
    }

    fn build(data: &Dataset, idx: &[usize], depth: usize, params: &DecisionTreeParams) -> Node {
        let counts = class_counts(data, idx);
        let node_gini = gini(&counts, idx.len());
        if depth >= params.max_depth || idx.len() < params.min_samples_split || node_gini == 0.0 {
            return Self::leaf(data, idx);
        }
        let Some(best) = Self::best_split(data, idx, node_gini, params) else {
            return Self::leaf(data, idx);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| data.row(i)[best.feature] <= best.threshold);
        if left_idx.len() < params.min_samples_leaf || right_idx.len() < params.min_samples_leaf {
            return Self::leaf(data, idx);
        }
        Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left: Box::new(Self::build(data, &left_idx, depth + 1, params)),
            right: Box::new(Self::build(data, &right_idx, depth + 1, params)),
        }
    }

    fn best_split(
        data: &Dataset,
        idx: &[usize],
        node_gini: f64,
        params: &DecisionTreeParams,
    ) -> Option<BestSplit> {
        let mut best: Option<BestSplit> = None;
        for f in 0..data.schema().len() {
            let mut values: Vec<f64> = idx.iter().map(|&i| data.row(i)[f]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("features are not NaN"));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            let candidates: Vec<f64> = if values.len() - 1 <= params.max_thresholds {
                values.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
            } else {
                // Quantile-sample boundaries.
                (1..=params.max_thresholds)
                    .map(|k| {
                        let pos = k * (values.len() - 1) / (params.max_thresholds + 1);
                        (values[pos] + values[pos + 1]) / 2.0
                    })
                    .collect()
            };
            for &thr in &candidates {
                let mut left = vec![0usize; data.n_classes()];
                let mut right = vec![0usize; data.n_classes()];
                let mut nl = 0usize;
                for &i in idx {
                    if data.row(i)[f] <= thr {
                        left[data.label(i)] += 1;
                        nl += 1;
                    } else {
                        right[data.label(i)] += 1;
                    }
                }
                let nr = idx.len() - nl;
                if nl == 0 || nr == 0 {
                    continue;
                }
                let weighted =
                    (nl as f64 * gini(&left, nl) + nr as f64 * gini(&right, nr)) / idx.len() as f64;
                // Allow zero-gain splits (like sklearn's CART): XOR-shaped
                // data has no first-split gain but becomes separable one
                // level deeper. Termination is still guaranteed by the
                // purity check, depth limit and shrinking child sizes.
                if weighted <= node_gini + 1e-12
                    && best.as_ref().is_none_or(|b| weighted < b.impurity)
                {
                    best = Some(BestSplit { feature: f, threshold: thr, impurity: weighted });
                }
            }
        }
        best
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Depth of the fitted tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn c(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => c(left) + c(right),
            }
        }
        c(&self.root)
    }

    /// Builds the flattened branchless batch-evaluation plan for this tree.
    ///
    /// Nodes are laid out depth-first into parallel arrays; thresholds are
    /// quantized into order-preserving [`crate::batch::ord_key`] keys (an
    /// exact order isomorphism, so no decision can change) and leaves point
    /// to themselves so every row can be advanced for a fixed `depth()`
    /// iterations with an arithmetic child select. Outputs are
    /// bit-identical to the scalar walk — see [`crate::batch`].
    pub fn batch_plan(&self) -> crate::batch::TreeBatchPlan {
        struct FlatNode {
            feat: u32,
            tkey: u64,
            left: u32,
            right: u32,
        }
        fn flatten(
            node: &Node,
            n_classes: usize,
            nodes: &mut Vec<FlatNode>,
            probs: &mut Vec<f64>,
        ) -> u32 {
            let idx = nodes.len() as u32;
            let base = probs.len();
            match node {
                Node::Leaf { probs: p } => {
                    // Self-loop: once a row reaches a leaf it stays there
                    // for the remaining level sweeps.
                    nodes.push(FlatNode { feat: 0, tkey: 0, left: idx, right: idx });
                    probs.extend_from_slice(p);
                    // Leaf distributions are n_classes long by fit
                    // construction; pad-or-trim keeps the layout total.
                    probs.truncate(base + n_classes);
                    probs.resize(base + n_classes, 0.0);
                }
                Node::Split { feature, threshold, left, right } => {
                    nodes.push(FlatNode {
                        feat: *feature as u32,
                        tkey: crate::batch::ord_key(*threshold),
                        left: 0,
                        right: 0,
                    });
                    probs.resize(base + n_classes, 0.0);
                    let li = flatten(left, n_classes, nodes, probs);
                    let ri = flatten(right, n_classes, nodes, probs);
                    if let Some(n) = nodes.get_mut(idx as usize) {
                        n.left = li;
                        n.right = ri;
                    }
                }
            }
            idx
        }
        let mut nodes = Vec::new();
        let mut probs = Vec::new();
        flatten(&self.root, self.n_classes, &mut nodes, &mut probs);
        crate::batch::TreeBatchPlan {
            schema: self.schema.clone(),
            n_classes: self.n_classes,
            depth: self.depth(),
            feat: nodes.iter().map(|n| n.feat).collect(),
            tkey: nodes.iter().map(|n| n.tkey).collect(),
            children: nodes.iter().flat_map(|n| [n.left, n.right]).collect(),
            probs,
        }
    }

    /// Class distribution at the leaf `row` falls into.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] or [`MlError::InvalidCategory`].
    pub fn predict_proba(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        self.schema.validate(row)?;
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { probs } => return Ok(probs.clone()),
                Node::Split { feature, threshold, left, right } => {
                    // hotpath-exempt(panic): split features come from the fitted schema
                    // and the row passed Schema::validate above.
                    node = if row[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// The most probable class.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] or [`MlError::InvalidCategory`].
    pub fn predict(&self, row: &[f64]) -> Result<usize, MlError> {
        let p = self.predict_proba(row)?;
        // Manual argmax: total and panic-free even for empty or NaN inputs
        // (NaN comparisons are simply never `>`, so the running best stands).
        let mut best = 0usize;
        let mut best_p = f64::NEG_INFINITY;
        for (i, &x) in p.iter().enumerate() {
            if x > best_p {
                best = i;
                best_p = x;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FeatureKind;

    fn xor_dataset() -> Dataset {
        // XOR over two binary features: needs depth 2 — a single split
        // cannot solve it, so this exercises recursion.
        let schema = Schema::new(vec![
            FeatureKind::Categorical { cardinality: 2 },
            FeatureKind::Categorical { cardinality: 2 },
        ]);
        let mut ds = Dataset::new(schema, 2);
        for _ in 0..25 {
            ds.push(vec![0.0, 0.0], 0).unwrap();
            ds.push(vec![0.0, 1.0], 1).unwrap();
            ds.push(vec![1.0, 0.0], 1).unwrap();
            ds.push(vec![1.0, 1.0], 0).unwrap();
        }
        ds
    }

    #[test]
    fn learns_xor() {
        let tree = DecisionTree::fit(&xor_dataset(), DecisionTreeParams::default()).unwrap();
        assert_eq!(tree.predict(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(tree.predict(&[0.0, 1.0]).unwrap(), 1);
        assert_eq!(tree.predict(&[1.0, 0.0]).unwrap(), 1);
        assert_eq!(tree.predict(&[1.0, 1.0]).unwrap(), 0);
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let schema = Schema::new(vec![FeatureKind::Continuous]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..10 {
            ds.push(vec![i as f64], 1).unwrap();
        }
        let tree = DecisionTree::fit(&ds, DecisionTreeParams::default()).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[100.0]).unwrap(), 1);
    }

    #[test]
    fn max_depth_zero_yields_majority_vote() {
        let schema = Schema::new(vec![FeatureKind::Continuous]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..30 {
            ds.push(vec![i as f64], usize::from(i >= 10)).unwrap();
        }
        let tree = DecisionTree::fit(
            &ds,
            DecisionTreeParams { max_depth: 0, ..DecisionTreeParams::default() },
        )
        .unwrap();
        // 20 of 30 are class 1.
        assert_eq!(tree.predict(&[0.0]).unwrap(), 1);
        let p = tree.predict_proba(&[0.0]).unwrap();
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let tree = DecisionTree::fit(&xor_dataset(), DecisionTreeParams::default()).unwrap();
        let p = tree.predict_proba(&[1.0, 1.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let schema = Schema::new(vec![FeatureKind::Continuous]);
        let mut ds = Dataset::new(schema, 2);
        // One outlier of class 1 among class 0.
        for i in 0..50 {
            ds.push(vec![i as f64], 0).unwrap();
        }
        ds.push(vec![25.5], 1).unwrap();
        let tree = DecisionTree::fit(
            &ds,
            DecisionTreeParams { min_samples_leaf: 5, ..DecisionTreeParams::default() },
        )
        .unwrap();
        // With a 5-sample floor, the single outlier cannot be isolated into
        // a pure leaf of its own by a final split.
        for node_leaf in [0.0, 25.5, 49.0] {
            let p = tree.predict_proba(&[node_leaf]).unwrap();
            assert!(p[1] < 0.5, "outlier should not dominate any leaf: {p:?}");
        }
    }

    #[test]
    fn deep_continuous_split_threshold_quantiles() {
        // More unique values than max_thresholds still finds a good split.
        let schema = Schema::new(vec![FeatureKind::Continuous]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..1000 {
            ds.push(vec![i as f64 / 3.0], usize::from(i >= 500)).unwrap();
        }
        let tree = DecisionTree::fit(
            &ds,
            DecisionTreeParams { max_thresholds: 8, ..DecisionTreeParams::default() },
        )
        .unwrap();
        let correct = (0..1000)
            .filter(|&i| tree.predict(&[i as f64 / 3.0]).unwrap() == usize::from(i >= 500))
            .count();
        assert!(correct >= 990, "quantile thresholds should nearly separate: {correct}");
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::new(Schema::new(vec![FeatureKind::Continuous]), 2);
        assert_eq!(
            DecisionTree::fit(&ds, DecisionTreeParams::default()).unwrap_err(),
            MlError::EmptyDataset
        );
    }

    #[test]
    fn malformed_row_rejected() {
        let tree = DecisionTree::fit(&xor_dataset(), DecisionTreeParams::default()).unwrap();
        assert!(tree.predict(&[0.0]).is_err());
        assert!(tree.predict(&[0.0, 5.0]).is_err());
    }

    #[test]
    fn paper_feature_vector_shape() {
        // The CAD3 tree uses [Hour, P_X, Class_NB]: categorical 24, continuous,
        // categorical 2. Driver-persistent anomalies make P_X informative.
        let schema = Schema::new(vec![
            FeatureKind::Categorical { cardinality: 24 },
            FeatureKind::Continuous,
            FeatureKind::Categorical { cardinality: 2 },
        ]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..200 {
            let hour = (i % 24) as f64;
            // Normal drivers: low abnormal-probability, NB said normal.
            ds.push(vec![hour, 0.1 + (i % 5) as f64 * 0.02, 1.0], 1).unwrap();
            // Abnormal drivers: high fused probability, NB sometimes wrong.
            let nb_class = if i % 4 == 0 { 1.0 } else { 0.0 };
            ds.push(vec![hour, 0.8 + (i % 5) as f64 * 0.02, nb_class], 0).unwrap();
        }
        let tree = DecisionTree::fit(&ds, DecisionTreeParams::default()).unwrap();
        // Even when NB said "normal", the fused probability rescues the
        // detection — the collaborative mechanism in miniature.
        assert_eq!(tree.predict(&[8.0, 0.85, 1.0]).unwrap(), 0);
        assert_eq!(tree.predict(&[8.0, 0.12, 1.0]).unwrap(), 1);
    }
}

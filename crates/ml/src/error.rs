use std::error::Error;
use std::fmt;

/// Errors returned by the ML substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Training was attempted on a dataset with no rows.
    EmptyDataset,
    /// A row's feature count does not match the schema.
    DimensionMismatch {
        /// Number of features the schema expects.
        expected: usize,
        /// Number of features in the offending row.
        got: usize,
    },
    /// A label was outside `0..n_classes`.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// The dataset's class count.
        n_classes: usize,
    },
    /// A categorical feature value was outside its declared cardinality.
    InvalidCategory {
        /// Feature column index.
        feature: usize,
        /// The offending raw value.
        value: f64,
        /// Declared cardinality of the column.
        cardinality: usize,
    },
    /// Training requires at least one example of every class.
    MissingClass {
        /// The class with no training examples.
        class: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => f.write_str("dataset has no rows"),
            MlError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            MlError::InvalidLabel { label, n_classes } => {
                write!(f, "label {label} outside 0..{n_classes}")
            }
            MlError::InvalidCategory { feature, value, cardinality } => {
                write!(f, "feature {feature} value {value} outside cardinality {cardinality}")
            }
            MlError::MissingClass { class } => {
                write!(f, "no training examples for class {class}")
            }
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(MlError::EmptyDataset.to_string(), "dataset has no rows");
        assert!(MlError::DimensionMismatch { expected: 4, got: 3 }.to_string().contains("4"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MlError>();
    }
}

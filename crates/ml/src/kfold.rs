//! K-fold cross-validation, for assessing model stability beyond the
//! paper's single 80/20 split.

use crate::{Dataset, SplitRng};

/// Produces `k` shuffled folds of `0..n` as `(train, test)` index pairs.
///
/// Every index appears in exactly one test fold; folds differ in size by at
/// most one.
///
/// # Panics
///
/// Panics if `k < 2` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, rng: &mut SplitRng) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "cross-validation needs at least two folds");
    assert!(k <= n, "more folds than samples");
    let mut indices: Vec<usize> = (0..n).collect();
    rng.shuffle_indices(&mut indices);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let test: Vec<usize> = indices.iter().copied().skip(f).step_by(k).collect();
        let test_set: std::collections::HashSet<usize> = test.iter().copied().collect();
        let train: Vec<usize> = indices.iter().copied().filter(|i| !test_set.contains(i)).collect();
        folds.push((train, test));
    }
    folds
}

/// Runs k-fold cross-validation: `fit` trains on each training fold,
/// `score` evaluates on the matching test fold. Returns the per-fold
/// scores.
///
/// # Panics
///
/// Panics under the same conditions as [`kfold_indices`].
///
/// # Example
///
/// ```
/// use cad3_ml::{cross_validate, Dataset, FeatureKind, NaiveBayes, Schema, SplitRng};
///
/// let mut ds = Dataset::new(Schema::new(vec![FeatureKind::Continuous]), 2);
/// for i in 0..100 {
///     ds.push(vec![i as f64], usize::from(i >= 50))?;
/// }
/// let scores = cross_validate(
///     &ds,
///     5,
///     &mut SplitRng::seed_from(1),
///     |train| NaiveBayes::fit(train).unwrap(),
///     |model, test| {
///         let correct = test
///             .iter()
///             .filter(|(row, label)| model.predict(row).unwrap() == *label)
///             .count();
///         correct as f64 / test.len() as f64
///     },
/// );
/// assert_eq!(scores.len(), 5);
/// assert!(scores.iter().all(|s| *s > 0.9));
/// # Ok::<(), cad3_ml::MlError>(())
/// ```
pub fn cross_validate<M>(
    data: &Dataset,
    k: usize,
    rng: &mut SplitRng,
    fit: impl Fn(&Dataset) -> M,
    score: impl Fn(&M, &Dataset) -> f64,
) -> Vec<f64> {
    kfold_indices(data.len(), k, rng)
        .into_iter()
        .map(|(train_idx, test_idx)| {
            let train = data.subset(&train_idx);
            let test = data.subset(&test_idx);
            let model = fit(&train);
            score(&model, &test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeatureKind, Schema};

    #[test]
    fn folds_partition_everything() {
        let mut rng = SplitRng::seed_from(1);
        let folds = kfold_indices(103, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..103).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            let ts: std::collections::HashSet<_> = test.iter().collect();
            assert!(train.iter().all(|i| !ts.contains(i)), "train/test overlap");
            // Balanced within one element.
            assert!((test.len() as i64 - 103 / 5).abs() <= 1);
        }
    }

    #[test]
    fn cross_validation_runs_k_times() {
        let mut ds = Dataset::new(Schema::new(vec![FeatureKind::Continuous]), 2);
        for i in 0..60 {
            ds.push(vec![i as f64], usize::from(i >= 30)).unwrap();
        }
        let calls = std::cell::Cell::new(0u32);
        let scores = cross_validate(
            &ds,
            4,
            &mut SplitRng::seed_from(2),
            |train| {
                calls.set(calls.get() + 1);
                train.len()
            },
            |train_len, test| (*train_len + test.len()) as f64,
        );
        assert_eq!(calls.get(), 4);
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|&s| s == 60.0));
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_panics() {
        kfold_indices(10, 1, &mut SplitRng::seed_from(1));
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn too_many_folds_panics() {
        kfold_indices(3, 5, &mut SplitRng::seed_from(1));
    }
}

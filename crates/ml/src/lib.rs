//! Lightweight machine-learning substrate — the reproduction's stand-in for
//! Spark MLlib.
//!
//! The paper deliberately uses two simple, explainable classifiers: a Naïve
//! Bayes model per road type for standalone detection (AD3) and a Decision
//! Tree that fuses collaboration features for CAD3. This crate implements
//! both from scratch, plus dataset handling and the evaluation metrics the
//! paper reports (accuracy, F1, TP rate, FN rate).
//!
//! * [`Dataset`] / [`Schema`] / [`FeatureKind`] — feature matrices with
//!   mixed continuous (speed, acceleration) and categorical (hour, road
//!   type) columns.
//! * [`NaiveBayes`] — hybrid Gaussian/categorical NB with Laplace smoothing.
//! * [`DecisionTree`] — CART with Gini impurity.
//! * [`ConfusionMatrix`] — binary metrics.
//! * [`train_test_split`] — the paper's 80/20 split.
//!
//! # Example
//!
//! ```
//! use cad3_ml::{Dataset, FeatureKind, NaiveBayes, Schema};
//!
//! // Two Gaussian blobs on one continuous feature.
//! let schema = Schema::new(vec![FeatureKind::Continuous]);
//! let mut ds = Dataset::new(schema, 2);
//! for i in 0..50 {
//!     ds.push(vec![i as f64 * 0.01], 0)?;
//!     ds.push(vec![10.0 + i as f64 * 0.01], 1)?;
//! }
//! let nb = NaiveBayes::fit(&ds)?;
//! assert_eq!(nb.predict(&[0.2])?, 0);
//! assert_eq!(nb.predict(&[10.3])?, 1);
//! # Ok::<(), cad3_ml::MlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod dataset;
mod decision_tree;
mod error;
mod kfold;
mod logistic;
mod metrics;
mod naive_bayes;
mod split;
mod stats;

pub use batch::{FeatureBatch, LrBatchPlan, NbBatchPlan, TreeBatchPlan};
pub use dataset::{Dataset, FeatureKind, Schema};
pub use decision_tree::{DecisionTree, DecisionTreeParams};
pub use error::MlError;
pub use kfold::{cross_validate, kfold_indices};
pub use logistic::{LogisticParams, LogisticRegression};
pub use metrics::ConfusionMatrix;
pub use naive_bayes::NaiveBayes;
pub use split::{train_test_split, SplitRng};
pub use stats::{gaussian_log_pdf, GaussianStats};

//! Binary logistic regression — the "more complex detection algorithm" the
//! paper leaves as future work, implemented so the CAD3 framework can host
//! it as a drop-in stage-1 model.
//!
//! Continuous features are standardised and paired with a squared term
//! (two-sided anomalies — speeding *and* slowing — are not linearly
//! separable on raw speed); categorical features are one-hot encoded.
//! Training is full-batch gradient descent with L2 regularisation.

use crate::dataset::{Dataset, FeatureKind, Schema};
use crate::MlError;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of logistic-regression training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticParams {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams { epochs: 200, learning_rate: 0.3, l2: 1e-4 }
    }
}

/// A binary logistic-regression classifier over the same mixed
/// continuous/categorical rows as [`crate::NaiveBayes`].
///
/// # Example
///
/// ```
/// use cad3_ml::{Dataset, FeatureKind, LogisticParams, LogisticRegression, Schema};
///
/// let schema = Schema::new(vec![FeatureKind::Continuous]);
/// let mut ds = Dataset::new(schema, 2);
/// for i in 0..40 {
///     ds.push(vec![i as f64], usize::from(i >= 20))?;
/// }
/// let lr = LogisticRegression::fit(&ds, LogisticParams::default())?;
/// assert_eq!(lr.predict(&[5.0])?, 0);
/// assert_eq!(lr.predict(&[35.0])?, 1);
/// # Ok::<(), cad3_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    schema: Schema,
    /// Per input column: mean/std for continuous (one-hot columns use 0/1).
    standardise: Vec<(f64, f64)>,
    /// Expanded design width per input column.
    offsets: Vec<usize>,
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Fits the model.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty dataset,
    /// [`MlError::InvalidLabel`] if the dataset is not binary, and
    /// [`MlError::MissingClass`] when a class has no examples.
    pub fn fit(data: &Dataset, params: LogisticParams) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if data.n_classes() != 2 {
            return Err(MlError::InvalidLabel { label: data.n_classes(), n_classes: 2 });
        }
        let counts = data.class_counts();
        if let Some(class) = counts.iter().position(|&c| c == 0) {
            return Err(MlError::MissingClass { class });
        }

        // Design layout: continuous -> standardised column + squared
        // column; categorical with cardinality k -> k one-hot columns.
        let schema = data.schema().clone();
        let mut offsets = Vec::with_capacity(schema.len());
        let mut width = 0usize;
        for kind in schema.kinds() {
            offsets.push(width);
            width += match kind {
                FeatureKind::Continuous => 2,
                FeatureKind::Categorical { cardinality } => cardinality,
            };
        }
        // Standardisation constants from the training data.
        let n = data.len() as f64;
        let mut standardise = vec![(0.0, 1.0); schema.len()];
        for (f, kind) in schema.kinds().enumerate() {
            if kind == FeatureKind::Continuous {
                let mean = data.iter().map(|(row, _)| row[f]).sum::<f64>() / n;
                let var = data.iter().map(|(row, _)| (row[f] - mean).powi(2)).sum::<f64>() / n;
                standardise[f] = (mean, var.sqrt().max(1e-9));
            }
        }

        let mut model = LogisticRegression {
            schema,
            standardise,
            offsets,
            weights: vec![0.0; width],
            bias: 0.0,
        };
        let designs: Vec<(Vec<(usize, f64)>, f64)> =
            data.iter().map(|(row, label)| (model.design_row(row), label as f64)).collect();

        for _ in 0..params.epochs {
            let mut grad_w = vec![0.0; width];
            let mut grad_b = 0.0;
            for (design, y) in &designs {
                let z = model.bias + design.iter().map(|(i, x)| model.weights[*i] * x).sum::<f64>();
                let err = sigmoid(z) - y;
                for (i, x) in design {
                    grad_w[*i] += err * x;
                }
                grad_b += err;
            }
            let scale = params.learning_rate / n;
            for (w, g) in model.weights.iter_mut().zip(&grad_w) {
                *w -= scale * (g + params.l2 * *w);
            }
            model.bias -= scale * grad_b;
        }
        Ok(model)
    }

    /// Sparse standardised design row: `(column, value)` pairs.
    fn design_row(&self, row: &[f64]) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(row.len());
        for (f, (kind, &x)) in self.schema.kinds().zip(row).enumerate() {
            match kind {
                FeatureKind::Continuous => {
                    let (mean, std) = self.standardise[f];
                    let z = (x - mean) / std;
                    out.push((self.offsets[f], z));
                    // Squared term: lets the linear model carve out a
                    // central "normal" band with abnormal tails.
                    out.push((self.offsets[f] + 1, z * z));
                }
                FeatureKind::Categorical { .. } => {
                    out.push((self.offsets[f] + x as usize, 1.0));
                }
            }
        }
        out
    }

    /// Builds the column-major batch-evaluation plan for this model.
    ///
    /// The plan copies the standardisation constants, design offsets and
    /// weights so evaluation can sweep whole feature columns without the
    /// per-record sparse design row. Outputs are bit-identical to the
    /// scalar path — see [`crate::batch`].
    pub fn batch_plan(&self) -> crate::batch::LrBatchPlan {
        crate::batch::LrBatchPlan {
            schema: self.schema.clone(),
            standardise: self.standardise.clone(),
            offsets: self.offsets.clone(),
            weights: self.weights.clone(),
            bias: self.bias,
        }
    }

    /// Probability of class 1.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] or [`MlError::InvalidCategory`].
    pub fn predict_proba_one(&self, row: &[f64]) -> Result<f64, MlError> {
        self.schema.validate(row)?;
        let z =
            self.bias + self.design_row(row).iter().map(|(i, x)| self.weights[*i] * x).sum::<f64>();
        Ok(sigmoid(z))
    }

    /// Class probabilities `[P(0), P(1)]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogisticRegression::predict_proba_one`].
    pub fn predict_proba(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        let p1 = self.predict_proba_one(row)?;
        Ok(vec![1.0 - p1, p1])
    }

    /// The most probable class.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogisticRegression::predict_proba_one`].
    pub fn predict(&self, row: &[f64]) -> Result<usize, MlError> {
        Ok(usize::from(self.predict_proba_one(row)? >= 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        let schema =
            Schema::new(vec![FeatureKind::Continuous, FeatureKind::Categorical { cardinality: 3 }]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..120 {
            let x = (i % 60) as f64;
            let label = usize::from(x >= 30.0);
            ds.push(vec![x, (i % 3) as f64], label).unwrap();
        }
        ds
    }

    #[test]
    fn separates_linear_data() {
        let lr = LogisticRegression::fit(&separable(), LogisticParams::default()).unwrap();
        assert_eq!(lr.predict(&[5.0, 0.0]).unwrap(), 0);
        assert_eq!(lr.predict(&[55.0, 1.0]).unwrap(), 1);
        let p = lr.predict_proba(&[5.0, 2.0]).unwrap();
        assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
        assert!(p[0] > 0.8, "{p:?}");
    }

    #[test]
    fn categorical_signal_is_used() {
        // Label depends only on the categorical column.
        let schema =
            Schema::new(vec![FeatureKind::Continuous, FeatureKind::Categorical { cardinality: 2 }]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..100 {
            let cat = i % 2;
            ds.push(vec![(i % 10) as f64, cat as f64], cat).unwrap();
        }
        let lr = LogisticRegression::fit(&ds, LogisticParams::default()).unwrap();
        assert_eq!(lr.predict(&[4.0, 0.0]).unwrap(), 0);
        assert_eq!(lr.predict(&[4.0, 1.0]).unwrap(), 1);
    }

    #[test]
    fn rejects_empty_and_one_sided() {
        let schema = Schema::new(vec![FeatureKind::Continuous]);
        let ds = Dataset::new(schema.clone(), 2);
        assert_eq!(
            LogisticRegression::fit(&ds, LogisticParams::default()).unwrap_err(),
            MlError::EmptyDataset
        );
        let mut one_sided = Dataset::new(schema.clone(), 2);
        one_sided.push(vec![1.0], 0).unwrap();
        assert_eq!(
            LogisticRegression::fit(&one_sided, LogisticParams::default()).unwrap_err(),
            MlError::MissingClass { class: 1 }
        );
        let mut three = Dataset::new(schema, 3);
        three.push(vec![1.0], 0).unwrap();
        three.push(vec![2.0], 1).unwrap();
        three.push(vec![3.0], 2).unwrap();
        assert!(LogisticRegression::fit(&three, LogisticParams::default()).is_err());
    }

    #[test]
    fn malformed_rows_rejected() {
        let lr = LogisticRegression::fit(&separable(), LogisticParams::default()).unwrap();
        assert!(lr.predict(&[1.0]).is_err());
        assert!(lr.predict(&[1.0, 9.0]).is_err());
    }

    #[test]
    fn standardisation_handles_large_scales() {
        // Features in the thousands still converge thanks to standardising.
        let schema = Schema::new(vec![FeatureKind::Continuous]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..100 {
            ds.push(vec![10_000.0 + i as f64 * 100.0], usize::from(i >= 50)).unwrap();
        }
        let lr = LogisticRegression::fit(&ds, LogisticParams::default()).unwrap();
        assert_eq!(lr.predict(&[10_100.0]).unwrap(), 0);
        assert_eq!(lr.predict(&[19_900.0]).unwrap(), 1);
    }
}

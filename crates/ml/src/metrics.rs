use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary confusion matrix with a configurable positive class.
///
/// The paper treats *abnormal* (class 0) as the event of interest: its
/// Table IV reports TP rate and FN rate over abnormal records, and Fig. 7
/// reports accuracy and F1. This type computes all of them.
///
/// # Example
///
/// ```
/// use cad3_ml::ConfusionMatrix;
///
/// // positive class = 0 (abnormal), as in the paper.
/// let truth = [0, 0, 1, 1, 0, 1];
/// let pred  = [0, 1, 1, 1, 0, 0];
/// let cm = ConfusionMatrix::from_pairs(truth.iter().copied().zip(pred.iter().copied()), 0);
/// assert_eq!(cm.true_positives(), 2);
/// assert_eq!(cm.false_negatives(), 1);
/// assert_eq!(cm.false_positives(), 1);
/// assert_eq!(cm.true_negatives(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    tp: u64,
    fp: u64,
    tn: u64,
    fn_: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a matrix from `(truth, prediction)` label pairs, counting
    /// `positive_class` as the positive outcome.
    pub fn from_pairs(
        pairs: impl IntoIterator<Item = (usize, usize)>,
        positive_class: usize,
    ) -> Self {
        let mut cm = ConfusionMatrix::new();
        for (truth, pred) in pairs {
            cm.record(truth == positive_class, pred == positive_class);
        }
        cm
    }

    /// Records one observation.
    pub fn record(&mut self, truth_positive: bool, predicted_positive: bool) {
        match (truth_positive, predicted_positive) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Correctly detected positives.
    pub fn true_positives(&self) -> u64 {
        self.tp
    }

    /// Negatives wrongly flagged positive.
    pub fn false_positives(&self) -> u64 {
        self.fp
    }

    /// Correctly passed negatives.
    pub fn true_negatives(&self) -> u64 {
        self.tn
    }

    /// Missed positives — the safety-critical quantity the paper minimises.
    pub fn false_negatives(&self) -> u64 {
        self.fn_
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `(TP + TN) / total`, 0 when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// `TP / (TP + FP)`, 0 when no positive predictions were made.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// `TP / (TP + FN)`, 0 when there were no positives.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall, 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// TP rate over *all* records, `TP / total` — the convention of the
    /// paper's Table IV, whose TP and FN rates are fractions of the full
    /// evaluated stream rather than of the positive class.
    pub fn tp_rate_overall(&self) -> f64 {
        ratio(self.tp, self.total())
    }

    /// FN rate over *all* records, `FN / total` (see
    /// [`ConfusionMatrix::tp_rate_overall`]).
    pub fn fn_rate_overall(&self) -> f64 {
        ratio(self.fn_, self.total())
    }

    /// Miss rate within the positive class, `FN / (TP + FN)`.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.fn_, self.tp + self.fn_)
    }

    /// False-alarm rate within the negative class, `FP / (FP + TN)`.
    pub fn false_alarm_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} acc={:.4} f1={:.4}",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.accuracy(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new();
        for _ in 0..50 {
            cm.record(true, true); // tp
        }
        for _ in 0..10 {
            cm.record(true, false); // fn
        }
        for _ in 0..5 {
            cm.record(false, true); // fp
        }
        for _ in 0..35 {
            cm.record(false, false); // tn
        }
        cm
    }

    #[test]
    fn counts() {
        let cm = sample();
        assert_eq!(cm.true_positives(), 50);
        assert_eq!(cm.false_negatives(), 10);
        assert_eq!(cm.false_positives(), 5);
        assert_eq!(cm.true_negatives(), 35);
        assert_eq!(cm.total(), 100);
    }

    #[test]
    fn derived_metrics() {
        let cm = sample();
        assert!((cm.accuracy() - 0.85).abs() < 1e-12);
        assert!((cm.precision() - 50.0 / 55.0).abs() < 1e-12);
        assert!((cm.recall() - 50.0 / 60.0).abs() < 1e-12);
        let p = 50.0 / 55.0;
        let r = 50.0 / 60.0;
        assert!((cm.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
        assert!((cm.tp_rate_overall() - 0.50).abs() < 1e-12);
        assert!((cm.fn_rate_overall() - 0.10).abs() < 1e-12);
        assert!((cm.miss_rate() - 10.0 / 60.0).abs() < 1e-12);
        assert!((cm.false_alarm_rate() - 5.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_all_zeroes_without_nan() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn from_pairs_with_positive_class_zero() {
        // Paper convention: abnormal = class 0 = positive.
        let truth = [0usize, 0, 1, 1];
        let pred = [0usize, 1, 1, 0];
        let cm = ConfusionMatrix::from_pairs(truth.into_iter().zip(pred), 0);
        assert_eq!(cm.true_positives(), 1); // truth 0, pred 0
        assert_eq!(cm.false_negatives(), 1); // truth 0, pred 1
        assert_eq!(cm.false_positives(), 1); // truth 1, pred 0
        assert_eq!(cm.true_negatives(), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.total(), 200);
        assert_eq!(a.true_positives(), 100);
        assert!((a.accuracy() - 0.85).abs() < 1e-12, "rates invariant under merge");
    }

    #[test]
    fn display_contains_counts() {
        let s = sample().to_string();
        assert!(s.contains("tp=50") && s.contains("f1="));
    }
}

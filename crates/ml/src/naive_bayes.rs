use crate::dataset::{Dataset, FeatureKind, Schema};
use crate::stats::GaussianStats;
use crate::MlError;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum FeatureModel {
    /// Per-class Gaussian (mean, variance).
    Gaussian { mean: f64, var: f64 },
    /// Laplace-smoothed per-class category log-probabilities.
    Categorical { log_probs: Vec<f64> },
}

/// Hybrid Gaussian / categorical Naïve Bayes classifier.
///
/// This is the model each RSU trains per road type in the paper: continuous
/// features (instantaneous speed, acceleration) get per-class Gaussians,
/// categorical features (hour of day, road type) get Laplace-smoothed
/// frequency tables. Prediction is done in log space and returns calibrated
/// class probabilities via log-sum-exp — the `P_NB` of the paper's Eq. 1.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveBayes {
    schema: Schema,
    log_priors: Vec<f64>,
    /// `models[class][feature]`
    models: Vec<Vec<FeatureModel>>,
}

impl NaiveBayes {
    /// Fits the model on a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty dataset and
    /// [`MlError::MissingClass`] if any class has no examples (priors and
    /// Gaussians would be undefined).
    pub fn fit(data: &Dataset) -> Result<NaiveBayes, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let n_classes = data.n_classes();
        let n_features = data.schema().len();
        let counts = data.class_counts();
        if let Some(class) = counts.iter().position(|&c| c == 0) {
            return Err(MlError::MissingClass { class });
        }

        let mut gaussians = vec![vec![GaussianStats::new(); n_features]; n_classes];
        let mut cat_counts: Vec<Vec<Vec<u64>>> = (0..n_classes)
            .map(|_| {
                data.schema()
                    .kinds()
                    .map(|k| match k {
                        FeatureKind::Continuous => Vec::new(),
                        FeatureKind::Categorical { cardinality } => vec![0u64; cardinality],
                    })
                    .collect()
            })
            .collect();

        for (row, label) in data.iter() {
            for (f, &x) in row.iter().enumerate() {
                match data.schema().kind(f) {
                    FeatureKind::Continuous => gaussians[label][f].push(x),
                    FeatureKind::Categorical { .. } => cat_counts[label][f][x as usize] += 1,
                }
            }
        }

        let total = data.len() as f64;
        let log_priors = counts.iter().map(|&c| (c as f64 / total).ln()).collect();
        let models = (0..n_classes)
            .map(|c| {
                (0..n_features)
                    .map(|f| match data.schema().kind(f) {
                        FeatureKind::Continuous => FeatureModel::Gaussian {
                            mean: gaussians[c][f].mean(),
                            var: gaussians[c][f].variance(),
                        },
                        FeatureKind::Categorical { cardinality } => {
                            // Laplace (add-one) smoothing.
                            let class_total = counts[c] as f64 + cardinality as f64;
                            let log_probs = cat_counts[c][f]
                                .iter()
                                .map(|&n| ((n as f64 + 1.0) / class_total).ln())
                                .collect();
                            FeatureModel::Categorical { log_probs }
                        }
                    })
                    .collect()
            })
            .collect();

        Ok(NaiveBayes { schema: data.schema().clone(), log_priors, models })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.log_priors.len()
    }

    /// Joint log-likelihood `log P(class) + Σ log P(x_f | class)` per class.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] or [`MlError::InvalidCategory`]
    /// for malformed rows.
    pub fn log_likelihoods(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        self.schema.validate(row)?;
        Ok(self
            .log_priors
            .iter()
            .enumerate()
            .map(|(c, &lp)| {
                lp + row
                    .iter()
                    .enumerate()
                    // hotpath-exempt(panic): model table is (n_classes x n_features) by
                    // construction and the row passed Schema::validate above.
                    .map(|(f, &x)| match &self.models[c][f] {
                        FeatureModel::Gaussian { mean, var } => {
                            crate::stats::gaussian_log_pdf(x, *mean, *var)
                        }
                        // hotpath-exempt(panic): categorical value range-checked by
                        // Schema::validate against the declared cardinality.
                        FeatureModel::Categorical { log_probs } => log_probs[x as usize],
                    })
                    .sum::<f64>()
            })
            .collect())
    }

    /// Posterior class probabilities (normalised with log-sum-exp).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] or [`MlError::InvalidCategory`].
    pub fn predict_proba(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        let ll = self.log_likelihoods(row)?;
        let max = ll.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = ll.iter().map(|&x| (x - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        Ok(exps.into_iter().map(|e| e / sum).collect())
    }

    /// Builds the column-major batch-evaluation plan for this model.
    ///
    /// The plan carries everything prediction needs in sweep-friendly
    /// tables: per-class log-priors, `(mean, var, ln(2π·var))` per
    /// continuous feature (the `ln` hoisted out of the per-record loop) and
    /// the class-major category log-probability tables. Its outputs are
    /// bit-identical to the scalar path — see [`crate::batch`].
    pub fn batch_plan(&self) -> crate::batch::NbBatchPlan {
        use crate::batch::{NbBatchPlan, NbPlanCol};
        let n_classes = self.log_priors.len();
        let mut cols: Vec<NbPlanCol> = self
            .models
            .first()
            .map(|first_class| {
                first_class
                    .iter()
                    .map(|fm| match fm {
                        FeatureModel::Gaussian { .. } => {
                            NbPlanCol::Gaussian { per_class: Vec::with_capacity(n_classes) }
                        }
                        FeatureModel::Categorical { log_probs } => NbPlanCol::Categorical {
                            cardinality: log_probs.len(),
                            log_probs: Vec::with_capacity(n_classes * log_probs.len()),
                        },
                    })
                    .collect()
            })
            .unwrap_or_default();
        for class_models in &self.models {
            for (col, fm) in cols.iter_mut().zip(class_models) {
                match (col, fm) {
                    (NbPlanCol::Gaussian { per_class }, FeatureModel::Gaussian { mean, var }) => {
                        // The hoisted log-normaliser: the exact expression
                        // `gaussian_log_pdf` evaluates per record, computed
                        // once here on the same input bits.
                        per_class.push((*mean, *var, (2.0 * std::f64::consts::PI * var).ln()));
                    }
                    (
                        NbPlanCol::Categorical { log_probs, .. },
                        FeatureModel::Categorical { log_probs: lp },
                    ) => log_probs.extend_from_slice(lp),
                    // A kind mismatch across classes cannot occur for a
                    // fitted model (fit derives every class's column from
                    // the same schema); skip rather than panic.
                    _ => {}
                }
            }
        }
        NbBatchPlan { schema: self.schema.clone(), log_priors: self.log_priors.clone(), cols }
    }

    /// The most probable class.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] or [`MlError::InvalidCategory`].
    pub fn predict(&self, row: &[f64]) -> Result<usize, MlError> {
        let ll = self.log_likelihoods(row)?;
        // Manual argmax: total and panic-free even for empty or NaN inputs
        // (NaN comparisons are simply never `>`, so the running best stands).
        let mut best = 0usize;
        let mut best_ll = f64::NEG_INFINITY;
        for (i, &x) in ll.iter().enumerate() {
            if x > best_ll {
                best = i;
                best_ll = x;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_dataset() -> Dataset {
        // Class 0 around (0, 0), class 1 around (10, 5); plus a categorical
        // column correlated with the class.
        let schema = Schema::new(vec![
            FeatureKind::Continuous,
            FeatureKind::Continuous,
            FeatureKind::Categorical { cardinality: 3 },
        ]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..100 {
            let jitter = (i % 10) as f64 * 0.1;
            ds.push(vec![jitter, -jitter, (i % 2) as f64], 0).unwrap();
            ds.push(vec![10.0 + jitter, 5.0 - jitter, 2.0], 1).unwrap();
        }
        ds
    }

    #[test]
    fn separable_blobs_classify_perfectly() {
        let nb = NaiveBayes::fit(&blob_dataset()).unwrap();
        assert_eq!(nb.predict(&[0.3, -0.2, 0.0]).unwrap(), 0);
        assert_eq!(nb.predict(&[10.2, 4.8, 2.0]).unwrap(), 1);
    }

    #[test]
    fn probabilities_sum_to_one_and_order_correctly() {
        let nb = NaiveBayes::fit(&blob_dataset()).unwrap();
        let p = nb.predict_proba(&[0.1, 0.0, 0.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > 0.99, "confident on a deep in-class point: {p:?}");
    }

    #[test]
    fn priors_reflect_imbalance() {
        let schema = Schema::new(vec![FeatureKind::Continuous]);
        let mut ds = Dataset::new(schema, 2);
        // Identical feature distributions, 9:1 class imbalance -> posterior
        // follows the prior.
        for i in 0..90 {
            ds.push(vec![(i % 10) as f64], 0).unwrap();
        }
        for i in 0..10 {
            ds.push(vec![(i % 10) as f64], 1).unwrap();
        }
        let nb = NaiveBayes::fit(&ds).unwrap();
        let p = nb.predict_proba(&[5.0]).unwrap();
        assert!(p[0] > 0.7, "prior should dominate: {p:?}");
    }

    #[test]
    fn unseen_category_survives_via_laplace_smoothing() {
        let schema = Schema::new(vec![FeatureKind::Categorical { cardinality: 4 }]);
        let mut ds = Dataset::new(schema, 2);
        for _ in 0..10 {
            ds.push(vec![0.0], 0).unwrap();
            ds.push(vec![1.0], 1).unwrap();
        }
        let nb = NaiveBayes::fit(&ds).unwrap();
        // Category 3 was never seen; probabilities stay finite and uniform.
        let p = nb.predict_proba(&[3.0]).unwrap();
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p[0] - 0.5).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::new(Schema::new(vec![FeatureKind::Continuous]), 2);
        assert_eq!(NaiveBayes::fit(&ds).unwrap_err(), MlError::EmptyDataset);
    }

    #[test]
    fn missing_class_rejected() {
        let mut ds = Dataset::new(Schema::new(vec![FeatureKind::Continuous]), 2);
        ds.push(vec![1.0], 0).unwrap();
        assert_eq!(NaiveBayes::fit(&ds).unwrap_err(), MlError::MissingClass { class: 1 });
    }

    #[test]
    fn malformed_row_rejected_at_predict() {
        let nb = NaiveBayes::fit(&blob_dataset()).unwrap();
        assert!(nb.predict(&[1.0]).is_err());
        assert!(nb.predict_proba(&[0.0, 0.0, 99.0]).is_err());
    }

    #[test]
    fn speeding_scenario_like_paper() {
        // Motorway-link speeds: normal ~N(30, 5), abnormal drawn far out.
        let schema = Schema::new(vec![FeatureKind::Continuous]);
        let mut ds = Dataset::new(schema, 2);
        for i in 0..200 {
            let x = 30.0 + ((i % 21) as f64 - 10.0) / 2.0;
            ds.push(vec![x], 1).unwrap(); // class 1 = normal
        }
        for i in 0..50 {
            ds.push(vec![80.0 + (i % 10) as f64], 0).unwrap(); // speeding
        }
        for i in 0..50 {
            ds.push(vec![2.0 + (i % 5) as f64], 0).unwrap(); // crawling
        }
        let nb = NaiveBayes::fit(&ds).unwrap();
        // A driver at 90 km/h where most drive ~30 is classified abnormal,
        // exactly the paper's Section IV-C example.
        assert_eq!(nb.predict(&[90.0]).unwrap(), 0);
        assert_eq!(nb.predict(&[30.0]).unwrap(), 1);
    }
}

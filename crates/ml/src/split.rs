use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seedable RNG used for reproducible dataset splits.
///
/// A thin newtype so callers don't need a direct `rand` dependency.
#[derive(Debug, Clone)]
pub struct SplitRng(StdRng);

impl SplitRng {
    /// Creates a split RNG from a seed.
    pub fn seed_from(seed: u64) -> Self {
        SplitRng(StdRng::seed_from_u64(seed))
    }

    /// Fisher–Yates shuffle of an index slice.
    pub fn shuffle_indices(&mut self, indices: &mut [usize]) {
        for i in (1..indices.len()).rev() {
            let j = self.0.random_range(0..=i);
            indices.swap(i, j);
        }
    }
}

/// Splits a dataset into `(train, test)` with `train_fraction` of the rows
/// in the training set, shuffled reproducibly — the paper's 80/20 split of
/// the motorway and motorway-link sub-datasets.
///
/// # Panics
///
/// Panics if `train_fraction` is outside `(0, 1)`.
///
/// # Example
///
/// ```
/// use cad3_ml::{train_test_split, Dataset, FeatureKind, Schema, SplitRng};
///
/// let mut ds = Dataset::new(Schema::new(vec![FeatureKind::Continuous]), 2);
/// for i in 0..100 {
///     ds.push(vec![i as f64], i % 2)?;
/// }
/// let (train, test) = train_test_split(&ds, 0.8, &mut SplitRng::seed_from(7));
/// assert_eq!(train.len(), 80);
/// assert_eq!(test.len(), 20);
/// # Ok::<(), cad3_ml::MlError>(())
/// ```
pub fn train_test_split(
    data: &Dataset,
    train_fraction: f64,
    rng: &mut SplitRng,
) -> (Dataset, Dataset) {
    assert!(train_fraction > 0.0 && train_fraction < 1.0, "train fraction must be within (0, 1)");
    let n = data.len();
    let mut indices: Vec<usize> = (0..n).collect();
    rng.shuffle_indices(&mut indices);
    let cut = ((n as f64) * train_fraction).round() as usize;
    let cut = cut.clamp(1, n.saturating_sub(1).max(1));
    (data.subset(&indices[..cut]), data.subset(&indices[cut..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeatureKind, Schema};

    fn dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(Schema::new(vec![FeatureKind::Continuous]), 2);
        for i in 0..n {
            ds.push(vec![i as f64], i % 2).unwrap();
        }
        ds
    }

    #[test]
    fn split_sizes_match_fraction() {
        let ds = dataset(100);
        let (train, test) = train_test_split(&ds, 0.8, &mut SplitRng::seed_from(1));
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }

    #[test]
    fn split_is_a_partition() {
        let ds = dataset(50);
        let (train, test) = train_test_split(&ds, 0.6, &mut SplitRng::seed_from(2));
        let mut values: Vec<i64> =
            train.iter().chain(test.iter()).map(|(row, _)| row[0] as i64).collect();
        values.sort_unstable();
        assert_eq!(values, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn same_seed_same_split() {
        let ds = dataset(40);
        let (a, _) = train_test_split(&ds, 0.5, &mut SplitRng::seed_from(9));
        let (b, _) = train_test_split(&ds, 0.5, &mut SplitRng::seed_from(9));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_split() {
        let ds = dataset(40);
        let (a, _) = train_test_split(&ds, 0.5, &mut SplitRng::seed_from(1));
        let (b, _) = train_test_split(&ds, 0.5, &mut SplitRng::seed_from(2));
        assert_ne!(a, b);
    }

    #[test]
    fn split_shuffles() {
        let ds = dataset(100);
        let (train, _) = train_test_split(&ds, 0.8, &mut SplitRng::seed_from(3));
        let first_ten: Vec<i64> = (0..10).map(|i| train.row(i)[0] as i64).collect();
        assert_ne!(first_ten, (0..10).collect::<Vec<_>>(), "order should be shuffled");
    }

    #[test]
    #[should_panic(expected = "within (0, 1)")]
    fn full_fraction_panics() {
        let ds = dataset(10);
        train_test_split(&ds, 1.0, &mut SplitRng::seed_from(1));
    }
}

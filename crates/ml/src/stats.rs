//! Small statistical primitives shared by the models.

/// Running Gaussian sufficient statistics (count, mean, variance) with a
/// variance floor to keep log-densities finite for constant features.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GaussianStats {
    count: u64,
    mean: f64,
    m2: f64,
}

/// Variance floor applied when a feature is (nearly) constant in a class.
pub(crate) const VAR_FLOOR: f64 = 1e-9;

impl GaussianStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation (Welford update).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance with a small floor.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            VAR_FLOOR
        } else {
            (self.m2 / self.count as f64).max(VAR_FLOOR)
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Log-density of `x` under the fitted Gaussian.
    pub fn log_pdf(&self, x: f64) -> f64 {
        gaussian_log_pdf(x, self.mean(), self.variance())
    }
}

/// Log-density of `x` under `N(mean, var)`.
///
/// # Panics
///
/// Panics if `var` is not strictly positive.
pub fn gaussian_log_pdf(x: f64, mean: f64, var: f64) -> f64 {
    assert!(var > 0.0, "gaussian variance must be positive");
    let d = x - mean;
    -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_closed_form() {
        let mut g = GaussianStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            g.push(x);
        }
        assert_eq!(g.count(), 4);
        assert!((g.mean() - 2.5).abs() < 1e-12);
        assert!((g.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_gets_floor_variance() {
        let mut g = GaussianStats::new();
        for _ in 0..10 {
            g.push(5.0);
        }
        assert_eq!(g.variance(), VAR_FLOOR);
        assert!(g.log_pdf(5.0).is_finite());
    }

    #[test]
    fn log_pdf_peaks_at_mean() {
        let at_mean = gaussian_log_pdf(0.0, 0.0, 1.0);
        let off = gaussian_log_pdf(2.0, 0.0, 1.0);
        assert!(at_mean > off);
        // Standard normal at mean: -0.5 ln(2π) ≈ -0.9189
        assert!((at_mean + 0.9189385).abs() < 1e-6);
    }

    #[test]
    fn log_pdf_integrates_to_one_numerically() {
        let step = 0.01;
        let sum: f64 =
            (-1000..1000).map(|i| (gaussian_log_pdf(i as f64 * step, 0.0, 1.0)).exp() * step).sum();
        assert!((sum - 1.0).abs() < 1e-3, "integral {sum}");
    }

    #[test]
    #[should_panic(expected = "variance must be positive")]
    fn zero_variance_panics() {
        gaussian_log_pdf(0.0, 0.0, 0.0);
    }
}

//! Property-based bit-identity of the batch plans against the scalar
//! per-record paths: for random models and random feature batches, every
//! `*_into` output must match the scalar `predict`/`predict_proba` bit for
//! bit. This is what keeps the byte-stable `results/` artifacts safe when
//! the RSU detect loop runs through the plans.

use cad3_ml::{
    Dataset, DecisionTree, DecisionTreeParams, FeatureBatch, FeatureKind, LogisticParams,
    LogisticRegression, NaiveBayes, Schema,
};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        FeatureKind::Continuous,
        FeatureKind::Continuous,
        FeatureKind::Categorical { cardinality: 5 },
    ])
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec((-100.0f64..100.0, -10.0f64..10.0, 0u8..5, 0usize..2), 20..120).prop_map(
        |rows| {
            let mut ds = Dataset::new(schema(), 2);
            for (i, (a, b, c, label)) in rows.iter().enumerate() {
                // Force both classes to exist so fitting cannot fail.
                let label = if i == 0 {
                    0
                } else if i == 1 {
                    1
                } else {
                    *label
                };
                ds.push(vec![*a, *b, *c as f64], label).unwrap();
            }
            ds
        },
    )
}

/// Random schema-valid probe rows, wider-ranged than the training data so
/// deep distribution tails (extreme log-likelihoods) are exercised too.
fn arb_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((-500.0f64..500.0, -50.0f64..50.0, 0u8..5), 1..80)
        .prop_map(|rows| rows.into_iter().map(|(a, b, c)| vec![a, b, c as f64]).collect())
}

fn batch_of(rows: &[Vec<f64>]) -> FeatureBatch {
    let mut b = FeatureBatch::new(3);
    for r in rows {
        b.push_row(r).unwrap();
    }
    b
}

proptest! {
    /// NB plan outputs are bit-identical to the scalar path.
    #[test]
    fn nb_batch_is_bit_identical(ds in arb_dataset(), rows in arb_rows()) {
        let nb = NaiveBayes::fit(&ds).unwrap();
        let plan = nb.batch_plan();
        let batch = batch_of(&rows);
        let n = rows.len();
        let mut ll = vec![0.0; 2 * n];
        let mut proba = vec![0.0; 2 * n];
        let mut classes = vec![0u32; n];
        plan.predict_proba_into(&batch, &mut ll, &mut proba).unwrap();
        plan.predict_into(&batch, &mut ll, &mut classes).unwrap();
        plan.log_likelihoods_into(&batch, &mut ll).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let s_ll = nb.log_likelihoods(row).unwrap();
            let s_proba = nb.predict_proba(row).unwrap();
            for c in 0..2 {
                prop_assert_eq!(s_ll[c].to_bits(), ll[c * n + r].to_bits());
                prop_assert_eq!(s_proba[c].to_bits(), proba[r * 2 + c].to_bits());
            }
            prop_assert_eq!(nb.predict(row).unwrap() as u32, classes[r]);
        }
    }

    /// Tree plan outputs are bit-identical to the scalar walk, across
    /// hyper-parameters that produce both stumpy and deep trees.
    #[test]
    fn tree_batch_is_bit_identical(
        ds in arb_dataset(),
        rows in arb_rows(),
        max_depth in 0usize..10,
        max_thresholds in 2usize..40,
    ) {
        let params = DecisionTreeParams {
            max_depth,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_thresholds,
        };
        let tree = DecisionTree::fit(&ds, params).unwrap();
        let plan = tree.batch_plan();
        let batch = batch_of(&rows);
        let n = rows.len();
        let mut keys = vec![0u64; 3 * n];
        let mut cur = vec![0u32; n];
        let mut proba = vec![0.0; 2 * n];
        let mut classes = vec![0u32; n];
        plan.predict_proba_into(&batch, &mut keys, &mut cur, &mut proba).unwrap();
        plan.predict_into(&batch, &mut keys, &mut cur, &mut classes).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let s_proba = tree.predict_proba(row).unwrap();
            for c in 0..2 {
                prop_assert_eq!(s_proba[c].to_bits(), proba[r * 2 + c].to_bits());
            }
            prop_assert_eq!(tree.predict(row).unwrap() as u32, classes[r]);
        }
    }

    /// Logistic plan outputs are bit-identical to the scalar path.
    #[test]
    fn lr_batch_is_bit_identical(ds in arb_dataset(), rows in arb_rows()) {
        let lr = LogisticRegression::fit(&ds, LogisticParams::default()).unwrap();
        let plan = lr.batch_plan();
        let batch = batch_of(&rows);
        let n = rows.len();
        let mut p1 = vec![0.0; n];
        let mut proba = vec![0.0; 2 * n];
        let mut classes = vec![0u32; n];
        plan.predict_proba_into(&batch, &mut p1, &mut proba).unwrap();
        plan.predict_into(&batch, &mut p1, &mut classes).unwrap();
        for (r, row) in rows.iter().enumerate() {
            prop_assert_eq!(lr.predict_proba_one(row).unwrap().to_bits(), p1[r].to_bits());
            let s_proba = lr.predict_proba(row).unwrap();
            prop_assert_eq!(s_proba[0].to_bits(), proba[r * 2].to_bits());
            prop_assert_eq!(s_proba[1].to_bits(), proba[r * 2 + 1].to_bits());
            prop_assert_eq!(lr.predict(row).unwrap() as u32, classes[r]);
        }
    }

    /// The ordinal threshold key used by the tree plan decides `x <= t`
    /// exactly as the `f64` compare, including signed zeros, infinities
    /// and NaN probe values (thresholds are never NaN in a fitted tree).
    #[test]
    fn ord_key_decides_splits_exactly(
        x in -1e300f64..1e300,
        t in -1e300f64..1e300,
        special in 0usize..6,
    ) {
        let specials = [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN];
        let x = specials.get(special).copied().unwrap_or(x);
        let scalar_left = x <= t;
        let batch_left = cad3_ml::batch::ord_key(x) <= cad3_ml::batch::ord_key(t);
        prop_assert_eq!(scalar_left, batch_left, "x={}, t={}", x, t);
    }
}

//! Property-based tests of the ML substrate's invariants.

use cad3_ml::{
    ConfusionMatrix, Dataset, DecisionTree, DecisionTreeParams, FeatureKind, NaiveBayes, Schema,
};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // 2 continuous + 1 categorical feature, 2 classes, 20..200 rows with at
    // least one row of each class.
    prop::collection::vec((-100.0f64..100.0, -10.0f64..10.0, 0u8..5, 0usize..2), 20..200).prop_map(
        |rows| {
            let schema = Schema::new(vec![
                FeatureKind::Continuous,
                FeatureKind::Continuous,
                FeatureKind::Categorical { cardinality: 5 },
            ]);
            let mut ds = Dataset::new(schema, 2);
            for (i, (a, b, c, label)) in rows.iter().enumerate() {
                // Force both classes to exist.
                let label = if i == 0 {
                    0
                } else if i == 1 {
                    1
                } else {
                    *label
                };
                ds.push(vec![*a, *b, *c as f64], label).unwrap();
            }
            ds
        },
    )
}

proptest! {
    /// NB posteriors are a probability distribution for every valid row.
    #[test]
    fn nb_posteriors_are_distributions(ds in arb_dataset(), a in -200.0f64..200.0, b in -20.0f64..20.0, c in 0u8..5) {
        let nb = NaiveBayes::fit(&ds).unwrap();
        let p = nb.predict_proba(&[a, b, c as f64]).unwrap();
        prop_assert_eq!(p.len(), 2);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|x| (0.0..=1.0).contains(x) && x.is_finite()));
        // predict agrees with argmax of predict_proba.
        let pred = nb.predict(&[a, b, c as f64]).unwrap();
        let argmax = if p[0] >= p[1] { 0 } else { 1 };
        prop_assert_eq!(pred, argmax);
    }

    /// An unconstrained tree is at least as accurate on its own training
    /// data as the majority class.
    #[test]
    fn tree_beats_majority_on_training_data(ds in arb_dataset()) {
        let params = DecisionTreeParams {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_thresholds: 64,
        };
        let tree = DecisionTree::fit(&ds, params).unwrap();
        let correct = ds
            .iter()
            .filter(|(row, label)| tree.predict(row).unwrap() == *label)
            .count();
        let majority = ds.class_counts().into_iter().max().unwrap();
        prop_assert!(correct >= majority, "correct {} < majority {}", correct, majority);
    }

    /// Tree leaf distributions are valid probabilities.
    #[test]
    fn tree_probas_are_distributions(ds in arb_dataset(), a in -200.0f64..200.0, b in -20.0f64..20.0, c in 0u8..5) {
        let tree = DecisionTree::fit(&ds, DecisionTreeParams::default()).unwrap();
        let p = tree.predict_proba(&[a, b, c as f64]).unwrap();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    /// Confusion-matrix identities hold for arbitrary outcomes.
    #[test]
    fn confusion_matrix_identities(pairs in prop::collection::vec((0usize..2, 0usize..2), 1..500)) {
        let cm = ConfusionMatrix::from_pairs(pairs.iter().copied(), 0);
        prop_assert_eq!(cm.total() as usize, pairs.len());
        // accuracy = (tp + tn)/total
        let acc = (cm.true_positives() + cm.true_negatives()) as f64 / cm.total() as f64;
        prop_assert!((cm.accuracy() - acc).abs() < 1e-12);
        // rates over all records partition: tp + fn = positives
        let positives = pairs.iter().filter(|(t, _)| *t == 0).count() as u64;
        prop_assert_eq!(cm.true_positives() + cm.false_negatives(), positives);
        // f1 and precision/recall bounds
        prop_assert!((0.0..=1.0).contains(&cm.f1()));
        prop_assert!((0.0..=1.0).contains(&cm.precision()));
        prop_assert!((0.0..=1.0).contains(&cm.recall()));
        // Miss rate and recall are complements when positives exist.
        if positives > 0 {
            prop_assert!((cm.miss_rate() + cm.recall() - 1.0).abs() < 1e-12);
        }
    }

    /// Merging confusion matrices equals evaluating the concatenation.
    #[test]
    fn confusion_matrix_merge_is_concat(
        a in prop::collection::vec((0usize..2, 0usize..2), 1..100),
        b in prop::collection::vec((0usize..2, 0usize..2), 1..100),
    ) {
        let mut cm_a = ConfusionMatrix::from_pairs(a.iter().copied(), 0);
        let cm_b = ConfusionMatrix::from_pairs(b.iter().copied(), 0);
        cm_a.merge(&cm_b);
        let cm_all = ConfusionMatrix::from_pairs(a.iter().chain(b.iter()).copied(), 0);
        prop_assert_eq!(cm_a, cm_all);
    }
}

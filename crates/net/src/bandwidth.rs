use cad3_types::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Sliding-window bandwidth accounting used for the Fig. 6c/6d measurements.
///
/// Records `(time, bytes)` events and reports instantaneous (windowed) and
/// long-run average rates.
///
/// # Example
///
/// ```
/// use cad3_net::BandwidthMeter;
/// use cad3_types::{SimDuration, SimTime};
///
/// let mut m = BandwidthMeter::new(SimDuration::from_secs(1));
/// m.record(SimTime::ZERO, 12_500); // 100 kb
/// let rate = m.rate_bps(SimTime::from_millis(500));
/// assert!((rate - 100_000.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthMeter {
    window: SimDuration,
    events: VecDeque<(SimTime, u64)>,
    window_bytes: u64,
    total_bytes: u64,
    first_event: Option<SimTime>,
    last_event: Option<SimTime>,
}

impl BandwidthMeter {
    /// Creates a meter with the given sliding-window length.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "bandwidth window must be positive");
        BandwidthMeter {
            window,
            events: VecDeque::new(),
            window_bytes: 0,
            total_bytes: 0,
            first_event: None,
            last_event: None,
        }
    }

    /// Records `bytes` transferred at `time`.
    pub fn record(&mut self, time: SimTime, bytes: u64) {
        self.events.push_back((time, bytes));
        self.window_bytes += bytes;
        self.total_bytes += bytes;
        self.first_event.get_or_insert(time);
        self.last_event = Some(self.last_event.map_or(time, |t| t.max(time)));
        self.evict(time);
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.saturating_since(SimTime::ZERO);
        while let Some(&(t, b)) = self.events.front() {
            if cutoff > (t - SimTime::ZERO) + self.window {
                self.window_bytes -= b;
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Windowed rate in bits per second, considering events within one
    /// window before `now`.
    pub fn rate_bps(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        self.window_bytes as f64 * 8.0 / self.window.as_secs_f64()
    }

    /// Total bytes recorded over the meter's lifetime.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Long-run average rate between the first and last event (or over
    /// `fallback_span` when fewer than two distinct instants were seen).
    pub fn average_rate_bps(&self, fallback_span: SimDuration) -> f64 {
        let span = match (self.first_event, self.last_event) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => fallback_span,
        };
        if span == SimDuration::ZERO {
            return 0.0;
        }
        self.total_bytes as f64 * 8.0 / span.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_rate_counts_recent_events_only() {
        let mut m = BandwidthMeter::new(SimDuration::from_secs(1));
        m.record(SimTime::ZERO, 1_000);
        m.record(SimTime::from_millis(500), 1_000);
        // Both events inside the window.
        assert!((m.rate_bps(SimTime::from_millis(900)) - 16_000.0).abs() < 1e-9);
        // First event ages out.
        assert!((m.rate_bps(SimTime::from_millis(1_400)) - 8_000.0).abs() < 1e-9);
        // Everything ages out.
        assert_eq!(m.rate_bps(SimTime::from_secs(10)), 0.0);
    }

    #[test]
    fn total_bytes_never_evicted() {
        let mut m = BandwidthMeter::new(SimDuration::from_millis(10));
        for i in 0..100u64 {
            m.record(SimTime::from_millis(i * 100), 200);
        }
        assert_eq!(m.total_bytes(), 20_000);
    }

    #[test]
    fn average_rate_paper_vehicle_load() {
        // One vehicle: 200 B at 10 Hz for 10 s = 16 kb/s payload rate.
        let mut m = BandwidthMeter::new(SimDuration::from_secs(1));
        for i in 0..100u64 {
            m.record(SimTime::from_millis(i * 100), 200);
        }
        let avg = m.average_rate_bps(SimDuration::from_secs(10));
        assert!((avg - 16_161.6).abs() < 10.0, "avg {avg}"); // 9.9 s span
    }

    #[test]
    fn average_rate_single_event_uses_fallback() {
        let mut m = BandwidthMeter::new(SimDuration::from_secs(1));
        m.record(SimTime::from_secs(1), 1_250);
        let avg = m.average_rate_bps(SimDuration::from_secs(10));
        assert!((avg - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let mut m = BandwidthMeter::new(SimDuration::from_secs(1));
        assert_eq!(m.rate_bps(SimTime::from_secs(1)), 0.0);
        assert_eq!(m.average_rate_bps(SimDuration::ZERO), 0.0);
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        BandwidthMeter::new(SimDuration::ZERO);
    }
}

use crate::{BandwidthMeter, HtbShaper, MacModel, Mcs};
use cad3_sim::SimRng;
use cad3_types::{SimDuration, SimTime};

/// Aggregate statistics of a [`DsrcChannel`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelStats {
    /// Packets carried.
    pub packets: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Sum of per-packet access delays, in seconds (for means).
    pub total_access_delay_s: f64,
}

impl ChannelStats {
    /// Mean per-packet access delay.
    pub fn mean_access_delay(&self) -> SimDuration {
        if self.packets == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(self.total_access_delay_s / self.packets as f64)
        }
    }
}

/// The shared vehicle→RSU access channel: an 802.11p CSMA/CA medium with
/// the testbed's HTB shaping layered on top.
///
/// This is the component the paper emulates with netem + its Eq. 5–6
/// analysis. [`DsrcChannel::send`] returns when a packet handed to the
/// radio at `now` arrives at the RSU.
#[derive(Debug)]
pub struct DsrcChannel {
    mac: MacModel,
    mcs: Mcs,
    shaper: HtbShaper,
    contenders: u32,
    update_period: SimDuration,
    meter: BandwidthMeter,
    stats: ChannelStats,
}

impl DsrcChannel {
    /// Creates a channel with the paper's defaults: MCS 3, 27 Mb/s HTB
    /// ceiling with 100 Kb/s assured per vehicle, 10 Hz update period.
    pub fn paper_default(contenders: u32) -> Self {
        DsrcChannel::new(
            MacModel::default(),
            Mcs::MCS3,
            HtbShaper::paper_default(),
            contenders,
            SimDuration::from_millis(100),
        )
    }

    /// Creates a fully customised channel.
    pub fn new(
        mac: MacModel,
        mcs: Mcs,
        shaper: HtbShaper,
        contenders: u32,
        update_period: SimDuration,
    ) -> Self {
        DsrcChannel {
            mac,
            mcs,
            shaper,
            contenders,
            update_period,
            meter: BandwidthMeter::new(SimDuration::from_secs(1)),
            stats: ChannelStats::default(),
        }
    }

    /// Updates the number of stations contending for the medium (vehicles
    /// come and go with handovers).
    pub fn set_contenders(&mut self, contenders: u32) {
        self.contenders = contenders;
    }

    /// Current contender count.
    pub fn contenders(&self) -> u32 {
        self.contenders
    }

    /// Sends `bytes` from `sender` at `now`; returns the arrival time at
    /// the RSU (HTB shaping, then CSMA/CA medium access).
    pub fn send(&mut self, rng: &mut SimRng, sender: u64, now: SimTime, bytes: usize) -> SimTime {
        let shaped = self.shaper.depart(sender, now, bytes);
        let access = self.mac.sample_access_delay(
            rng,
            self.mcs,
            bytes,
            self.contenders.max(1),
            self.update_period,
        );
        let arrival = shaped + access;
        self.meter.record(arrival, bytes as u64);
        self.stats.packets += 1;
        self.stats.bytes += bytes as u64;
        self.stats.total_access_delay_s += access.as_secs_f64();
        arrival
    }

    /// Windowed received bandwidth at `now`, bits per second.
    pub fn rate_bps(&mut self, now: SimTime) -> f64 {
        self.meter.rate_bps(now)
    }

    /// Long-run average received bandwidth.
    pub fn average_rate_bps(&self) -> f64 {
        self.meter.average_rate_bps(self.update_period)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_is_after_send() {
        let mut ch = DsrcChannel::paper_default(8);
        let mut rng = SimRng::seed_from(1);
        let t0 = SimTime::from_millis(5);
        let arrival = ch.send(&mut rng, 1, t0, 200);
        assert!(arrival > t0);
        // A 200 B frame at MCS3 with light contention arrives within ~5 ms.
        assert!((arrival - t0).as_millis_f64() < 5.0, "{arrival}");
    }

    #[test]
    fn contention_increases_mean_delay() {
        let mut rng = SimRng::seed_from(2);
        let mean_delay = |contenders: u32, rng: &mut SimRng| {
            let mut ch = DsrcChannel::paper_default(contenders);
            for step in 0..200u64 {
                let now = SimTime::from_millis(step * 100);
                for v in 0..contenders.min(16) as u64 {
                    ch.send(rng, v, now, 200);
                }
            }
            ch.stats().mean_access_delay().as_micros_f64()
        };
        let low = mean_delay(8, &mut rng);
        let high = mean_delay(256, &mut rng);
        assert!(high > low, "expected contention to raise delay: {low} vs {high}");
    }

    #[test]
    fn stats_account_every_packet() {
        let mut ch = DsrcChannel::paper_default(8);
        let mut rng = SimRng::seed_from(3);
        for i in 0..50u64 {
            ch.send(&mut rng, i % 8, SimTime::from_millis(i * 10), 200);
        }
        assert_eq!(ch.stats().packets, 50);
        assert_eq!(ch.stats().bytes, 10_000);
        assert!(ch.stats().mean_access_delay() > SimDuration::ZERO);
    }

    #[test]
    fn bandwidth_meter_tracks_offered_load() {
        // 256 vehicles × 10 Hz × 200 B ≈ 4.1 Mb/s.
        let mut ch = DsrcChannel::paper_default(256);
        let mut rng = SimRng::seed_from(4);
        for step in 0..100u64 {
            let now = SimTime::from_millis(step * 100);
            for v in 0..256u64 {
                ch.send(&mut rng, v, now, 200);
            }
        }
        let avg = ch.average_rate_bps();
        assert!(avg > 3e6 && avg < 6e6, "avg {avg}");
        // Well under the 27 Mb/s DSRC capacity, as the paper reports.
        assert!(avg < crate::DSRC_BANDWIDTH_BPS / 5.0);
    }

    #[test]
    fn set_contenders_takes_effect() {
        let mut ch = DsrcChannel::paper_default(8);
        ch.set_contenders(128);
        assert_eq!(ch.contenders(), 128);
    }
}

//! DSRC service-channel management — the paper's Section VII-B "high-level
//! management scheme": when RSUs are deployed densely, adjacent nodes must
//! operate on different service channels (SCHs) to avoid interference.
//!
//! The 5.9 GHz DSRC band provides one control channel (CH 178) and six
//! service channels; [`assign_channels`] colours an RSU deployment so that
//! nodes within interference range share a channel as rarely as possible.

use cad3_types::GeoPoint;

/// Number of DSRC service channels (172, 174, 176, 180, 182, 184).
pub const DSRC_SERVICE_CHANNELS: u8 = 6;

/// A channel assignment for a set of RSU sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelPlan {
    /// Channel index per site, `0..n_channels`.
    pub channels: Vec<u8>,
    /// Number of channels available.
    pub n_channels: u8,
}

impl ChannelPlan {
    /// Pairs of sites within `radius_m` of each other that ended up on the
    /// same channel (interference conflicts).
    pub fn conflicts(&self, positions: &[GeoPoint], radius_m: f64) -> Vec<(usize, usize)> {
        assert_eq!(positions.len(), self.channels.len(), "one position per site");
        let mut out = Vec::new();
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                if self.channels[i] == self.channels[j]
                    && positions[i].haversine_m(&positions[j]) <= radius_m
                {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Greedy interference-aware channel assignment: sites are coloured in
/// order; each takes the least-used channel among those not occupied by an
/// already-coloured neighbour within `radius_m` (falling back to the
/// least-conflicting channel when neighbours exhaust the palette).
///
/// With at most `n_channels` mutually-close sites this is conflict-free;
/// denser clusters degrade gracefully to minimum-conflict assignments.
///
/// # Panics
///
/// Panics if `n_channels == 0`.
pub fn assign_channels(positions: &[GeoPoint], radius_m: f64, n_channels: u8) -> ChannelPlan {
    assert!(n_channels > 0, "at least one channel required");
    let mut channels: Vec<u8> = Vec::with_capacity(positions.len());
    for (i, p) in positions.iter().enumerate() {
        // Channels used by already-assigned neighbours.
        let mut neighbour_use = vec![0u32; n_channels as usize];
        for j in 0..i {
            if positions[j].haversine_m(p) <= radius_m {
                neighbour_use[channels[j] as usize] += 1;
            }
        }
        let best = (0..n_channels)
            .min_by_key(|&c| (neighbour_use[c as usize], c))
            .expect("n_channels > 0");
        channels.push(best);
    }
    ChannelPlan { channels, n_channels }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing_m: f64) -> Vec<GeoPoint> {
        let origin = GeoPoint::new(114.0, 22.5);
        (0..n).map(|i| origin.destination(90.0, spacing_m * i as f64)).collect()
    }

    #[test]
    fn sparse_sites_share_no_interference() {
        // 2 km spacing, 500 m interference radius: everyone can use the
        // first channel.
        let positions = line(10, 2_000.0);
        let plan = assign_channels(&positions, 500.0, DSRC_SERVICE_CHANNELS);
        assert!(plan.conflicts(&positions, 500.0).is_empty());
        assert!(plan.channels.iter().all(|&c| c == 0));
    }

    #[test]
    fn dense_line_alternates_channels() {
        // 200 m spacing, 300 m radius: neighbours must differ.
        let positions = line(12, 200.0);
        let plan = assign_channels(&positions, 300.0, DSRC_SERVICE_CHANNELS);
        assert!(plan.conflicts(&positions, 300.0).is_empty());
        for w in plan.channels.windows(2) {
            assert_ne!(w[0], w[1], "adjacent sites share a channel");
        }
    }

    #[test]
    fn small_clique_is_conflict_free() {
        // Six sites all within range of each other: exactly the palette.
        let positions = line(6, 50.0);
        let plan = assign_channels(&positions, 10_000.0, DSRC_SERVICE_CHANNELS);
        assert!(plan.conflicts(&positions, 10_000.0).is_empty());
        let mut used = plan.channels.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 6, "all six channels used");
    }

    #[test]
    fn oversubscribed_clique_minimises_conflicts() {
        // Nine mutually-close sites with six channels: 3 unavoidable
        // conflicts, no more.
        let positions = line(9, 10.0);
        let plan = assign_channels(&positions, 10_000.0, DSRC_SERVICE_CHANNELS);
        let conflicts = plan.conflicts(&positions, 10_000.0);
        assert_eq!(conflicts.len(), 3, "got {conflicts:?}");
    }

    #[test]
    fn more_channels_never_hurt() {
        let positions = line(20, 150.0);
        let few = assign_channels(&positions, 400.0, 2);
        let many = assign_channels(&positions, 400.0, 6);
        assert!(many.conflicts(&positions, 400.0).len() <= few.conflicts(&positions, 400.0).len());
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        assign_channels(&line(2, 100.0), 100.0, 0);
    }
}

//! Token-bucket traffic shaping with `tc htb` semantics.
//!
//! The paper's testbed marks each producer's packets with iptables and uses
//! netem's hierarchy token bucket to give every vehicle an assured
//! 100 Kb/s share of a 27 Mb/s DSRC ceiling. [`HtbShaper`] reproduces that
//! setup: leaves accumulate tokens at their assured rate and may borrow
//! from the shared root up to the ceiling.

use cad3_types::{SimDuration, SimTime};
use std::collections::HashMap;

/// A single token bucket / rate limiter.
///
/// Tokens accrue at `rate_bps` up to `burst_bits`; a send consumes
/// `8 × bytes` tokens and, if the bucket runs dry, the departure time is
/// pushed back until the deficit is refilled. Long-run throughput therefore
/// never exceeds the configured rate.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate_bps: f64,
    burst_bits: f64,
    tokens: f64,
    last_update: SimTime,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` or `burst_bits` is not strictly positive.
    pub fn new(rate_bps: f64, burst_bits: f64) -> Self {
        assert!(rate_bps > 0.0, "token bucket rate must be positive");
        assert!(burst_bits > 0.0, "token bucket burst must be positive");
        TokenBucket { rate_bps, burst_bits, tokens: burst_bits, last_update: SimTime::ZERO }
    }

    /// The configured rate in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_update {
            let dt = (now - self.last_update).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate_bps).min(self.burst_bits);
            self.last_update = now;
        }
    }

    /// Current token count at `now`, in bits.
    pub fn available_bits(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens.max(0.0)
    }

    /// Consumes tokens for a `bytes`-sized packet arriving at `now` and
    /// returns its earliest conforming departure time.
    ///
    /// The bucket is allowed to go into deficit; the departure is delayed
    /// until the deficit would be repaid, which yields exact long-run rate
    /// conservation.
    pub fn depart(&mut self, now: SimTime, bytes: usize) -> SimTime {
        self.refill(now);
        let need = (bytes * 8) as f64;
        self.tokens -= need;
        if self.tokens >= 0.0 {
            now
        } else {
            let wait_s = -self.tokens / self.rate_bps;
            now + SimDuration::from_secs_f64(wait_s)
        }
    }
}

/// A two-level hierarchical token bucket: one shared root and one leaf per
/// sender, mirroring the paper's netem configuration (assured 100 Kb/s per
/// vehicle, 27 Mb/s shared ceiling).
///
/// Departure time of a packet is the later of its root-conforming time and,
/// when the root is oversubscribed, its leaf-assured time — so every leaf
/// always receives at least its assured rate and the aggregate never
/// exceeds the ceiling.
#[derive(Debug)]
pub struct HtbShaper {
    root: TokenBucket,
    assured_rate_bps: f64,
    leaf_burst_bits: f64,
    leaves: HashMap<u64, TokenBucket>,
    total_bytes: u64,
}

impl HtbShaper {
    /// Creates a shaper with the given shared ceiling and per-leaf assured
    /// rate. Burst sizes default to 20 ms of the respective rate (min one
    /// 1500 B MTU).
    ///
    /// # Panics
    ///
    /// Panics if either rate is not strictly positive.
    pub fn new(ceiling_bps: f64, assured_rate_bps: f64) -> Self {
        let root_burst = (ceiling_bps * 0.02).max(1500.0 * 8.0);
        let leaf_burst = (assured_rate_bps * 0.02).max(1500.0 * 8.0);
        HtbShaper {
            root: TokenBucket::new(ceiling_bps, root_burst),
            assured_rate_bps,
            leaf_burst_bits: leaf_burst,
            leaves: HashMap::new(),
            total_bytes: 0,
        }
    }

    /// The paper's configuration: 27 Mb/s ceiling, 100 Kb/s assured.
    pub fn paper_default() -> Self {
        HtbShaper::new(crate::DSRC_BANDWIDTH_BPS, 100_000.0)
    }

    /// Number of leaves seen so far.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Total bytes shaped so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Shapes a `bytes`-sized packet from `sender` arriving at `now`;
    /// returns its departure time.
    pub fn depart(&mut self, sender: u64, now: SimTime, bytes: usize) -> SimTime {
        let assured = self.assured_rate_bps;
        let burst = self.leaf_burst_bits;
        let leaf = self.leaves.entry(sender).or_insert_with(|| TokenBucket::new(assured, burst));
        self.total_bytes += bytes as u64;

        // htb semantics: a packet covered by the leaf's own tokens is
        // conforming and consumes them; otherwise the leaf borrows from the
        // root. Either way the shared root ceiling governs the departure
        // time, so the aggregate never exceeds the ceiling while an idle
        // network lets any single leaf burst up to it. Under saturation the
        // root's FIFO sharing degrades symmetric leaves toward equal (and
        // hence at least assured) shares.
        let need = (bytes * 8) as f64;
        if leaf.available_bits(now) >= need {
            let _ = leaf.depart(now, bytes);
        }
        self.root.depart(now, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: f64 = 1_000.0;
    const MB: f64 = 1_000_000.0;

    #[test]
    fn bucket_burst_then_rate_limits() {
        // 8 kb/s bucket with 8 kb burst: the first 1000 B packet passes
        // immediately, the second must wait a full second.
        let mut b = TokenBucket::new(8.0 * KB, 8.0 * KB);
        let t0 = SimTime::ZERO;
        assert_eq!(b.depart(t0, 1000), t0);
        let d2 = b.depart(t0, 1000);
        assert!((d2.as_secs_f64() - 1.0).abs() < 1e-9, "{d2}");
    }

    #[test]
    fn bucket_long_run_rate_is_exact() {
        let mut b = TokenBucket::new(1.0 * MB, 10_000.0);
        let mut now = SimTime::ZERO;
        let n = 1000;
        for _ in 0..n {
            now = b.depart(now, 1250); // 10 kb each
        }
        // 1000 × 10 kb = 10 Mb at 1 Mb/s ≈ 10 s (minus the initial burst).
        let elapsed = now.as_secs_f64();
        assert!((elapsed - 10.0).abs() < 0.1, "elapsed {elapsed}");
    }

    #[test]
    fn bucket_refills_up_to_burst_only() {
        let mut b = TokenBucket::new(1.0 * MB, 8000.0);
        assert_eq!(b.available_bits(SimTime::ZERO), 8000.0);
        let _ = b.depart(SimTime::ZERO, 1000); // drain
                                               // After a long idle period the bucket holds exactly one burst.
        assert_eq!(b.available_bits(SimTime::from_secs(100)), 8000.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        TokenBucket::new(0.0, 100.0);
    }

    #[test]
    fn htb_single_leaf_can_borrow_up_to_ceiling() {
        // One vehicle alone: 27 Mb/s ceiling, 100 Kb/s assured. Sending
        // 1 MB should take ≈ 8 Mb / 27 Mb/s ≈ 0.3 s, not 80 s.
        let mut htb = HtbShaper::paper_default();
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            now = htb.depart(1, now, 1000);
        }
        let elapsed = now.as_secs_f64();
        assert!(elapsed < 0.5, "borrowing should allow ceiling rate, took {elapsed}s");
        assert!(elapsed > 0.2, "but not exceed the ceiling, took {elapsed}s");
    }

    #[test]
    fn htb_aggregate_never_exceeds_ceiling() {
        let mut htb = HtbShaper::new(1.0 * MB, 100.0 * KB);
        let mut last = SimTime::ZERO;
        // Five leaves each pushing hard.
        for round in 0..200u64 {
            for leaf in 0..5u64 {
                let t = htb.depart(leaf, SimTime::ZERO, 1250);
                last = last.max(t);
                let _ = round;
            }
        }
        // 1000 packets × 10 kb = 10 Mb at a 1 Mb/s ceiling ⇒ ≥ ~9.8 s.
        assert!(last.as_secs_f64() > 9.5, "ceiling violated: {last}");
    }

    #[test]
    fn htb_paper_load_is_unshaped() {
        // 256 vehicles at 10 Hz × 200 B = ~4.1 Mb/s aggregate, well under
        // the 27 Mb/s ceiling; packets should depart without delay.
        let mut htb = HtbShaper::paper_default();
        let mut delayed = 0;
        for step in 0..50u64 {
            let now = SimTime::from_millis(step * 100);
            for v in 0..256u64 {
                if htb.depart(v, now, 200) > now {
                    delayed += 1;
                }
            }
        }
        assert_eq!(delayed, 0, "paper's nominal load must pass unshaped");
        assert_eq!(htb.leaf_count(), 256);
        assert_eq!(htb.total_bytes(), 50 * 256 * 200);
    }

    #[test]
    fn htb_assured_rate_survives_contention() {
        // Root 1 Mb/s, assured 100 Kb/s, 10 leaves: each leaf's long-run
        // share is its assured rate.
        let mut htb = HtbShaper::new(1.0 * MB, 100.0 * KB);
        let mut leaf_last = [SimTime::ZERO; 10];
        for _ in 0..100 {
            for (leaf, last) in leaf_last.iter_mut().enumerate() {
                *last = htb.depart(leaf as u64, SimTime::ZERO, 1250);
            }
        }
        // Each leaf moved 100 × 10 kb = 1 Mb; at 100 Kb/s that is ~10 s.
        for (leaf, last) in leaf_last.iter().enumerate() {
            let s = last.as_secs_f64();
            assert!(s > 8.0 && s < 12.0, "leaf {leaf} finished at {s}s");
        }
    }
}

//! Network substrate of the CAD3 reproduction.
//!
//! The paper's testbed emulates a DSRC access network with `tc`/netem: a
//! hierarchical token bucket caps each producer at a minimum of 100 Kb/s
//! inside a shared 27 Mb/s ceiling, and an analytic IEEE 802.11p CSMA/CA
//! model (the paper's Eq. 5–6) accounts for medium access. This crate
//! implements all of those pieces natively:
//!
//! * [`Mcs`] — the 802.11p (10 MHz) modulation-and-coding table, numbered
//!   1–8 the way the paper numbers it (MCS 8 = 64-QAM 3/4 = 27 Mb/s).
//! * [`MacParams`] / [`MacModel`] — frame airtime and the Eq. 5–6 medium
//!   access time, plus stochastic per-packet access delays for simulation.
//! * [`TokenBucket`] / [`HtbShaper`] — `tc htb` semantics: per-leaf assured
//!   rate with borrowing against a shared root ceiling.
//! * [`WiredLink`] — serialization + propagation delay for RSU↔RSU links.
//! * [`DsrcChannel`] — the composed vehicle→RSU access channel.
//! * [`BandwidthMeter`] — windowed bandwidth accounting for Fig. 6c/6d.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod channel;
pub mod channels;
mod htb;
mod link;
mod mac;
mod mcs;

pub use bandwidth::BandwidthMeter;
pub use channel::{ChannelStats, DsrcChannel};
pub use channels::{assign_channels, ChannelPlan, DSRC_SERVICE_CHANNELS};
pub use htb::{HtbShaper, TokenBucket};
pub use link::WiredLink;
pub use mac::{MacModel, MacParams};
pub use mcs::{Mcs, Modulation};

/// Shared DSRC channel capacity assumed throughout the paper: 27 Mb/s.
pub const DSRC_BANDWIDTH_BPS: f64 = 27_000_000.0;

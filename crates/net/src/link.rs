use cad3_types::{SimDuration, SimTime};

/// A point-to-point wired link with serialization and propagation delay and
/// FIFO queueing — the 1 Gb/s Ethernet (or LTE/5G backhaul) connecting
/// adjacent RSUs in the paper's testbed.
///
/// # Example
///
/// ```
/// use cad3_net::WiredLink;
/// use cad3_types::{SimDuration, SimTime};
///
/// let mut link = WiredLink::gigabit_ethernet();
/// let arrival = link.transmit(SimTime::ZERO, 1500);
/// assert!(arrival > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WiredLink {
    bandwidth_bps: f64,
    propagation: SimDuration,
    next_free: SimTime,
    bytes_carried: u64,
}

impl WiredLink {
    /// Creates a link with the given bandwidth and one-way propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive.
    pub fn new(bandwidth_bps: f64, propagation: SimDuration) -> Self {
        assert!(bandwidth_bps > 0.0, "link bandwidth must be positive");
        WiredLink { bandwidth_bps, propagation, next_free: SimTime::ZERO, bytes_carried: 0 }
    }

    /// The testbed's RSU interconnect: 1 Gb/s with 100 µs propagation.
    pub fn gigabit_ethernet() -> Self {
        WiredLink::new(1e9, SimDuration::from_micros(100))
    }

    /// A cellular (LTE/5G) backhaul alternative for distant RSUs: 50 Mb/s
    /// with 10 ms one-way latency, per the paper's deployment discussion.
    pub fn cellular_backhaul() -> Self {
        WiredLink::new(50e6, SimDuration::from_millis(10))
    }

    /// Link bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// Total bytes carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Enqueues a `bytes`-sized frame at `now` and returns its arrival time
    /// at the far end (serialization behind earlier frames + propagation).
    pub fn transmit(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let start = now.max(self.next_free);
        // Saturating: a degenerate bandwidth config yields an unreachable
        // arrival time instead of a panic on the transmit path.
        let ser = SimDuration::saturating_from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps);
        self.next_free = start + ser;
        self.bytes_carried += bytes as u64;
        if cad3_obs::enabled() {
            cad3_obs::counter!("net.link.bytes").add(cad3_types::len_u64(bytes));
            cad3_obs::counter!("net.link.frames").inc();
        }
        self.next_free + self.propagation
    }

    /// [`WiredLink::transmit`], attributing the transfer to an active
    /// distributed trace: emits a `net.link.tx` span covering `now` to
    /// arrival (its value is the FIFO queueing share, in nanoseconds) and
    /// returns the context the far end should continue with, re-parented
    /// under the link span with the hop count bumped. The link is shared
    /// infrastructure, so the span's node id is the `u32::MAX` sentinel.
    pub fn transmit_traced(
        &mut self,
        now: SimTime,
        bytes: usize,
        trace: Option<cad3_obs::TraceContext>,
    ) -> (SimTime, Option<cad3_obs::TraceContext>) {
        let queued_until = now.max(self.next_free);
        let arrival = self.transmit(now, bytes);
        let continued = trace.map(|ctx| {
            let queue_ns = queued_until.saturating_since(now).as_nanos();
            let span = cad3_obs::trace_span!(
                "net.link.tx",
                &ctx,
                now.as_nanos(),
                arrival.as_nanos(),
                u32::MAX,
                queue_ns
            );
            ctx.next_hop(span)
        });
        (arrival, continued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_delay_is_serialization_plus_propagation() {
        let mut link = WiredLink::new(1e6, SimDuration::from_millis(1));
        // 1250 B = 10 kb at 1 Mb/s = 10 ms serialization + 1 ms propagation.
        let arrival = link.transmit(SimTime::ZERO, 1250);
        assert!((arrival.as_millis_f64() - 11.0).abs() < 1e-9, "{arrival}");
    }

    #[test]
    fn frames_queue_fifo() {
        let mut link = WiredLink::new(1e6, SimDuration::ZERO);
        let a1 = link.transmit(SimTime::ZERO, 1250);
        let a2 = link.transmit(SimTime::ZERO, 1250);
        assert!((a1.as_millis_f64() - 10.0).abs() < 1e-9);
        assert!((a2.as_millis_f64() - 20.0).abs() < 1e-9, "second frame queues: {a2}");
    }

    #[test]
    fn idle_link_does_not_accumulate_capacity_debt() {
        let mut link = WiredLink::new(1e6, SimDuration::ZERO);
        let _ = link.transmit(SimTime::ZERO, 1250);
        // A frame sent much later starts fresh.
        let late = link.transmit(SimTime::from_secs(5), 1250);
        assert!((late.as_secs_f64() - 5.01).abs() < 1e-9, "{late}");
    }

    #[test]
    fn gigabit_is_fast() {
        let mut link = WiredLink::gigabit_ethernet();
        let arrival = link.transmit(SimTime::ZERO, 200);
        // 1.6 kb at 1 Gb/s = 1.6 µs + 100 µs propagation.
        assert!(arrival.as_millis_f64() < 0.110, "{arrival}");
        assert_eq!(link.bytes_carried(), 200);
    }

    #[test]
    fn cellular_has_higher_latency() {
        let mut eth = WiredLink::gigabit_ethernet();
        let mut cell = WiredLink::cellular_backhaul();
        assert!(cell.transmit(SimTime::ZERO, 200) > eth.transmit(SimTime::ZERO, 200));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        WiredLink::new(0.0, SimDuration::ZERO);
    }

    #[test]
    fn traced_transmit_matches_untraced_and_advances_the_context() {
        let mut plain = WiredLink::new(1e6, SimDuration::from_millis(1));
        let mut traced = WiredLink::new(1e6, SimDuration::from_millis(1));
        let expected = plain.transmit(SimTime::ZERO, 1250);
        let ctx = cad3_obs::TraceContext::from_parts(11, 3, 0);
        let (arrival, continued) = traced.transmit_traced(SimTime::ZERO, 1250, Some(ctx));
        assert_eq!(arrival, expected, "tracing must not perturb link timing");
        let continued = continued.expect("context continues across the link");
        assert_eq!(continued.trace_id(), 11);
        assert_eq!(continued.hop(), 1, "crossing the link bumps the hop count");
        assert_ne!(continued.parent_span(), 3, "re-parented under the link span");
        let events: Vec<_> =
            cad3_obs::trace::sink().drain().into_iter().filter(|e| e.trace_id == 11).collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "net.link.tx");
        assert_eq!(events[0].end_ns, arrival.as_nanos());
        assert_eq!(events[0].span, continued.parent_span());
        // Untraced records pass through without emitting anything.
        let (a2, none) = traced.transmit_traced(SimTime::ZERO, 1250, None);
        assert!(none.is_none());
        assert!(a2 > arrival);
    }
}

use crate::Mcs;
use cad3_sim::SimRng;
use cad3_types::SimDuration;

/// IEEE 802.11p MAC/PHY timing parameters.
///
/// Defaults are the values the paper uses for its Eq. 5–6 analysis:
/// `t_slot = 9 µs`, `SIFS = 16 µs`, `cw_max = 255`, collision probability
/// `p_c ≤ 0.03`, plus the 10 MHz OFDM PHY framing constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacParams {
    /// Slot time in microseconds (9 µs in the paper).
    pub slot_us: f64,
    /// Short inter-frame space in microseconds (16 µs in the paper).
    pub sifs_us: f64,
    /// Maximum contention window (255 in the paper).
    pub cw_max: u32,
    /// Minimum contention window (802.11p CW_min = 15).
    pub cw_min: u32,
    /// Collision probability, proportional to vehicle density
    /// (≤ 0.03 in the paper).
    pub collision_probability: f64,
    /// PHY preamble + SIGNAL duration in microseconds (32 + 8 for 10 MHz).
    pub preamble_us: f64,
    /// OFDM symbol duration in microseconds (8 µs for 10 MHz).
    pub symbol_us: f64,
    /// MAC header + FCS overhead added to each payload, in bytes.
    pub mac_overhead_bytes: u32,
    /// PHY SERVICE field bits prepended to the PSDU.
    pub service_bits: u32,
    /// PHY tail bits appended to the PSDU.
    pub tail_bits: u32,
}

impl Default for MacParams {
    fn default() -> Self {
        MacParams {
            slot_us: 9.0,
            sifs_us: 16.0,
            cw_max: 255,
            cw_min: 15,
            collision_probability: 0.03,
            preamble_us: 40.0,
            symbol_us: 8.0,
            mac_overhead_bytes: 28,
            service_bits: 16,
            tail_bits: 6,
        }
    }
}

impl MacParams {
    /// DIFS duration: `SIFS + 2·t_slot` (the paper's Eq. 6).
    pub fn difs_us(&self) -> f64 {
        self.sifs_us + 2.0 * self.slot_us
    }

    /// Expected worst-case backoff `p_c · cw_max · t_slot` (the paper's
    /// Eq. 6).
    pub fn expected_backoff_us(&self) -> f64 {
        self.collision_probability * self.cw_max as f64 * self.slot_us
    }
}

/// Analytic + stochastic model of 802.11p medium access.
///
/// The analytic side reproduces the paper's Eq. 5–6 (time for `n` vehicles
/// to each get one packet through a shared channel); the stochastic side
/// draws per-packet access delays for the discrete-event simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MacModel {
    params: MacParams,
}

impl MacModel {
    /// Creates a model with the given parameters.
    pub fn new(params: MacParams) -> Self {
        MacModel { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &MacParams {
        &self.params
    }

    /// Airtime of one frame carrying `payload_bytes` at the given MCS,
    /// including preamble, PHY framing and MAC overhead.
    pub fn frame_airtime(&self, mcs: Mcs, payload_bytes: usize) -> SimDuration {
        let p = &self.params;
        let psdu_bytes = payload_bytes as u32 + p.mac_overhead_bytes;
        let bits = p.service_bits + 8 * psdu_bytes + p.tail_bits;
        let symbols = bits.div_ceil(mcs.bits_per_symbol());
        let us = p.preamble_us + symbols as f64 * p.symbol_us;
        SimDuration::from_nanos((us * 1_000.0).round() as u64)
    }

    /// The paper's Eq. 5: time for `num_vehicles` stations to each transmit
    /// one `payload_bytes` packet through the shared medium,
    /// `t_v = t_backoff + n · (DIFS + t_pkt)`.
    pub fn medium_access_time(
        &self,
        num_vehicles: u32,
        mcs: Mcs,
        payload_bytes: usize,
    ) -> SimDuration {
        let p = &self.params;
        let per_pkt_us = p.difs_us() + self.frame_airtime(mcs, payload_bytes).as_micros_f64();
        let total_us = p.expected_backoff_us() + num_vehicles as f64 * per_pkt_us;
        SimDuration::from_nanos((total_us * 1_000.0).round() as u64)
    }

    /// Whether `num_vehicles` stations can all send one packet per update
    /// period without sender-side queue build-up (the paper checks
    /// 256 vehicles at a 10 Hz / 100 ms update rate).
    pub fn supports_update_rate(
        &self,
        num_vehicles: u32,
        mcs: Mcs,
        payload_bytes: usize,
        update_period: SimDuration,
    ) -> bool {
        self.medium_access_time(num_vehicles, mcs, payload_bytes) <= update_period
    }

    /// Channel utilisation induced by `num_vehicles` stations each sending
    /// `payload_bytes` every `update_period`, in `[0, ∞)`.
    pub fn utilization(
        &self,
        num_vehicles: u32,
        mcs: Mcs,
        payload_bytes: usize,
        update_period: SimDuration,
    ) -> f64 {
        let busy = self.frame_airtime(mcs, payload_bytes).as_secs_f64() * num_vehicles as f64;
        busy / update_period.as_secs_f64()
    }

    /// Draws a per-packet medium-access delay (DIFS + random backoff +
    /// contention wait + airtime) for a channel shared by `contenders`
    /// stations updating every `update_period`.
    ///
    /// The contention wait grows with utilisation (an M/D/1-style
    /// `ρ/(1-ρ)` factor of the frame airtime), which is what produces the
    /// gentle latency growth from 8 to 256 vehicles in Fig. 6a.
    pub fn sample_access_delay(
        &self,
        rng: &mut SimRng,
        mcs: Mcs,
        payload_bytes: usize,
        contenders: u32,
        update_period: SimDuration,
    ) -> SimDuration {
        let p = &self.params;
        let airtime = self.frame_airtime(mcs, payload_bytes);
        // Uniform backoff over the initial contention window, escalating
        // with collision probability toward cw_max.
        let cw = if rng.chance(p.collision_probability) { p.cw_max } else { p.cw_min };
        let backoff_slots = rng.index(cw as usize + 1) as f64;
        let backoff_us = backoff_slots * p.slot_us;
        // Expected wait for the channel to clear other stations' frames.
        let rho = self
            .utilization(contenders.saturating_sub(1), mcs, payload_bytes, update_period)
            .min(0.95);
        let queue_wait_us = if rho > 0.0 {
            rng.exponential(1.0 / (airtime.as_micros_f64() * rho / (1.0 - rho) + 1e-9))
        } else {
            0.0
        };
        let total_us = p.difs_us() + backoff_us + queue_wait_us + airtime.as_micros_f64();
        SimDuration::from_nanos((total_us * 1_000.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad3_types::SimDuration;

    #[test]
    fn difs_and_backoff_match_paper_constants() {
        let p = MacParams::default();
        assert!((p.difs_us() - 34.0).abs() < 1e-12);
        // p_c · cw_max · t_slot = 0.03 · 255 · 9 = 68.85 µs
        assert!((p.expected_backoff_us() - 68.85).abs() < 1e-9);
    }

    #[test]
    fn airtime_mcs3_vs_mcs8() {
        let mac = MacModel::default();
        let a3 = mac.frame_airtime(Mcs::MCS3, 200);
        let a8 = mac.frame_airtime(Mcs::MCS8, 200);
        assert!(a3 > a8, "lower rate must take longer: {a3} vs {a8}");
        // 200 B payload + 28 B MAC = 1846 PHY bits -> 39 symbols at MCS3.
        assert!((a3.as_micros_f64() - (40.0 + 39.0 * 8.0)).abs() < 0.5, "{a3}");
        // -> 9 symbols at MCS8.
        assert!((a8.as_micros_f64() - (40.0 + 9.0 * 8.0)).abs() < 0.5, "{a8}");
    }

    #[test]
    fn eq5_total_time_has_paper_magnitude() {
        // The paper reports 92.62 ms (MCS 3) and 54.28 ms (MCS 8) for 256
        // vehicles × 200 B. Exact PHY overhead assumptions are not given, so
        // we assert the magnitude and ordering rather than the digits: both
        // in the tens of milliseconds, MCS8 < MCS3 < 256·update-period.
        let mac = MacModel::default();
        let t3 = mac.medium_access_time(256, Mcs::MCS3, 200);
        let t8 = mac.medium_access_time(256, Mcs::MCS8, 200);
        assert!(t3.as_millis_f64() > 60.0 && t3.as_millis_f64() < 120.0, "{t3}");
        assert!(t8.as_millis_f64() > 20.0 && t8.as_millis_f64() < 60.0, "{t8}");
        assert!(t8 < t3);
    }

    #[test]
    fn eq5_scales_linearly_in_vehicles() {
        let mac = MacModel::default();
        let t128 = mac.medium_access_time(128, Mcs::MCS3, 200);
        let t256 = mac.medium_access_time(256, Mcs::MCS3, 200);
        let backoff = SimDuration::from_nanos(68_850);
        let per128 = (t128 - backoff).as_micros_f64();
        let per256 = (t256 - backoff).as_micros_f64();
        assert!((per256 / per128 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_conclusion_256_vehicles_at_10hz_fit() {
        // "it is thus possible for 256 vehicles to send at 10 Hz" — with the
        // robust MCS3 the access time must stay under the 100 ms period.
        let mac = MacModel::default();
        assert!(mac.supports_update_rate(256, Mcs::MCS3, 200, SimDuration::from_millis(100)));
        assert!(mac.supports_update_rate(256, Mcs::MCS8, 200, SimDuration::from_millis(100)));
        // But 1024 vehicles would not fit at MCS3.
        assert!(!mac.supports_update_rate(1024, Mcs::MCS3, 200, SimDuration::from_millis(100)));
    }

    #[test]
    fn utilization_grows_with_vehicles() {
        let mac = MacModel::default();
        let u8v = mac.utilization(8, Mcs::MCS3, 200, SimDuration::from_millis(100));
        let u256 = mac.utilization(256, Mcs::MCS3, 200, SimDuration::from_millis(100));
        assert!(u8v < u256);
        assert!(u256 < 1.0, "256 vehicles must be feasible: {u256}");
    }

    #[test]
    fn sampled_delay_is_bounded_and_grows_with_contention() {
        let mac = MacModel::default();
        let mut rng = SimRng::seed_from(5);
        let period = SimDuration::from_millis(100);
        let mean = |n: u32, rng: &mut SimRng| {
            (0..2000)
                .map(|_| mac.sample_access_delay(rng, Mcs::MCS3, 200, n, period).as_micros_f64())
                .sum::<f64>()
                / 2000.0
        };
        let m8 = mean(8, &mut rng);
        let m256 = mean(256, &mut rng);
        assert!(m8 < m256, "contention must increase delay: {m8} vs {m256}");
        // Individual packet access should stay well below one update period.
        assert!(m256 < 10_000.0, "mean delay should be far below 10 ms, got {m256} µs");
    }

    #[test]
    fn sampled_delay_at_least_difs_plus_airtime() {
        let mac = MacModel::default();
        let mut rng = SimRng::seed_from(6);
        let floor = mac.params().difs_us() + mac.frame_airtime(Mcs::MCS3, 200).as_micros_f64();
        for _ in 0..500 {
            let d =
                mac.sample_access_delay(&mut rng, Mcs::MCS3, 200, 1, SimDuration::from_millis(100));
            assert!(d.as_micros_f64() >= floor - 1e-6);
        }
    }
}

use std::fmt;

/// Modulation scheme of an 802.11p MCS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Modulation {
    Bpsk,
    Qpsk,
    Qam16,
    Qam64,
}

impl fmt::Display for Modulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16-QAM",
            Modulation::Qam64 => "64-QAM",
        };
        f.write_str(s)
    }
}

/// An IEEE 802.11p (10 MHz channel) modulation-and-coding scheme.
///
/// The paper numbers the eight 802.11p rates 1 through 8 ("64-QAM 3/4
/// modulation (MCS 8)", "92.62 ms using MCS 3"); this type follows that
/// 1-based numbering. Data rates are the standard 10 MHz set
/// 3–27 Mb/s.
///
/// # Example
///
/// ```
/// use cad3_net::Mcs;
/// assert_eq!(Mcs::MCS8.data_rate_mbps(), 27.0);
/// assert_eq!(Mcs::MCS3.data_rate_mbps(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mcs {
    index: u8,
}

impl Mcs {
    /// MCS 1: BPSK 1/2, 3 Mb/s.
    pub const MCS1: Mcs = Mcs { index: 1 };
    /// MCS 2: BPSK 3/4, 4.5 Mb/s.
    pub const MCS2: Mcs = Mcs { index: 2 };
    /// MCS 3: QPSK 1/2, 6 Mb/s (the robust default used in the paper's Eq. 5 analysis).
    pub const MCS3: Mcs = Mcs { index: 3 };
    /// MCS 4: QPSK 3/4, 9 Mb/s.
    pub const MCS4: Mcs = Mcs { index: 4 };
    /// MCS 5: 16-QAM 1/2, 12 Mb/s.
    pub const MCS5: Mcs = Mcs { index: 5 };
    /// MCS 6: 16-QAM 3/4, 18 Mb/s.
    pub const MCS6: Mcs = Mcs { index: 6 };
    /// MCS 7: 64-QAM 2/3, 24 Mb/s.
    pub const MCS7: Mcs = Mcs { index: 7 };
    /// MCS 8: 64-QAM 3/4, 27 Mb/s (the DSRC peak rate assumed paper-wide).
    pub const MCS8: Mcs = Mcs { index: 8 };

    /// All schemes, lowest rate first.
    pub const ALL: [Mcs; 8] =
        [Mcs::MCS1, Mcs::MCS2, Mcs::MCS3, Mcs::MCS4, Mcs::MCS5, Mcs::MCS6, Mcs::MCS7, Mcs::MCS8];

    /// Creates an MCS from the paper's 1-based index.
    ///
    /// Returns `None` unless `1 <= index <= 8`.
    pub fn from_index(index: u8) -> Option<Mcs> {
        (1..=8).contains(&index).then_some(Mcs { index })
    }

    /// The paper's 1-based index.
    pub fn index(self) -> u8 {
        self.index
    }

    /// PHY data rate in Mb/s.
    pub fn data_rate_mbps(self) -> f64 {
        [3.0, 4.5, 6.0, 9.0, 12.0, 18.0, 24.0, 27.0][(self.index - 1) as usize]
    }

    /// PHY data rate in bits per second.
    pub fn data_rate_bps(self) -> f64 {
        self.data_rate_mbps() * 1e6
    }

    /// Data bits carried per 8 µs OFDM symbol.
    pub fn bits_per_symbol(self) -> u32 {
        // rate [Mb/s] × 8 µs symbol = bits per symbol.
        (self.data_rate_mbps() * 8.0).round() as u32
    }

    /// Modulation of the scheme.
    pub fn modulation(self) -> Modulation {
        match self.index {
            1 | 2 => Modulation::Bpsk,
            3 | 4 => Modulation::Qpsk,
            5 | 6 => Modulation::Qam16,
            _ => Modulation::Qam64,
        }
    }

    /// Coding rate as a fraction.
    pub fn coding_rate(self) -> f64 {
        match self.index {
            1 | 3 | 5 => 0.5,
            7 => 2.0 / 3.0,
            _ => 0.75,
        }
    }

    /// Approximate usable communication range in metres.
    ///
    /// Higher-order modulations need more SNR and therefore reach less far;
    /// the paper's deployment discussion pairs MCS 8 with ~125 m RSU spacing
    /// and the robust low rates with a few hundred metres.
    pub fn typical_range_m(self) -> f64 {
        [900.0, 750.0, 600.0, 450.0, 350.0, 250.0, 180.0, 125.0][(self.index - 1) as usize]
    }
}

impl fmt::Display for Mcs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MCS{} ({} {:.2}, {} Mb/s)",
            self.index,
            self.modulation(),
            self.coding_rate(),
            self.data_rate_mbps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_the_standard_10mhz_set() {
        let rates: Vec<f64> = Mcs::ALL.iter().map(|m| m.data_rate_mbps()).collect();
        assert_eq!(rates, vec![3.0, 4.5, 6.0, 9.0, 12.0, 18.0, 24.0, 27.0]);
    }

    #[test]
    fn paper_landmarks() {
        assert_eq!(Mcs::MCS8.data_rate_mbps(), 27.0);
        assert_eq!(Mcs::MCS8.modulation(), Modulation::Qam64);
        assert!((Mcs::MCS8.coding_rate() - 0.75).abs() < 1e-12);
        assert_eq!(Mcs::MCS8.typical_range_m(), 125.0);
    }

    #[test]
    fn bits_per_symbol_match_rate() {
        for m in Mcs::ALL {
            assert_eq!(m.bits_per_symbol() as f64, m.data_rate_mbps() * 8.0);
        }
        assert_eq!(Mcs::MCS3.bits_per_symbol(), 48);
        assert_eq!(Mcs::MCS8.bits_per_symbol(), 216);
    }

    #[test]
    fn from_index_bounds() {
        assert_eq!(Mcs::from_index(0), None);
        assert_eq!(Mcs::from_index(9), None);
        assert_eq!(Mcs::from_index(3), Some(Mcs::MCS3));
    }

    #[test]
    fn range_decreases_with_rate() {
        for w in Mcs::ALL.windows(2) {
            assert!(w[0].typical_range_m() > w[1].typical_range_m());
        }
    }

    #[test]
    fn display_is_informative() {
        let s = Mcs::MCS8.to_string();
        assert!(s.contains("MCS8") && s.contains("64-QAM") && s.contains("27"));
    }
}

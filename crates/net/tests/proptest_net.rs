//! Property-based tests of the network substrate's conservation laws.

use cad3_net::{HtbShaper, MacModel, Mcs, TokenBucket, WiredLink};
use cad3_types::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// A token bucket never exceeds its configured long-run rate, whatever
    /// the arrival pattern.
    #[test]
    fn token_bucket_never_exceeds_rate(
        rate_kbps in 8.0f64..10_000.0,
        packets in prop::collection::vec((0u64..10_000, 64usize..1500), 10..200),
    ) {
        let rate = rate_kbps * 1_000.0;
        let mut bucket = TokenBucket::new(rate, rate * 0.1);
        let mut arrivals: Vec<(u64, usize)> = packets;
        arrivals.sort_unstable();
        let mut last_depart = SimTime::ZERO;
        let mut total_bits = 0.0;
        for (t_ms, bytes) in &arrivals {
            let now = SimTime::from_millis(*t_ms).max(last_depart);
            let depart = bucket.depart(now, *bytes);
            prop_assert!(depart >= now, "departure precedes arrival");
            last_depart = depart;
            total_bits += (*bytes * 8) as f64;
        }
        // Long-run conservation: total bits over elapsed time ≤ rate,
        // allowing the initial burst.
        let elapsed = last_depart.as_secs_f64().max(1e-9);
        let burst_allowance = rate * 0.1;
        prop_assert!(
            total_bits <= rate * elapsed + burst_allowance + 1.0,
            "rate exceeded: {} bits in {} s at {} b/s",
            total_bits,
            elapsed,
            rate
        );
    }

    /// HTB departures are causal and the aggregate respects the ceiling.
    #[test]
    fn htb_is_causal_and_capped(
        leaves in 1u64..10,
        per_leaf in 5usize..40,
    ) {
        let ceiling = 1_000_000.0;
        let mut htb = HtbShaper::new(ceiling, 50_000.0);
        let mut last = SimTime::ZERO;
        let bytes = 1_250; // 10 kb
        for round in 0..per_leaf {
            for leaf in 0..leaves {
                let now = SimTime::from_millis(round as u64);
                let depart = htb.depart(leaf, now, bytes);
                prop_assert!(depart >= now);
                last = last.max(depart);
            }
        }
        let total_bits = (leaves as usize * per_leaf * bytes * 8) as f64;
        let elapsed = last.as_secs_f64().max(1e-9);
        prop_assert!(
            total_bits <= ceiling * elapsed + ceiling * 0.02 + 12_000.0 + 1.0,
            "ceiling exceeded"
        );
    }

    /// MAC access time is monotone in vehicles and payload, and decreasing
    /// in MCS rate.
    #[test]
    fn mac_monotonicity(n in 1u32..512, payload in 50usize..1000) {
        let mac = MacModel::default();
        for pair in Mcs::ALL.windows(2) {
            let slow = mac.medium_access_time(n, pair[0], payload);
            let fast = mac.medium_access_time(n, pair[1], payload);
            prop_assert!(fast <= slow, "higher MCS must not be slower");
        }
        let t1 = mac.medium_access_time(n, Mcs::MCS3, payload);
        let t2 = mac.medium_access_time(n + 1, Mcs::MCS3, payload);
        prop_assert!(t2 >= t1, "more vehicles must not be faster");
        let p2 = mac.medium_access_time(n, Mcs::MCS3, payload + 100);
        prop_assert!(p2 >= t1, "bigger payloads must not be faster");
    }

    /// Wired links deliver FIFO with non-negative queueing.
    #[test]
    fn wired_link_is_fifo(frames in prop::collection::vec((0u64..1_000, 64usize..9000), 1..100)) {
        let mut frames = frames;
        frames.sort_unstable();
        let mut link = WiredLink::new(10e6, SimDuration::from_micros(50));
        let mut last_arrival = SimTime::ZERO;
        for (t_us, bytes) in frames {
            let now = SimTime::from_nanos(t_us * 1_000);
            let arrival = link.transmit(now, bytes);
            prop_assert!(arrival >= now + SimDuration::from_micros(50));
            prop_assert!(arrival >= last_arrival, "FIFO violated");
            last_arrival = arrival;
        }
    }
}

//! The one wall-clock read point of the observability substrate.
//!
//! Instrumented crates must not touch `Instant::now` themselves (the
//! workspace `no-wallclock` lint confines clock reads to this file and the
//! real-time scheduler); they call [`now_nanos`], which reports monotonic
//! nanoseconds since the first observation in this process. Keeping the
//! anchor process-local makes timestamps small, monotone and serialisable
//! as `u64` without committing to any epoch.

use std::sync::OnceLock;
use std::time::Instant;

/// Monotonic nanoseconds since the process's first call to this function.
///
/// The first call returns a value close to zero; all later calls are
/// monotonically non-decreasing. Saturates at `u64::MAX` after ~584 years.
pub fn now_nanos() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_anchored_near_zero() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
        // The anchor is the first call ever; whatever test ran first, the
        // process has not been up for an hour.
        assert!(a < 3_600_000_000_000, "{a}");
    }
}

//! The one wall-clock read point of the observability substrate.
//!
//! Instrumented crates must not touch `Instant::now` themselves (the
//! workspace `no-wallclock` lint confines clock reads to this file and the
//! real-time scheduler); they call [`now_nanos`], which reports monotonic
//! nanoseconds since the first observation in this process. Keeping the
//! anchor process-local makes timestamps small, monotone and serialisable
//! as `u64` without committing to any epoch.
//!
//! For replay-deterministic runs the clock can be switched to *virtual*
//! mode ([`set_virtual_nanos`]): the driver advances the reading from sim
//! time, so every timestamped artifact — JSONL span events, trace reports,
//! latency histograms — becomes a pure function of the seed and two
//! identical runs produce byte-identical files (the `determinism-e2e` CI
//! job holds this by running the replay example twice and `cmp`-ing).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static VIRTUAL_MODE: AtomicBool = AtomicBool::new(false);
static VIRTUAL_NOW: AtomicU64 = AtomicU64::new(0);

/// Monotonic nanoseconds since the process's first call to this function,
/// or the virtual reading while [`set_virtual_nanos`] replay mode is on.
///
/// The first call returns a value close to zero; all later calls are
/// monotonically non-decreasing. Saturates at `u64::MAX` after ~584 years.
pub fn now_nanos() -> u64 {
    // ordering: Relaxed — the clock is an advisory value stream; readers
    // only need *a* monotone reading, not synchronisation with other memory.
    if VIRTUAL_MODE.load(Ordering::Relaxed) {
        // ordering: Relaxed — same advisory reading as the mode flag.
        return VIRTUAL_NOW.load(Ordering::Relaxed);
    }
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Switches the clock to virtual (replay) mode and advances its reading to
/// `ns`. The reading never goes backwards: a smaller `ns` is ignored, so a
/// driver can re-announce the current sim time freely. Virtual mode is
/// process-global and sticky — it is meant for replay binaries that opt in
/// once at startup, before any instrumented work.
pub fn set_virtual_nanos(ns: u64) {
    // ordering: Relaxed — fetch_max's atomicity alone keeps the reading
    // monotone; the value carries no other memory dependencies.
    VIRTUAL_NOW.fetch_max(ns, Ordering::Relaxed);
    // ordering: Relaxed — an advisory mode flag; a reader that misses the
    // flip for an instant reads the wall anchor one last time, which is fine
    // because drivers enable virtual mode before any instrumented work.
    VIRTUAL_MODE.store(true, Ordering::Relaxed);
}

/// Whether the clock is in virtual (replay) mode.
pub fn is_virtual() -> bool {
    // ordering: Relaxed — advisory flag, see [`set_virtual_nanos`].
    VIRTUAL_MODE.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_anchored_near_zero() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
        // The anchor is the first call ever; whatever test ran first, the
        // process has not been up for an hour.
        assert!(a < 3_600_000_000_000, "{a}");
    }
}

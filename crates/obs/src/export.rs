//! Exporters: Prometheus-style text and JSONL event logs.
//!
//! Both are plain string renderers over the snapshot types — no I/O, no
//! serializer dependency — so callers decide where the bytes go (a file in
//! `results/`, stderr from the panic hook, a CI artifact).

use crate::metrics::{bucket_upper, HistogramSnapshot, BUCKETS};
use crate::recorder::{EventKind, SpanEvent};
use crate::registry::MetricsSnapshot;
use std::fmt::Write;

/// Metric names are dotted (`stream.broker.produce`); Prometheus wants
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, so dots become underscores under a `cad3_`
/// namespace prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("cad3_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn prom_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let p = prom_name(name);
    let _ = writeln!(out, "# TYPE {p} histogram");
    let mut cumulative = 0u64;
    let last = (0..BUCKETS).rev().find(|&b| h.buckets[b] > 0).unwrap_or(0);
    for b in 0..=last {
        cumulative += h.buckets[b];
        let _ = writeln!(out, "{p}_bucket{{le=\"{}\"}} {cumulative}", bucket_upper(b));
    }
    let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{p}_sum {}", h.sum);
    let _ = writeln!(out, "{p}_count {}", h.count);
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p}_total counter");
        let _ = writeln!(out, "{p}_total {value}");
    }
    for (name, value) in &snapshot.gauges {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, h) in &snapshot.histograms {
        prom_histogram(&mut out, name, h);
    }
    out
}

/// Minimal JSON string escaping (names are `[a-z0-9._]` by the workspace
/// lint, but the renderer stays correct for arbitrary input).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders flight-recorder events as one JSON object per line.
pub fn events_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let kind = match e.kind {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Point => "point",
        };
        let _ = writeln!(
            out,
            "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{kind}\",\"name\":\"{}\",\"span\":{},\"parent\":{},\"value\":{}}}",
            e.seq,
            e.time_ns,
            json_escape(e.name),
            e.span,
            e.parent,
            e.value,
        );
    }
    out
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn prometheus_renders_all_kinds() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("stream.broker.produce".into(), 42);
        snap.gauges.insert("stream.consumer.lag.g".into(), 7);
        let h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.observe(v);
        }
        snap.histograms.insert("rsu.total_us".into(), h.snapshot());
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE cad3_stream_broker_produce_total counter"));
        assert!(text.contains("cad3_stream_broker_produce_total 42"));
        assert!(text.contains("cad3_stream_consumer_lag_g 7"));
        assert!(text.contains("# TYPE cad3_rsu_total_us histogram"));
        assert!(text.contains("cad3_rsu_total_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cad3_rsu_total_us_sum 106"));
        assert!(text.contains("cad3_rsu_total_us_count 4"));
        // Buckets are cumulative: value 1 → bucket 1 (le="1"), values 2,3 →
        // bucket 2 (le="3" cumulative 3), value 100 → bucket 7 (le="127").
        assert!(text.contains("cad3_rsu_total_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("cad3_rsu_total_us_bucket{le=\"3\"} 3"));
        assert!(text.contains("cad3_rsu_total_us_bucket{le=\"127\"} 4"));
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let events = vec![SpanEvent {
            seq: 1,
            time_ns: 123,
            kind: EventKind::Enter,
            name: "rsu.micro_batch",
            span: 9,
            parent: 0,
            value: 4,
        }];
        let text = events_jsonl(&events);
        assert_eq!(
            text,
            "{\"seq\":1,\"t_ns\":123,\"kind\":\"enter\",\"name\":\"rsu.micro_batch\",\"span\":9,\"parent\":0,\"value\":4}\n"
        );
    }

    #[test]
    fn json_escaping_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

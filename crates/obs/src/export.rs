//! Exporters: Prometheus-style text and JSONL event logs.
//!
//! Both are plain string renderers over the snapshot types — no I/O, no
//! serializer dependency — so callers decide where the bytes go (a file in
//! `results/`, stderr from the panic hook, a CI artifact).

use crate::metrics::{bucket_upper, Exemplar, HistogramSnapshot, BUCKETS};
use crate::recorder::{EventKind, SpanEvent};
use crate::registry::MetricsSnapshot;
use std::fmt::Write;

/// Metric names are dotted (`stream.broker.produce`); Prometheus wants
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, so dots become underscores under a `cad3_`
/// namespace prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("cad3_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Escapes `# HELP` text per the exposition format: backslash and newline
/// must be backslash-escaped.
fn prom_escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Emits the `# HELP` line for a sample family when the metric is in the
/// names catalogue (`help_for` also resolves `_ns` span histograms and
/// dynamic-family members); ad-hoc names stay bare.
fn write_help(out: &mut String, family: &str, metric: &str) {
    if let Some(help) = crate::names::help_for(metric) {
        let _ = writeln!(out, "# HELP {family} {}", prom_escape_help(help));
    }
}

/// Escapes a label value per the text exposition format: backslash, double
/// quote and newline must be backslash-escaped inside the quotes.
fn prom_escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The OpenMetrics-style exemplar annotation appended to a `_bucket` line:
/// ` # {trace_id="<hex>"} <value>`. Empty when the bucket has none.
fn exemplar_suffix(exemplars: &[(usize, Exemplar)], bucket: usize) -> String {
    exemplars
        .iter()
        .find(|(b, _)| *b == bucket)
        .map(|(_, ex)| format!(" # {{trace_id=\"{:016x}\"}} {}", ex.trace_id, ex.value))
        .unwrap_or_default()
}

fn prom_histogram(out: &mut String, name: &str, h: &HistogramSnapshot, ex: &[(usize, Exemplar)]) {
    let p = prom_name(name);
    write_help(out, &p, name);
    let _ = writeln!(out, "# TYPE {p} histogram");
    let mut cumulative = 0u64;
    let last = (0..BUCKETS).rev().find(|&b| h.buckets[b] > 0).unwrap_or(0);
    for b in 0..=last {
        cumulative += h.buckets[b];
        // The top log2 bucket is unbounded; `+Inf` below is its `le` line
        // (a literal 2^64-1 bound would misstate the histogram's range).
        if bucket_upper(b) == u64::MAX {
            continue;
        }
        let _ = writeln!(
            out,
            "{p}_bucket{{le=\"{}\"}} {cumulative}{}",
            bucket_upper(b),
            exemplar_suffix(ex, b)
        );
    }
    // The unbounded top bucket's exemplar (if any) rides the +Inf line.
    let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}{}", h.count, exemplar_suffix(ex, 64));
    let _ = writeln!(out, "{p}_sum {}", h.sum);
    let _ = writeln!(out, "{p}_count {}", h.count);
}

/// Gauge families rendered with a label instead of a name suffix: the
/// registry stores per-group lag as `stream.consumer.lag.<group>`, which
/// the exporter folds into one `cad3_stream_consumer_lag{group="…"}`
/// family so dashboards can aggregate across groups.
const LABELED_GAUGE_PREFIXES: [(&str, &str, &str); 4] = [
    ("stream.consumer.lag.", "cad3_stream_consumer_lag", "group"),
    ("rsu.lag.", "cad3_rsu_lag", "rsu"),
    ("rsu.health.state.", "cad3_rsu_health_state", "rsu"),
    ("net.dsrc.offered_bps.", "cad3_net_dsrc_offered_bps", "rsu"),
];

/// Renders a snapshot in the Prometheus text exposition format: every
/// sample family is preceded by its `# TYPE` line (and, for catalogued
/// names, a `# HELP` line from [`crate::names::HELP`]), counters take the
/// `_total` suffix, label values are escaped, and histograms emit
/// cumulative buckets capped by `+Inf` plus `_sum`/`_count`. Buckets of
/// exemplar-enabled histograms carry OpenMetrics-style annotations
/// (` # {trace_id="<hex>"} <value>`) linking the tail to a concrete trace.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let p = prom_name(name);
        write_help(&mut out, &format!("{p}_total"), name);
        let _ = writeln!(out, "# TYPE {p}_total counter");
        let _ = writeln!(out, "{p}_total {value}");
    }
    let mut typed_families: Vec<&str> = Vec::new();
    for (name, value) in &snapshot.gauges {
        if let Some((prefix, family, label)) =
            LABELED_GAUGE_PREFIXES.iter().find(|(prefix, _, _)| name.starts_with(prefix))
        {
            // BTreeMap order keeps one family's gauges contiguous, so the
            // TYPE line is emitted once per family, before its samples.
            if !typed_families.contains(family) {
                typed_families.push(family);
                write_help(&mut out, family, prefix.trim_end_matches('.'));
                let _ = writeln!(out, "# TYPE {family} gauge");
            }
            let suffix = &name[prefix.len()..];
            let _ = writeln!(
                out,
                "{family}{{{label}=\"{}\"}} {value}",
                prom_escape_label_value(suffix)
            );
            continue;
        }
        let p = prom_name(name);
        write_help(&mut out, &p, name);
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, h) in &snapshot.histograms {
        prom_histogram(&mut out, name, h, snapshot.exemplars_of(name));
    }
    out
}

/// Minimal JSON string escaping (names are `[a-z0-9._]` by the workspace
/// lint, but the renderer stays correct for arbitrary input). Shared with
/// the trace JSONL renderer in [`crate::trace`].
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders flight-recorder events as one JSON object per line.
pub fn events_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let kind = match e.kind {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Point => "point",
        };
        let _ = writeln!(
            out,
            "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{kind}\",\"name\":\"{}\",\"span\":{},\"parent\":{},\"value\":{}}}",
            e.seq,
            e.time_ns,
            json_escape(e.name),
            e.span,
            e.parent,
            e.value,
        );
    }
    out
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn prometheus_renders_all_kinds() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("stream.broker.produce".into(), 42);
        snap.gauges.insert("stream.consumer.lag.g".into(), 7);
        let h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.observe(v);
        }
        snap.histograms.insert("rsu.total_us".into(), h.snapshot());
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE cad3_stream_broker_produce_total counter"));
        assert!(text.contains("cad3_stream_broker_produce_total 42"));
        assert!(text.contains("# TYPE cad3_stream_consumer_lag gauge"));
        assert!(text.contains("cad3_stream_consumer_lag{group=\"g\"} 7"));
        assert!(text.contains("# TYPE cad3_rsu_total_us histogram"));
        assert!(text.contains("cad3_rsu_total_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cad3_rsu_total_us_sum 106"));
        assert!(text.contains("cad3_rsu_total_us_count 4"));
        // Buckets are cumulative: value 1 → bucket 1 (le="1"), values 2,3 →
        // bucket 2 (le="3" cumulative 3), value 100 → bucket 7 (le="127").
        assert!(text.contains("cad3_rsu_total_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("cad3_rsu_total_us_bucket{le=\"3\"} 3"));
        assert!(text.contains("cad3_rsu_total_us_bucket{le=\"127\"} 4"));
    }

    /// A minimal exposition-format conformance checker: every sample's
    /// family must be declared by a `# TYPE` line before its first sample,
    /// histogram buckets must be cumulative (non-decreasing) and end at
    /// `+Inf` equal to `_count`, and every histogram needs `_sum`/`_count`.
    fn assert_conformant(text: &str) {
        use std::collections::BTreeMap;
        let mut families: BTreeMap<&str, &str> = BTreeMap::new();
        let mut hist_buckets: BTreeMap<&str, Vec<(String, u64)>> = BTreeMap::new();
        let mut hist_scalars: BTreeMap<&str, BTreeMap<&str, u64>> = BTreeMap::new();
        let mut helped: Vec<&str> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (family, help) = rest.split_once(' ').expect("HELP line shape");
                assert!(!help.is_empty(), "empty HELP text in {line:?}");
                assert!(
                    !families.contains_key(family),
                    "HELP for {family} must precede its TYPE line"
                );
                assert!(!helped.contains(&family), "duplicate HELP for {family}");
                helped.push(family);
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (family, kind) = rest.split_once(' ').expect("TYPE line shape");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "unknown TYPE kind in {line:?}"
                );
                families.insert(family, kind);
                continue;
            }
            assert!(!line.starts_with('#'), "unexpected comment {line:?}");
            // Split off an OpenMetrics exemplar annotation before parsing
            // the sample proper.
            let (line, exemplar) = match line.split_once(" # ") {
                Some((sample, ex)) => (sample, Some(ex)),
                None => (line, None),
            };
            if let Some(ex) = exemplar {
                let (labels, value) =
                    ex.split_once("} ").unwrap_or_else(|| panic!("exemplar shape in {ex:?}"));
                assert!(labels.starts_with('{'), "exemplar labels in {ex:?}");
                assert!(
                    labels.trim_start_matches('{').starts_with("trace_id=\""),
                    "exemplar label key in {ex:?}"
                );
                let _: u64 = value.parse().expect("exemplar value");
                assert!(
                    line.contains("_bucket"),
                    "exemplars are only legal on bucket lines: {line:?}"
                );
            }
            let (name_and_labels, value) = line.rsplit_once(' ').expect("sample shape");
            let name = name_and_labels.split('{').next().expect("name");
            let labels = name_and_labels.strip_prefix(name).unwrap_or("");
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "malformed labels in {line:?}"
                );
            }
            let (family, kind) = if let Some(f) = name.strip_suffix("_bucket") {
                (f, "histogram")
            } else if let Some(f) =
                name.strip_suffix("_sum").filter(|f| families.get(f) == Some(&"histogram"))
            {
                (f, "histogram")
            } else if let Some(f) =
                name.strip_suffix("_count").filter(|f| families.get(f) == Some(&"histogram"))
            {
                (f, "histogram")
            } else {
                (name, "scalar")
            };
            assert!(
                families.contains_key(family),
                "sample {name:?} has no preceding # TYPE for family {family:?}"
            );
            if kind == "histogram" {
                let v: u64 = value.parse().expect("histogram sample value");
                if name.ends_with("_bucket") {
                    let le = labels.trim_start_matches("{le=\"").trim_end_matches("\"}").to_owned();
                    hist_buckets.entry(family).or_default().push((le, v));
                } else if name.ends_with("_sum") {
                    hist_scalars.entry(family).or_default().insert("sum", v);
                } else {
                    hist_scalars.entry(family).or_default().insert("count", v);
                }
            }
        }
        for (family, kind) in &families {
            if *kind != "histogram" {
                continue;
            }
            let buckets = hist_buckets.get(family).expect("histogram has buckets");
            let scalars = hist_scalars.get(family).expect("histogram has scalars");
            assert!(scalars.contains_key("sum"), "{family} missing _sum");
            let count = *scalars.get("count").unwrap_or_else(|| panic!("{family} missing _count"));
            let mut prev = 0u64;
            for (le, v) in buckets {
                assert!(*v >= prev, "{family} bucket le={le} not cumulative");
                prev = *v;
            }
            let (last_le, last_v) = buckets.last().expect("non-empty buckets");
            assert_eq!(last_le, "+Inf", "{family} must end at +Inf");
            assert_eq!(*last_v, count, "{family} +Inf must equal _count");
        }
    }

    #[test]
    fn exposition_output_is_conformant() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("rsu.records".into(), 12);
        snap.gauges.insert("engine.batch.queue_depth".into(), 3);
        snap.gauges.insert("stream.consumer.lag.rsu-a".into(), 5);
        snap.gauges.insert("stream.consumer.lag.rsu-b".into(), 6);
        let h = Histogram::new();
        for v in [0, 1, 5, 1_000, u64::MAX] {
            h.observe(v);
        }
        snap.histograms.insert("stream.broker.produce_ns".into(), h.snapshot());
        let text = prometheus_text(&snap);
        assert_conformant(&text);
        // The unbounded top bucket surfaces only as +Inf, never as a
        // literal 2^64-1 bound.
        assert!(!text.contains("le=\"18446744073709551615\""), "{text}");
        // One TYPE line serves both labeled lag samples.
        assert_eq!(text.matches("# TYPE cad3_stream_consumer_lag gauge").count(), 1);
    }

    #[test]
    fn exemplar_annotations_are_conformant_and_bucket_scoped() {
        let mut snap = MetricsSnapshot::default();
        let h = Histogram::with_exemplars();
        h.observe_with_exemplar(3, 0xa1);
        h.observe_with_exemplar(900, 0xb2);
        h.observe_with_exemplar(u64::MAX, 0xc3);
        snap.histograms.insert("rsu.total_us".into(), h.snapshot());
        snap.exemplars.insert("rsu.total_us".into(), h.exemplars());
        let text = prometheus_text(&snap);
        assert_conformant(&text);
        assert!(
            text.contains(
                "cad3_rsu_total_us_bucket{le=\"3\"} 1 # {trace_id=\"00000000000000a1\"} 3\n"
            ),
            "{text}"
        );
        assert!(text.contains("{le=\"1023\"} 2 # {trace_id=\"00000000000000b2\"} 900\n"), "{text}");
        // The unbounded top bucket's exemplar rides the +Inf line.
        assert!(
            text.contains(
                "{le=\"+Inf\"} 3 # {trace_id=\"00000000000000c3\"} 18446744073709551615\n"
            ),
            "{text}"
        );
        // A histogram without exemplars renders no annotation at all.
        let h2 = Histogram::new();
        h2.observe(5);
        let mut snap2 = MetricsSnapshot::default();
        snap2.histograms.insert("rsu.queuing_us".into(), h2.snapshot());
        let text2 = prometheus_text(&snap2);
        assert_conformant(&text2);
        assert!(!text2.contains(" # "), "{text2}");
    }

    #[test]
    fn catalogued_names_get_help_lines() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("rsu.records".into(), 1);
        snap.counters.insert("adhoc.counter".into(), 2);
        snap.gauges.insert("rsu.health.state.rsu-a".into(), 2);
        snap.gauges.insert("rsu.lag.rsu-a".into(), 9);
        let h = Histogram::new();
        h.observe(10);
        // A span's duration histogram resolves HELP through its bare name.
        snap.histograms.insert("rsu.detect_ns".into(), h.snapshot());
        let text = prometheus_text(&snap);
        assert_conformant(&text);
        assert!(
            text.contains("# HELP cad3_rsu_records_total Status records processed by RSUs.\n"),
            "{text}"
        );
        assert!(text.contains("# HELP cad3_rsu_health_state "), "{text}");
        assert!(text.contains("cad3_rsu_health_state{rsu=\"rsu-a\"} 2"), "{text}");
        assert!(text.contains("cad3_rsu_lag{rsu=\"rsu-a\"} 9"), "{text}");
        assert!(text.contains("# HELP cad3_rsu_detect_ns "), "{text}");
        // HELP precedes TYPE for the same family.
        let help_at = text.find("# HELP cad3_rsu_detect_ns").unwrap();
        let type_at = text.find("# TYPE cad3_rsu_detect_ns").unwrap();
        assert!(help_at < type_at);
        // Names outside the catalogue render without HELP but stay valid.
        assert!(!text.contains("# HELP cad3_adhoc_counter_total"), "{text}");
        assert!(text.contains("cad3_adhoc_counter_total 2"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut snap = MetricsSnapshot::default();
        snap.gauges.insert("stream.consumer.lag.a\"b\\c".into(), 1);
        let text = prometheus_text(&snap);
        assert!(text.contains("cad3_stream_consumer_lag{group=\"a\\\"b\\\\c\"} 1"), "{text}");
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let events = vec![SpanEvent {
            seq: 1,
            time_ns: 123,
            kind: EventKind::Enter,
            name: "rsu.micro_batch",
            span: 9,
            parent: 0,
            value: 4,
        }];
        let text = events_jsonl(&events);
        assert_eq!(
            text,
            "{\"seq\":1,\"t_ns\":123,\"kind\":\"enter\",\"name\":\"rsu.micro_batch\",\"span\":9,\"parent\":0,\"value\":4}\n"
        );
    }

    #[test]
    fn json_escaping_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

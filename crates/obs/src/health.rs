//! Windowed SLO engine and per-RSU health states.
//!
//! The pieces, bottom-up:
//!
//! - [`SloContract`]: a declarative set of objectives parsed from the root
//!   `slos.toml` (hand-rolled restricted TOML — the workspace vendors no
//!   parser crate). Each [`SloSpec`] names a catalogued metric, the signal
//!   derived from it (a window quantile, rate, delta or gauge ceiling) and
//!   a bound.
//! - Multi-window burn-rate evaluation in the spirit of SRE alerting: a
//!   *fast* window catches acute breaches, a *slow* window confirms they
//!   are sustained; an alert fires only when **both** windows burn past
//!   the threshold for `for_ticks` consecutive ticks, and clears after
//!   `clear_ticks` quiet ticks. Transitions become [`AlertEvent`]s in a
//!   bounded log, flight-recorder points (`health.alert`) and JSONL.
//! - A per-RSU state machine `healthy → degraded → overloaded` with
//!   hysteresis (escalate after `escalate_ticks` pressured ticks, recover
//!   one level per `recover_ticks` quiet ticks), published as
//!   `rsu.health.state.<rsu>` gauges that the testbed consults at
//!   handover.
//!
//! The [`HealthMonitor`] is driver-owned (`&mut self`, no interior locks):
//! a periodic tick snapshots the registry, pushes it into a
//! [`SnapshotRing`](crate::window::SnapshotRing) and evaluates every SLO.
//! Nothing runs on the hot path — instrumented code only keeps feeding the
//! same counters it already feeds, behind the usual one-relaxed-load gate.
//! Timestamps come from [`crate::clock`], so under the virtual clock the
//! whole evaluation is a pure function of the seed and replay artifacts
//! stay byte-stable.

use crate::metrics::Gauge;
use crate::recorder::{recorder, EventKind};
use crate::registry::{registry, MetricsSnapshot};
use crate::sync::Arc;
use crate::window::SnapshotRing;
use crate::{export, names};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// Maximum alert events retained in the monitor's log.
const EVENT_LOG_CAP: usize = 1024;

/// How a scalar signal is derived from the window for one SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// Median of a histogram's in-window observations.
    P50,
    /// 95th percentile of a histogram's in-window observations.
    P95,
    /// 99th percentile of a histogram's in-window observations.
    P99,
    /// Mean of a histogram's in-window observations.
    Mean,
    /// Per-second rate of a counter over the window.
    Rate,
    /// Counter increase over the window.
    Delta,
    /// Worst (maximum) gauge reading across the window's samples.
    Value,
}

impl SignalKind {
    fn parse(s: &str) -> Option<SignalKind> {
        Some(match s {
            "p50" => SignalKind::P50,
            "p95" => SignalKind::P95,
            "p99" => SignalKind::P99,
            "mean" => SignalKind::Mean,
            "rate" => SignalKind::Rate,
            "delta" => SignalKind::Delta,
            "value" => SignalKind::Value,
            _ => return None,
        })
    }

    /// The keyword form used in `slos.toml`.
    pub fn as_str(&self) -> &'static str {
        match self {
            SignalKind::P50 => "p50",
            SignalKind::P95 => "p95",
            SignalKind::P99 => "p99",
            SignalKind::Mean => "mean",
            SignalKind::Rate => "rate",
            SignalKind::Delta => "delta",
            SignalKind::Value => "value",
        }
    }
}

/// How bad a firing SLO is for the RSUs it is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Pressure: the RSU should shed load but still meets its function.
    Degraded,
    /// Breach: the RSU is past its budget and handover should avoid it.
    Overloaded,
}

impl Severity {
    /// The keyword form used in `slos.toml` and JSONL.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Degraded => "degraded",
            Severity::Overloaded => "overloaded",
        }
    }
}

/// One declarative objective from `slos.toml`.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Lowercase-dotted alert name (the `[slo.<name>]` section header).
    pub name: String,
    /// Catalogued metric the signal is derived from; for `per_member`
    /// families this is the family prefix (e.g. `rsu.lag`).
    pub metric: String,
    /// Evaluate one alert per `<metric>.<member>` in the latest snapshot.
    pub per_member: bool,
    /// Signal derivation.
    pub signal: SignalKind,
    /// Upper bound (exclusive of burn threshold scaling); `max` and `min`
    /// are mutually exclusive.
    pub max: Option<f64>,
    /// Lower bound.
    pub min: Option<f64>,
    /// Fast (acute) window, nanoseconds.
    pub fast_window_ns: u64,
    /// Slow (sustained) window, nanoseconds.
    pub slow_window_ns: u64,
    /// Both windows must burn at or past this multiple of the budget.
    pub burn_threshold: f64,
    /// Consecutive violating ticks before the alert fires.
    pub for_ticks: u32,
    /// Consecutive quiet ticks before a firing alert clears.
    pub clear_ticks: u32,
    /// Health pressure a firing alert exerts.
    pub severity: Severity,
}

/// The parsed contract: global health-machine tuning plus the SLO list.
#[derive(Debug, Clone)]
pub struct SloContract {
    /// Sampling/evaluation cadence the driver should tick at, nanoseconds.
    pub tick_ns: u64,
    /// Snapshot ring capacity (must cover the widest slow window).
    pub ring_capacity: usize,
    /// Consecutive pressured ticks before an RSU escalates one state.
    pub escalate_ticks: u32,
    /// Consecutive quiet ticks before an RSU recovers one state.
    pub recover_ticks: u32,
    /// The objectives, in file order.
    pub slos: Vec<SloSpec>,
}

impl SloContract {
    /// Parses the restricted TOML dialect of `slos.toml`: `[health]` and
    /// `[slo.<name>]` sections, `key = value` lines where values are
    /// quoted strings, integers, floats or booleans. Unknown sections or
    /// keys are errors, so contract drift is loud.
    pub fn parse(text: &str) -> Result<SloContract, String> {
        let mut contract = SloContract {
            tick_ns: 100_000_000,
            ring_capacity: 256,
            escalate_ticks: 2,
            recover_ticks: 5,
            slos: Vec::new(),
        };
        #[derive(PartialEq)]
        enum Section {
            None,
            Health,
            Slo,
        }
        let mut section = Section::None;
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            let at = |msg: String| format!("slos.toml:{}: {msg}", idx + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if header == "health" {
                    section = Section::Health;
                } else if let Some(name) = header.strip_prefix("slo.") {
                    if !names::is_valid_name(name) {
                        return Err(at(format!("SLO name `{name}` is not lowercase-dotted")));
                    }
                    if contract.slos.iter().any(|s| s.name == name) {
                        return Err(at(format!("duplicate SLO `{name}`")));
                    }
                    contract.slos.push(SloSpec {
                        name: name.to_owned(),
                        metric: String::new(),
                        per_member: false,
                        signal: SignalKind::Value,
                        max: None,
                        min: None,
                        fast_window_ns: 500_000_000,
                        slow_window_ns: 2_000_000_000,
                        burn_threshold: 1.0,
                        for_ticks: 1,
                        clear_ticks: 3,
                        severity: Severity::Degraded,
                    });
                    section = Section::Slo;
                } else {
                    return Err(at(format!("unknown section [{header}]")));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(at(format!("expected `key = value`, got `{line}`")));
            };
            let (key, value) = (key.trim(), value.trim());
            match section {
                Section::None => return Err(at(format!("`{key}` outside any section"))),
                Section::Health => match key {
                    "tick_ms" => {
                        contract.tick_ns = parse_ms(value).ok_or_else(|| at(bad(key, value)))?
                    }
                    "ring_capacity" => {
                        contract.ring_capacity =
                            parse_usize(value).ok_or_else(|| at(bad(key, value)))?
                    }
                    "escalate_ticks" => {
                        contract.escalate_ticks =
                            parse_u32(value).ok_or_else(|| at(bad(key, value)))?
                    }
                    "recover_ticks" => {
                        contract.recover_ticks =
                            parse_u32(value).ok_or_else(|| at(bad(key, value)))?
                    }
                    _ => return Err(at(format!("unknown [health] key `{key}`"))),
                },
                Section::Slo => {
                    let Some(slo) = contract.slos.last_mut() else {
                        return Err(at("key before any [slo.*] section".to_owned()));
                    };
                    match key {
                        "metric" => {
                            slo.metric =
                                parse_string(value).ok_or_else(|| at(bad(key, value)))?.to_owned()
                        }
                        "signal" => {
                            let s = parse_string(value).ok_or_else(|| at(bad(key, value)))?;
                            slo.signal = SignalKind::parse(s)
                                .ok_or_else(|| at(format!("unknown signal `{s}`")))?;
                        }
                        "max" => {
                            slo.max = Some(parse_f64(value).ok_or_else(|| at(bad(key, value)))?)
                        }
                        "min" => {
                            slo.min = Some(parse_f64(value).ok_or_else(|| at(bad(key, value)))?)
                        }
                        "fast_window_ms" => {
                            slo.fast_window_ns =
                                parse_ms(value).ok_or_else(|| at(bad(key, value)))?
                        }
                        "slow_window_ms" => {
                            slo.slow_window_ns =
                                parse_ms(value).ok_or_else(|| at(bad(key, value)))?
                        }
                        "burn_threshold" => {
                            slo.burn_threshold =
                                parse_f64(value).ok_or_else(|| at(bad(key, value)))?
                        }
                        "for_ticks" => {
                            slo.for_ticks = parse_u32(value).ok_or_else(|| at(bad(key, value)))?
                        }
                        "clear_ticks" => {
                            slo.clear_ticks = parse_u32(value).ok_or_else(|| at(bad(key, value)))?
                        }
                        "severity" => {
                            slo.severity = match parse_string(value) {
                                Some("degraded") => Severity::Degraded,
                                Some("overloaded") => Severity::Overloaded,
                                _ => return Err(at(bad(key, value))),
                            }
                        }
                        "per_member" => {
                            slo.per_member = parse_bool(value).ok_or_else(|| at(bad(key, value)))?
                        }
                        _ => return Err(at(format!("unknown [slo] key `{key}`"))),
                    }
                }
            }
        }
        contract.validate()?;
        Ok(contract)
    }

    /// Reads and parses a contract file.
    pub fn load(path: &std::path::Path) -> Result<SloContract, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        SloContract::parse(&text)
    }

    fn validate(&self) -> Result<(), String> {
        for slo in &self.slos {
            let name = &slo.name;
            if slo.metric.is_empty() {
                return Err(format!("slo `{name}`: missing `metric`"));
            }
            if !names::is_valid_name(&slo.metric) {
                return Err(format!(
                    "slo `{name}`: metric `{}` is not lowercase-dotted",
                    slo.metric
                ));
            }
            if slo.max.is_some() == slo.min.is_some() {
                return Err(format!("slo `{name}`: exactly one of `max`/`min` required"));
            }
            if slo.fast_window_ns == 0 || slo.fast_window_ns > slo.slow_window_ns {
                return Err(format!("slo `{name}`: need 0 < fast_window <= slow_window"));
            }
            // NaN must fail too, so compare through partial_cmp rather
            // than a negated `>`.
            if slo.burn_threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("slo `{name}`: burn_threshold must be positive"));
            }
            if slo.for_ticks == 0 || slo.clear_ticks == 0 {
                return Err(format!("slo `{name}`: for_ticks/clear_ticks must be >= 1"));
            }
        }
        if self.tick_ns == 0 || self.ring_capacity < 2 {
            return Err("[health]: need tick_ms > 0 and ring_capacity >= 2".to_owned());
        }
        Ok(())
    }
}

fn bad(key: &str, value: &str) -> String {
    format!("bad value for `{key}`: `{value}`")
}

/// Drops a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str) -> Option<&str> {
    v.strip_prefix('"').and_then(|v| v.strip_suffix('"'))
}

fn parse_f64(v: &str) -> Option<f64> {
    v.replace('_', "").parse().ok()
}

fn parse_u32(v: &str) -> Option<u32> {
    v.replace('_', "").parse().ok()
}

fn parse_usize(v: &str) -> Option<usize> {
    v.replace('_', "").parse().ok()
}

fn parse_bool(v: &str) -> Option<bool> {
    match v {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn parse_ms(v: &str) -> Option<u64> {
    let ms: u64 = v.replace('_', "").parse().ok()?;
    ms.checked_mul(1_000_000)
}

/// A fire or clear transition of one (SLO, member) alert.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Clock reading at the evaluating tick.
    pub t_ns: u64,
    /// SLO name.
    pub slo: String,
    /// Family member (`None` for scalar SLOs).
    pub member: Option<String>,
    /// `true` = fired, `false` = cleared.
    pub firing: bool,
    /// The SLO's severity.
    pub severity: Severity,
    /// Fast-window burn multiple at the transition.
    pub fast_burn: f64,
    /// Slow-window burn multiple at the transition.
    pub slow_burn: f64,
    /// Fast-window signal value at the transition.
    pub value: f64,
}

/// Per-RSU health state, ordered by badness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// All attributed SLOs quiet.
    Healthy,
    /// Sustained `degraded`-severity pressure.
    Degraded,
    /// Sustained `overloaded`-severity pressure.
    Overloaded,
}

impl HealthState {
    /// Gauge encoding (0/1/2).
    pub fn as_gauge(&self) -> u64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Overloaded => 2,
        }
    }

    /// Decodes a `rsu.health.state.<rsu>` gauge reading (saturating: any
    /// unknown value reads as overloaded, the safe assumption).
    pub fn from_gauge(v: u64) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Overloaded,
        }
    }

    /// Lowercase keyword form.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Overloaded => "overloaded",
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One evaluated (SLO, member) row of the latest tick — the live console's
/// table source.
#[derive(Debug, Clone)]
pub struct SloRow {
    /// SLO name.
    pub slo: String,
    /// Family member (`None` for scalar SLOs).
    pub member: Option<String>,
    /// Fast-window signal value (`None` while the window has no data).
    pub fast_value: Option<f64>,
    /// Fast-window burn multiple.
    pub fast_burn: Option<f64>,
    /// Slow-window burn multiple.
    pub slow_burn: Option<f64>,
    /// The configured budget (max or min).
    pub budget: f64,
    /// Whether the alert is currently firing.
    pub firing: bool,
    /// The SLO's severity.
    pub severity: Severity,
}

#[derive(Debug, Default)]
struct AlertState {
    bad_ticks: u32,
    ok_ticks: u32,
    firing: bool,
}

#[derive(Debug)]
struct RsuHealth {
    state: HealthState,
    worse_ticks: u32,
    better_ticks: u32,
    gauge: Arc<Gauge>,
}

/// Driver-owned SLO evaluator and health-state publisher; see the module
/// docs for the tick lifecycle.
#[derive(Debug)]
pub struct HealthMonitor {
    contract: SloContract,
    ring: SnapshotRing,
    alerts: BTreeMap<(String, Option<String>), AlertState>,
    rsus: BTreeMap<String, RsuHealth>,
    events: VecDeque<AlertEvent>,
    events_dropped: u64,
    last_rows: Vec<SloRow>,
    ticks: u64,
    alert_name_id: u32,
    ticks_counter: Arc<crate::metrics::Counter>,
    transitions_counter: Arc<crate::metrics::Counter>,
    firing_gauge: Arc<Gauge>,
}

impl HealthMonitor {
    /// Builds a monitor over the global registry for `contract`.
    pub fn new(contract: SloContract) -> HealthMonitor {
        let ring = SnapshotRing::new(contract.ring_capacity);
        HealthMonitor {
            contract,
            ring,
            alerts: BTreeMap::new(),
            rsus: BTreeMap::new(),
            events: VecDeque::new(),
            events_dropped: 0,
            last_rows: Vec::new(),
            ticks: 0,
            alert_name_id: registry().intern_name(names::HEALTH_ALERT),
            ticks_counter: registry().counter(names::HEALTH_TICKS),
            transitions_counter: registry().counter(names::HEALTH_ALERT_TRANSITIONS),
            firing_gauge: registry().gauge(names::HEALTH_ALERTS_FIRING),
        }
    }

    /// Registers an RSU's state machine (idempotent) and publishes its
    /// initial `healthy` gauge, so every RSU has a state even before the
    /// first tick.
    pub fn register_rsu(&mut self, name: &str) {
        let entry = self.rsus.entry(name.to_owned()).or_insert_with(|| {
            let gauge = registry().gauge(&format!("{}.{name}", names::RSU_HEALTH_STATE_PREFIX));
            RsuHealth { state: HealthState::Healthy, worse_ticks: 0, better_ticks: 0, gauge }
        });
        entry.gauge.set(entry.state.as_gauge());
    }

    /// The contract this monitor evaluates.
    pub fn contract(&self) -> &SloContract {
        &self.contract
    }

    /// One sampling tick: snapshot the registry and evaluate at `now_ns`
    /// (a [`crate::clock::now_nanos`] reading).
    pub fn tick(&mut self, now_ns: u64) {
        let snapshot = registry().snapshot();
        self.observe(now_ns, snapshot);
    }

    /// Evaluates one externally supplied snapshot — the testable core of
    /// [`Self::tick`].
    pub fn observe(&mut self, now_ns: u64, snapshot: MetricsSnapshot) {
        self.ring.push(now_ns, snapshot);
        self.ticks += 1;
        self.ticks_counter.inc();
        let mut rows = Vec::new();

        for slo in &self.contract.slos {
            let members: Vec<Option<String>> = if slo.per_member {
                family_members(&self.ring, &slo.metric).into_iter().map(Some).collect()
            } else {
                vec![None]
            };
            for member in members {
                let key = match &member {
                    Some(m) => format!("{}.{m}", slo.metric),
                    None => slo.metric.clone(),
                };
                let fast = signal_value(&self.ring, &key, slo.signal, slo.fast_window_ns);
                let slow = signal_value(&self.ring, &key, slo.signal, slo.slow_window_ns);
                let fast_burn = fast.map(|v| burn(slo, v));
                let slow_burn = slow.map(|v| burn(slo, v));
                let violating = fast_burn.is_some_and(|b| b >= slo.burn_threshold)
                    && slow_burn.is_some_and(|b| b >= slo.burn_threshold);

                let state = self.alerts.entry((slo.name.clone(), member.clone())).or_default();
                let mut transition = None;
                if violating {
                    state.bad_ticks = state.bad_ticks.saturating_add(1);
                    state.ok_ticks = 0;
                    if !state.firing && state.bad_ticks >= slo.for_ticks {
                        state.firing = true;
                        transition = Some(true);
                    }
                } else {
                    state.ok_ticks = state.ok_ticks.saturating_add(1);
                    state.bad_ticks = 0;
                    if state.firing && state.ok_ticks >= slo.clear_ticks {
                        state.firing = false;
                        transition = Some(false);
                    }
                }
                let firing = state.firing;
                if let Some(fired) = transition {
                    self.transitions_counter.inc();
                    if crate::enabled() {
                        recorder().record(
                            EventKind::Point,
                            self.alert_name_id,
                            0,
                            0,
                            u64::from(fired),
                            now_ns,
                        );
                    }
                    if self.events.len() == EVENT_LOG_CAP {
                        self.events.pop_front();
                        self.events_dropped += 1;
                    }
                    self.events.push_back(AlertEvent {
                        t_ns: now_ns,
                        slo: slo.name.clone(),
                        member: member.clone(),
                        firing: fired,
                        severity: slo.severity,
                        fast_burn: fast_burn.unwrap_or(0.0),
                        slow_burn: slow_burn.unwrap_or(0.0),
                        value: fast.unwrap_or(0.0),
                    });
                }
                rows.push(SloRow {
                    slo: slo.name.clone(),
                    member,
                    fast_value: fast,
                    fast_burn,
                    slow_burn,
                    budget: slo.max.or(slo.min).unwrap_or(0.0),
                    firing,
                    severity: slo.severity,
                });
            }
        }

        let firing_total = u64::try_from(rows.iter().filter(|r| r.firing).count()).unwrap_or(0);
        self.firing_gauge.set(firing_total);
        self.last_rows = rows;
        self.advance_rsu_states();
    }

    /// Applies the latest rows' pressure to every registered RSU machine.
    fn advance_rsu_states(&mut self) {
        // Pass 1: the pressure each RSU is under. A member alert presses on
        // the RSU it names; scalar and foreign-member alerts (consumer
        // groups, global stages) press on every RSU.
        let mut targets: BTreeMap<&str, HealthState> =
            self.rsus.keys().map(|k| (k.as_str(), HealthState::Healthy)).collect();
        for row in self.last_rows.iter().filter(|r| r.firing) {
            let pressed = match row.severity {
                Severity::Degraded => HealthState::Degraded,
                Severity::Overloaded => HealthState::Overloaded,
            };
            match row.member.as_deref().filter(|m| targets.contains_key(m)) {
                Some(member) => {
                    if let Some(t) = targets.get_mut(member) {
                        *t = (*t).max(pressed);
                    }
                }
                None => {
                    for t in targets.values_mut() {
                        *t = (*t).max(pressed);
                    }
                }
            }
        }
        let targets: BTreeMap<String, HealthState> =
            targets.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
        // Pass 2: hysteresis.
        for (name, rsu) in &mut self.rsus {
            let target = targets.get(name).copied().unwrap_or(HealthState::Healthy);
            if target > rsu.state {
                rsu.worse_ticks = rsu.worse_ticks.saturating_add(1);
                rsu.better_ticks = 0;
                if rsu.worse_ticks >= self.contract.escalate_ticks {
                    rsu.state = target;
                    rsu.worse_ticks = 0;
                }
            } else if target < rsu.state {
                rsu.better_ticks = rsu.better_ticks.saturating_add(1);
                rsu.worse_ticks = 0;
                if rsu.better_ticks >= self.contract.recover_ticks {
                    rsu.state = match rsu.state {
                        HealthState::Overloaded => HealthState::Degraded,
                        _ => HealthState::Healthy,
                    };
                    rsu.better_ticks = 0;
                }
            } else {
                rsu.worse_ticks = 0;
                rsu.better_ticks = 0;
            }
            rsu.gauge.set(rsu.state.as_gauge());
        }
    }

    /// Evaluation ticks so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The snapshot ring (for console window readouts).
    pub fn ring(&self) -> &SnapshotRing {
        &self.ring
    }

    /// The latest tick's evaluated rows.
    pub fn rows(&self) -> &[SloRow] {
        &self.last_rows
    }

    /// Currently firing rows.
    pub fn firing(&self) -> impl Iterator<Item = &SloRow> {
        self.last_rows.iter().filter(|r| r.firing)
    }

    /// The bounded alert-transition log (oldest first) and how many events
    /// it has shed.
    pub fn events(&self) -> (&VecDeque<AlertEvent>, u64) {
        (&self.events, self.events_dropped)
    }

    /// Every registered RSU with its current state, name-ordered.
    pub fn states(&self) -> Vec<(String, HealthState)> {
        self.rsus.iter().map(|(n, r)| (n.clone(), r.state)).collect()
    }
}

/// The `rsu.health.state.<rsu>` gauge name for `rsu` — shared between the
/// monitor's publisher and the handover-time reader in `cad3`.
pub fn state_gauge_name(rsu: &str) -> String {
    format!("{}.{rsu}", names::RSU_HEALTH_STATE_PREFIX)
}

/// Members of a dynamic family present in the newest snapshot: the
/// suffixes of `<family>.<member>` keys across counters and gauges.
fn family_members(ring: &SnapshotRing, family: &str) -> Vec<String> {
    let Some((_, snap)) = ring.latest() else { return Vec::new() };
    let prefix = format!("{family}.");
    snap.gauges
        .keys()
        .chain(snap.counters.keys())
        .filter_map(|k| k.strip_prefix(&prefix))
        .map(str::to_owned)
        .collect()
}

/// Derives one scalar from the window, or `None` when the window holds no
/// data for the metric yet (absence never violates).
fn signal_value(ring: &SnapshotRing, key: &str, signal: SignalKind, window_ns: u64) -> Option<f64> {
    match signal {
        SignalKind::P50 | SignalKind::P95 | SignalKind::P99 | SignalKind::Mean => {
            let h = ring.histogram_window(key, window_ns)?;
            if h.count == 0 {
                return None;
            }
            Some(match signal {
                SignalKind::P50 => h.p50() as f64,
                SignalKind::P95 => h.p95() as f64,
                SignalKind::P99 => h.p99() as f64,
                _ => h.mean(),
            })
        }
        SignalKind::Rate => ring.counter_rate(key, window_ns),
        SignalKind::Delta => ring.counter_delta(key, window_ns).map(|d| d as f64),
        SignalKind::Value => ring.gauge_max(key, window_ns).map(|v| v as f64),
    }
}

/// Burn multiple: how many times over budget the signal is. For an upper
/// bound this is `value / max`; for a lower bound, `min / value`. A zero
/// budget burns infinitely as soon as the signal leaves zero, which is how
/// "must stay zero" objectives (`max = 0`) are expressed.
fn burn(slo: &SloSpec, value: f64) -> f64 {
    if let Some(max) = slo.max {
        if max > 0.0 {
            value / max
        } else if value > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else if let Some(min) = slo.min {
        if value > 0.0 {
            min / value
        } else if min > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        0.0
    }
}

/// Renders alert events as JSON Lines, one transition per line.
pub fn alerts_jsonl<'a>(events: impl IntoIterator<Item = &'a AlertEvent>) -> String {
    let mut out = String::new();
    for e in events {
        let member = match &e.member {
            Some(m) => format!("\"{}\"", export::json_escape(m)),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "{{\"t_ns\":{},\"slo\":\"{}\",\"member\":{member},\"firing\":{},\"severity\":\"{}\",\"fast_burn\":{:.4},\"slow_burn\":{:.4},\"value\":{:.4}}}\n",
            e.t_ns,
            export::json_escape(&e.slo),
            e.firing,
            e.severity.as_str(),
            e.fast_burn,
            e.slow_burn,
            e.value,
        ));
    }
    out
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    fn contract(text: &str) -> SloContract {
        SloContract::parse(text).unwrap()
    }

    fn gauge_snap(entries: &[(&str, u64)]) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Map::new(),
            gauges: entries.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            histograms: Map::new(),
            exemplars: Map::new(),
        }
    }

    const LAG_CONTRACT: &str = r#"
        [health]
        tick_ms = 100
        escalate_ticks = 2
        recover_ticks = 3

        [slo.rsu.lag_ceiling]
        metric = "rsu.lag"
        per_member = true
        signal = "value"
        max = 100
        fast_window_ms = 200
        slow_window_ms = 400
        for_ticks = 2
        clear_ticks = 2
        severity = "overloaded"
    "#;

    #[test]
    fn parser_round_trips_the_lag_contract() {
        let c = contract(LAG_CONTRACT);
        assert_eq!(c.tick_ns, 100_000_000);
        assert_eq!(c.escalate_ticks, 2);
        assert_eq!(c.slos.len(), 1);
        let s = &c.slos[0];
        assert_eq!(s.name, "rsu.lag_ceiling");
        assert_eq!(s.metric, "rsu.lag");
        assert!(s.per_member);
        assert_eq!(s.signal, SignalKind::Value);
        assert_eq!(s.max, Some(100.0));
        assert_eq!(s.fast_window_ns, 200_000_000);
        assert_eq!(s.severity, Severity::Overloaded);
    }

    #[test]
    fn parser_rejects_drift() {
        for bad in [
            "[slo.Bad-Name]\nmetric = \"a\"\nmax = 1",
            "[health]\nunknown_key = 1",
            "[slo.a.b]\nmetric = \"a\"\nmax = 1\nmin = 0",
            "[slo.a.b]\nmetric = \"a\"",
            "[slo.a.b]\nmetric = \"a\"\nmax = 1\nsignal = \"p98\"",
            "[mystery]\nx = 1",
            "stray = 1",
            "[slo.a.b]\nmetric = \"a\"\nmax = 1\nfast_window_ms = 900\nslow_window_ms = 300",
        ] {
            assert!(SloContract::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn comments_and_quotes_strip_cleanly() {
        assert_eq!(strip_comment("a = 1 # note"), "a = 1 ");
        assert_eq!(strip_comment("m = \"a#b\" # note"), "m = \"a#b\" ");
        assert_eq!(strip_comment("# whole line"), "");
    }

    /// Scripted snapshots: lag breaches on ticks 3..=6, then drains. The
    /// alert needs both windows burning for 2 ticks to fire and 2 quiet
    /// ticks to clear; the RSU machine escalates after 2 pressured ticks
    /// and recovers after 3 quiet ones.
    #[test]
    fn burn_rate_hysteresis_fires_and_clears() {
        let mut mon = HealthMonitor::new(contract(LAG_CONTRACT));
        mon.register_rsu("rsu-hy-a");
        mon.register_rsu("rsu-hy-b");
        let tick = 100_000_000u64;
        let lag_at = |t: u64| if (3..=6).contains(&t) { 500 } else { 10 };
        let mut fired_at = None;
        let mut cleared_at = None;
        for i in 0..16u64 {
            mon.observe(
                i * tick,
                gauge_snap(&[("rsu.lag.rsu-hy-a", lag_at(i)), ("rsu.lag.rsu-hy-b", 10)]),
            );
            let firing = mon.firing().count();
            if firing > 0 && fired_at.is_none() {
                fired_at = Some(i);
            }
            if fired_at.is_some() && firing == 0 && cleared_at.is_none() {
                cleared_at = Some(i);
            }
        }
        // Breach starts at tick 3; for_ticks=2 -> fires on tick 4.
        assert_eq!(fired_at, Some(4));
        // gauge_max holds the 500 in-window after the breach ends (window
        // spans 400ms = 4 ticks), so clearing waits for the window to
        // drain plus clear_ticks=2 quiet ticks.
        let cleared = cleared_at.unwrap();
        assert!(cleared > 8, "cleared too early at {cleared}");
        let (events, dropped) = mon.events();
        assert_eq!(dropped, 0);
        let kinds: Vec<bool> = events.iter().map(|e| e.firing).collect();
        assert_eq!(kinds, vec![true, false], "exactly one fire and one clear");
        assert_eq!(events[0].member.as_deref(), Some("rsu-hy-a"));
        assert_eq!(events[0].severity, Severity::Overloaded);
        assert!(events[0].fast_burn >= 5.0, "{}", events[0].fast_burn);
    }

    #[test]
    fn rsu_state_machine_escalates_only_the_named_member() {
        let mut mon = HealthMonitor::new(contract(LAG_CONTRACT));
        mon.register_rsu("rsu-sm-a");
        mon.register_rsu("rsu-sm-b");
        let tick = 100_000_000u64;
        for i in 0..8u64 {
            mon.observe(
                i * tick,
                gauge_snap(&[("rsu.lag.rsu-sm-a", 500), ("rsu.lag.rsu-sm-b", 1)]),
            );
        }
        let states: Map<_, _> = mon.states().into_iter().collect();
        assert_eq!(states["rsu-sm-a"], HealthState::Overloaded);
        assert_eq!(states["rsu-sm-b"], HealthState::Healthy);
        // And the published gauges agree.
        let snap = registry().snapshot();
        assert_eq!(snap.gauge(&state_gauge_name("rsu-sm-a")), 2);
        assert_eq!(snap.gauge(&state_gauge_name("rsu-sm-b")), 0);
        // Recovery steps down one level at a time.
        for i in 8..40u64 {
            mon.observe(i * tick, gauge_snap(&[("rsu.lag.rsu-sm-a", 1), ("rsu.lag.rsu-sm-b", 1)]));
        }
        let states: Map<_, _> = mon.states().into_iter().collect();
        assert_eq!(states["rsu-sm-a"], HealthState::Healthy);
    }

    #[test]
    fn unattributed_alerts_press_every_rsu() {
        let text = r#"
            [health]
            escalate_ticks = 1
            recover_ticks = 2

            [slo.global.queue]
            metric = "engine.batch.queue_depth"
            signal = "value"
            max = 5
            fast_window_ms = 100
            slow_window_ms = 200
            for_ticks = 1
            clear_ticks = 1
            severity = "degraded"
        "#;
        let mut mon = HealthMonitor::new(contract(text));
        mon.register_rsu("rsu-ua-a");
        mon.register_rsu("rsu-ua-b");
        for i in 0..4u64 {
            mon.observe(i * 100_000_000, gauge_snap(&[("engine.batch.queue_depth", 50)]));
        }
        for (_, state) in mon.states() {
            assert_eq!(state, HealthState::Degraded, "degraded alerts cap at degraded");
        }
    }

    #[test]
    fn zero_budget_expresses_must_stay_zero() {
        let slo = SloSpec {
            name: "z".to_owned(),
            metric: "m".to_owned(),
            per_member: false,
            signal: SignalKind::Value,
            max: Some(0.0),
            min: None,
            fast_window_ns: 1,
            slow_window_ns: 1,
            burn_threshold: 1.0,
            for_ticks: 1,
            clear_ticks: 1,
            severity: Severity::Degraded,
        };
        assert_eq!(burn(&slo, 0.0), 0.0);
        assert_eq!(burn(&slo, 0.5), f64::INFINITY);
    }

    #[test]
    fn alerts_jsonl_is_valid_shape() {
        let e = AlertEvent {
            t_ns: 5,
            slo: "a.b".to_owned(),
            member: Some("g\"1".to_owned()),
            firing: true,
            severity: Severity::Overloaded,
            fast_burn: 2.0,
            slow_burn: 1.5,
            value: 42.0,
        };
        let line = alerts_jsonl([&e]);
        assert!(line.starts_with("{\"t_ns\":5,\"slo\":\"a.b\",\"member\":\"g\\\"1\""), "{line}");
        assert!(line.contains("\"severity\":\"overloaded\""));
        assert!(line.ends_with("}\n"));
        let scalar = AlertEvent { member: None, ..e };
        assert!(alerts_jsonl([&scalar]).contains("\"member\":null"));
    }
}

//! Zero-dependency observability substrate for the CAD3 pipeline.
//!
//! The paper's headline results are *measurements* — the Fig. 6a latency
//! decomposition, per-stage processing time, bandwidth scaling — so the
//! pipeline instruments itself instead of relying on external stopwatches:
//!
//! * a **metrics registry** ([`registry`]) of atomic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed [`Histogram`]s (p50/p95/p99/max), mergeable
//!   across threads via sharded cells;
//! * **structured spans** ([`span!`]) with parent/child ids, tracing one
//!   vehicle record DSRC-ingest → partition append → consumer poll → NB
//!   predict → handover fuse → alert, with the Fig. 6a stages as first-class
//!   span names;
//! * a **flight recorder** ([`recorder`]): a fixed-size lock-free ring of
//!   recent span events, dumpable on demand or from a panic hook
//!   ([`install_panic_dump`]);
//! * **exporters**: Prometheus-style text ([`export::prometheus_text`]),
//!   JSONL event logs ([`export::events_jsonl`]) and the
//!   [`MetricsSnapshot`] API the bench crate consumes.
//!
//! # Overhead policy
//!
//! The substrate is built to sit permanently in the hot path:
//!
//! * **Per-record instrumentation is gated** on [`enabled`], which is off
//!   by default ("no exporter attached"): span timing, latency histograms,
//!   the flight recorder, derived gauges (consumer lag, queue depth) *and*
//!   the per-record counters on the broker/producer/consumer/link paths all
//!   reduce to one relaxed load + untaken branch when disabled. Even a
//!   sharded relaxed `fetch_add` is measurable at ~300 ns/op
//!   (EXPERIMENTS.md), so nothing per-record runs unconditionally.
//! * **Batch-granularity counters are always on** (micro-batches executed,
//!   RSU records/warnings, alerts, flushes): one relaxed RMW on an
//!   uncontended, cache-padded shard, amortised over a whole batch —
//!   cheaper than the locks the instrumented operation already takes.
//! * **The registry mutex is off the hot path**: the [`counter!`],
//!   [`gauge!`], [`histogram!`] and [`span!`] macros cache their handle in
//!   a per-call-site `OnceLock`, so steady-state instrumentation never
//!   locks.
//!
//! The enforced budget: with the exporter detached, the instrumented broker
//! append + consumer poll benchmarks regress < 5% (see EXPERIMENTS.md).
//!
//! # Example
//!
//! ```
//! cad3_obs::set_enabled(true);
//! {
//!     let _batch = cad3_obs::span!("rsu.micro_batch", 3);
//!     cad3_obs::counter!("rsu.records").add(3);
//!     cad3_obs::histogram!("rsu.processing_us").observe(7_300);
//! }
//! let snap = cad3_obs::registry().snapshot();
//! assert_eq!(snap.counter("rsu.records"), 3);
//! let text = cad3_obs::export::prometheus_text(&snap);
//! assert!(text.contains("cad3_rsu_records_total 3"));
//! cad3_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod health;
mod metrics;
pub mod names;
pub mod profile;
mod recorder;
mod registry;
mod span;
mod sync;
pub mod trace;
pub mod window;

pub use health::{AlertEvent, HealthMonitor, HealthState, Severity, SloContract};
pub use metrics::{
    bucket_lower, bucket_upper, Counter, Exemplar, Gauge, Histogram, HistogramSnapshot,
};
pub use profile::{ProfileSnapshot, ProfileToken, StackView, StageTotals};
pub use recorder::{install_panic_dump, recorder, EventKind, FlightRecorder, SpanEvent};
pub use registry::{registry, MetricsSnapshot, Registry};
pub use span::{point, SpanGuard, SpanSite};
pub use trace::{TraceContext, TraceEvent};
pub use window::SnapshotRing;

/// Shared handle to a registered metric cell, as returned by the registry
/// getters — `std::sync::Arc` in normal builds, loom's under `--cfg loom`.
/// Instrumented crates store these to keep steady-state publishing to a
/// single atomic op (no name formatting, no registry lock).
pub use crate::sync::Arc as Handle;

/// The process-wide "exporter attached" gate. A plain std atomic even under
/// loom — see `sync.rs` on what stays outside the model-checked facade.
static ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether exporter-grade instrumentation (spans, latency histograms,
/// derived gauges, the flight recorder, per-record counters) is active.
/// Batch-granularity counters are always on (see the crate-level overhead
/// policy).
pub fn enabled() -> bool {
    // ordering: Relaxed — an advisory on/off flag; instrumentation reads it
    // independently per site and nothing is published through it.
    ENABLED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Attaches ("true") or detaches the exporter-grade instrumentation.
pub fn set_enabled(on: bool) {
    // ordering: Relaxed — see [`enabled`]; late observation of the flip
    // only delays the first/last gated sample.
    ENABLED.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// The counter named by the literal, as a `&'static Counter`. The registry
/// lookup runs once per call site; afterwards this is a single atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __OBS_HANDLE: ::std::sync::OnceLock<$crate::__Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**__OBS_HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// The gauge named by the literal, cached like [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __OBS_HANDLE: ::std::sync::OnceLock<$crate::__Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__OBS_HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// The histogram named by the literal, cached like [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __OBS_HANDLE: ::std::sync::OnceLock<$crate::__Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**__OBS_HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Enters a span, returning its RAII guard; the optional second argument is
/// a `u64` payload recorded on the enter event (batch size, vehicle count).
/// Inert (no clock read, no recorder write) unless [`enabled`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span!($name, 0u64)
    };
    ($name:expr, $value:expr) => {{
        static __OBS_SITE: ::std::sync::OnceLock<$crate::SpanSite> = ::std::sync::OnceLock::new();
        $crate::SpanGuard::enter(
            __OBS_SITE.get_or_init(|| $crate::SpanSite::register($name)),
            $value,
        )
    }};
}

/// Enters a **profile-only** stage, returning its RAII guard: the stage
/// accounts into the continuous profiler's stage tree and the thread's
/// live stack ([`profile`]), but never touches the flight recorder, the
/// span-id counter or any histogram. This is the form safe inside parallel
/// workers, where recorder writes would make deterministic-replay
/// artifacts schedule-dependent. The name must be a string literal from
/// [`names`] (checked by `cargo xtask lint`'s `profile-names` rule).
/// Inert (no clock read) unless [`enabled`].
#[macro_export]
macro_rules! profile_span {
    ($name:expr) => {{
        static __OBS_STAGE: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
        $crate::profile::StageGuard::enter(
            *__OBS_STAGE.get_or_init(|| $crate::registry().intern_name($name)),
        )
    }};
}

/// Emits one complete distributed-trace span (`start..end` of virtual time,
/// in nanoseconds) on an active [`TraceContext`], returning the new span id
/// for [`TraceContext::child`]/[`TraceContext::next_hop`] chaining. The
/// name must be a string literal from [`names`] (checked by `cargo xtask
/// lint`'s `span-names` rule); the optional trailing argument is a free
/// `u64` payload. Callers gate on holding a context — a sampled-out record
/// carries `None` and never reaches this macro.
#[macro_export]
macro_rules! trace_span {
    ($name:expr, $ctx:expr, $start:expr, $end:expr, $node:expr) => {
        $crate::trace_span!($name, $ctx, $start, $end, $node, 0u64)
    };
    ($name:expr, $ctx:expr, $start:expr, $end:expr, $node:expr, $value:expr) => {
        $crate::trace::emit($ctx, $name, $start, $end, $node, $value)
    };
}

/// [`trace_span!`] with a pre-reserved span id ([`trace::reserve_ids`]):
/// the form parallel workers use so id allocation happens once, in input
/// order, on the coordinating thread. Same literal-name rule as
/// [`trace_span!`] (the `span-names` lint checks this macro too).
#[macro_export]
macro_rules! trace_span_at {
    ($name:expr, $span:expr, $ctx:expr, $start:expr, $end:expr, $node:expr) => {
        $crate::trace_span_at!($name, $span, $ctx, $start, $end, $node, 0u64)
    };
    ($name:expr, $span:expr, $ctx:expr, $start:expr, $end:expr, $node:expr, $value:expr) => {
        $crate::trace::emit_at($span, $ctx, $name, $start, $end, $node, $value)
    };
}

// The macros above expand in downstream crates, which may not depend on the
// sync facade's Arc by its own path; re-export it under a doc-hidden name.
#[doc(hidden)]
pub use crate::sync::Arc as __Arc;

#[cfg(all(test, not(loom)))]
mod tests {
    #[test]
    fn gate_defaults_off_and_toggles() {
        // Other tests toggle the gate too; just exercise the round trip.
        crate::set_enabled(false);
        assert!(!crate::enabled());
        crate::set_enabled(true);
        assert!(crate::enabled());
        crate::set_enabled(false);
    }

    #[test]
    fn macro_handles_are_shared_per_name() {
        crate::counter!("test.lib.counter").add(2);
        crate::counter!("test.lib.counter").add(3);
        assert_eq!(crate::registry().snapshot().counter("test.lib.counter"), 5);
        crate::gauge!("test.lib.gauge").set(9);
        assert_eq!(crate::registry().snapshot().gauge("test.lib.gauge"), 9);
        crate::histogram!("test.lib.histogram").observe(50);
        let snap = crate::registry().snapshot();
        let h = snap.histogram("test.lib.histogram").expect("registered");
        assert_eq!(h.count, 1);
    }
}

//! Metric primitives: sharded counters, gauges and log-bucketed histograms.
//!
//! All three are write-optimised for hot paths: updates touch only atomics
//! in a per-thread shard (no locks, no allocation), and reads *merge* the
//! shards into a consistent snapshot. With the exporter detached the cost
//! of a counter update is one relaxed `fetch_add` on an uncontended cache
//! line; histogram observations are three relaxed RMWs plus a CAS loop for
//! the maximum.
//!
//! # Ordering policy
//!
//! Every cell is an independent monotone statistic that no code uses to
//! synchronise other memory (the same policy as `cad3_stream::Producer`'s
//! counters). All accesses are `Relaxed`; a merged snapshot taken during
//! concurrent writes may lag in-flight updates and its `sum`/`max` need not
//! be mutually consistent with the bucket totals at any instant, but once
//! writers are quiescent (e.g. after a thread join) the merge is exact —
//! the property model-checked in `tests/loom_obs.rs`.

use crate::sync::{AtomicU64, Ordering};

/// Number of per-thread shards per metric. Threads are assigned shards
/// round-robin; more shards than typical worker counts buys nothing, and
/// each histogram shard carries its own bucket array.
pub(crate) const SHARDS: usize = 4;

/// Number of histogram buckets: bucket `b` holds values with exactly `b`
/// significant bits (`0` itself in bucket 0, `v ∈ [2^(b-1), 2^b)` in bucket
/// `b ≥ 1`), so the relative quantile error is bounded by one power of two.
pub const BUCKETS: usize = 65;

/// The shard this thread writes to.
///
/// The cache is a const-initialized `Cell` rather than a lazily-computed
/// `thread_local!` value: const TLS compiles to a direct slot access with
/// no per-call init flag or destructor check, which matters on the broker
/// append path (see EXPERIMENTS.md "Observability overhead").
pub(crate) fn shard_index() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let cached = s.get();
        if cached != usize::MAX {
            return cached;
        }
        // ordering: Relaxed — the counter only distributes threads over
        // shards round-robin; any interleaving is equally correct.
        let assigned = NEXT.fetch_add(1, StdOrdering::Relaxed) % SHARDS;
        s.set(assigned);
        assigned
    })
}

/// One cache line per shard so concurrent writers do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64 {
    value: AtomicU64,
}

/// A monotone counter, sharded across cache-padded cells.
#[derive(Debug)]
pub struct Counter {
    cells: Vec<PaddedU64>,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter { cells: (0..SHARDS).map(|_| PaddedU64 { value: AtomicU64::new(0) }).collect() }
    }

    /// Adds `n` to this thread's shard.
    pub fn add(&self, n: u64) {
        // hotpath-exempt(panic): shard_index() < SHARDS, and `cells` is built
        // with exactly SHARDS entries in new().
        // ordering: Relaxed — independent statistic; see the module policy.
        self.cells[shard_index()].value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The merged total across all shards.
    pub fn value(&self) -> u64 {
        // ordering: Relaxed — merging monotone statistics; see the
        // module-level ordering policy.
        self.cells.iter().map(|c| c.value.load(Ordering::Relaxed)).sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A last-value-wins gauge (e.g. consumer lag, queue depth).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Gauge { value: AtomicU64::new(0) }
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        // ordering: Relaxed — independent statistic; see the module-level
        // ordering policy.
        self.value.store(v, Ordering::Relaxed);
    }

    /// The last value set.
    pub fn value(&self) -> u64 {
        // ordering: Relaxed — independent statistic; see the module-level
        // ordering policy.
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// One histogram shard: a full bucket array plus sum and max. `count` is
/// derived from the buckets at merge time so a snapshot's count always
/// equals its bucket total.
#[repr(align(64))]
#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A tail-latency exemplar: the last observation published into a bucket,
/// linked to the distributed trace that produced it. `trace_id == 0` never
/// occurs (ids are minted from 1), so 0 doubles as the empty-slot marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The [`crate::TraceContext`] trace id that produced the observation.
    pub trace_id: u64,
    /// The observed value (same unit as the histogram).
    pub value: u64,
}

/// One exemplar slot: the (trace_id, value) pair is published as two
/// relaxed stores with last-writer-wins semantics per field. A reader
/// racing a writer may pair a fresh trace id with the previous value (or
/// vice versa) — the documented "relaxed, overwrite-on-race" contract:
/// exemplars are debugging breadcrumbs, and any published trace id is a
/// real trace worth expanding. `trace_id == 0` means never written.
#[derive(Debug)]
struct ExemplarSlot {
    trace_id: AtomicU64,
    value: AtomicU64,
}

impl ExemplarSlot {
    fn new() -> Self {
        ExemplarSlot { trace_id: AtomicU64::new(0), value: AtomicU64::new(0) }
    }
}

/// Index of the log2 bucket holding `v`: its number of significant bits.
pub(crate) fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `b`.
pub fn bucket_lower(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1).min(63)
    }
}

/// Inclusive upper bound of bucket `b`.
pub fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A log2-bucketed latency histogram, mergeable across threads via sharded
/// cells. Values are whatever unit the call site chooses (the workspace
/// convention encodes the unit in the metric name: `*_ns`, `*_us`).
#[derive(Debug)]
pub struct Histogram {
    cells: Vec<HistogramCell>,
    /// One slot per bucket when exemplar capture is enabled for this
    /// histogram (the registry opts catalogue names in via
    /// [`crate::names::EXEMPLAR_HISTOGRAMS`]); `None` costs nothing.
    exemplars: Option<Box<[ExemplarSlot]>>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { cells: (0..SHARDS).map(|_| HistogramCell::new()).collect(), exemplars: None }
    }

    /// Creates an empty histogram with one exemplar slot per bucket.
    pub fn with_exemplars() -> Self {
        let mut h = Histogram::new();
        h.exemplars = Some((0..BUCKETS).map(|_| ExemplarSlot::new()).collect());
        h
    }

    /// Records one observation into this thread's shard.
    pub fn observe(&self, v: u64) {
        // hotpath-exempt(panic): shard_index() is reduced modulo SHARDS and the
        // cells vec is built with exactly SHARDS entries in new().
        let cell = &self.cells[shard_index()];
        // hotpath-exempt(panic): bucket_index() is at most 64; BUCKETS is 65.
        // ordering: Relaxed — independent statistics; see the module policy.
        cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
        // Lock-free running maximum (fetch_max by hand so the loom facade,
        // which models only load/store/fetch_add/compare_exchange, covers it).
        // ordering: Relaxed — the max is a statistic like the rest.
        let mut seen = cell.max.load(Ordering::Relaxed);
        while v > seen {
            match cell.max.compare_exchange(seen, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => seen = actual,
            }
        }
    }

    /// Records one observation, publishing it as the bucket's exemplar if
    /// this histogram carries exemplar slots and `trace_id` is nonzero.
    /// `trace_id == 0` (sampled-out record, no active trace) behaves
    /// exactly like [`Self::observe`].
    pub fn observe_with_exemplar(&self, v: u64, trace_id: u64) {
        self.observe(v);
        if trace_id == 0 {
            return;
        }
        let Some(slots) = &self.exemplars else { return };
        // hotpath-exempt(panic): bucket_index() is at most 64; the slot
        // table is built with exactly BUCKETS (65) entries.
        let slot = &slots[bucket_index(v)];
        // ordering: Relaxed — overwrite-on-race exemplar publish; the two
        // fields are independently last-writer-wins (see ExemplarSlot).
        slot.value.store(v, Ordering::Relaxed);
        // ordering: Relaxed — same overwrite-on-race publish as above.
        slot.trace_id.store(trace_id, Ordering::Relaxed);
    }

    /// The exemplars currently published, as (bucket index, exemplar)
    /// pairs. Empty when this histogram has no exemplar slots or none has
    /// been written yet.
    pub fn exemplars(&self) -> Vec<(usize, Exemplar)> {
        let Some(slots) = &self.exemplars else { return Vec::new() };
        let mut out = Vec::new();
        for (b, slot) in slots.iter().enumerate() {
            // ordering: Relaxed — overwrite-on-race exemplar read; a torn
            // (id, value) pairing is an accepted outcome (see ExemplarSlot).
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            if trace_id == 0 {
                continue;
            }
            // ordering: Relaxed — same exemplar read as above.
            let value = slot.value.load(Ordering::Relaxed);
            out.push((b, Exemplar { trace_id, value }));
        }
        out
    }

    /// Merges every shard into one immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for cell in &self.cells {
            for (b, merged) in buckets.iter_mut().enumerate() {
                // ordering: Relaxed — merging monotone statistics; see the
                // module-level ordering policy.
                *merged += cell.buckets[b].load(Ordering::Relaxed);
            }
            // ordering: Relaxed — same statistic merge as above.
            sum = sum.saturating_add(cell.sum.load(Ordering::Relaxed));
            // ordering: Relaxed — same statistic merge as above.
            max = max.max(cell.max.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count, sum, max }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An immutable merged view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations (always equals the bucket total).
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    /// An empty snapshot — the zero element of windowed subtraction (see
    /// `crate::window`).
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the *upper bound* of the bucket
    /// containing that rank, so the estimate is within one bucket width of
    /// the exact order statistic. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the observed values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_shards() {
        let c = Counter::new();
        c.add(3);
        c.inc();
        assert_eq!(c.value(), 4);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let g = Gauge::new();
        assert_eq!(g.value(), 0);
        g.set(17);
        g.set(5);
        assert_eq!(g.value(), 5);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(b)), b, "lower bound of {b}");
            assert_eq!(bucket_index(bucket_upper(b)), b, "upper bound of {b}");
        }
    }

    #[test]
    fn histogram_counts_and_max() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 900, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1906);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[10], 2, "900 and 1000 both have 10 significant bits");
    }

    #[test]
    fn quantiles_bound_the_order_statistic() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        // Exact p50 is 500 (bucket 9: 256..=511); the estimate is that
        // bucket's upper bound.
        assert_eq!(s.p50(), 511);
        assert_eq!(s.p99(), 1023);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn exemplars_capture_the_last_trace_per_bucket() {
        let h = Histogram::with_exemplars();
        h.observe_with_exemplar(900, 0xabc);
        h.observe_with_exemplar(1000, 0xdef);
        h.observe_with_exemplar(3, 7);
        let ex = h.exemplars();
        // 900 and 1000 share bucket 10; the later write wins.
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0], (2, Exemplar { trace_id: 7, value: 3 }));
        assert_eq!(ex[1], (10, Exemplar { trace_id: 0xdef, value: 1000 }));
    }

    #[test]
    fn zero_trace_id_observes_without_publishing() {
        let h = Histogram::with_exemplars();
        h.observe_with_exemplar(42, 0);
        assert_eq!(h.snapshot().count, 1);
        assert!(h.exemplars().is_empty());
    }

    #[test]
    fn plain_histograms_have_no_exemplars() {
        let h = Histogram::new();
        h.observe_with_exemplar(42, 9);
        assert_eq!(h.snapshot().count, 1, "the observation still lands");
        assert!(h.exemplars().is_empty());
    }

    #[test]
    fn histogram_merges_across_threads() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        h.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 3249);
    }
}

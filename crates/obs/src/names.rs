//! The canonical metric and span name catalogue.
//!
//! Every name the workspace's instrumentation registers is listed here, so
//! the namespace has one authoritative index (dashboards, the e2e CI
//! assertion and DESIGN.md all read from this list) and a unit test can
//! hold the naming convention: lowercase dotted segments, with the unit
//! suffixed to histogram names (`_ns`, `_us`).
//!
//! Call sites pass these names as string literals (so `cargo xtask lint`'s
//! `obs-names` rule can check them without name resolution); this module is
//! the registry those literals must match, enforced by [`ALL`] in tests.

/// Records appended through `Broker::produce` (counter).
pub const STREAM_BROKER_PRODUCE: &str = "stream.broker.produce";
/// Records returned by `Broker::fetch` (counter).
pub const STREAM_BROKER_FETCH_RECORDS: &str = "stream.broker.fetch.records";
/// `Broker::produce` latency, nanoseconds (histogram; exporter-gated).
pub const STREAM_BROKER_PRODUCE_NS: &str = "stream.broker.produce_ns";
/// `Broker::fetch` latency, nanoseconds (histogram; exporter-gated).
pub const STREAM_BROKER_FETCH_NS: &str = "stream.broker.fetch_ns";
/// Records published by `Producer::send*` (counter).
pub const STREAM_PRODUCER_RECORDS: &str = "stream.producer.records";
/// Bytes published by `Producer::send*` (counter).
pub const STREAM_PRODUCER_BYTES: &str = "stream.producer.bytes";
/// Batches flushed by `BatchingProducer` (counter).
pub const STREAM_PRODUCER_BATCHES: &str = "stream.producer.batches";
/// `Consumer::poll` calls (counter).
pub const STREAM_CONSUMER_POLLS: &str = "stream.consumer.polls";
/// Records delivered by `Consumer::poll` (counter).
pub const STREAM_CONSUMER_RECORDS: &str = "stream.consumer.records";
/// Per-group committed-vs-head lag gauge prefix; the group name is
/// appended: `stream.consumer.lag.<group>`.
pub const STREAM_CONSUMER_LAG_PREFIX: &str = "stream.consumer.lag";

/// Micro-batches executed by `MicroBatchRunner` (counter).
pub const ENGINE_BATCHES: &str = "engine.batches";
/// Records carried by executed micro-batches (counter).
pub const ENGINE_BATCH_RECORDS: &str = "engine.batch.records";
/// Consumer backlog observed just before each poll (gauge; exporter-gated).
pub const ENGINE_BATCH_QUEUE_DEPTH: &str = "engine.batch.queue_depth";
/// Wall-clock micro-batch time, nanoseconds (histogram; exporter-gated).
pub const ENGINE_BATCH_WALL_NS: &str = "engine.batch.wall_ns";
/// Scheduler tick start minus its planned instant, nanoseconds
/// (histogram; exporter-gated).
pub const ENGINE_TICK_JITTER_NS: &str = "engine.scheduler.tick_jitter_ns";

/// One RSU micro-batch (span; enter value = record count).
pub const RSU_MICRO_BATCH: &str = "rsu.micro_batch";
/// `CO-DATA` ingest + collaboration fuse stage (span).
pub const RSU_HANDOVER_FUSE: &str = "rsu.handover.fuse";
/// `IN-DATA` ingest stage (span).
pub const RSU_INGEST: &str = "rsu.ingest";
/// Parallel detection stage (span).
pub const RSU_DETECT: &str = "rsu.detect";
/// Status records processed by RSUs (counter).
pub const RSU_RECORDS: &str = "rsu.records";
/// Warnings emitted by RSUs (counter).
pub const RSU_WARNINGS: &str = "rsu.warnings";
/// Collaboration summaries received on `CO-DATA` (counter).
pub const RSU_SUMMARIES_IN: &str = "rsu.handover.summaries_in";
/// Collaboration summaries exported for the next RSU (counter).
pub const RSU_SUMMARIES_OUT: &str = "rsu.handover.summaries_out";

/// Fig. 6a decomposition histograms, microseconds of *modelled* (virtual)
/// time, fed by `cad3::LatencyStats::record` (exporter-gated).
pub const RSU_TX_US: &str = "rsu.tx_us";
/// Queuing stage of the Fig. 6a decomposition (histogram, µs).
pub const RSU_QUEUING_US: &str = "rsu.queuing_us";
/// Processing stage of the Fig. 6a decomposition (histogram, µs).
pub const RSU_PROCESSING_US: &str = "rsu.processing_us";
/// Dissemination stage of the Fig. 6a decomposition (histogram, µs).
pub const RSU_DISSEMINATION_US: &str = "rsu.dissemination_us";
/// End-to-end total of the Fig. 6a decomposition (histogram, µs).
pub const RSU_TOTAL_US: &str = "rsu.total_us";

/// Record emission at the vehicle — the root of every distributed trace
/// (trace span; instant).
pub const VEHICLE_EMIT: &str = "vehicle.emit";
/// DSRC uplink vehicle→RSU, send to modelled arrival (trace span).
pub const NET_DSRC_TX: &str = "net.dsrc.tx";
/// Wired RSU-interconnect transfer; value = queue delay, ns (trace span).
pub const NET_LINK_TX: &str = "net.link.tx";
/// Broker residency before the micro-batch picked the record up
/// (trace span).
pub const RSU_QUEUE: &str = "rsu.queue";
/// Warning publish to driver delivery on `OUT-DATA` (trace span).
pub const RSU_DISSEMINATE: &str = "rsu.disseminate";
/// Flight-recorder events lost to ring wrap (gauge; see
/// `FlightRecorder::dropped`).
pub const OBS_RECORDER_DROPPED: &str = "obs.recorder.dropped";
/// Trace events rejected by the bounded trace sink (gauge).
pub const OBS_TRACE_DROPPED: &str = "obs.trace.dropped";

/// Warnings that reached a driver through `AlertThrottle` (counter).
pub const ALERTS_SENT: &str = "alerts.sent";
/// Warnings suppressed by the alert hold-off window (counter).
pub const ALERTS_SUPPRESSED: &str = "alerts.suppressed";

/// Bytes carried by wired RSU-interconnect links (counter).
pub const NET_LINK_BYTES: &str = "net.link.bytes";
/// Frames carried by wired RSU-interconnect links (counter).
pub const NET_LINK_FRAMES: &str = "net.link.frames";

/// Result artefacts (`results/*.json`, `results/*.prom`) written by the
/// bench harness (counter).
pub const BENCH_RESULTS_WRITTEN: &str = "bench.results.written";
/// Result artefacts the bench harness failed to write (counter).
pub const BENCH_RESULTS_ERRORS: &str = "bench.results.errors";

/// Every catalogued name (spans listed under their bare name; their
/// duration histograms add the `_ns` suffix at registration).
pub const ALL: &[&str] = &[
    STREAM_BROKER_PRODUCE,
    STREAM_BROKER_FETCH_RECORDS,
    STREAM_BROKER_PRODUCE_NS,
    STREAM_BROKER_FETCH_NS,
    STREAM_PRODUCER_RECORDS,
    STREAM_PRODUCER_BYTES,
    STREAM_PRODUCER_BATCHES,
    STREAM_CONSUMER_POLLS,
    STREAM_CONSUMER_RECORDS,
    STREAM_CONSUMER_LAG_PREFIX,
    ENGINE_BATCHES,
    ENGINE_BATCH_RECORDS,
    ENGINE_BATCH_QUEUE_DEPTH,
    ENGINE_BATCH_WALL_NS,
    ENGINE_TICK_JITTER_NS,
    RSU_MICRO_BATCH,
    RSU_HANDOVER_FUSE,
    RSU_INGEST,
    RSU_DETECT,
    RSU_RECORDS,
    RSU_WARNINGS,
    RSU_SUMMARIES_IN,
    RSU_SUMMARIES_OUT,
    RSU_TX_US,
    RSU_QUEUING_US,
    RSU_PROCESSING_US,
    RSU_DISSEMINATION_US,
    RSU_TOTAL_US,
    VEHICLE_EMIT,
    NET_DSRC_TX,
    NET_LINK_TX,
    RSU_QUEUE,
    RSU_DISSEMINATE,
    OBS_RECORDER_DROPPED,
    OBS_TRACE_DROPPED,
    ALERTS_SENT,
    ALERTS_SUPPRESSED,
    NET_LINK_BYTES,
    NET_LINK_FRAMES,
    BENCH_RESULTS_WRITTEN,
    BENCH_RESULTS_ERRORS,
];

/// Whether `name` follows the workspace naming convention: lowercase
/// dot-separated segments of `[a-z0-9_]`, starting each segment with a
/// letter and never ending in a dot.
pub fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg.starts_with(|c: char| c.is_ascii_lowercase())
                && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_valid_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(is_valid_name(name), "bad name {name}");
            assert!(seen.insert(name), "duplicate name {name}");
        }
    }

    #[test]
    fn validity_rejects_bad_shapes() {
        for bad in ["", "Upper.case", "trailing.", ".leading", "sp ace", "dash-ed", "1digit"] {
            assert!(!is_valid_name(bad), "{bad} should be invalid");
        }
        for good in ["a", "rsu.micro_batch", "stream.consumer.lag", "rsu.tx_us", "x9.y_z"] {
            assert!(is_valid_name(good), "{good} should be valid");
        }
    }
}

//! The canonical metric and span name catalogue.
//!
//! Every name the workspace's instrumentation registers is listed here, so
//! the namespace has one authoritative index (dashboards, the e2e CI
//! assertion and DESIGN.md all read from this list) and a unit test can
//! hold the naming convention: lowercase dotted segments, with the unit
//! suffixed to histogram names (`_ns`, `_us`).
//!
//! Call sites pass these names as string literals (so `cargo xtask lint`'s
//! `obs-names` rule can check them without name resolution); this module is
//! the registry those literals must match, enforced by [`ALL`] in tests.

/// Records appended through `Broker::produce` (counter).
pub const STREAM_BROKER_PRODUCE: &str = "stream.broker.produce";
/// Records returned by `Broker::fetch` (counter).
pub const STREAM_BROKER_FETCH_RECORDS: &str = "stream.broker.fetch.records";
/// `Broker::produce` latency, nanoseconds (histogram; exporter-gated).
pub const STREAM_BROKER_PRODUCE_NS: &str = "stream.broker.produce_ns";
/// `Broker::fetch` latency, nanoseconds (histogram; exporter-gated).
pub const STREAM_BROKER_FETCH_NS: &str = "stream.broker.fetch_ns";
/// Records published by `Producer::send*` (counter).
pub const STREAM_PRODUCER_RECORDS: &str = "stream.producer.records";
/// Bytes published by `Producer::send*` (counter).
pub const STREAM_PRODUCER_BYTES: &str = "stream.producer.bytes";
/// Batches flushed by `BatchingProducer` (counter).
pub const STREAM_PRODUCER_BATCHES: &str = "stream.producer.batches";
/// `Consumer::poll` calls (counter).
pub const STREAM_CONSUMER_POLLS: &str = "stream.consumer.polls";
/// Records delivered by `Consumer::poll` (counter).
pub const STREAM_CONSUMER_RECORDS: &str = "stream.consumer.records";
/// Per-group committed-vs-head lag gauge prefix; the group name is
/// appended: `stream.consumer.lag.<group>`.
pub const STREAM_CONSUMER_LAG_PREFIX: &str = "stream.consumer.lag";

/// Micro-batches executed by `MicroBatchRunner` (counter).
pub const ENGINE_BATCHES: &str = "engine.batches";
/// Records carried by executed micro-batches (counter).
pub const ENGINE_BATCH_RECORDS: &str = "engine.batch.records";
/// Consumer backlog observed just before each poll (gauge; exporter-gated).
pub const ENGINE_BATCH_QUEUE_DEPTH: &str = "engine.batch.queue_depth";
/// Wall-clock micro-batch time, nanoseconds (histogram; exporter-gated).
pub const ENGINE_BATCH_WALL_NS: &str = "engine.batch.wall_ns";
/// Scheduler tick start minus its planned instant, nanoseconds
/// (histogram; exporter-gated).
pub const ENGINE_TICK_JITTER_NS: &str = "engine.scheduler.tick_jitter_ns";

/// One RSU micro-batch (span; enter value = record count).
pub const RSU_MICRO_BATCH: &str = "rsu.micro_batch";
/// `CO-DATA` ingest + collaboration fuse stage (span).
pub const RSU_HANDOVER_FUSE: &str = "rsu.handover.fuse";
/// `IN-DATA` ingest stage (span).
pub const RSU_INGEST: &str = "rsu.ingest";
/// Parallel detection stage (span).
pub const RSU_DETECT: &str = "rsu.detect";
/// Status records processed by RSUs (counter).
pub const RSU_RECORDS: &str = "rsu.records";
/// Warnings emitted by RSUs (counter).
pub const RSU_WARNINGS: &str = "rsu.warnings";
/// Collaboration summaries received on `CO-DATA` (counter).
pub const RSU_SUMMARIES_IN: &str = "rsu.handover.summaries_in";
/// Collaboration summaries exported for the next RSU (counter).
pub const RSU_SUMMARIES_OUT: &str = "rsu.handover.summaries_out";
/// Records per detect micro-batch (log2-bucketed histogram).
pub const RSU_DETECT_BATCH_SIZE: &str = "rsu.detect.batch_size";
/// Rows swept by the batched column-major detect path (counter).
pub const ML_BATCH_ROWS: &str = "ml.batch.rows";
/// Column-major NB sweep inside the parallel detect stage (profile-only
/// stage, entered with `profile_span!` — no recorder event, no histogram).
pub const ML_NB_SWEEP: &str = "ml.nb.sweep";

/// Fig. 6a decomposition histograms, microseconds of *modelled* (virtual)
/// time, fed by `cad3::LatencyStats::record` (exporter-gated).
pub const RSU_TX_US: &str = "rsu.tx_us";
/// Queuing stage of the Fig. 6a decomposition (histogram, µs).
pub const RSU_QUEUING_US: &str = "rsu.queuing_us";
/// Processing stage of the Fig. 6a decomposition (histogram, µs).
pub const RSU_PROCESSING_US: &str = "rsu.processing_us";
/// Dissemination stage of the Fig. 6a decomposition (histogram, µs).
pub const RSU_DISSEMINATION_US: &str = "rsu.dissemination_us";
/// Detection-side latency (tx + queuing + processing) of the Fig. 6a
/// decomposition — time to a *detected* anomaly, before dissemination
/// (histogram, µs; exemplar-enabled).
pub const RSU_DETECT_US: &str = "rsu.detect_us";
/// End-to-end total of the Fig. 6a decomposition (histogram, µs).
pub const RSU_TOTAL_US: &str = "rsu.total_us";

/// Record emission at the vehicle — the root of every distributed trace
/// (trace span; instant).
pub const VEHICLE_EMIT: &str = "vehicle.emit";
/// DSRC uplink vehicle→RSU, send to modelled arrival (trace span).
pub const NET_DSRC_TX: &str = "net.dsrc.tx";
/// Wired RSU-interconnect transfer; value = queue delay, ns (trace span).
pub const NET_LINK_TX: &str = "net.link.tx";
/// Broker residency before the micro-batch picked the record up
/// (trace span).
pub const RSU_QUEUE: &str = "rsu.queue";
/// Warning publish to driver delivery on `OUT-DATA` (trace span).
pub const RSU_DISSEMINATE: &str = "rsu.disseminate";
/// Flight-recorder events lost to ring wrap (gauge; see
/// `FlightRecorder::dropped`).
pub const OBS_RECORDER_DROPPED: &str = "obs.recorder.dropped";
/// Trace events rejected by the bounded trace sink (gauge).
pub const OBS_TRACE_DROPPED: &str = "obs.trace.dropped";

/// Warnings that reached a driver through `AlertThrottle` (counter).
pub const ALERTS_SENT: &str = "alerts.sent";
/// Warnings suppressed by the alert hold-off window (counter).
pub const ALERTS_SUPPRESSED: &str = "alerts.suppressed";

/// Bytes carried by wired RSU-interconnect links (counter).
pub const NET_LINK_BYTES: &str = "net.link.bytes";
/// Frames carried by wired RSU-interconnect links (counter).
pub const NET_LINK_FRAMES: &str = "net.link.frames";

/// Result artefacts (`results/*.json`, `results/*.prom`) written by the
/// bench harness (counter).
pub const BENCH_RESULTS_WRITTEN: &str = "bench.results.written";
/// Result artefacts the bench harness failed to write (counter).
pub const BENCH_RESULTS_ERRORS: &str = "bench.results.errors";

/// Per-RSU pre-poll backlog gauge prefix; the RSU name is appended:
/// `rsu.lag.<rsu>` (records queued on `IN-DATA` at batch start).
pub const RSU_LAG_PREFIX: &str = "rsu.lag";
/// Per-RSU health state gauge prefix; the RSU name is appended:
/// `rsu.health.state.<rsu>` (0 healthy, 1 degraded, 2 overloaded).
pub const RSU_HEALTH_STATE_PREFIX: &str = "rsu.health.state";
/// Per-RSU DSRC offered-load gauge prefix; the RSU name is appended:
/// `net.dsrc.offered_bps.<rsu>` (windowed received bits/s on the channel).
pub const NET_DSRC_OFFERED_BPS_PREFIX: &str = "net.dsrc.offered_bps";
/// Health-monitor evaluation ticks (counter).
pub const HEALTH_TICKS: &str = "health.ticks";
/// SLO alerts currently firing across all members (gauge).
pub const HEALTH_ALERTS_FIRING: &str = "health.alerts.firing";
/// Alert fire/clear transitions since startup (counter).
pub const HEALTH_ALERT_TRANSITIONS: &str = "health.alert.transitions";
/// Flight-recorder point emitted on every alert transition (value 1 =
/// fired, 0 = cleared).
pub const HEALTH_ALERT: &str = "health.alert";
/// Handover destinations whose health gauge was consulted (counter).
pub const HEALTH_HANDOVER_CHECKS: &str = "health.handover.checks";
/// Handover destinations found degraded or overloaded (counter).
pub const HEALTH_HANDOVER_UNHEALTHY: &str = "health.handover.unhealthy";
/// Dynamic registrations rejected by a family cardinality cap and routed
/// to the family's shared `.overflow` cell (counter; see `DYNAMIC_FAMILIES`).
pub const OBS_NAMES_DROPPED: &str = "obs.names.dropped";

/// Every catalogued name (spans listed under their bare name; their
/// duration histograms add the `_ns` suffix at registration).
pub const ALL: &[&str] = &[
    STREAM_BROKER_PRODUCE,
    STREAM_BROKER_FETCH_RECORDS,
    STREAM_BROKER_PRODUCE_NS,
    STREAM_BROKER_FETCH_NS,
    STREAM_PRODUCER_RECORDS,
    STREAM_PRODUCER_BYTES,
    STREAM_PRODUCER_BATCHES,
    STREAM_CONSUMER_POLLS,
    STREAM_CONSUMER_RECORDS,
    STREAM_CONSUMER_LAG_PREFIX,
    ENGINE_BATCHES,
    ENGINE_BATCH_RECORDS,
    ENGINE_BATCH_QUEUE_DEPTH,
    ENGINE_BATCH_WALL_NS,
    ENGINE_TICK_JITTER_NS,
    RSU_MICRO_BATCH,
    RSU_HANDOVER_FUSE,
    RSU_INGEST,
    RSU_DETECT,
    RSU_RECORDS,
    RSU_WARNINGS,
    RSU_SUMMARIES_IN,
    RSU_SUMMARIES_OUT,
    RSU_DETECT_BATCH_SIZE,
    ML_BATCH_ROWS,
    ML_NB_SWEEP,
    RSU_TX_US,
    RSU_QUEUING_US,
    RSU_PROCESSING_US,
    RSU_DISSEMINATION_US,
    RSU_DETECT_US,
    RSU_TOTAL_US,
    VEHICLE_EMIT,
    NET_DSRC_TX,
    NET_LINK_TX,
    RSU_QUEUE,
    RSU_DISSEMINATE,
    OBS_RECORDER_DROPPED,
    OBS_TRACE_DROPPED,
    ALERTS_SENT,
    ALERTS_SUPPRESSED,
    NET_LINK_BYTES,
    NET_LINK_FRAMES,
    BENCH_RESULTS_WRITTEN,
    BENCH_RESULTS_ERRORS,
    RSU_LAG_PREFIX,
    RSU_HEALTH_STATE_PREFIX,
    NET_DSRC_OFFERED_BPS_PREFIX,
    HEALTH_TICKS,
    HEALTH_ALERTS_FIRING,
    HEALTH_ALERT_TRANSITIONS,
    HEALTH_ALERT,
    HEALTH_HANDOVER_CHECKS,
    HEALTH_HANDOVER_UNHEALTHY,
    OBS_NAMES_DROPPED,
];

/// Dynamic metric families: catalogued prefixes that spawn one member per
/// runtime entity (`<prefix>.<member>`) plus the registry's cardinality cap
/// for each. Past the cap, registrations collapse onto the family's shared
/// `<prefix>.overflow` cell and `obs.names.dropped` counts the rejects, so
/// a hostile or buggy label set cannot grow the registry without bound.
pub const DYNAMIC_FAMILY_CAP: usize = 64;
/// The families themselves; every entry's prefix is also in [`ALL`].
pub const DYNAMIC_FAMILIES: &[&str] = &[
    STREAM_CONSUMER_LAG_PREFIX,
    RSU_LAG_PREFIX,
    RSU_HEALTH_STATE_PREFIX,
    NET_DSRC_OFFERED_BPS_PREFIX,
];

/// One-line exposition help text per catalogued name, rendered as
/// Prometheus `# HELP` lines by [`crate::export::prometheus_text`]. Span
/// names describe their `<name>_ns` duration histogram; dynamic family
/// prefixes describe every member.
pub const HELP: &[(&str, &str)] = &[
    (STREAM_BROKER_PRODUCE, "Records appended through Broker::produce."),
    (STREAM_BROKER_FETCH_RECORDS, "Records returned by Broker::fetch."),
    (STREAM_BROKER_PRODUCE_NS, "Broker::produce latency in nanoseconds."),
    (STREAM_BROKER_FETCH_NS, "Broker::fetch latency in nanoseconds."),
    (STREAM_PRODUCER_RECORDS, "Records published by Producer::send."),
    (STREAM_PRODUCER_BYTES, "Bytes published by Producer::send."),
    (STREAM_PRODUCER_BATCHES, "Batches flushed by BatchingProducer."),
    (STREAM_CONSUMER_POLLS, "Consumer::poll calls."),
    (STREAM_CONSUMER_RECORDS, "Records delivered by Consumer::poll."),
    (STREAM_CONSUMER_LAG_PREFIX, "Committed-vs-head lag of one consumer group."),
    (ENGINE_BATCHES, "Micro-batches executed by MicroBatchRunner."),
    (ENGINE_BATCH_RECORDS, "Records carried by executed micro-batches."),
    (ENGINE_BATCH_QUEUE_DEPTH, "Consumer backlog observed just before each poll."),
    (ENGINE_BATCH_WALL_NS, "Wall-clock micro-batch time in nanoseconds."),
    (ENGINE_TICK_JITTER_NS, "Scheduler tick start minus planned instant in nanoseconds."),
    (RSU_MICRO_BATCH, "Duration of one RSU micro-batch in nanoseconds."),
    (RSU_HANDOVER_FUSE, "Duration of the CO-DATA ingest and fuse stage in nanoseconds."),
    (RSU_INGEST, "Duration of the IN-DATA ingest stage in nanoseconds."),
    (RSU_DETECT, "Duration of the parallel detection stage in nanoseconds."),
    (RSU_RECORDS, "Status records processed by RSUs."),
    (RSU_WARNINGS, "Warnings emitted by RSUs."),
    (RSU_SUMMARIES_IN, "Collaboration summaries received on CO-DATA."),
    (RSU_SUMMARIES_OUT, "Collaboration summaries exported for the next RSU."),
    (RSU_DETECT_BATCH_SIZE, "Records per detect micro-batch, log2 buckets."),
    (ML_BATCH_ROWS, "Rows swept by the batched column-major detect path."),
    (ML_NB_SWEEP, "Column-major NB sweep stage inside parallel detect."),
    (RSU_TX_US, "Modelled DSRC transmission stage in microseconds."),
    (RSU_QUEUING_US, "Modelled queuing stage in microseconds."),
    (RSU_PROCESSING_US, "Modelled processing stage in microseconds."),
    (RSU_DISSEMINATION_US, "Modelled dissemination stage in microseconds."),
    (RSU_DETECT_US, "Modelled latency to detection, before dissemination, in microseconds."),
    (RSU_TOTAL_US, "Modelled end-to-end detection latency in microseconds."),
    (VEHICLE_EMIT, "Record emission at the vehicle, the root trace span."),
    (NET_DSRC_TX, "DSRC uplink vehicle-to-RSU trace span in nanoseconds."),
    (NET_LINK_TX, "Wired RSU-interconnect transfer trace span in nanoseconds."),
    (RSU_QUEUE, "Broker residency before micro-batch pickup in nanoseconds."),
    (RSU_DISSEMINATE, "Warning publish to driver delivery in nanoseconds."),
    (OBS_RECORDER_DROPPED, "Flight-recorder events lost to ring wrap."),
    (OBS_TRACE_DROPPED, "Trace events rejected by the bounded trace sink."),
    (ALERTS_SENT, "Warnings that reached a driver through AlertThrottle."),
    (ALERTS_SUPPRESSED, "Warnings suppressed by the alert hold-off window."),
    (NET_LINK_BYTES, "Bytes carried by wired RSU-interconnect links."),
    (NET_LINK_FRAMES, "Frames carried by wired RSU-interconnect links."),
    (BENCH_RESULTS_WRITTEN, "Result artefacts written by the bench harness."),
    (BENCH_RESULTS_ERRORS, "Result artefacts the bench harness failed to write."),
    (RSU_LAG_PREFIX, "IN-DATA backlog of one RSU at micro-batch start."),
    (RSU_HEALTH_STATE_PREFIX, "Health state of one RSU: 0 healthy, 1 degraded, 2 overloaded."),
    (NET_DSRC_OFFERED_BPS_PREFIX, "Windowed DSRC offered load of one RSU in bits per second."),
    (HEALTH_TICKS, "Health-monitor evaluation ticks."),
    (HEALTH_ALERTS_FIRING, "SLO alerts currently firing across all members."),
    (HEALTH_ALERT_TRANSITIONS, "Alert fire and clear transitions since startup."),
    (HEALTH_ALERT, "Alert transition point events: value 1 fired, 0 cleared."),
    (HEALTH_HANDOVER_CHECKS, "Handover destinations whose health gauge was consulted."),
    (HEALTH_HANDOVER_UNHEALTHY, "Handover destinations found degraded or overloaded."),
    (OBS_NAMES_DROPPED, "Dynamic registrations rejected by a family cardinality cap."),
];

/// Histograms created with per-bucket tail exemplar slots: observations on
/// these names may carry a trace id (`observe_with_exemplar`), letting any
/// tail bucket above p95 expand into a full assembled trace waterfall.
/// Kept as one literal array line so `cargo xtask lint`'s `profile-names`
/// rule can parse it without name resolution; every entry must also be a
/// catalogued name (enforced in tests).
pub const EXEMPLAR_HISTOGRAMS: &[&str] = &["rsu.detect_us", "rsu.total_us"];

/// The thread-class vocabulary of the continuous profiler
/// (`cad3_obs::profile::set_thread_class`): path roots in folded stacks.
/// One literal array line for the `profile-names` lint, like
/// [`EXEMPLAR_HISTOGRAMS`].
pub const THREAD_CLASSES: &[&str] = &["main", "worker"];

/// Looks up the help text for a catalogued name, resolving `<span>_ns`
/// duration histograms to their span's entry and `<family>.<member>` (or
/// `<family>.overflow`) members to the family's entry.
pub fn help_for(name: &str) -> Option<&'static str> {
    let exact = |n: &str| HELP.iter().find(|(k, _)| *k == n).map(|(_, h)| *h);
    if let Some(h) = exact(name) {
        return Some(h);
    }
    if let Some(base) = name.strip_suffix("_ns") {
        if let Some(h) = exact(base) {
            return Some(h);
        }
    }
    DYNAMIC_FAMILIES
        .iter()
        .find(|f| name.strip_prefix(**f).is_some_and(|rest| rest.starts_with('.')))
        .and_then(|f| exact(f))
}

/// Whether `name` follows the workspace naming convention: lowercase
/// dot-separated segments of `[a-z0-9_]`, starting each segment with a
/// letter and never ending in a dot.
pub fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg.starts_with(|c: char| c.is_ascii_lowercase())
                && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_valid_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(is_valid_name(name), "bad name {name}");
            assert!(seen.insert(name), "duplicate name {name}");
        }
    }

    #[test]
    fn every_name_has_help_and_every_family_is_catalogued() {
        for name in ALL {
            assert!(help_for(name).is_some(), "no HELP entry for {name}");
        }
        for family in DYNAMIC_FAMILIES {
            assert!(ALL.contains(family), "dynamic family {family} missing from ALL");
            assert_eq!(
                help_for(&format!("{family}.some_member")),
                help_for(family),
                "family member help should resolve to the family entry"
            );
        }
        assert_eq!(help_for("rsu.detect_ns"), help_for("rsu.detect"), "span _ns fallback");
        assert_eq!(help_for("not.a.catalogued.name"), None);
    }

    #[test]
    fn exemplar_histograms_and_thread_classes_are_catalogued_vocabulary() {
        for name in EXEMPLAR_HISTOGRAMS {
            assert!(ALL.contains(name), "exemplar histogram {name} missing from ALL");
        }
        assert_eq!(EXEMPLAR_HISTOGRAMS, &[RSU_DETECT_US, RSU_TOTAL_US]);
        for class in THREAD_CLASSES {
            assert!(is_valid_name(class), "bad thread class {class}");
        }
        let mut seen = std::collections::BTreeSet::new();
        for class in THREAD_CLASSES {
            assert!(seen.insert(class), "duplicate thread class {class}");
        }
    }

    #[test]
    fn validity_rejects_bad_shapes() {
        for bad in ["", "Upper.case", "trailing.", ".leading", "sp ace", "dash-ed", "1digit"] {
            assert!(!is_valid_name(bad), "{bad} should be invalid");
        }
        for good in ["a", "rsu.micro_batch", "stream.consumer.lag", "rsu.tx_us", "x9.y_z"] {
            assert!(is_valid_name(good), "{good} should be valid");
        }
    }
}

//! Continuous stage-time profiler: always-on attribution of elapsed time
//! to the active span stack.
//!
//! Every non-inert span ([`crate::span!`]) and profile-only stage
//! ([`crate::profile_span!`]) pushes a frame onto a thread-local stack; on
//! exit the frame's elapsed time is split into **self-time** (time not
//! covered by child stages on the same thread) and accumulated into sharded
//! per-(thread-class, stage-path) tree nodes. The result is exportable two
//! ways:
//!
//! * [`ProfileSnapshot`] — a mergeable, `MetricsSnapshot`-style map from
//!   folded stage paths (`main;rsu.micro_batch;rsu.detect;ml.nb.sweep`) to
//!   `{calls, self_ns, total_ns}` totals;
//! * [`ProfileSnapshot::folded`] — folded-stack lines
//!   (`main;rsu.micro_batch;rsu.detect 1234567`, weight = self-time)
//!   consumable by standard flamegraph tooling.
//!
//! Each profiled thread also seqlock-publishes its *live* stage stack (a
//! fixed-depth array of interned stage name ids, the flight-recorder
//! publish discipline) so `cad3_top` can show what every thread is doing
//! right now without stopping it ([`live_stacks`]).
//!
//! # Accounting model
//!
//! Self/child splitting is **per thread**: a frame's `child_ns` only
//! accumulates stages popped on the same thread, so a parallel stage's
//! workers do not subtract from the coordinating thread's self-time (their
//! CPU time overlaps its wall time). Worker threads instead *adopt* the
//! coordinator's current position ([`current_token`] / [`adopt`]) so their
//! stages attribute under the right path; summed self-time is therefore
//! CPU time, which over parallel regions legitimately exceeds wall time.
//! On one thread the invariant is exact: the self-times of a stage subtree
//! sum to the root stage's elapsed wall time (property-tested below).
//!
//! # Overhead policy
//!
//! Everything here is behind the same one relaxed [`crate::enabled`] load
//! as the rest of the substrate: disabled spans never reach [`push`]. When
//! enabled, a push/pop pair costs a thread-local stack op, three relaxed
//! `fetch_add`s on a cache-padded shard, and the seqlock publish — the
//! profiler mutex (rank 92, a leaf like the registry's) is only taken the
//! first time a thread sees a new (class, parent, stage) edge, after which
//! the node handle comes from a thread-local cache.

use crate::metrics::SHARDS;
use crate::registry::registry;
use crate::sync::{Arc, AtomicU64, Mutex, Ordering};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::OnceLock;

/// Depth of the seqlock-published live stage stack. Accounting itself is
/// depth-unbounded; only the live view truncates to the innermost
/// `STACK_DEPTH` frames' prefix.
pub const STACK_DEPTH: usize = 16;

/// Bound on concurrently-live published stacks. Threads past the cap still
/// account normally; they just have no live view. Dead threads' slots are
/// reclaimed (the pool holds weak references).
const STACK_SLOTS: usize = 64;

/// Cap on distinct (thread-class, stage-path) tree nodes; pushes past it
/// are counted in [`ProfileSnapshot::dropped`] instead of allocating
/// unboundedly (the analogue of the registry's dynamic-family cap).
const MAX_NODES: usize = 4096;

/// Sentinel "no parent" in node keys: the node is a path root under its
/// thread class.
const NO_PARENT: u32 = u32::MAX;

/// One cache line of accumulation per shard, so parallel workers popping
/// the same stage do not false-share (the [`crate::metrics`] layout).
#[repr(align(64))]
#[derive(Debug)]
struct NodeShard {
    calls: AtomicU64,
    self_ns: AtomicU64,
    total_ns: AtomicU64,
}

/// One (thread-class, stage-path) tree node with sharded totals.
#[derive(Debug)]
struct StageNode {
    /// Thread-class index of the path's root.
    class: u32,
    /// Parent node index, or [`NO_PARENT`].
    parent: u32,
    /// Interned stage name ([`crate::Registry::intern_name`]).
    name_id: u32,
    shards: Vec<NodeShard>,
}

impl StageNode {
    fn new(class: u32, parent: u32, name_id: u32) -> Self {
        StageNode {
            class,
            parent,
            name_id,
            shards: (0..SHARDS)
                .map(|_| NodeShard {
                    calls: AtomicU64::new(0),
                    self_ns: AtomicU64::new(0),
                    total_ns: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Accumulates one completed stage entry into this thread's shard.
    fn add(&self, self_ns: u64, total_ns: u64) {
        // hotpath-exempt(panic): shard_index() is reduced modulo SHARDS and
        // the shards vec is built with exactly SHARDS entries in new().
        let shard = &self.shards[crate::metrics::shard_index()];
        // ordering: Relaxed — independent monotone statistics, merged at
        // snapshot time (the metrics module's ordering policy).
        shard.calls.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same statistic family as above.
        shard.self_ns.fetch_add(self_ns, Ordering::Relaxed);
        // ordering: Relaxed — same statistic family as above.
        shard.total_ns.fetch_add(total_ns, Ordering::Relaxed);
    }

    /// Merges every shard into one totals value.
    fn totals(&self) -> StageTotals {
        let mut out = StageTotals::default();
        for shard in &self.shards {
            // ordering: Relaxed — merging monotone statistics; exact once
            // writers are quiescent, like histogram snapshots.
            out.calls = out.calls.saturating_add(shard.calls.load(Ordering::Relaxed));
            // ordering: Relaxed — same statistic merge as above.
            out.self_ns = out.self_ns.saturating_add(shard.self_ns.load(Ordering::Relaxed));
            // ordering: Relaxed — same statistic merge as above.
            out.total_ns = out.total_ns.saturating_add(shard.total_ns.load(Ordering::Relaxed));
        }
        out
    }
}

/// A seqlock-published fixed-depth stage stack: one writer (the owning
/// thread) publishing its current stack of interned stage names, many
/// wait-free readers.
///
/// The protocol is the flight recorder's slot discipline: `seq` is 0 until
/// the first publish, odd while a write is in progress, and even after.
/// Readers load `seq`, copy the fields, and re-check `seq`; a mismatch or
/// odd value means a torn read and the sample is discarded. Model-checked
/// in `tests/loom_obs.rs`.
#[derive(Debug)]
pub struct StageStack {
    /// 0 = never published, odd = mid-write, even = published.
    seq: AtomicU64,
    class: AtomicU64,
    depth: AtomicU64,
    names: Vec<AtomicU64>,
}

impl StageStack {
    /// Creates an unpublished stack (readers see `None`).
    pub fn new() -> Self {
        StageStack {
            seq: AtomicU64::new(0),
            class: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            names: (0..STACK_DEPTH).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publishes the owning thread's current stack: its thread-class id,
    /// the true depth, and the outermost-first name ids (callers pass at
    /// most [`STACK_DEPTH`]; anything deeper is truncated to the prefix,
    /// with `depth` still reporting the true value).
    ///
    /// Single-writer by contract: only the owning thread calls this.
    pub fn publish(&self, class: u32, depth: usize, name_ids: &[u32]) {
        // ordering: Relaxed — this thread is the only writer, so the read
        // needs no synchronisation; the odd/even protocol below is what
        // readers synchronise on.
        let before = self.seq.load(Ordering::Relaxed);
        // ordering: Release — odd seq marks the write in progress before
        // any field changes (the flight-recorder seqlock discipline).
        self.seq.store(before + 1, Ordering::Release);
        // ordering: Relaxed — fields are fenced by the seq protocol.
        self.class.store(u64::from(class), Ordering::Relaxed);
        // ordering: Relaxed — fields are fenced by the seq protocol.
        self.depth.store(u64::try_from(depth).unwrap_or(u64::MAX), Ordering::Relaxed);
        for (slot, id) in self.names.iter().zip(name_ids.iter().take(STACK_DEPTH)) {
            // ordering: Relaxed — fields are fenced by the seq protocol.
            slot.store(u64::from(*id), Ordering::Relaxed);
        }
        // ordering: Release — the even seq publishes the fields to readers.
        self.seq.store(before + 2, Ordering::Release);
    }

    /// One consistent read attempt: `(class id, true depth, visible name
    /// ids)`, or `None` if the stack was never published or the read tore
    /// against a concurrent publish (callers just skip the sample).
    pub fn read(&self) -> Option<(u32, usize, Vec<u32>)> {
        // ordering: Acquire — pairs with the publishing Release store so
        // the field reads below see that write's values.
        let before = self.seq.load(Ordering::Acquire);
        if before == 0 || before % 2 == 1 {
            return None;
        }
        // ordering: Relaxed — validity is established by re-checking seq.
        let class = self.class.load(Ordering::Relaxed);
        // ordering: Relaxed — validity is established by re-checking seq.
        let depth = usize::try_from(self.depth.load(Ordering::Relaxed)).unwrap_or(usize::MAX);
        let shown = depth.min(STACK_DEPTH);
        let mut ids = Vec::with_capacity(shown);
        for slot in self.names.iter().take(shown) {
            // ordering: Relaxed — validity is established by re-checking seq.
            ids.push(u32::try_from(slot.load(Ordering::Relaxed)).unwrap_or(0));
        }
        // ordering: Acquire — a changed seq means the fields were torn by a
        // concurrent publish; discard the sample.
        if self.seq.load(Ordering::Acquire) != before {
            return None;
        }
        Some((u32::try_from(class).unwrap_or(0), depth, ids))
    }
}

impl Default for StageStack {
    fn default() -> Self {
        StageStack::new()
    }
}

struct Inner {
    /// (class, parent-or-[`NO_PARENT`], name id) → node index.
    index: BTreeMap<(u32, u32, u32), u32>,
    nodes: Vec<Arc<StageNode>>,
    classes: Vec<&'static str>,
    /// Live-stack pool: weak so a dead thread's slot reclaims itself (no
    /// lock is ever taken from a thread-local destructor).
    stacks: Vec<std::sync::Weak<StageStack>>,
    dropped: u64,
}

/// The process-wide stage-path tree. Normally used through the module-level
/// functions ([`snapshot`], [`live_stacks`]); the type is public so the
/// determinism contract can name its entry points.
pub struct Profiler {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler").finish_non_exhaustive()
    }
}

impl Profiler {
    fn new() -> Self {
        Profiler {
            inner: Mutex::new(Inner {
                index: BTreeMap::new(),
                nodes: Vec::new(),
                classes: Vec::new(),
                stacks: Vec::new(),
                dropped: 0,
            }),
        }
    }

    /// Interns a thread-class name, returning its dense id.
    fn class_id(&self, name: &'static str) -> u32 {
        let _held = cad3_lockrank::rank_scope!("cad3_obs::Profiler::inner");
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.classes.iter().position(|c| *c == name) {
            return pos as u32;
        }
        inner.classes.push(name);
        (inner.classes.len() - 1) as u32
    }

    /// The node for edge (class, parent, name), created on first use.
    /// `None` once [`MAX_NODES`] distinct paths exist (counted as dropped).
    fn node(&self, class: u32, parent: u32, name_id: u32) -> Option<(u32, Arc<StageNode>)> {
        let _held = cad3_lockrank::rank_scope!("cad3_obs::Profiler::inner");
        let mut inner = self.inner.lock();
        if let Some(&i) = inner.index.get(&(class, parent, name_id)) {
            return inner.nodes.get(i as usize).map(|n| (i, Arc::clone(n)));
        }
        if inner.nodes.len() >= MAX_NODES {
            inner.dropped = inner.dropped.saturating_add(1);
            return None;
        }
        let i = inner.nodes.len() as u32;
        let node = Arc::new(StageNode::new(class, parent, name_id));
        inner.nodes.push(Arc::clone(&node));
        inner.index.insert((class, parent, name_id), i);
        Some((i, node))
    }

    /// Leases a live-stack slot for the calling thread, pruning slots whose
    /// owning threads have exited. `None` once [`STACK_SLOTS`] threads hold
    /// one concurrently.
    fn lease(&self) -> Option<std::sync::Arc<StageStack>> {
        let _held = cad3_lockrank::rank_scope!("cad3_obs::Profiler::inner");
        let mut inner = self.inner.lock();
        inner.stacks.retain(|w| w.strong_count() > 0);
        if inner.stacks.len() >= STACK_SLOTS {
            return None;
        }
        let stack = std::sync::Arc::new(StageStack::new());
        inner.stacks.push(std::sync::Arc::downgrade(&stack));
        Some(stack)
    }

    /// Merges the whole stage tree into one mergeable snapshot. Stage
    /// names resolve through the registry *after* the profiler lock is
    /// released (ranks 92 and 90 must not nest that way round).
    pub fn snapshot(&self) -> ProfileSnapshot {
        let (nodes, classes, dropped) = {
            let _held = cad3_lockrank::rank_scope!("cad3_obs::Profiler::inner");
            let inner = self.inner.lock();
            (inner.nodes.clone(), inner.classes.clone(), inner.dropped)
        };
        // Parents always precede children in the nodes vec (a child is
        // created while its parent's frame is live), so one forward pass
        // resolves every folded path.
        let mut paths: Vec<String> = Vec::with_capacity(nodes.len());
        let mut stages: BTreeMap<String, StageTotals> = BTreeMap::new();
        for node in &nodes {
            let name = registry().name_of(node.name_id);
            let path = match paths.get(node.parent as usize) {
                Some(parent) => format!("{parent};{name}"),
                None => {
                    let class = classes.get(node.class as usize).copied().unwrap_or("?");
                    format!("{class};{name}")
                }
            };
            let totals = node.totals();
            let entry = stages.entry(path.clone()).or_default();
            entry.calls = entry.calls.saturating_add(totals.calls);
            entry.self_ns = entry.self_ns.saturating_add(totals.self_ns);
            entry.total_ns = entry.total_ns.saturating_add(totals.total_ns);
            paths.push(path);
        }
        ProfileSnapshot { stages, dropped }
    }

    /// One consistent read of every live thread's published stage stack,
    /// names resolved (lock released before touching the registry).
    pub fn live_stacks(&self) -> Vec<StackView> {
        let (stacks, classes) = {
            let _held = cad3_lockrank::rank_scope!("cad3_obs::Profiler::inner");
            let inner = self.inner.lock();
            let live: Vec<_> = inner.stacks.iter().filter_map(std::sync::Weak::upgrade).collect();
            (live, inner.classes.clone())
        };
        let mut out = Vec::with_capacity(stacks.len());
        for stack in stacks {
            let Some((class, depth, ids)) = stack.read() else { continue };
            out.push(StackView {
                class: classes.get(class as usize).copied().unwrap_or("?"),
                depth,
                stages: ids.iter().map(|&id| registry().name_of(id)).collect(),
            });
        }
        out
    }
}

/// The process-wide profiler every span guard accounts into.
pub fn profiler() -> &'static Profiler {
    static PROFILER: OnceLock<Profiler> = OnceLock::new();
    PROFILER.get_or_init(Profiler::new)
}

/// Completed-entry totals of one stage path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// Completed entries of this exact path.
    pub calls: u64,
    /// Nanoseconds not covered by child stages on the same thread.
    pub self_ns: u64,
    /// Nanoseconds including child stages.
    pub total_ns: u64,
}

/// A mergeable point-in-time view of the stage tree: folded stage paths
/// (`class;stage;…;leaf`) to their totals. The profile analogue of
/// [`crate::MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Totals per folded stage path.
    pub stages: BTreeMap<String, StageTotals>,
    /// Pushes not attributed because the node table hit its cap.
    pub dropped: u64,
}

impl ProfileSnapshot {
    /// Merges `other` into `self` (union of paths, saturating sums) — the
    /// multi-process/multi-snapshot analogue of histogram shard merging.
    pub fn merge(&mut self, other: &ProfileSnapshot) {
        for (path, t) in &other.stages {
            let e = self.stages.entry(path.clone()).or_default();
            e.calls = e.calls.saturating_add(t.calls);
            e.self_ns = e.self_ns.saturating_add(t.self_ns);
            e.total_ns = e.total_ns.saturating_add(t.total_ns);
        }
        self.dropped = self.dropped.saturating_add(other.dropped);
    }

    /// Renders folded-stack lines — `path self_ns` per completed stage,
    /// path-sorted — the input format of standard flamegraph tooling
    /// (weight = self-time, so frame widths sum correctly).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, t) in &self.stages {
            if t.calls == 0 {
                continue;
            }
            let _ = writeln!(out, "{path} {}", t.self_ns);
        }
        out
    }

    /// Parses folded-stack lines back into a snapshot (self-time weights
    /// only — call counts become one per line and `total_ns` is not
    /// representable in the format). Unparseable lines are skipped.
    /// Round-trips with [`Self::folded`] on the (path → weight) mapping.
    pub fn from_folded(text: &str) -> ProfileSnapshot {
        let mut snap = ProfileSnapshot::default();
        for line in text.lines() {
            let Some((path, weight)) = line.rsplit_once(' ') else { continue };
            let Ok(self_ns) = weight.parse::<u64>() else { continue };
            let e = snap.stages.entry(path.to_owned()).or_default();
            e.calls = e.calls.saturating_add(1);
            e.self_ns = e.self_ns.saturating_add(self_ns);
        }
        snap
    }

    /// Totals of stage `name` summed over every path it terminates —
    /// "how much time is spent *in* `rsu.detect`, wherever it appears".
    /// When called with a literal, the name is anchored to the
    /// [`crate::names`] catalogue by `cargo xtask lint`'s `profile-names`
    /// rule.
    pub fn stage_totals(&self, name: &str) -> StageTotals {
        let mut out = StageTotals::default();
        for (path, t) in &self.stages {
            if path.rsplit(';').next() == Some(name) {
                out.calls = out.calls.saturating_add(t.calls);
                out.self_ns = out.self_ns.saturating_add(t.self_ns);
                out.total_ns = out.total_ns.saturating_add(t.total_ns);
            }
        }
        out
    }
}

/// One live thread's published stage stack, names resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackView {
    /// The owning thread's class (`"main"`, `"worker"`, …).
    pub class: &'static str,
    /// True stack depth (may exceed `stages.len()` past [`STACK_DEPTH`]).
    pub depth: usize,
    /// Outermost-first stage names currently live.
    pub stages: Vec<&'static str>,
}

/// A copyable capture of the calling thread's current stage position,
/// for handing to worker threads (see [`adopt`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileToken {
    /// (node index, class of that node's path root), if any stage is live.
    node: Option<(u32, u32)>,
}

/// Restores the previous adoption base when dropped (see [`adopt`]).
#[derive(Debug)]
pub struct AdoptGuard {
    prev: Option<(u32, u32)>,
    /// Thread-bound like the state it restores.
    _not_send: PhantomData<*const ()>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        STATE.with(|s| {
            if let Ok(mut st) = s.try_borrow_mut() {
                st.base = self.prev;
            }
        });
    }
}

/// An open stage on the calling thread.
struct Frame {
    /// The tree node this frame accounts into (`None` past the node cap).
    node: Option<(u32, Arc<StageNode>)>,
    name_id: u32,
    start_ns: u64,
    /// Elapsed time of child frames popped on this thread.
    child_ns: u64,
}

struct ThreadState {
    class: &'static str,
    class_id: Option<u32>,
    /// Adopted parent (node, class) used when the frame stack is empty.
    base: Option<(u32, u32)>,
    frames: Vec<Frame>,
    /// (class, parent, name) → node, so steady-state pushes never lock.
    cache: BTreeMap<(u32, u32, u32), (u32, Arc<StageNode>)>,
    slot: Option<std::sync::Arc<StageStack>>,
    slot_exhausted: bool,
}

impl ThreadState {
    const fn new() -> Self {
        ThreadState {
            class: "main",
            class_id: None,
            base: None,
            frames: Vec::new(),
            cache: BTreeMap::new(),
            slot: None,
            slot_exhausted: false,
        }
    }
}

thread_local! {
    static STATE: RefCell<ThreadState> = const { RefCell::new(ThreadState::new()) };
}

/// Declares the calling thread's class for path roots and the live view
/// (literals are anchored to [`crate::names::THREAD_CLASSES`] by the
/// `profile-names` lint). Threads default to `"main"`; the engine executor
/// marks its pool threads `"worker"`.
pub fn set_thread_class(class: &'static str) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        if st.class != class {
            st.class = class;
            st.class_id = None;
        }
    });
}

/// Captures the calling thread's innermost attributed stage (falling back
/// to its own adoption base), for worker threads to [`adopt`].
pub fn current_token() -> ProfileToken {
    STATE.with(|s| {
        let st = s.borrow();
        let node = st
            .frames
            .iter()
            .rev()
            .find_map(|f| f.node.as_ref().map(|(i, n)| (*i, n.class)))
            .or(st.base);
        ProfileToken { node }
    })
}

/// Attributes this thread's root-level stages under `token`'s stage until
/// the returned guard drops — how a parallel stage's workers appear inside
/// the coordinating thread's path (`main;rsu.detect;ml.nb.sweep`) instead
/// of rooting their own.
pub fn adopt(token: ProfileToken) -> AdoptGuard {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let prev = st.base;
        st.base = token.node;
        AdoptGuard { prev, _not_send: PhantomData }
    })
}

/// The process-wide profile snapshot (see [`Profiler::snapshot`]).
pub fn snapshot() -> ProfileSnapshot {
    profiler().snapshot()
}

/// Every live thread's published stage stack (see
/// [`Profiler::live_stacks`]).
pub fn live_stacks() -> Vec<StackView> {
    profiler().live_stacks()
}

fn ensure_class(st: &mut ThreadState) -> u32 {
    match st.class_id {
        Some(id) => id,
        None => {
            let id = profiler().class_id(st.class);
            st.class_id = Some(id);
            id
        }
    }
}

/// Seqlock-publishes the thread's current stack into its live-view slot
/// (leased on first use; accounting is unaffected when the pool is full).
fn publish_live(st: &mut ThreadState) {
    if st.slot.is_none() {
        if st.slot_exhausted {
            return;
        }
        st.slot = profiler().lease();
        if st.slot.is_none() {
            st.slot_exhausted = true;
            return;
        }
    }
    let class = ensure_class(st);
    let mut ids = [0u32; STACK_DEPTH];
    let shown = st.frames.len().min(STACK_DEPTH);
    for (slot, frame) in ids.iter_mut().zip(st.frames.iter()) {
        *slot = frame.name_id;
    }
    if let Some(stack) = &st.slot {
        stack.publish(class, st.frames.len(), &ids[..shown]);
    }
}

/// Opens a stage frame at `start_ns`. Called from span guards only —
/// every call site is already behind the [`crate::enabled`] gate.
pub(crate) fn push(name_id: u32, start_ns: u64) {
    STATE.with(|s| {
        let Ok(mut st) = s.try_borrow_mut() else { return };
        let parent = match st.frames.last() {
            Some(f) => match &f.node {
                Some((i, n)) => Some((*i, n.class)),
                // An unattributed parent (node-table cap): children stay
                // unattributed too rather than re-rooting mid-stack.
                None => {
                    st.frames.push(Frame { node: None, name_id, start_ns, child_ns: 0 });
                    publish_live(&mut st);
                    return;
                }
            },
            None => st.base,
        };
        let (class, parent_idx) = match parent {
            Some((i, c)) => (c, i),
            None => (ensure_class(&mut st), NO_PARENT),
        };
        let key = (class, parent_idx, name_id);
        let node = match st.cache.get(&key) {
            Some(hit) => Some((hit.0, Arc::clone(&hit.1))),
            None => {
                let created = profiler().node(class, parent_idx, name_id);
                if let Some((i, n)) = &created {
                    st.cache.insert(key, (*i, Arc::clone(n)));
                }
                created
            }
        };
        st.frames.push(Frame { node, name_id, start_ns, child_ns: 0 });
        publish_live(&mut st);
    });
}

/// Closes the innermost open frame named `name_id` at `end_ns`, splitting
/// its elapsed time into self vs child and crediting the elapsed total to
/// the enclosing frame's `child_ns`. Name-matched (not strictly LIFO) so
/// out-of-order guard drops — possible but discouraged, as in
/// `crate::span` — skew attribution without corrupting the stack.
pub(crate) fn pop(name_id: u32, end_ns: u64) {
    STATE.with(|s| {
        let Ok(mut st) = s.try_borrow_mut() else { return };
        let Some(pos) = st.frames.iter().rposition(|f| f.name_id == name_id) else {
            return;
        };
        let frame = st.frames.remove(pos);
        let elapsed = end_ns.saturating_sub(frame.start_ns);
        let self_ns = elapsed.saturating_sub(frame.child_ns);
        if pos > 0 {
            if let Some(parent) = st.frames.get_mut(pos - 1) {
                parent.child_ns = parent.child_ns.saturating_add(elapsed);
            }
        }
        if let Some((_, node)) = &frame.node {
            node.add(self_ns, elapsed);
        }
        publish_live(&mut st);
    });
}

/// RAII guard for a profile-only stage: accounts into the stage tree and
/// the live stack like a span, but never touches the flight recorder,
/// span-id counter or any histogram. This is the form safe inside
/// parallel workers, where recorder writes or id allocation would make
/// replay artifacts schedule-dependent (see DESIGN.md "Continuous
/// profiling & exemplars"). Entered via [`crate::profile_span!`].
#[derive(Debug)]
pub struct StageGuard {
    /// The interned name to pop, `None` for an inert (disabled) guard.
    name_id: Option<u32>,
}

impl StageGuard {
    /// Enters the stage unless the substrate is disabled (one relaxed
    /// load, like [`crate::SpanGuard::enter`]).
    pub fn enter(name_id: u32) -> StageGuard {
        if !crate::enabled() {
            return StageGuard { name_id: None };
        }
        push(name_id, crate::clock::now_nanos());
        StageGuard { name_id: Some(name_id) }
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if let Some(name_id) = self.name_id {
            pop(name_id, crate::clock::now_nanos());
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn intern(name: &'static str) -> u32 {
        registry().intern_name(name)
    }

    #[test]
    fn nested_frames_split_self_and_child_time() {
        let outer = intern("test.prof.outer");
        let inner = intern("test.prof.inner");
        push(outer, 1_000);
        push(inner, 1_200);
        pop(inner, 1_700);
        pop(outer, 2_000);
        let snap = snapshot();
        let o = snap.stage_totals("test.prof.outer");
        assert_eq!(o.calls, 1);
        assert_eq!(o.total_ns, 1_000);
        assert_eq!(o.self_ns, 500, "outer self excludes the 500 ns child");
        let i = snap.stage_totals("test.prof.inner");
        assert_eq!((i.calls, i.self_ns, i.total_ns), (1, 500, 500));
        assert!(
            snap.stages.contains_key("main;test.prof.outer;test.prof.inner"),
            "paths: {:?}",
            snap.stages.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sibling_frames_accumulate_into_one_node() {
        let name = intern("test.prof.sibling");
        push(name, 0);
        pop(name, 10);
        push(name, 50);
        pop(name, 90);
        let t = snapshot().stage_totals("test.prof.sibling");
        assert_eq!(t.calls, 2);
        assert_eq!(t.self_ns, 50);
    }

    #[test]
    fn workers_adopt_the_coordinator_path() {
        let outer = intern("test.prof.adopt.outer");
        let inner = intern("test.prof.adopt.inner");
        push(outer, 0);
        let token = current_token();
        std::thread::spawn(move || {
            set_thread_class("worker");
            let _adopted = adopt(token);
            push(inner, 100);
            pop(inner, 160);
        })
        .join()
        .expect("worker");
        pop(outer, 1_000);
        let snap = snapshot();
        let path = "main;test.prof.adopt.outer;test.prof.adopt.inner";
        assert_eq!(snap.stages.get(path).map(|t| t.total_ns), Some(60), "{:?}", snap.stages);
        // Per-thread accounting: the worker's 60 ns do not reduce the
        // coordinator's self-time.
        assert_eq!(snap.stage_totals("test.prof.adopt.outer").self_ns, 1_000);
    }

    #[test]
    fn adopt_guard_restores_the_previous_base() {
        let name = intern("test.prof.restore");
        push(name, 0);
        let token = current_token();
        {
            let _adopted = adopt(token);
        }
        pop(name, 10);
        assert!(current_token().node.is_none(), "base restored to none after the pop");
    }

    #[test]
    fn stage_guard_is_inert_when_disabled() {
        crate::set_enabled(false);
        let before = snapshot().stage_totals("test.prof.gated");
        {
            let _g = crate::profile_span!("test.prof.gated");
        }
        let after = snapshot().stage_totals("test.prof.gated");
        assert_eq!(before, after);
    }

    #[test]
    fn stage_guard_accounts_when_enabled() {
        crate::set_enabled(true);
        {
            let _g = crate::profile_span!("test.prof.guard");
        }
        crate::set_enabled(false);
        assert!(snapshot().stage_totals("test.prof.guard").calls >= 1);
    }

    #[test]
    fn live_stack_shows_the_open_frames() {
        let name = intern("test.prof.live");
        push(name, 0);
        let views = live_stacks();
        assert!(
            views.iter().any(|v| v.stages.contains(&"test.prof.live")),
            "live stacks: {views:?}"
        );
        pop(name, 1);
        let views = live_stacks();
        assert!(!views.iter().any(|v| v.stages.contains(&"test.prof.live")));
    }

    #[test]
    fn stage_stack_publish_read_round_trip() {
        let stack = StageStack::new();
        assert_eq!(stack.read(), None, "unpublished stacks read as None");
        stack.publish(3, 2, &[7, 9]);
        assert_eq!(stack.read(), Some((3, 2, vec![7, 9])));
        stack.publish(3, 0, &[]);
        assert_eq!(stack.read(), Some((3, 0, Vec::new())));
    }

    #[test]
    fn stage_stack_truncates_but_reports_true_depth() {
        let stack = StageStack::new();
        let deep: Vec<u32> = (0..40).collect();
        stack.publish(0, deep.len(), &deep[..STACK_DEPTH.min(deep.len())]);
        let (_, depth, ids) = stack.read().expect("published");
        assert_eq!(depth, 40);
        assert_eq!(ids.len(), STACK_DEPTH);
        assert_eq!(ids[..4], [0, 1, 2, 3]);
    }

    #[test]
    fn folded_round_trips_the_weight_map() {
        let mut snap = ProfileSnapshot::default();
        snap.stages.insert(
            "main;rsu.micro_batch;rsu.detect".to_owned(),
            StageTotals { calls: 3, self_ns: 1_234_567, total_ns: 2_000_000 },
        );
        snap.stages.insert(
            "main;rsu.micro_batch".to_owned(),
            StageTotals { calls: 3, self_ns: 400, total_ns: 2_000_400 },
        );
        let folded = snap.folded();
        assert!(folded.contains("main;rsu.micro_batch;rsu.detect 1234567\n"));
        let parsed = ProfileSnapshot::from_folded(&folded);
        assert_eq!(parsed.folded(), folded, "folded → parse → folded is stable");
    }

    #[test]
    fn merge_is_a_union_with_summed_totals() {
        let mut a = ProfileSnapshot::default();
        a.stages.insert("main;x".to_owned(), StageTotals { calls: 1, self_ns: 10, total_ns: 10 });
        let mut b = ProfileSnapshot::default();
        b.stages.insert("main;x".to_owned(), StageTotals { calls: 2, self_ns: 5, total_ns: 7 });
        b.stages.insert("main;y".to_owned(), StageTotals { calls: 9, self_ns: 1, total_ns: 1 });
        b.dropped = 4;
        a.merge(&b);
        assert_eq!(
            a.stages.get("main;x"),
            Some(&StageTotals { calls: 3, self_ns: 15, total_ns: 17 })
        );
        assert_eq!(a.stages.get("main;y").map(|t| t.calls), Some(9));
        assert_eq!(a.dropped, 4);
    }

    /// A generated stage tree: `gap_ns` self-time interleaved with the
    /// children. Node names cycle by depth so paths stay bounded.
    #[derive(Debug, Clone)]
    struct Tree {
        gap_ns: u64,
        children: Vec<Tree>,
    }

    /// Builds a depth-bounded tree deterministically from a flat script of
    /// (self-gap, child-count) pairs (the vendored proptest stub has no
    /// recursive strategies).
    fn build_tree(script: &mut std::slice::Iter<'_, (u64, usize)>, depth: usize) -> Tree {
        let &(gap_ns, nchild) = script.next().unwrap_or(&(1, 0));
        let nchild = if depth >= 3 { 0 } else { nchild };
        Tree { gap_ns, children: (0..nchild).map(|_| build_tree(script, depth + 1)).collect() }
    }

    fn replay(tree: &Tree, depth: usize, names: &[u32], t: u64) -> u64 {
        let name = names[depth.min(names.len() - 1)];
        push(name, t);
        let mut now = t;
        for child in &tree.children {
            now = replay(child, depth + 1, names, now);
        }
        now += tree.gap_ns;
        pop(name, now);
        now
    }

    fn wall(tree: &Tree) -> u64 {
        tree.gap_ns + tree.children.iter().map(wall).sum::<u64>()
    }

    proptest! {
        /// Satellite invariant: on one thread, the self-times of a stage
        /// subtree sum exactly to the root's elapsed wall time, and every
        /// node's total equals its self plus its children's totals.
        #[test]
        fn stage_tree_self_times_sum_to_wall_time(
            script in prop::collection::vec((1u64..200, 0usize..3), 1..30),
        ) {
            let tree = build_tree(&mut script.iter(), 0);
            let names: Vec<u32> = [
                "test.prof.sum.d0",
                "test.prof.sum.d1",
                "test.prof.sum.d2",
                "test.prof.sum.d3",
                "test.prof.sum.d4",
            ]
            .iter()
            .map(|n| intern(n))
            .collect();
            let before = snapshot();
            let end = replay(&tree, 0, &names, 1);
            prop_assert_eq!(end - 1, wall(&tree));
            let after = snapshot();
            // The global tree accumulates across proptest cases; the
            // invariant holds on the per-case delta.
            let prefix = "main;test.prof.sum.d0";
            let mut self_sum = 0u64;
            for (path, t) in &after.stages {
                if !path.starts_with(prefix) {
                    continue;
                }
                let prev = before.stages.get(path).copied().unwrap_or_default();
                self_sum += t.self_ns - prev.self_ns;
                prop_assert!(t.total_ns - prev.total_ns >= t.self_ns - prev.self_ns);
            }
            prop_assert_eq!(self_sum, wall(&tree), "self-times sum to the root's wall time");
        }

        /// Satellite invariant: merging per-shard (here: per-snapshot)
        /// profiles is equivalent to the single-shard oracle that saw
        /// every (path, totals) pair at once.
        #[test]
        fn merge_of_split_profiles_equals_the_single_oracle(
            raw in prop::collection::vec(
                ((0usize..3, 0usize..3, 0usize..4), 0u64..1000, 0u64..1000, 1u64..50),
                1..20,
            ),
            split in 0usize..20,
        ) {
            const SEG: [&str; 3] = ["a", "b", "c"];
            let entries: Vec<(String, u64, u64, u64)> = raw
                .iter()
                .map(|&((a, b, c), self_ns, extra_ns, calls)| {
                    let mut path = format!("{};{}", SEG[a], SEG[b]);
                    if c < SEG.len() {
                        path = format!("{path};{}", SEG[c]);
                    }
                    (path, self_ns, extra_ns, calls)
                })
                .collect();
            let mut oracle = ProfileSnapshot::default();
            let mut left = ProfileSnapshot::default();
            let mut right = ProfileSnapshot::default();
            for (i, (path, self_ns, extra_ns, calls)) in entries.iter().enumerate() {
                let t = StageTotals {
                    calls: *calls,
                    self_ns: *self_ns,
                    total_ns: self_ns + extra_ns,
                };
                for target in [&mut oracle, if i < split { &mut left } else { &mut right }] {
                    let e = target.stages.entry(path.clone()).or_default();
                    e.calls += t.calls;
                    e.self_ns += t.self_ns;
                    e.total_ns += t.total_ns;
                }
            }
            let mut merged = left.clone();
            merged.merge(&right);
            prop_assert_eq!(merged, oracle);
        }

        /// Satellite invariant: folded encoding round-trips the
        /// (path → self-weight) mapping for arbitrary path shapes.
        #[test]
        fn folded_encoding_round_trips(
            raw in prop::collection::vec(
                (
                    prop::collection::vec(0usize..6, 1..5),
                    1u64..100,
                    0u64..u32::MAX as u64,
                ),
                0..16,
            ),
        ) {
            const SEG: [&str; 6] =
                ["rsu.detect", "ml.nb", "main", "worker", "x_1", "ingest.co2"];
            let mut entries: BTreeMap<String, (u64, u64)> = BTreeMap::new();
            for (segs, calls, self_ns) in &raw {
                let path =
                    segs.iter().map(|&i| SEG[i]).collect::<Vec<_>>().join(";");
                entries.insert(path, (*calls, *self_ns));
            }
            let mut snap = ProfileSnapshot::default();
            for (path, (calls, self_ns)) in &entries {
                snap.stages.insert(
                    path.clone(),
                    StageTotals { calls: *calls, self_ns: *self_ns, total_ns: *self_ns },
                );
            }
            let folded = snap.folded();
            let parsed = ProfileSnapshot::from_folded(&folded);
            prop_assert_eq!(parsed.folded(), folded.clone());
            for (path, (_, self_ns)) in &entries {
                prop_assert_eq!(
                    parsed.stages.get(path).map(|t| t.self_ns),
                    Some(*self_ns)
                );
            }
        }
    }
}

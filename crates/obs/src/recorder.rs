//! The flight recorder: a fixed-size lock-free ring buffer of recent span
//! events for post-mortem analysis (a stalled poll loop, a panic mid-batch).
//!
//! Writers claim a ticket from an atomic cursor and publish into
//! `slots[ticket % capacity]` under a seqlock-style sequence word, so
//! recording never blocks and never allocates. Reading back ([`dump`]) is
//! best-effort by design: a slot being overwritten *while it is read* is
//! detected by the sequence re-check and skipped, and a slot lapped between
//! the two checks can surface one stale event — acceptable for a diagnostic
//! ring, in exchange for a wait-free hot path. All slot fields are atomics,
//! so torn reads are impossible at the memory level; the protocol only has
//! to keep whole *events* consistent.
//!
//! The recorder stores interned name ids (see
//! [`Registry::intern_name`](crate::Registry::intern_name)), not pointers:
//! slots stay plain `u64`s and the crate stays `forbid(unsafe_code)`.

use crate::metrics::Gauge;
use crate::registry;
use crate::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// What a recorded event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was entered.
    Enter,
    /// A span ended; `value` is its duration in nanoseconds.
    Exit,
    /// A point event (no duration).
    Point,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::Enter => 1,
            EventKind::Exit => 2,
            EventKind::Point => 3,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        match c {
            1 => Some(EventKind::Enter),
            2 => Some(EventKind::Exit),
            3 => Some(EventKind::Point),
            _ => None,
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Global record order (1-based ticket; later events have larger seq).
    pub seq: u64,
    /// Nanoseconds since the process clock anchor.
    pub time_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Resolved span/event name.
    pub name: &'static str,
    /// Span id (0 for free-standing point events).
    pub span: u64,
    /// Parent span id (0 when the span has no parent).
    pub parent: u64,
    /// Kind-specific payload: batch size on enter, duration (ns) on exit.
    pub value: u64,
}

#[derive(Debug, Default)]
struct Slot {
    /// 0 = empty, odd = being written, even = `2 * (ticket + 1)` published.
    seq: AtomicU64,
    time: AtomicU64,
    kind: AtomicU64,
    name_id: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    value: AtomicU64,
}

/// A fixed-capacity ring of span events. Usually accessed through the
/// process-wide [`recorder`].
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    /// Published copy of [`FlightRecorder::dropped`]; installed only on the
    /// process-wide [`recorder`] so private test instances never write the
    /// global `obs.recorder.dropped` gauge.
    drop_gauge: Option<Arc<Gauge>>,
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Slot::default()).collect(),
            cursor: AtomicU64::new(0),
            drop_gauge: None,
        }
    }

    /// Mirrors this recorder's overwrite loss onto `gauge` (the
    /// `obs.recorder.dropped` cell for the process-wide [`recorder`]), so
    /// snapshots and the Prometheus exporter can judge trace/span-dump
    /// completeness without holding the recorder itself.
    pub fn with_drop_gauge(mut self, gauge: Arc<Gauge>) -> Self {
        self.drop_gauge = Some(gauge);
        self
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        // ordering: Relaxed — a statistic read; dump() does its own
        // per-slot synchronisation.
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap: everything recorded beyond what the ring
    /// can still hold.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one event (wait-free; overwrites the oldest when full).
    pub fn record(
        &self,
        kind: EventKind,
        name_id: u32,
        span: u64,
        parent: u64,
        value: u64,
        time_ns: u64,
    ) {
        // ordering: Relaxed — the ticket only claims a unique slot index;
        // publication happens through the slot's own seq word below.
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let capacity = self.slots.len() as u64;
        if ticket >= capacity {
            // This write overwrites the oldest event; keep the loss gauge
            // current so exporters can report it without polling.
            if let Some(gauge) = &self.drop_gauge {
                gauge.set(ticket + 1 - capacity);
            }
        }
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let published = 2 * (ticket + 1);
        // ordering: Release/Acquire on seq fence the field writes for
        // readers: an odd seq marks the slot mid-write, and the final even
        // store publishes the fields written before it.
        slot.seq.store(published - 1, Ordering::Release);
        // ordering: Relaxed — fields are ordered by the seq protocol above.
        slot.time.store(time_ns, Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.name_id.store(u64::from(name_id), Ordering::Relaxed);
        // ordering: Relaxed — still inside the seq-word write window.
        slot.span.store(span, Ordering::Relaxed);
        slot.parent.store(parent, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        // ordering: Release — publishes the fields; see above.
        slot.seq.store(published, Ordering::Release);
    }

    /// Decodes the surviving events, oldest first. Slots caught mid-write
    /// are skipped (see the module docs on best-effort reads).
    pub fn dump(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for slot in &self.slots {
            // ordering: Acquire — pairs with the writer's Release publishes.
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            // ordering: Relaxed — bracketed by the seq re-check below.
            let time_ns = slot.time.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let name_id = slot.name_id.load(Ordering::Relaxed);
            // ordering: Relaxed — still bracketed by the seq re-check.
            let span = slot.span.load(Ordering::Relaxed);
            let parent = slot.parent.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            // ordering: Acquire — the re-check detecting concurrent rewrite.
            if slot.seq.load(Ordering::Acquire) != before {
                continue;
            }
            let Some(kind) = EventKind::from_code(kind) else { continue };
            out.push(SpanEvent {
                seq: before / 2,
                time_ns,
                kind,
                name: registry().name_of(u32::try_from(name_id).unwrap_or(u32::MAX)),
                span,
                parent,
                value,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// The process-wide flight recorder (4096 most recent events). Its ring
/// wrap is published on the `obs.recorder.dropped` gauge.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| {
        FlightRecorder::with_capacity(4096)
            .with_drop_gauge(registry().gauge("obs.recorder.dropped"))
    })
}

/// Installs a panic hook that dumps the flight recorder (as JSONL, to
/// stderr) before delegating to the previous hook — the post-mortem view of
/// whatever the pipeline was doing when it died. Safe to call more than
/// once; each call chains onto the hook installed before it.
pub fn install_panic_dump() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        use std::io::Write;
        let events = recorder().dump();
        let mut stderr = std::io::stderr().lock();
        let _ = writeln!(stderr, "--- cad3-obs flight recorder ({} events) ---", events.len());
        let _ = stderr.write_all(crate::export::events_jsonl(&events).as_bytes());
        let _ = writeln!(stderr, "--- end flight recorder ---");
        previous(info);
    }));
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn name_id(name: &'static str) -> u32 {
        registry().intern_name(name)
    }

    #[test]
    fn record_and_dump_round_trip() {
        let r = FlightRecorder::with_capacity(8);
        let id = name_id("test.event");
        r.record(EventKind::Enter, id, 1, 0, 42, 100);
        r.record(EventKind::Exit, id, 1, 0, 7, 150);
        let events = r.dump();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Enter);
        assert_eq!(events[0].name, "test.event");
        assert_eq!(events[0].value, 42);
        assert_eq!(events[1].kind, EventKind::Exit);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder::with_capacity(4);
        let id = name_id("test.ring");
        for i in 0..10u64 {
            r.record(EventKind::Point, id, i, 0, i, i);
        }
        let events = r.dump();
        assert_eq!(events.len(), 4);
        // The survivors are the last four tickets, in order.
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6, 7, 8, 9]);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn drop_gauge_tracks_ring_wrap() {
        let gauge = std::sync::Arc::new(crate::Gauge::new());
        let r = FlightRecorder::with_capacity(4).with_drop_gauge(std::sync::Arc::clone(&gauge));
        let id = name_id("test.ring.gauge");
        for i in 0..3u64 {
            r.record(EventKind::Point, id, i, 0, i, i);
        }
        assert_eq!((r.dropped(), gauge.value()), (0, 0), "no wrap yet");
        for i in 0..7u64 {
            r.record(EventKind::Point, id, i, 0, i, i);
        }
        assert_eq!(r.dropped(), 6);
        assert_eq!(gauge.value(), 6, "gauge mirrors the overwrite loss");
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_dump() {
        let r = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        let id = name_id("test.concurrent");
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        r.record(EventKind::Point, id, t, 0, i, i);
                    }
                })
            })
            .collect();
        // Dump while writers are active: every decoded event must be
        // internally consistent.
        for _ in 0..50 {
            for e in r.dump() {
                assert_eq!(e.name, "test.concurrent");
                assert!(e.value < 500);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.recorded(), 2000);
        assert_eq!(r.dump().len(), 64);
    }
}

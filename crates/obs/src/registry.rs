//! The metrics registry: one process-wide interning table from metric/span
//! names to shared metric cells.
//!
//! The registry mutex is **off the hot path**: the `counter!`/`gauge!`/
//! `histogram!`/`span!` macros cache the returned handle in a per-call-site
//! `OnceLock`, so instrumented code locks the registry exactly once per
//! call site per process and afterwards touches only the metric's atomics.
//!
//! # Lock hierarchy
//!
//! `Registry::inner` is a leaf lock (rank 90 in `lockranks.toml`): no other
//! workspace lock is ever acquired while it is held, so instrumentation may
//! be called from inside any broker/engine/RSU critical section without
//! widening the lock graph.

use crate::metrics::{Counter, Exemplar, Gauge, Histogram, HistogramSnapshot};
use crate::sync::{Arc, Mutex};
use std::collections::BTreeMap;
use std::sync::OnceLock;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    /// Interned span/event names; the flight recorder stores the index.
    names: Vec<&'static str>,
    name_ids: BTreeMap<&'static str, u32>,
}

/// A registry of named metrics. Normally used through the process-wide
/// [`registry`]; tests may build private instances.
pub struct Registry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry { inner: Mutex::new(Inner::default()) }
    }

    /// The counter named `name`, created on first use. Lookups of an
    /// existing name take no allocation; new names in a dynamic family past
    /// its cardinality cap collapse onto the family's `.overflow` cell (see
    /// [`crate::names::DYNAMIC_FAMILIES`]).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let _held = cad3_lockrank::rank_scope!("cad3_obs::Registry::inner");
        let mut inner = self.inner.lock();
        if let Some(cell) = inner.counters.get(name) {
            return Arc::clone(cell);
        }
        let overflow = admit(&inner.counters, name);
        if overflow.is_some() {
            count_drop(&mut inner);
        }
        let key = overflow.unwrap_or_else(|| name.to_owned());
        Arc::clone(inner.counters.entry(key).or_default())
    }

    /// The gauge named `name`, created on first use (same dedupe and
    /// family-cap policy as [`Self::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let _held = cad3_lockrank::rank_scope!("cad3_obs::Registry::inner");
        let mut inner = self.inner.lock();
        if let Some(cell) = inner.gauges.get(name) {
            return Arc::clone(cell);
        }
        let overflow = admit(&inner.gauges, name);
        if overflow.is_some() {
            count_drop(&mut inner);
        }
        let key = overflow.unwrap_or_else(|| name.to_owned());
        Arc::clone(inner.gauges.entry(key).or_default())
    }

    /// The histogram named `name`, created on first use (same dedupe and
    /// family-cap policy as [`Self::counter`]). Names in the
    /// [`crate::names::EXEMPLAR_HISTOGRAMS`] catalogue are created with
    /// per-bucket exemplar slots.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let _held = cad3_lockrank::rank_scope!("cad3_obs::Registry::inner");
        let mut inner = self.inner.lock();
        if let Some(cell) = inner.histograms.get(name) {
            return Arc::clone(cell);
        }
        let overflow = admit(&inner.histograms, name);
        if overflow.is_some() {
            count_drop(&mut inner);
        }
        let key = overflow.unwrap_or_else(|| name.to_owned());
        let cell = inner.histograms.entry(key).or_insert_with(|| {
            if crate::names::EXEMPLAR_HISTOGRAMS.contains(&name) {
                Arc::new(Histogram::with_exemplars())
            } else {
                Arc::new(Histogram::new())
            }
        });
        Arc::clone(cell)
    }

    /// Interns a static name (span names, event names), returning a dense id
    /// the flight recorder can store in an atomic slot.
    pub fn intern_name(&self, name: &'static str) -> u32 {
        let _held = cad3_lockrank::rank_scope!("cad3_obs::Registry::inner");
        let mut inner = self.inner.lock();
        if let Some(&id) = inner.name_ids.get(name) {
            return id;
        }
        let id = inner.names.len() as u32;
        inner.names.push(name);
        inner.name_ids.insert(name, id);
        id
    }

    /// The name behind an interned id (`"?"` for an unknown id).
    pub fn name_of(&self, id: u32) -> &'static str {
        let _held = cad3_lockrank::rank_scope!("cad3_obs::Registry::inner");
        let inner = self.inner.lock();
        inner.names.get(id as usize).copied().unwrap_or("?")
    }

    /// Merges every registered metric into one consistent snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Clone the Arcs under the lock, merge the shards outside it, so a
        // slow merge never blocks instrumentation registering new metrics.
        let (counters, gauges, histograms) = {
            let _held = cad3_lockrank::rank_scope!("cad3_obs::Registry::inner");
            let inner = self.inner.lock();
            (inner.counters.clone(), inner.gauges.clone(), inner.histograms.clone())
        };
        let exemplars = histograms
            .iter()
            .filter_map(|(k, v)| {
                let ex = v.exemplars();
                (!ex.is_empty()).then(|| (k.clone(), ex))
            })
            .collect();
        MetricsSnapshot {
            counters: counters.into_iter().map(|(k, v)| (k, v.value())).collect(),
            gauges: gauges.into_iter().map(|(k, v)| (k, v.value())).collect(),
            histograms: histograms.into_iter().map(|(k, v)| (k, v.snapshot())).collect(),
            exemplars,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// The process-wide registry all instrumentation macros write to.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Whether `key` is a member of dynamic family `family`
/// (`<family>.<anything>`).
fn is_family_member(key: &str, family: &str) -> bool {
    key.strip_prefix(family).is_some_and(|rest| rest.starts_with('.'))
}

/// Cardinality-cap admission for a *new* name (the caller has already
/// checked `map` does not contain it). Names outside every dynamic family
/// are always admitted (`None`). A family member is admitted while the
/// family holds fewer than [`crate::names::DYNAMIC_FAMILY_CAP`] keys;
/// past that, `Some("<family>.overflow")` routes it to the shared
/// overflow cell. Registration-path only — lookups of existing names
/// never get here.
fn admit<T>(map: &BTreeMap<String, T>, name: &str) -> Option<String> {
    let family = crate::names::DYNAMIC_FAMILIES.iter().find(|f| is_family_member(name, f))?;
    let members = map.keys().filter(|k| is_family_member(k, family)).count();
    (members >= crate::names::DYNAMIC_FAMILY_CAP).then(|| format!("{family}.overflow"))
}

/// Counts one capped registration on the `obs.names.dropped` counter
/// (stored in the same map, so it appears in snapshots and exports).
fn count_drop(inner: &mut Inner) {
    inner.counters.entry(crate::names::OBS_NAMES_DROPPED.to_owned()).or_default().inc();
}

/// A point-in-time merge of every registered metric — the API the bench
/// crate and the exporters consume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Merged histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Published tail exemplars by histogram name, as (bucket index,
    /// exemplar) pairs — only histograms with at least one exemplar appear.
    pub exemplars: BTreeMap<String, Vec<(usize, Exemplar)>>,
}

impl MetricsSnapshot {
    /// Counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Exemplars of the named histogram (empty when none are published).
    pub fn exemplars_of(&self, name: &str) -> &[(usize, Exemplar)] {
        self.exemplars.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_cell() {
        let r = Registry::new();
        let a = r.counter("x.y");
        let b = r.counter("x.y");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x.y").value(), 5);
        assert_eq!(r.counter("other").value(), 0);
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(9);
        r.histogram("h").observe(100);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 7);
        assert_eq!(s.gauge("g"), 9);
        assert_eq!(s.histogram("h").map(|h| h.count), Some(1));
        assert_eq!(s.counter("missing"), 0);
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn name_interning_is_stable() {
        let r = Registry::new();
        let a = r.intern_name("rsu.micro_batch");
        let b = r.intern_name("rsu.detect");
        assert_ne!(a, b);
        assert_eq!(r.intern_name("rsu.micro_batch"), a);
        assert_eq!(r.name_of(a), "rsu.micro_batch");
        assert_eq!(r.name_of(9999), "?");
    }

    #[test]
    fn global_registry_is_one_instance() {
        registry().counter("selftest.registry").add(1);
        assert!(registry().snapshot().counter("selftest.registry") >= 1);
    }

    #[test]
    fn catalogued_exemplar_histograms_capture_and_snapshot() {
        let r = Registry::new();
        let name = crate::names::EXEMPLAR_HISTOGRAMS[0];
        r.histogram(name).observe_with_exemplar(5000, 0x1234);
        r.histogram("plain.hist").observe_with_exemplar(5000, 0x1234);
        let snap = r.snapshot();
        assert_eq!(
            snap.exemplars_of(name),
            &[(13, Exemplar { trace_id: 0x1234, value: 5000 })],
            "catalogued names get exemplar slots"
        );
        assert!(snap.exemplars_of("plain.hist").is_empty(), "uncatalogued names do not");
        assert_eq!(snap.histogram("plain.hist").map(|h| h.count), Some(1));
    }

    #[test]
    fn family_cardinality_is_capped_with_shared_overflow() {
        use crate::names::{DYNAMIC_FAMILY_CAP, OBS_NAMES_DROPPED, STREAM_CONSUMER_LAG_PREFIX};
        let r = Registry::new();
        // Repeated registration of the same member neither grows the
        // family nor counts a drop.
        for _ in 0..3 {
            r.gauge(&format!("{STREAM_CONSUMER_LAG_PREFIX}.repeat"));
        }
        for i in 0..(DYNAMIC_FAMILY_CAP + 10) {
            r.gauge(&format!("{STREAM_CONSUMER_LAG_PREFIX}.g{i}")).set(u64::try_from(i).unwrap());
        }
        let snap = r.snapshot();
        let overflow = format!("{STREAM_CONSUMER_LAG_PREFIX}.overflow");
        let members = snap
            .gauges
            .keys()
            .filter(|k| is_family_member(k, STREAM_CONSUMER_LAG_PREFIX) && **k != overflow)
            .count();
        assert_eq!(members, DYNAMIC_FAMILY_CAP, "family stops growing at the cap");
        // 1 (repeat) + 63 admitted from the loop fill the cap; the
        // remaining 11 loop registrations were capped.
        assert_eq!(snap.counter(OBS_NAMES_DROPPED), 11);
        // The rejects share one overflow cell.
        assert!(snap.gauges.contains_key(&overflow));
        let a = r.gauge(&format!("{STREAM_CONSUMER_LAG_PREFIX}.another"));
        a.set(777);
        assert_eq!(r.gauge(&overflow).value(), 777, "overflow members share the cell");
        // Un-capped names are untouched.
        r.gauge("plain.gauge").set(1);
        assert_eq!(r.snapshot().gauge("plain.gauge"), 1);
    }
}

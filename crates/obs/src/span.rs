//! Structured spans: named, timed regions with parent/child links.
//!
//! A span is entered with the [`span!`](crate::span!) macro and ends when
//! the returned guard drops. Entering pushes the span onto a thread-local
//! stack, so nested spans record their parent automatically and one vehicle
//! record can be traced DSRC-ingest → partition append → consumer poll →
//! NB predict → handover fuse → alert across the pipeline. Both edges go to
//! the flight recorder, and the span's duration feeds a histogram named
//! `<span-name>_ns`, which is how the paper's Fig. 6a stage decomposition
//! falls out of the span names.
//!
//! When the substrate is disabled (no exporter attached — the default) the
//! macro returns an inert guard without reading the clock or touching the
//! recorder; the cost is one relaxed atomic load.

use crate::metrics::Histogram;
use crate::recorder::{recorder, EventKind};
use crate::registry::registry;
use crate::sync::Arc;
use std::cell::RefCell;

thread_local! {
    /// The enter-ordered stack of active span ids on this thread.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Allocates a process-unique span id (never 0; 0 means "no parent").
/// Shared with [`crate::trace`] so stage spans and distributed-trace spans
/// draw from one id space.
pub(crate) fn next_span_id() -> u64 {
    reserve_span_ids(1)
}

/// Reserves a contiguous block of `n` process-unique span ids, returning
/// the first (never 0; 0 means "no parent"). One reservation from a
/// coordinating thread lets parallel workers emit spans with
/// *pre-assigned* ids ([`crate::trace::emit_at`]) instead of racing on
/// this counter — the allocation order, and therefore the replay
/// artifacts, stay deterministic regardless of worker schedule.
pub(crate) fn reserve_span_ids(n: u64) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    // Plain std atomic by design — see `sync.rs` on what stays outside the
    // loom facade.
    static NEXT: AtomicU64 = AtomicU64::new(1);
    // ordering: Relaxed — ids only need uniqueness, which fetch_add's
    // atomicity alone guarantees.
    NEXT.fetch_add(n, Ordering::Relaxed)
}

/// Per-call-site span identity, cached in a `OnceLock` by the
/// [`span!`](crate::span!) macro: the interned name plus the duration
/// histogram the span feeds.
#[derive(Debug)]
pub struct SpanSite {
    name_id: u32,
    histogram: Arc<Histogram>,
}

impl SpanSite {
    /// Registers a span name, interning it and creating its `<name>_ns`
    /// duration histogram.
    pub fn register(name: &'static str) -> Self {
        SpanSite {
            name_id: registry().intern_name(name),
            histogram: registry().histogram(&format!("{name}_ns")),
        }
    }
}

/// RAII guard for an active span; dropping it ends the span.
#[derive(Debug)]
pub struct SpanGuard {
    site: Option<&'static SpanSite>,
    id: u64,
    parent: u64,
    start_ns: u64,
}

impl SpanGuard {
    /// Enters a span (called by the [`span!`](crate::span!) macro). `value`
    /// is a free payload recorded on the enter event — batch sizes, vehicle
    /// counts.
    pub fn enter(site: &'static SpanSite, value: u64) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { site: None, id: 0, parent: 0, start_ns: 0 };
        }
        let id = next_span_id();
        let parent = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        });
        let start_ns = crate::clock::now_nanos();
        recorder().record(EventKind::Enter, site.name_id, id, parent, value, start_ns);
        crate::profile::push(site.name_id, start_ns);
        SpanGuard { site: Some(site), id, parent, start_ns }
    }

    /// This span's id (0 for an inert guard).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The enclosing span's id (0 when there is none).
    pub fn parent(&self) -> u64 {
        self.parent
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(site) = self.site else { return };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop this span; tolerate a foreign top if guards were dropped
            // out of order (possible but discouraged).
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let end_ns = crate::clock::now_nanos();
        let duration = end_ns.saturating_sub(self.start_ns);
        site.histogram.observe(duration);
        recorder().record(EventKind::Exit, site.name_id, self.id, self.parent, duration, end_ns);
        crate::profile::pop(site.name_id, end_ns);
    }
}

/// Records a free-standing point event (no duration) to the flight
/// recorder, attached to the current innermost span if any.
pub fn point(site: &'static SpanSite, value: u64) {
    if !crate::enabled() {
        return;
    }
    let parent = STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    recorder().record(EventKind::Point, site.name_id, 0, parent, value, crate::clock::now_nanos());
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        crate::set_enabled(false);
        let g = crate::span!("test.span.disabled");
        assert_eq!(g.id(), 0);
        assert_eq!(g.parent(), 0);
    }

    #[test]
    fn nested_spans_link_parents() {
        crate::set_enabled(true);
        let (outer_id, inner_parent);
        {
            let outer = crate::span!("test.span.outer");
            outer_id = outer.id();
            let inner = crate::span!("test.span.inner", 5);
            inner_parent = inner.parent();
            assert_ne!(inner.id(), outer.id());
        }
        crate::set_enabled(false);
        assert_eq!(inner_parent, outer_id, "inner span's parent is the outer span");
        // Both spans fed their duration histograms.
        let snap = registry().snapshot();
        assert!(snap.histogram("test.span.outer_ns").is_some_and(|h| h.count >= 1));
        assert!(snap.histogram("test.span.inner_ns").is_some_and(|h| h.count >= 1));
        // And the recorder holds enter/exit for both.
        let events = crate::recorder().dump();
        let inner_events: Vec<_> = events.iter().filter(|e| e.name == "test.span.inner").collect();
        assert!(inner_events.iter().any(|e| e.kind == EventKind::Enter && e.value == 5));
        assert!(inner_events.iter().any(|e| e.kind == EventKind::Exit));
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        crate::set_enabled(true);
        let outer = crate::span!("test.span.parent");
        let a = crate::span!("test.span.a");
        let a_parent = a.parent();
        drop(a);
        let b = crate::span!("test.span.b");
        let b_parent = b.parent();
        drop(b);
        let outer_id = outer.id();
        drop(outer);
        crate::set_enabled(false);
        assert_eq!(a_parent, outer_id);
        assert_eq!(b_parent, outer_id);
    }
}

//! Synchronization facade for the observability substrate.
//!
//! The metric cells (histogram buckets, counter shards) import their atomic
//! and lock types from here instead of `std::sync`/`parking_lot` directly,
//! so the sharded-cell merge can be re-built against loom's model-checked
//! types with `RUSTFLAGS="--cfg loom"` (see `tests/loom_obs.rs`), exactly
//! like the stream crate's `sync` module.
//!
//! Deliberately *outside* the facade: the global enable gate and span-id
//! counter in `lib.rs`/`span.rs` use plain `std` atomics even under loom.
//! They are process-wide singletons that survive across loom iterations;
//! modelling them would poison iteration independence, and they carry no
//! cross-thread data — the model-checked property is the cell merge.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::Mutex;
// `Arc` leaks into the public macro expansions (`$crate::__Arc`), so it is
// `pub` rather than `pub(crate)`; it stays `#[doc(hidden)]` at the re-export.
#[cfg(loom)]
pub use loom::sync::Arc;

#[cfg(not(loom))]
pub(crate) use parking_lot::Mutex;
#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub use std::sync::Arc;

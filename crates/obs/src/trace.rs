//! Distributed tracing: per-record context propagation, a bounded span-event
//! sink, and causal assembly with critical-path attribution.
//!
//! The span machinery in [`crate::span`] times *stages* on one thread; this
//! module gives one vehicle record an identity that survives the stream
//! substrate, the emulated DSRC/wired links and — the CAD3-specific part — a
//! handover, where the CO-DATA summary carries the originating lineage so
//! the next RSU's `rsu.handover.fuse` span links back to the previous RSU's
//! spans (Dapper-style propagation; see DESIGN.md "Distributed tracing").
//!
//! # Model
//!
//! * A [`TraceContext`] is minted per record at emission ([`mint`]), subject
//!   to head-based sampling: the decision is made once at the root and
//!   inherited by every child span. The sampled-out path is `None` end to
//!   end — no allocation, no event, one relaxed load + branch at the mint
//!   site (the default rate is 0, so an untraced run pays nothing else).
//! * Trace spans are emitted as **complete intervals** ([`emit`] /
//!   [`crate::trace_span!`]): one event carrying `start_ns..end_ns` of
//!   *virtual* time supplied by the caller. There is no enter/exit pairing
//!   to reorder, so assembly is inherently order-independent.
//! * Events land in a bounded process-wide [`TraceSink`]; past capacity
//!   they are counted as dropped (`obs.trace.dropped`) instead of blocking
//!   or growing without bound.
//! * [`assemble`] groups drained events by trace id and rebuilds the span
//!   tree, tolerating out-of-order arrival, duplicates and missing parents
//!   (orphans are kept and reported, not silently attached).
//!
//! All timestamps are caller-supplied virtual nanoseconds (the simulator's
//! `SimTime`); this module never reads the wall clock.

use crate::sync::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Sampling threshold on a 16-bit scale: 0 = never, `1 << 16` = always.
/// Plain std atomic by design — a process-wide singleton outside the loom
/// facade, like the enable gate (see `sync.rs`).
static SAMPLE_SCALE: AtomicU32 = AtomicU32::new(0);

/// Trace-id allocator (never 0; 0 means "no trace"). Same singleton policy
/// as [`SAMPLE_SCALE`].
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

const SCALE_ONE: u32 = 1 << 16;

/// SplitMix64 finalizer — decorrelates the sequential trace ids so the
/// sampling decision is unbiased across id ranges.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sets the head-sampling rate (clamped to `0.0..=1.0`). The decision is
/// made per trace at [`mint`]; records already in flight keep the decision
/// minted with them.
pub fn set_sample_rate(rate: f64) {
    let scaled = (rate.clamp(0.0, 1.0) * f64::from(SCALE_ONE)).round();
    // `scaled` is in 0..=65536 by the clamp above; the cast cannot truncate.
    // ordering: Relaxed — an advisory knob; mint sites read it independently
    // and no data is published through it.
    SAMPLE_SCALE.store(scaled as u32, Ordering::Relaxed);
}

/// The current head-sampling rate in `0.0..=1.0`.
pub fn sample_rate() -> f64 {
    // ordering: Relaxed — see [`set_sample_rate`].
    f64::from(SAMPLE_SCALE.load(Ordering::Relaxed)) / f64::from(SCALE_ONE)
}

/// The compact per-record trace context carried through the pipeline.
///
/// `Copy` and 24 bytes, so it rides in a stream-record header slot without
/// allocation. A context only ever exists for *sampled* traces — the
/// sampled-out path carries `None` instead — but the decision bit is kept
/// explicit so a lineage decoded off the wire states its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    trace_id: u64,
    parent_span: u64,
    hop: u8,
    sampled: bool,
}

impl TraceContext {
    /// Rebuilds a context from its wire parts (used by the CO-DATA lineage
    /// codec in `cad3-types`/`cad3`; `mint` is the normal entry point).
    pub fn from_parts(trace_id: u64, parent_span: u64, hop: u8) -> Self {
        TraceContext { trace_id, parent_span, hop, sampled: true }
    }

    /// The trace this record belongs to (never 0).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The span id the *next* emitted span should attach under.
    pub fn parent_span(&self) -> u64 {
        self.parent_span
    }

    /// Propagation hops so far (incremented when the record crosses a
    /// network boundary or an RSU handover).
    pub fn hop(&self) -> u8 {
        self.hop
    }

    /// The head-sampling decision minted at the root.
    pub fn sampled(&self) -> bool {
        self.sampled
    }

    /// The context downstream spans on the *same* hop should carry:
    /// re-parented under `span`, hop count unchanged.
    pub fn child(&self, span: u64) -> Self {
        TraceContext { parent_span: span, ..*self }
    }

    /// The context for the far side of a network boundary or handover:
    /// re-parented under `span` with the hop count bumped.
    pub fn next_hop(&self, span: u64) -> Self {
        TraceContext { parent_span: span, hop: self.hop.saturating_add(1), ..*self }
    }
}

/// Mints the trace context for a newly emitted record, or `None` if the
/// trace is sampled out. At the default rate (0) this is one relaxed load
/// and an untaken branch.
pub fn mint() -> Option<TraceContext> {
    // ordering: Relaxed — advisory sampling knob; see [`set_sample_rate`].
    let threshold = SAMPLE_SCALE.load(Ordering::Relaxed);
    if threshold == 0 {
        return None;
    }
    // ordering: Relaxed — ids only need uniqueness, which fetch_add's
    // atomicity alone guarantees.
    let id = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
    if threshold < SCALE_ONE && (splitmix64(id) & 0xFFFF) >= u64::from(threshold) {
        return None;
    }
    Some(TraceContext { trace_id: id, parent_span: 0, hop: 0, sampled: true })
}

/// One complete trace span: a closed `start_ns..end_ns` interval of virtual
/// time attributed to `name` on `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's process-unique id.
    pub span: u64,
    /// The parent span id (0 for a trace root).
    pub parent: u64,
    /// Catalogue name (see [`crate::names`]).
    pub name: &'static str,
    /// Interval start, virtual nanoseconds.
    pub start_ns: u64,
    /// Interval end, virtual nanoseconds.
    pub end_ns: u64,
    /// Which node did the work (RSU index; `u32::MAX` for shared links).
    pub node: u32,
    /// Free payload (queue delay, batch size, …).
    pub value: u64,
}

/// A bounded collector of [`TraceEvent`]s. Usually accessed through the
/// process-wide [`sink`]; tests may build private instances.
///
/// # Lock hierarchy
///
/// `TraceSink::events` is a leaf lock (rank 95 in `lockranks.toml`): spans
/// are emitted from inside RSU shard and registry-adjacent critical
/// sections, so the sink must never acquire another workspace lock.
#[derive(Debug)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TraceSink {
    /// Creates a sink retaining at most `capacity` undrained events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            events: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one event, or counts it dropped when the sink is full.
    /// Returns whether the event was retained.
    pub fn push(&self, event: TraceEvent) -> bool {
        let retained = {
            let _held = cad3_lockrank::rank_scope!("cad3_obs::TraceSink::events");
            let mut events = self.events.lock();
            if events.len() < self.capacity {
                events.push(event);
                true
            } else {
                false
            }
        };
        if !retained {
            // ordering: Relaxed — a statistic; the drop decision was made
            // under the events lock above.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        retained
    }

    /// Takes every buffered event, leaving the sink empty. The dropped
    /// count is cumulative and not reset by draining.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let _held = cad3_lockrank::rank_scope!("cad3_obs::TraceSink::events");
        std::mem::take(&mut *self.events.lock())
    }

    /// Events rejected because the sink was full, since process start.
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — a statistic read.
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The process-wide trace sink (65 536 undrained events).
pub fn sink() -> &'static TraceSink {
    static SINK: OnceLock<TraceSink> = OnceLock::new();
    SINK.get_or_init(|| TraceSink::with_capacity(65_536))
}

/// Emits one complete span on `ctx`'s trace and returns the new span id —
/// callers chain it into [`TraceContext::child`]/[`TraceContext::next_hop`]
/// so later spans attach underneath. Usually called through
/// [`crate::trace_span!`] so the lint pass can check the name literal.
pub fn emit(
    ctx: &TraceContext,
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    node: u32,
    value: u64,
) -> u64 {
    emit_at(crate::span::next_span_id(), ctx, name, start_ns, end_ns, node, value)
}

/// Reserves a contiguous block of `n` span ids and returns the first.
/// Reserve on the coordinating thread before fanning work out, then hand
/// each worker its slice to [`emit_at`]: span ids follow input order
/// instead of worker schedule, keeping replay artifacts byte-stable.
pub fn reserve_ids(n: u64) -> u64 {
    crate::span::reserve_span_ids(n)
}

/// [`emit`] with a caller-supplied span id from [`reserve_ids`] — the
/// parallel-stage variant. The id must be unique for the process; reusing
/// one makes the assembler drop the second copy as a duplicate.
pub fn emit_at(
    span: u64,
    ctx: &TraceContext,
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    node: u32,
    value: u64,
) -> u64 {
    let retained = sink().push(TraceEvent {
        trace_id: ctx.trace_id,
        span,
        parent: ctx.parent_span,
        name,
        start_ns,
        end_ns: end_ns.max(start_ns),
        node,
        value,
    });
    if !retained {
        crate::gauge!("obs.trace.dropped").set(sink().dropped());
    }
    span
}

/// One span inside an assembled [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span id.
    pub span: u64,
    /// Parent span id (0 at the root).
    pub parent: u64,
    /// Catalogue name.
    pub name: &'static str,
    /// Interval start, virtual nanoseconds.
    pub start_ns: u64,
    /// Interval end, virtual nanoseconds.
    pub end_ns: u64,
    /// Node that did the work.
    pub node: u32,
    /// Free payload.
    pub value: u64,
    /// Child span ids, ordered by `(start_ns, span)`.
    pub children: Vec<u64>,
}

impl SpanNode {
    /// The span's own duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One reassembled trace: a span tree plus the defects found while
/// rebuilding it (extra roots, spans whose parent never arrived).
#[derive(Debug, Clone)]
pub struct Trace {
    /// The trace id every member span carried.
    pub trace_id: u64,
    spans: BTreeMap<u64, SpanNode>,
    root: Option<u64>,
    orphans: Vec<u64>,
}

impl Trace {
    /// The root span (parent id 0), when exactly identifiable — the
    /// earliest-starting root if several arrived.
    pub fn root(&self) -> Option<&SpanNode> {
        self.root.and_then(|id| self.spans.get(&id))
    }

    /// The span with `id`, if present.
    pub fn span(&self, id: u64) -> Option<&SpanNode> {
        self.spans.get(&id)
    }

    /// Every member span, keyed by span id.
    pub fn spans(&self) -> &BTreeMap<u64, SpanNode> {
        &self.spans
    }

    /// Span ids whose parent id is non-zero but never arrived, plus any
    /// extra roots beyond the elected one.
    pub fn orphans(&self) -> &[u64] {
        &self.orphans
    }

    /// Whether the trace reassembled without defects: one root, no
    /// orphans, and every span reachable from the root.
    pub fn is_complete(&self) -> bool {
        let Some(root) = self.root else { return false };
        if !self.orphans.is_empty() {
            return false;
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if let Some(node) = self.spans.get(&id) {
                stack.extend(node.children.iter().copied());
            }
        }
        seen.len() == self.spans.len()
    }

    /// The distinct nodes (RSU indices, link sentinels) the trace touched.
    pub fn nodes(&self) -> BTreeSet<u32> {
        self.spans.values().map(|s| s.node).collect()
    }

    /// End-to-end extent: latest span end minus earliest span start.
    pub fn end_to_end_ns(&self) -> u64 {
        let start = self.spans.values().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self.spans.values().map(|s| s.end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Critical-path length from the root:
    /// `cp(span) = max(own duration, Σ cp(children))`.
    ///
    /// With children tiling their parent's interval this equals the root's
    /// own duration; with an instant root (the `vehicle.emit` point) it is
    /// the longest causal chain below it.
    pub fn critical_path_ns(&self) -> u64 {
        let Some(root) = self.root else { return 0 };
        let mut cp: BTreeMap<u64, u64> = BTreeMap::new();
        let mut visiting: BTreeSet<u64> = BTreeSet::new();
        let mut stack = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            let Some(node) = self.spans.get(&id) else { continue };
            if expanded {
                visiting.remove(&id);
                let below: u64 =
                    node.children.iter().map(|c| cp.get(c).copied().unwrap_or(0)).sum();
                cp.insert(id, node.duration_ns().max(below));
            } else if visiting.insert(id) {
                // Defensive cycle guard; parent links reachable from a
                // 0-parent root cannot actually cycle.
                stack.push((id, true));
                for &c in &node.children {
                    if !visiting.contains(&c) {
                        stack.push((c, false));
                    }
                }
            }
        }
        cp.get(&root).copied().unwrap_or(0)
    }

    /// `(name, own duration)` of every member span — the input to per-stage
    /// percentile attribution.
    pub fn stage_durations(&self) -> Vec<(&'static str, u64)> {
        self.spans.values().map(|s| (s.name, s.duration_ns())).collect()
    }

    /// A Fig.-6a-style text waterfall: the span tree indented by depth,
    /// with intervals relative to the trace start.
    pub fn waterfall(&self) -> String {
        let mut out = String::new();
        let base = self.spans.values().map(|s| s.start_ns).min().unwrap_or(0);
        let _ = writeln!(
            out,
            "trace {:#018x}: {} spans, end_to_end={}ns, critical_path={}ns{}",
            self.trace_id,
            self.spans.len(),
            self.end_to_end_ns(),
            self.critical_path_ns(),
            if self.is_complete() { "" } else { " [INCOMPLETE]" },
        );
        let mut stack: Vec<(u64, usize)> = self.root.map(|r| (r, 0)).into_iter().collect();
        let mut seen = BTreeSet::new();
        while let Some((id, depth)) = stack.pop() {
            let Some(node) = self.spans.get(&id) else { continue };
            if !seen.insert(id) {
                continue;
            }
            let _ = writeln!(
                out,
                "{:indent$}[{:>10} .. {:>10}] node {:>2}  {}",
                "",
                node.start_ns.saturating_sub(base),
                node.end_ns.saturating_sub(base),
                node.node,
                node.name,
                indent = depth * 2,
            );
            // Reverse so the earliest child pops (and prints) first.
            for &c in node.children.iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        for &id in &self.orphans {
            if let Some(node) = self.spans.get(&id) {
                let _ = writeln!(
                    out,
                    "  (orphan) [{:>10} .. {:>10}] node {:>2}  {} (parent {} missing)",
                    node.start_ns.saturating_sub(base),
                    node.end_ns.saturating_sub(base),
                    node.node,
                    node.name,
                    node.parent,
                );
            }
        }
        out
    }
}

/// Rebuilds traces from span events, in ascending trace-id order.
///
/// Tolerance envelope: events may arrive in any order and duplicated (the
/// first copy of a span id wins); a span whose parent never arrived is kept
/// and listed in [`Trace::orphans`] rather than dropped or re-attached; a
/// trace with several parentless spans elects the earliest as root and
/// lists the rest as orphans.
pub fn assemble(events: &[TraceEvent]) -> Vec<Trace> {
    let mut by_trace: BTreeMap<u64, BTreeMap<u64, SpanNode>> = BTreeMap::new();
    for e in events {
        by_trace.entry(e.trace_id).or_default().entry(e.span).or_insert_with(|| SpanNode {
            span: e.span,
            parent: e.parent,
            name: e.name,
            start_ns: e.start_ns,
            end_ns: e.end_ns,
            node: e.node,
            value: e.value,
            children: Vec::new(),
        });
    }
    by_trace
        .into_iter()
        .map(|(trace_id, mut spans)| {
            let starts: BTreeMap<u64, u64> =
                spans.iter().map(|(id, s)| (*id, s.start_ns)).collect();
            let ids: Vec<u64> = spans.keys().copied().collect();
            let mut roots: Vec<u64> = Vec::new();
            let mut orphans: Vec<u64> = Vec::new();
            for id in ids {
                let parent = spans[&id].parent;
                if parent == 0 {
                    roots.push(id);
                } else if let Some(p) = spans.get_mut(&parent) {
                    p.children.push(id);
                } else {
                    orphans.push(id);
                }
            }
            // Children sorted by (start_ns, span) for a deterministic tree.
            for node in spans.values_mut() {
                node.children.sort_by_key(|c| (starts.get(c).copied().unwrap_or(0), *c));
            }
            roots.sort_by_key(|r| (starts.get(r).copied().unwrap_or(0), *r));
            let root = roots.first().copied();
            orphans.extend(roots.iter().skip(1).copied());
            orphans.sort_unstable();
            Trace { trace_id, spans, root, orphans }
        })
        .collect()
}

/// Renders assembled traces as one JSON object per line (the
/// `results/artifacts/traces.jsonl` artifact).
pub fn traces_jsonl(traces: &[Trace]) -> String {
    let mut out = String::new();
    for t in traces {
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"complete\":{},\"critical_path_ns\":{},\"end_to_end_ns\":{},\"nodes\":[",
            t.trace_id,
            t.is_complete(),
            t.critical_path_ns(),
            t.end_to_end_ns(),
        );
        for (i, n) in t.nodes().iter().enumerate() {
            let _ = write!(out, "{}{n}", if i == 0 { "" } else { "," });
        }
        let _ = write!(out, "],\"spans\":[");
        for (i, s) in t.spans.values().enumerate() {
            let _ = write!(
                out,
                "{}{{\"span\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"node\":{},\"value\":{}}}",
                if i == 0 { "" } else { "," },
                s.span,
                s.parent,
                crate::export::json_escape(s.name),
                s.start_ns,
                s.end_ns,
                s.node,
                s.value,
            );
        }
        let _ = writeln!(out, "]}}");
    }
    out
}

/// Nearest-rank percentile over an ascending-sorted slice (`q` in
/// `0.0..=100.0`); 0 for an empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((q.clamp(0.0, 100.0) / 100.0) * (n as f64)).ceil();
    // `rank` is in 0.0..=n by the clamp; the cast cannot truncate.
    let idx = (rank as usize).clamp(1, n) - 1;
    sorted[idx]
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ev(trace: u64, span: u64, parent: u64, name: &'static str, s: u64, e: u64) -> TraceEvent {
        TraceEvent {
            trace_id: trace,
            span,
            parent,
            name,
            start_ns: s,
            end_ns: e,
            node: 0,
            value: 0,
        }
    }

    #[test]
    fn default_rate_mints_nothing() {
        set_sample_rate(0.0);
        assert_eq!(mint(), None);
        assert_eq!(sample_rate(), 0.0);
    }

    #[test]
    fn full_rate_mints_everything_with_fresh_ids() {
        set_sample_rate(1.0);
        let a = mint().expect("sampled");
        let b = mint().expect("sampled");
        set_sample_rate(0.0);
        assert_ne!(a.trace_id(), b.trace_id());
        assert_eq!(a.parent_span(), 0);
        assert_eq!(a.hop(), 0);
        assert!(a.sampled());
    }

    #[test]
    fn partial_rate_is_roughly_proportional() {
        set_sample_rate(0.25);
        let sampled = (0..4000).filter(|_| mint().is_some()).count();
        set_sample_rate(0.0);
        assert!((600..=1400).contains(&sampled), "sampled {sampled}/4000 at 25%");
    }

    #[test]
    fn child_and_next_hop_reparent() {
        let ctx = TraceContext::from_parts(7, 0, 0);
        let c = ctx.child(42);
        assert_eq!((c.trace_id(), c.parent_span(), c.hop()), (7, 42, 0));
        let h = c.next_hop(43);
        assert_eq!((h.trace_id(), h.parent_span(), h.hop()), (7, 43, 1));
    }

    #[test]
    fn sink_bounds_and_counts_drops() {
        let s = TraceSink::with_capacity(2);
        assert!(s.push(ev(1, 1, 0, "a", 0, 1)));
        assert!(s.push(ev(1, 2, 1, "b", 1, 2)));
        assert!(!s.push(ev(1, 3, 1, "c", 2, 3)));
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.drain().len(), 2);
        assert!(s.drain().is_empty());
        // Capacity freed by the drain; dropped count stays cumulative.
        assert!(s.push(ev(1, 4, 1, "d", 3, 4)));
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn assemble_rebuilds_a_tree_from_shuffled_events() {
        let events = vec![
            ev(9, 30, 20, "c", 250, 300),
            ev(9, 10, 0, "root", 0, 400),
            ev(9, 20, 10, "b", 100, 300),
            ev(9, 21, 10, "a", 0, 100),
            ev(9, 30, 20, "c", 250, 300), // duplicate: first copy wins
        ];
        let traces = assemble(&events);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.trace_id, 9);
        assert!(t.is_complete(), "{t:?}");
        assert_eq!(t.spans().len(), 4);
        let root = t.root().expect("root");
        assert_eq!(root.name, "root");
        // Children ordered by start time: a (0) before b (100).
        assert_eq!(root.children, vec![21, 20]);
        assert_eq!(t.span(20).expect("b").children, vec![30]);
        // cp(b) = max(200, 50) = 200; cp(root) = max(400, 100 + 200) = 400.
        assert_eq!(t.critical_path_ns(), 400);
        assert_eq!(t.end_to_end_ns(), 400);
    }

    #[test]
    fn orphan_and_extra_root_are_reported_not_dropped() {
        let events = vec![
            ev(5, 1, 0, "root", 0, 10),
            ev(5, 2, 99, "lost", 3, 5),
            ev(5, 3, 0, "late_root", 4, 6),
        ];
        let t = &assemble(&events)[0];
        assert!(!t.is_complete());
        assert_eq!(t.root().expect("elected").span, 1);
        assert_eq!(t.orphans(), &[2, 3]);
        assert_eq!(t.spans().len(), 3);
    }

    #[test]
    fn traces_group_by_id() {
        let events = vec![ev(2, 4, 0, "r2", 0, 1), ev(1, 3, 0, "r1", 0, 1), ev(2, 5, 4, "x", 0, 1)];
        let traces = assemble(&events);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].trace_id, 1);
        assert_eq!(traces[1].trace_id, 2);
        assert_eq!(traces[1].spans().len(), 2);
    }

    #[test]
    fn emit_feeds_the_global_sink() {
        let ctx = TraceContext::from_parts(u64::MAX, 0, 0);
        let span = emit(&ctx, "rsu.detect", 10, 20, 1, 3);
        assert_ne!(span, 0);
        let mine: Vec<TraceEvent> =
            sink().drain().into_iter().filter(|e| e.trace_id == u64::MAX).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].span, span);
        assert_eq!(mine[0].name, "rsu.detect");
        assert_eq!((mine[0].start_ns, mine[0].end_ns, mine[0].node, mine[0].value), (10, 20, 1, 3));
    }

    #[test]
    fn waterfall_and_jsonl_render() {
        let events = vec![ev(3, 1, 0, "root", 0, 100), ev(3, 2, 1, "leaf", 10, 60)];
        let traces = assemble(&events);
        let wf = traces[0].waterfall();
        assert!(wf.contains("root"), "{wf}");
        assert!(wf.contains("  ["), "child indented: {wf}");
        let jsonl = traces_jsonl(&traces);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"complete\":true"), "{jsonl}");
        assert!(jsonl.contains("\"name\":\"leaf\""), "{jsonl}");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }
}

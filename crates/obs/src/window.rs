//! Windowed time-series over registry snapshots.
//!
//! The registry's counters and histograms are cumulative since process
//! start, which answers "how much ever" but not "how fast right now". This
//! module adds the missing axis: a fixed-capacity ring of timestamped
//! [`MetricsSnapshot`]s pushed by a periodic sampling tick, from which
//! deltas, rates and quantiles *over a trailing window* are derived by
//! subtracting the youngest sample at least `window` old from the newest
//! one. Histogram subtraction is exact because the log2 bucket layout is
//! cumulative per bucket: the windowed histogram is the element-wise
//! difference of two snapshots, and its quantiles carry the same
//! one-bucket error bound as the cumulative ones.
//!
//! Timestamps come from the caller (the health monitor passes
//! [`crate::clock::now_nanos`] readings), so under the virtual clock the
//! whole layer is a pure function of the pushed snapshots — replay runs
//! stay byte-stable. Nothing here touches the hot path: sampling cost is
//! one registry snapshot per tick, on the monitor's thread.

use crate::metrics::{bucket_upper, HistogramSnapshot, BUCKETS};
use crate::registry::MetricsSnapshot;
use std::collections::VecDeque;

/// Fixed-capacity ring of timestamped registry snapshots.
#[derive(Debug)]
pub struct SnapshotRing {
    cap: usize,
    buf: VecDeque<(u64, MetricsSnapshot)>,
}

impl SnapshotRing {
    /// Creates a ring holding at most `cap` samples (at least 2, so a delta
    /// is always derivable once the ring is warm).
    pub fn new(cap: usize) -> Self {
        SnapshotRing { cap: cap.max(2), buf: VecDeque::new() }
    }

    /// Pushes a sample, evicting the oldest once full. Timestamps are kept
    /// monotone: a reading older than the newest sample is clamped to it,
    /// so a misbehaving driver cannot make windows run backwards.
    pub fn push(&mut self, t_ns: u64, snapshot: MetricsSnapshot) {
        let t_ns = self.buf.back().map_or(t_ns, |(last, _)| t_ns.max(*last));
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back((t_ns, snapshot));
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<&(u64, MetricsSnapshot)> {
        self.buf.back()
    }

    /// The baseline sample for a `window_ns` lookback: the youngest sample
    /// at least `window_ns` older than the newest one, or the oldest held
    /// sample while the ring is still warming up. `None` with fewer than
    /// two samples — no interval exists yet.
    fn baseline(&self, window_ns: u64) -> Option<&(u64, MetricsSnapshot)> {
        if self.buf.len() < 2 {
            return None;
        }
        let (newest, _) = self.buf.back()?;
        let cutoff = newest.saturating_sub(window_ns);
        self.buf.iter().rev().skip(1).find(|(t, _)| *t <= cutoff).or(self.buf.front())
    }

    /// Nanoseconds actually spanned by the `window_ns` lookback (shorter
    /// than requested while warming up, a little longer between ticks).
    pub fn window_span_ns(&self, window_ns: u64) -> Option<u64> {
        let (newest, _) = self.buf.back()?;
        let (base, _) = self.baseline(window_ns)?;
        Some(newest.saturating_sub(*base))
    }

    /// Increase of counter `name` over the window. Saturates at zero if the
    /// counter disappeared or reset (it never does in-process).
    pub fn counter_delta(&self, name: &str, window_ns: u64) -> Option<u64> {
        let (_, newest) = self.buf.back()?;
        let (_, base) = self.baseline(window_ns)?;
        Some(newest.counter(name).saturating_sub(base.counter(name)))
    }

    /// Per-second rate of counter `name` over the window.
    pub fn counter_rate(&self, name: &str, window_ns: u64) -> Option<f64> {
        let delta = self.counter_delta(name, window_ns)?;
        let span = self.window_span_ns(window_ns)?;
        if span == 0 {
            return None;
        }
        Some(delta as f64 * 1e9 / span as f64)
    }

    /// Maximum value gauge `name` held across the window's samples
    /// (baseline inclusive). `None` if no in-window sample carries it.
    pub fn gauge_max(&self, name: &str, window_ns: u64) -> Option<u64> {
        let (base_t, _) = self.baseline(window_ns)?;
        let cutoff = *base_t;
        self.buf
            .iter()
            .filter(|(t, _)| *t >= cutoff)
            .filter_map(|(_, s)| s.gauges.get(name).copied())
            .max()
    }

    /// The observations histogram `name` accumulated over the window: the
    /// element-wise difference between the newest and baseline snapshots.
    /// `max` is approximated by the upper bound of the highest non-empty
    /// delta bucket (the cumulative max may predate the window), which
    /// keeps `quantile` within its usual one-bucket error.
    pub fn histogram_window(&self, name: &str, window_ns: u64) -> Option<HistogramSnapshot> {
        let (_, newest) = self.buf.back()?;
        let (_, base) = self.baseline(window_ns)?;
        let new = newest.histogram(name)?;
        let empty = HistogramSnapshot::default();
        let old = base.histogram(name).unwrap_or(&empty);
        let mut out = HistogramSnapshot::default();
        let mut count = 0u64;
        for b in 0..BUCKETS {
            let d = new.buckets[b].saturating_sub(old.buckets[b]);
            out.buckets[b] = d;
            count = count.saturating_add(d);
            if d > 0 {
                out.max = bucket_upper(b).min(new.max);
            }
        }
        out.count = count;
        out.sum = new.sum.saturating_sub(old.sum);
        Some(out)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn snap(counters: &[(&str, u64)], gauges: &[(&str, u64)]) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: counters.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            gauges: gauges.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
            histograms: BTreeMap::new(),
            exemplars: BTreeMap::new(),
        }
    }

    #[test]
    fn empty_and_single_sample_have_no_window() {
        let mut ring = SnapshotRing::new(8);
        assert!(ring.counter_delta("c", 1).is_none());
        ring.push(100, snap(&[("c", 5)], &[]));
        assert!(ring.counter_delta("c", 1).is_none(), "one sample is not an interval");
        assert!(ring.gauge_max("g", 1).is_none());
    }

    #[test]
    fn delta_and_rate_pick_the_window_baseline() {
        let mut ring = SnapshotRing::new(8);
        for i in 0..5u64 {
            // One sample per second, counter grows by 10 each.
            ring.push(i * 1_000_000_000, snap(&[("c", i * 10)], &[]));
        }
        // 2 s window at t=4 s: baseline is the t=2 s sample.
        assert_eq!(ring.counter_delta("c", 2_000_000_000), Some(20));
        let rate = ring.counter_rate("c", 2_000_000_000).unwrap();
        assert!((rate - 10.0).abs() < 1e-9, "{rate}");
        // A window wider than history falls back to the oldest sample.
        assert_eq!(ring.counter_delta("c", 60_000_000_000), Some(40));
    }

    #[test]
    fn eviction_keeps_newest_cap_samples() {
        let mut ring = SnapshotRing::new(3);
        for i in 0..10u64 {
            ring.push(i, snap(&[("c", i)], &[]));
        }
        assert_eq!(ring.len(), 3);
        // Oldest held is t=7, so the widest delta is 9-7.
        assert_eq!(ring.counter_delta("c", u64::MAX), Some(2));
    }

    #[test]
    fn non_monotone_timestamps_are_clamped() {
        let mut ring = SnapshotRing::new(4);
        ring.push(100, snap(&[("c", 1)], &[]));
        ring.push(50, snap(&[("c", 3)], &[]));
        let (t, _) = *ring.latest().unwrap();
        assert_eq!(t, 100);
        assert_eq!(ring.counter_delta("c", u64::MAX), Some(2));
    }

    #[test]
    fn gauge_max_scans_only_the_window() {
        let mut ring = SnapshotRing::new(8);
        ring.push(0, snap(&[], &[("g", 99)]));
        ring.push(1_000, snap(&[], &[("g", 5)]));
        ring.push(2_000, snap(&[], &[("g", 7)]));
        assert_eq!(ring.gauge_max("g", 1_000), Some(7), "the 99 predates the window");
        assert_eq!(ring.gauge_max("g", u64::MAX), Some(99));
        assert_eq!(ring.gauge_max("absent", u64::MAX), None);
    }

    #[test]
    fn histogram_window_subtracts_buckets() {
        let mut older = MetricsSnapshot::default();
        let mut h = HistogramSnapshot::default();
        h.buckets[3] = 4;
        h.count = 4;
        h.sum = 40;
        h.max = 7;
        older.histograms.insert("h".to_owned(), h);
        let mut newer = MetricsSnapshot::default();
        let mut h2 = HistogramSnapshot::default();
        h2.buckets[3] = 4;
        h2.buckets[10] = 2;
        h2.count = 6;
        h2.sum = 1840;
        h2.max = 900;
        newer.histograms.insert("h".to_owned(), h2);

        let mut ring = SnapshotRing::new(4);
        ring.push(0, older);
        ring.push(1_000, newer);
        let w = ring.histogram_window("h", u64::MAX).unwrap();
        assert_eq!(w.count, 2);
        assert_eq!(w.sum, 1800);
        assert_eq!(w.buckets[3], 0);
        assert_eq!(w.buckets[10], 2);
        assert_eq!(w.max, 900, "capped by the cumulative max");
        assert_eq!(w.quantile(0.99), bucket_upper(10));
    }
}

//! Property-based tests of the snapshot ring the SLO engine evaluates
//! over (DESIGN.md "Health & SLOs"): windowed counter deltas/rates and
//! gauge maxima agree with a plain-vector oracle under arbitrary tick
//! spacing, eviction and wraparound, and windowed histogram quantiles stay
//! within one log2 bucket of the exact order statistic.
//!
//! The oracle keeps its own bounded history (a `Vec` truncated to the
//! ring's capacity) and re-derives every answer from raw samples, so an
//! eviction or baseline-selection bug in the ring cannot hide.

use cad3_obs::{HistogramSnapshot, MetricsSnapshot, SnapshotRing};
use proptest::prelude::*;
use std::collections::BTreeMap;

const COUNTER: &str = "prop.counter";
const GAUGE: &str = "prop.gauge";
const HISTO: &str = "prop.histo";

/// A snapshot carrying one counter and one gauge reading.
fn snap(counter: u64, gauge: u64) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: [(COUNTER.to_owned(), counter)].into_iter().collect(),
        gauges: [(GAUGE.to_owned(), gauge)].into_iter().collect(),
        histograms: BTreeMap::new(),
        exemplars: BTreeMap::new(),
    }
}

/// The ring's baseline rule, restated over a plain slice of samples: the
/// youngest sample (excluding the newest) at least `window_ns` older than
/// the newest, or the oldest retained one; `None` below two samples.
fn oracle_baseline<T: Copy>(hist: &[(u64, T)], window_ns: u64) -> Option<(u64, T)> {
    if hist.len() < 2 {
        return None;
    }
    let newest = hist.last()?.0;
    let cutoff = newest.saturating_sub(window_ns);
    hist.iter().rev().skip(1).find(|(t, _)| *t <= cutoff).or_else(|| hist.first()).copied()
}

proptest! {
    /// Counter deltas and rates match the oracle after every push, for any
    /// tick spacing (including ties) and any capacity — i.e. across
    /// warm-up, steady state and eviction.
    #[test]
    fn counter_delta_and_rate_match_oracle(
        cap in 2usize..8,
        steps in prop::collection::vec((0u64..3_000_000_000, 0u64..1_000), 1..40),
        window_ns in 1u64..5_000_000_000,
    ) {
        let mut ring = SnapshotRing::new(cap);
        let mut hist: Vec<(u64, u64)> = Vec::new(); // (t, cumulative counter)
        let mut t = 0u64;
        let mut total = 0u64;
        for &(dt, inc) in &steps {
            t += dt;
            total += inc;
            ring.push(t, snap(total, 0));
            hist.push((t, total));
            if hist.len() > cap {
                hist.remove(0);
            }

            let expected = oracle_baseline(&hist, window_ns)
                .map(|(_, base)| total - base);
            prop_assert_eq!(ring.counter_delta(COUNTER, window_ns), expected);

            let span = oracle_baseline(&hist, window_ns).map(|(bt, _)| t - bt);
            prop_assert_eq!(ring.window_span_ns(window_ns), span);
            match (expected, span) {
                (Some(delta), Some(span)) if span > 0 => {
                    let rate = ring.counter_rate(COUNTER, window_ns).unwrap();
                    let want = delta as f64 * 1e9 / span as f64;
                    prop_assert!((rate - want).abs() <= want.abs() * 1e-12 + 1e-9);
                }
                _ => prop_assert_eq!(ring.counter_rate(COUNTER, window_ns), None),
            }
        }
    }

    /// The windowed gauge maximum is exactly the maximum of the retained
    /// samples from the baseline onwards — the "worst reading in the
    /// window" the `value` signal feeds on.
    #[test]
    fn gauge_max_matches_oracle(
        cap in 2usize..8,
        steps in prop::collection::vec((0u64..3_000_000_000, 0u64..1_000_000), 1..40),
        window_ns in 1u64..5_000_000_000,
    ) {
        let mut ring = SnapshotRing::new(cap);
        let mut hist: Vec<(u64, u64)> = Vec::new(); // (t, gauge)
        let mut t = 0u64;
        for &(dt, reading) in &steps {
            t += dt;
            ring.push(t, snap(0, reading));
            hist.push((t, reading));
            if hist.len() > cap {
                hist.remove(0);
            }

            let expected = oracle_baseline(&hist, window_ns).map(|(bt, _)| {
                hist.iter().filter(|(st, _)| *st >= bt).map(|(_, v)| *v).max().unwrap_or(0)
            });
            prop_assert_eq!(ring.gauge_max(GAUGE, window_ns), expected);
        }
    }

    /// Windowed histogram quantiles stay within one log2 bucket of the
    /// exact order statistic of the in-window observations: for the
    /// reported estimate `h` and true value `e`, `e <= h <= 2e` (and `h`
    /// is 0 exactly when `e` is). Count and sum are exact.
    #[test]
    fn histogram_window_quantile_within_one_bucket(
        batches in prop::collection::vec(
            prop::collection::vec(0u64..1 << 48, 0..12),
            2..12,
        ),
        q_sel in 0usize..3,
    ) {
        let tick = 100_000_000u64; // 100 ms between snapshots
        let mut ring = SnapshotRing::new(batches.len() + 1);
        let mut cumulative = HistogramSnapshot::default();
        for (i, batch) in batches.iter().enumerate() {
            for &v in batch {
                // Bucket `b` holds values with exactly `b` significant
                // bits — mirrors the histogram's own indexing.
                let b = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
                cumulative.buckets[b] += 1;
                cumulative.count += 1;
                cumulative.sum = cumulative.sum.saturating_add(v);
                cumulative.max = cumulative.max.max(v);
            }
            ring.push(
                (i as u64 + 1) * tick,
                MetricsSnapshot {
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    histograms: [(HISTO.to_owned(), cumulative.clone())].into_iter().collect(),
                    exemplars: BTreeMap::new(),
                },
            );
        }

        // A window wider than the whole run: the baseline is the first
        // snapshot, so the in-window set is every observation after batch 0.
        let window_ns = (batches.len() as u64 + 2) * tick;
        let mut in_window: Vec<u64> = batches[1..].iter().flatten().copied().collect();
        in_window.sort_unstable();

        // Every snapshot carries the key, so the window always resolves.
        let h = ring.histogram_window(HISTO, window_ns).expect("window resolves");
        prop_assert_eq!(h.count, in_window.len() as u64);
        let want_sum: u64 = in_window.iter().sum();
        prop_assert_eq!(h.sum, want_sum);

        if !in_window.is_empty() {
            let q = [0.50, 0.95, 0.99][q_sel];
            let rank = ((q * in_window.len() as f64).ceil() as usize)
                .clamp(1, in_window.len());
            let exact = in_window[rank - 1];
            let est = h.quantile(q);
            prop_assert!(
                est >= exact && est <= exact.saturating_mul(2),
                "q{}: estimate {} vs exact {} (must be within one log2 bucket)",
                q, est, exact,
            );
        } else {
            prop_assert_eq!(h.quantile(0.99), 0);
        }
    }
}

//! Loom model checks of the metric primitives' sharded-cell merge.
//!
//! Built and run only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p cad3-obs --test loom_obs
//! ```
//!
//! The metrics module's ordering policy is that every cell is an
//! independent relaxed statistic: a snapshot taken mid-write may lag, but
//! once writers are quiescent the merge is *exact*. These models hold that
//! claim across perturbed schedules — concurrent writers (and a racing
//! reader) never lose an observation, and the post-join merge conserves
//! count, sum and max.
#![cfg(loom)]

use cad3_obs::profile::StageStack;
use cad3_obs::{Counter, Histogram};
use loom::sync::Arc;
use loom::thread;

/// Two writers and a racing reader: the concurrent snapshot is a plausible
/// partial view, and the quiescent merge is exact.
#[test]
fn histogram_sharded_merge_conserves_observations() {
    const PER_THREAD: [&[u64]; 2] = [&[0, 3, 900], &[1, 4, 1000]];
    loom::model(|| {
        let hist = Arc::new(Histogram::new());
        let writers: Vec<_> = PER_THREAD
            .iter()
            .map(|values| {
                let hist = Arc::clone(&hist);
                thread::spawn(move || {
                    for &v in *values {
                        hist.observe(v);
                    }
                })
            })
            .collect();
        // A racing reader: mid-flight merges may lag the writers but must
        // stay internally consistent (count always equals the bucket total
        // by construction) and within the final bounds.
        let racer = {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                let s = hist.snapshot();
                assert!(s.count <= 6, "phantom observations: {}", s.count);
                assert!(s.max <= 1000, "max exceeds any observed value: {}", s.max);
                assert_eq!(s.count, s.buckets.iter().sum::<u64>());
            })
        };
        for w in writers {
            w.join().expect("writer thread");
        }
        racer.join().expect("reader thread");

        let s = hist.snapshot();
        assert_eq!(s.count, 6, "quiescent merge must conserve the count");
        assert_eq!(s.sum, 1908, "quiescent merge must conserve the sum");
        assert_eq!(s.max, 1000, "CAS-loop max must survive contention");
        assert_eq!(s.buckets[0], 1, "value 0");
        assert_eq!(s.buckets[1], 1, "value 1");
        assert_eq!(s.buckets[2], 1, "value 3");
        assert_eq!(s.buckets[3], 1, "value 4");
        assert_eq!(s.buckets[10], 2, "900 and 1000 both have 10 significant bits");
    });
}

/// The profiler's seqlock stage-stack publish/read race: a reader racing
/// the owning thread's publishes either skips the sample (torn read, odd
/// seq, never published) or sees one of the *complete* published states —
/// never a mix of two publishes.
#[test]
fn stage_stack_reads_are_torn_free() {
    loom::model(|| {
        let stack = Arc::new(StageStack::new());
        let writer = {
            let stack = Arc::clone(&stack);
            // Single-writer by contract: both publishes happen on this one
            // thread, racing only the reader.
            thread::spawn(move || {
                stack.publish(1, 1, &[11]);
                stack.publish(2, 2, &[22, 22]);
            })
        };
        let reader = {
            let stack = Arc::clone(&stack);
            thread::spawn(move || {
                if let Some((class, depth, ids)) = stack.read() {
                    // Any successful read is exactly one published state.
                    match class {
                        1 => assert_eq!((depth, ids), (1, vec![11])),
                        2 => assert_eq!((depth, ids), (2, vec![22, 22])),
                        other => panic!("torn class {other}"),
                    }
                }
            })
        };
        writer.join().expect("writer thread");
        reader.join().expect("reader thread");
        // Quiescent: the last publish is always visible and complete.
        assert_eq!(stack.read(), Some((2, 2, vec![22, 22])));
    });
}

/// Counter increments from concurrent threads all land in the merge.
#[test]
fn counter_sharded_merge_is_exact_after_join() {
    loom::model(|| {
        let counter = Arc::new(Counter::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.inc();
                    counter.add(2);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(counter.value(), 6, "no increment may be lost");
    });
}

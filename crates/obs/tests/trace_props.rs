//! Property-based tests of the trace assembler's tolerance envelope
//! (DESIGN.md "Distributed tracing"): at 100% sampling, assembly is
//! lossless and independent of event arrival order — shuffling, trace
//! interleaving and duplication never change the reassembled trees — and
//! the critical path of a tiled trace collapses to the root's own
//! duration.
//!
//! These tests build [`TraceEvent`]s directly rather than going through
//! the process-wide sink, so they are independent of the global sampling
//! state other test binaries mutate.

use cad3_obs::names;
use cad3_obs::trace::{assemble, Trace, TraceEvent};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// In-place Fisher–Yates (the vendored `rand` stub has no `shuffle`).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.random_range(0..=i));
    }
}

/// Builds one well-formed trace: span `i + 1` for each shape entry, the
/// first a root (parent 0), later spans parented on an arbitrary earlier
/// span chosen by the selector. Names rotate through the real catalogue so
/// the events look like production ones.
fn build_trace(trace_id: u64, shape: &[(u64, u64, u64)]) -> Vec<TraceEvent> {
    shape
        .iter()
        .enumerate()
        .map(|(i, &(selector, start, len))| TraceEvent {
            trace_id,
            span: (i + 1) as u64,
            parent: if i == 0 { 0 } else { selector % (i as u64) + 1 },
            name: names::ALL[i % names::ALL.len()],
            start_ns: start,
            end_ns: start.saturating_add(len),
            node: (i % 3) as u32,
            value: selector,
        })
        .collect()
}

/// `(span, parent, name, start_ns, end_ns)` for one assembled span.
type SpanFacts = (u64, u64, &'static str, u64, u64);

/// The order-independent fingerprint of an assembled trace.
fn fingerprint(t: &Trace) -> (Option<u64>, Vec<u64>, Vec<SpanFacts>) {
    (
        t.root().map(|r| r.span),
        t.orphans().to_vec(),
        t.spans().values().map(|s| (s.span, s.parent, s.name, s.start_ns, s.end_ns)).collect(),
    )
}

proptest! {
    /// Shuffling events, interleaving several traces and duplicating a
    /// subset never changes assembly: every trace reassembles complete
    /// (one root, no orphans, all spans reachable) and byte-identical to
    /// the in-order assembly — the "zero missing spans at 100% sampling"
    /// half of the tracing contract.
    #[test]
    fn assembly_is_lossless_and_order_independent(
        shapes in prop::collection::vec(
            prop::collection::vec((any::<u64>(), 0u64..1 << 40, 0u64..1 << 30), 1..24),
            1..5,
        ),
        seed in any::<u64>(),
    ) {
        let per_trace: Vec<Vec<TraceEvent>> = shapes
            .iter()
            .enumerate()
            .map(|(t, shape)| build_trace((t as u64 + 1) * 1000, shape))
            .collect();
        let reference: Vec<Trace> =
            per_trace.iter().flat_map(|events| assemble(events)).collect();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut scrambled: Vec<TraceEvent> = per_trace.iter().flatten().copied().collect();
        // Duplicate a random subset — the assembler keeps the first copy.
        for i in 0..scrambled.len() {
            if rng.random_bool(0.25) {
                let dup = scrambled[i];
                scrambled.push(dup);
            }
        }
        shuffle(&mut scrambled, &mut rng);

        let reassembled = assemble(&scrambled);
        prop_assert_eq!(reassembled.len(), reference.len());
        // `assemble` returns ascending trace ids; the reference was built
        // per trace in the same id order.
        for (re, orig) in reassembled.iter().zip(&reference) {
            prop_assert_eq!(re.trace_id, orig.trace_id);
            prop_assert!(re.is_complete(), "trace {} lost spans: {:?}", re.trace_id, re.orphans());
            prop_assert_eq!(fingerprint(re), fingerprint(orig));
            prop_assert_eq!(re.end_to_end_ns(), orig.end_to_end_ns());
            prop_assert_eq!(re.critical_path_ns(), orig.critical_path_ns());
        }
    }

    /// With children tiling their parent's interval — the shape the RSU
    /// pipeline emits, where queue/detect/disseminate partition the
    /// record's residency — the critical path equals the root's own
    /// duration exactly, under any event order.
    #[test]
    fn tiled_trace_critical_path_is_the_root_duration(
        base in 0u64..1 << 40,
        durations in prop::collection::vec(1u64..1 << 24, 1..16),
        split in prop::collection::vec(any::<bool>(), 16),
        seed in any::<u64>(),
    ) {
        let total: u64 = durations.iter().sum();
        let mut events = vec![TraceEvent {
            trace_id: 7,
            span: 1,
            parent: 0,
            name: names::RSU_MICRO_BATCH,
            start_ns: base,
            end_ns: base + total,
            node: 0,
            value: 0,
        }];
        let mut offset = base;
        for (i, &d) in durations.iter().enumerate() {
            let child = (i as u64 + 1) * 10;
            events.push(TraceEvent {
                trace_id: 7,
                span: child,
                parent: 1,
                name: names::RSU_DETECT,
                start_ns: offset,
                end_ns: offset + d,
                node: 1,
                value: 0,
            });
            if split[i] {
                // Two grandchildren tiling the child at its midpoint.
                for (j, (s, e)) in
                    [(offset, offset + d / 2), (offset + d / 2, offset + d)].into_iter().enumerate()
                {
                    events.push(TraceEvent {
                        trace_id: 7,
                        span: child + j as u64 + 1,
                        parent: child,
                        name: names::RSU_QUEUE,
                        start_ns: s,
                        end_ns: e,
                        node: 2,
                        value: 0,
                    });
                }
            }
            offset += d;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        shuffle(&mut events, &mut rng);

        let traces = assemble(&events);
        prop_assert_eq!(traces.len(), 1);
        let t = &traces[0];
        prop_assert!(t.is_complete());
        prop_assert_eq!(t.end_to_end_ns(), total);
        prop_assert_eq!(t.critical_path_ns(), total, "tiling must collapse to the root duration");
    }
}

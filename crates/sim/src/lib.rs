//! Deterministic discrete-event simulation kernel for the CAD3 reproduction.
//!
//! The paper evaluates CAD3 on a two-PC physical testbed. This crate provides
//! the virtual-time substrate we substitute for wall-clock time: an event
//! queue with a deterministic tie-break order ([`Simulation`]), a seedable
//! random source with the distributions the models need ([`SimRng`]), and the
//! statistics helpers used to aggregate latency/bandwidth measurements
//! ([`Welford`], [`SampleSet`], [`Histogram`]).
//!
//! # Example
//!
//! ```
//! use cad3_sim::Simulation;
//! use cad3_types::SimTime;
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let mut sim = Simulation::new();
//! let fired = Rc::new(RefCell::new(Vec::new()));
//! for ms in [30u64, 10, 20] {
//!     let fired = Rc::clone(&fired);
//!     sim.schedule_at(SimTime::from_millis(ms), move |sim| {
//!         fired.borrow_mut().push(sim.now().as_millis_f64() as u64);
//!     });
//! }
//! sim.run_to_completion();
//! assert_eq!(&*fired.borrow(), &[10, 20, 30]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rng;
mod sim;
mod stats;

pub use rng::SimRng;
pub use sim::Simulation;
pub use stats::{Histogram, SampleSet, Welford};

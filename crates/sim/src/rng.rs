use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random source used everywhere randomness is needed.
///
/// Wraps a seedable PRNG and adds the distributions the reproduction uses:
/// uniform ranges, Gaussians (Box–Muller, matching the paper's Gaussian-like
/// speed data), exponentials and Bernoulli draws. Two `SimRng`s created with
/// the same seed produce identical streams.
///
/// # Example
///
/// ```
/// use cad3_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    gauss_cache: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed), gauss_cache: None }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated entity its own stream so entity order doesn't perturb draws.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.random();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid uniform bounds");
        self.inner.random_range(lo..hi)
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        self.inner.random_range(0..n)
    }

    /// A Gaussian draw with the given mean and standard deviation
    /// (Box–Muller transform).
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std.is_finite() && std >= 0.0, "standard deviation must be non-negative");
        if let Some(z) = self.gauss_cache.take() {
            return mean + std * z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1: f64 = self.inner.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.random_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_cache = Some(r * theta.sin());
        mean + std * r * theta.cos()
    }

    /// An exponential draw with the given rate (events per unit).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = self.inner.random_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.random_range(0.0..1.0) < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Picks an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.uniform(0.0, total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A raw `u64` draw (for deriving sub-seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SimRng::seed_from(13);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(17);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut rng = SimRng::seed_from(19);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should change order with overwhelming probability");
    }

    #[test]
    fn fork_streams_are_independent_of_order() {
        let mut parent1 = SimRng::seed_from(99);
        let mut c1 = parent1.fork(1);
        let mut parent2 = SimRng::seed_from(99);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "invalid uniform bounds")]
    fn uniform_bad_bounds_panics() {
        SimRng::seed_from(1).uniform(5.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_zero_panics() {
        SimRng::seed_from(1).index(0);
    }
}

use cad3_types::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type Action = Box<dyn FnOnce(&mut Simulation)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and, among
        // ties, the earliest-scheduled one) pops first. This makes the
        // simulation fully deterministic.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A single-threaded discrete-event simulation.
///
/// Events are closures scheduled at virtual instants; [`Simulation::step`]
/// pops the earliest one, advances the clock to its timestamp and runs it.
/// Ties are broken by scheduling order, so runs are bit-for-bit reproducible.
///
/// Shared mutable state between events is typically held in
/// `Rc<RefCell<...>>` captured by the event closures (see the crate-level
/// example).
#[derive(Default)]
pub struct Simulation {
    now: SimTime,
    queue: BinaryHeap<Scheduled>,
    next_seq: u64,
    executed: u64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to run at the absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — the past cannot be
    /// scheduled.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut Simulation) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { at, seq, action: Box::new(action) });
    }

    /// Schedules `action` to run after the given delay.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F)
    where
        F: FnOnce(&mut Simulation) + 'static,
    {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedules `hook` to run every `period`, starting one period from
    /// now, until the simulation drains or `until` is reached (inclusive).
    /// Periodic hooks are ordinary events: they interleave deterministically
    /// with everything else by (time, scheduling order).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero — a zero-period hook would starve the
    /// event loop.
    pub fn schedule_every<F>(&mut self, period: SimDuration, until: SimTime, hook: F)
    where
        F: FnMut(&mut Simulation, SimTime) + 'static,
    {
        assert!(period > SimDuration::ZERO, "schedule_every: period must be non-zero");
        let hook = std::rc::Rc::new(std::cell::RefCell::new(hook));
        type SharedHook = std::rc::Rc<std::cell::RefCell<dyn FnMut(&mut Simulation, SimTime)>>;
        fn arm(sim: &mut Simulation, period: SimDuration, until: SimTime, hook: SharedHook) {
            let at = sim.now() + period;
            if at > until {
                return;
            }
            sim.schedule_at(at, move |sim| {
                (hook.borrow_mut())(sim, sim.now());
                arm(sim, period, until, hook);
            });
        }
        arm(self, period, until, hook);
    }

    /// Runs the single earliest pending event.
    ///
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.executed += 1;
                (ev.action)(self);
                true
            }
            None => false,
        }
    }

    /// Runs events until the queue is empty or the next event is strictly
    /// after `deadline`; the clock then rests at `deadline` (or at the last
    /// event's time, whichever is later).
    ///
    /// Returns the number of events executed by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.executed;
        while let Some(next) = self.queue.peek() {
            if next.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.executed - start
    }

    /// Runs until no events remain. Returns the number executed by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        let start = self.executed;
        while self.step() {}
        self.executed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, ms) in [50u64, 10, 30, 20, 40].iter().enumerate() {
            let order = Rc::clone(&order);
            sim.schedule_at(SimTime::from_millis(*ms), move |_| {
                order.borrow_mut().push(i);
            });
        }
        sim.run_to_completion();
        assert_eq!(&*order.borrow(), &[1, 3, 2, 4, 0]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut sim = Simulation::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let order = Rc::clone(&order);
            sim.schedule_at(SimTime::from_millis(5), move |_| {
                order.borrow_mut().push(i);
            });
        }
        sim.run_to_completion();
        assert_eq!(&*order.borrow(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim = Simulation::new();
        let seen = Rc::new(RefCell::new(SimTime::ZERO));
        let s = Rc::clone(&seen);
        sim.schedule_at(SimTime::from_millis(25), move |sim| {
            *s.borrow_mut() = sim.now();
        });
        sim.run_to_completion();
        assert_eq!(*seen.borrow(), SimTime::from_millis(25));
        assert_eq!(sim.now(), SimTime::from_millis(25));
    }

    #[test]
    fn events_can_schedule_more_events() {
        let mut sim = Simulation::new();
        let count = Rc::new(RefCell::new(0u32));

        fn tick(sim: &mut Simulation, count: Rc<RefCell<u32>>, remaining: u32) {
            *count.borrow_mut() += 1;
            if remaining > 0 {
                sim.schedule_in(SimDuration::from_millis(10), move |sim| {
                    tick(sim, count, remaining - 1)
                });
            }
        }

        let c = Rc::clone(&count);
        sim.schedule_at(SimTime::ZERO, move |sim| tick(sim, c, 4));
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now(), SimTime::from_millis(40));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new();
        let count = Rc::new(RefCell::new(0u32));
        for ms in [10u64, 20, 30, 40] {
            let count = Rc::clone(&count);
            sim.schedule_at(SimTime::from_millis(ms), move |_| {
                *count.borrow_mut() += 1;
            });
        }
        let executed = sim.run_until(SimTime::from_millis(25));
        assert_eq!(executed, 2);
        assert_eq!(*count.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(25));
        assert_eq!(sim.pending(), 2);
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 4);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim = Simulation::new();
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_millis(10), |sim| {
            sim.schedule_at(SimTime::from_millis(5), |_| {});
        });
        sim.run_to_completion();
    }

    #[test]
    fn executed_counter() {
        let mut sim = Simulation::new();
        for ms in 0..5u64 {
            sim.schedule_at(SimTime::from_millis(ms), |_| {});
        }
        assert_eq!(sim.run_to_completion(), 5);
        assert_eq!(sim.executed(), 5);
        assert!(!sim.step());
    }

    #[test]
    fn schedule_every_fires_periodically_until_deadline() {
        let mut sim = Simulation::new();
        let ticks = Rc::new(RefCell::new(Vec::new()));
        let t = Rc::clone(&ticks);
        sim.schedule_every(
            SimDuration::from_millis(10),
            SimTime::from_millis(45),
            move |_, now| {
                t.borrow_mut().push(now);
            },
        );
        // A competing event at an aligned instant: the t=20 tick is only
        // re-armed while running the t=10 one, so this event (scheduled at
        // setup) wins the tie by scheduling order.
        let t2 = Rc::clone(&ticks);
        sim.schedule_at(SimTime::from_millis(20), move |_| {
            t2.borrow_mut().push(SimTime::from_millis(999));
        });
        sim.run_to_completion();
        assert_eq!(
            &*ticks.borrow(),
            &[
                SimTime::from_millis(10),
                SimTime::from_millis(999),
                SimTime::from_millis(20),
                SimTime::from_millis(30),
                SimTime::from_millis(40),
            ],
            "fires every period up to the deadline, interleaving by (time, seq)"
        );
        assert_eq!(sim.pending(), 0, "no tick is armed past the deadline");
    }

    #[test]
    fn debug_is_nonempty() {
        let sim = Simulation::new();
        assert!(!format!("{sim:?}").is_empty());
    }
}
